"""Figure 13 (top): element-wise throughput — Int Add, Int Mult, Int <,
FP Add, FP Mult (plus the remaining Table II arithmetic for completeness).

Each benchmark runs one vectored macro-instruction over the full 64k-row
simulated memory, measures the micro-operation count, and derives the
PyPIM / theoretical-PIM / host-driver series at Table III scale.
"""

import numpy as np
import pytest

import repro.pim as pim
from repro.driver.throughput import measure_driver_throughput
from repro.isa.dtypes import float32 as isa_f32, int32 as isa_i32
from repro.isa.instructions import ROp

from benchmarks.conftest import PAPER_PARALLELISM, record_fig13

CASES = [
    ("Int Add", "__add__", np.int32, ROp.ADD),
    ("Int Sub", "__sub__", np.int32, ROp.SUB),
    ("Int Mult", "__mul__", np.int32, ROp.MUL),
    ("Int Div", "__truediv__", np.int32, ROp.DIV),
    ("Int <", "__lt__", np.int32, ROp.LT),
    ("FP Add", "__add__", np.float32, ROp.ADD),
    ("FP Sub", "__sub__", np.float32, ROp.SUB),
    ("FP Mult", "__mul__", np.float32, ROp.MUL),
    ("FP Div", "__truediv__", np.float32, ROp.DIV),
    ("FP <", "__lt__", np.float32, ROp.LT),
]


def _random(dtype_np, rng, n, nonzero=False):
    if dtype_np == np.int32:
        data = rng.integers(-(2**31), 2**31, n, dtype=np.int64).astype(np.int32)
        if nonzero:
            data[data == 0] = 3
        return data
    sign = rng.integers(0, 2, n).astype(np.uint32) << 31
    exp = (rng.integers(97, 158, n).astype(np.uint32)) << 23
    frac = rng.integers(0, 1 << 23, n).astype(np.uint32)
    return (sign | exp | frac).view(np.float32)


@pytest.mark.parametrize("name,dunder,dtype_np,op", CASES, ids=[c[0] for c in CASES])
def test_elementwise(benchmark, bench_device, name, dunder, dtype_np, op):
    rng = np.random.default_rng(abs(hash(name)) % 2**32)
    n = bench_device.config.total_rows
    a = pim.from_numpy(_random(dtype_np, rng, n))
    b = pim.from_numpy(_random(dtype_np, rng, n, nonzero=True))

    def run():
        with pim.Profiler() as prof:
            getattr(a, dunder)(b)
        return prof

    prof = benchmark.pedantic(run, rounds=1, iterations=1)

    isa_dtype = isa_i32 if dtype_np == np.int32 else isa_f32
    driver = measure_driver_throughput(
        bench_device.config, op, isa_dtype, iterations=2000, unique_sequences=16
    )
    row = record_fig13(name, prof.stats, PAPER_PARALLELISM, driver.micro_per_second)
    benchmark.extra_info.update(
        cycles=row.cycles,
        theoretical_cycles=row.theoretical,
        pypim_tput=f"{row.pypim_tput:.3e}",
        theory_tput=f"{row.theory_tput:.3e}",
        driver_tput=f"{row.driver_tput:.3e}",
    )
    # Sanity: the framework gap stays within a modest bound, and the three
    # series keep the paper's ordering (theory >= PyPIM). Short parallel
    # sequences (Kogge-Stone add: ~190 cycles) get a small absolute
    # allowance since their column inits are part of the algorithm.
    assert row.theory_tput >= row.pypim_tput
    assert row.cycles <= max(row.theoretical * 1.2, row.theoretical + 80)
