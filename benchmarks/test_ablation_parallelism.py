"""Ablation: bit-serial vs bit-parallel (partition) lowering.

Reproduces the partition-parallelism benefit of Section III-D / Figure 4:
the same macro-instruction is lowered with partitions disabled (pure
bit-serial element-parallel) and enabled (Kogge-Stone + parallel bitwise),
and the cycle counts are compared.
"""

import os

import numpy as np
import pytest

from repro.arch.config import PIMConfig
from repro.driver.driver import Driver
from repro.isa.dtypes import int32
from repro.isa.instructions import RInstr, ROp
from repro.sim.simulator import Simulator

from benchmarks.conftest import RESULTS_DIR

CASES = [
    ("add", ROp.ADD, 2),
    ("sub", ROp.SUB, 2),
    ("bit_and", ROp.BIT_AND, 2),
    ("bit_or", ROp.BIT_OR, 2),
    ("bit_xor", ROp.BIT_XOR, 2),
    ("bit_not", ROp.BIT_NOT, 1),
]

_LINES = []


def cycles_for(op: ROp, arity: int, mode: str) -> int:
    sim = Simulator(PIMConfig(crossbars=1, rows=1))
    driver = Driver(sim, parallelism=mode)
    driver.execute(
        RInstr(op, int32, dest=2, src_a=0, src_b=1 if arity == 2 else None)
    )
    return sim.stats.cycles - 2  # exclude the two mask ops


@pytest.mark.parametrize("name,op,arity", CASES, ids=[c[0] for c in CASES])
def test_parallelism_ablation(benchmark, name, op, arity):
    serial = cycles_for(op, arity, "serial")

    def run():
        return cycles_for(op, arity, "parallel")

    parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = serial / parallel
    _LINES.append(
        f"{name:<8} serial={serial:5} cycles  parallel={parallel:5} cycles "
        f"-> {speedup:5.2f}x"
    )
    benchmark.extra_info.update(serial=serial, parallel=parallel,
                                speedup=f"{speedup:.2f}x")
    assert parallel < serial


def teardown_module(module):
    if not _LINES:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(
        ["Partition-parallelism ablation (cycles per 32-bit instruction)", ""]
        + _LINES
    )
    print("\n" + text)
    with open(os.path.join(RESULTS_DIR, "ablation_parallelism.txt"), "w") as handle:
        handle.write(text + "\n")
