"""Graph-optimizer benchmark: ``pim.compile(opt_level=...)`` cycle savings.

The acceptance criteria enforced here (the PR's headline claims):

1. **>= 10% cycle reduction** — on the naive linear-regression gradient
   workload (the recompute-the-residual pattern ``linear_regression.py``'s
   math invites), the highest optimization level must replay in at least
   10% fewer PIM cycles than the verbatim level-0 program.
2. **Bit-identical outputs** — on *both* backends, every optimized
   capture and replay returns exactly the eager results (raw bits), and
   both backends report identical cycle totals at every level.
3. **Smaller working set** — level 3's register reuse must reserve fewer
   crossbar cells than level 0 (dead temporaries return to the
   allocator).

Results are written to ``results/graph_opt.txt``.
"""

from __future__ import annotations

import os
from typing import List

import numpy as np
import pytest

import repro.pim as pim

from benchmarks.conftest import RESULTS_DIR

_LINES: List[str] = []

CROSSBARS, ROWS, N = 4, 64, 256


def grad_terms(x, y):
    """One naive gradient evaluation for ``pred = x * y + x``.

    Written the way example code drifts into being: the shared ``x * y``
    product is recomputed for the residual term, a constant-only
    subgraph computes the ``2/n``-style scale factor on-device, and a
    leftover debugging temporary is computed but never used. The
    optimizer must find all three (CSE, constant folding, dead-temporary
    elimination) without changing a single observable bit.
    """
    _ = x - y                                              # dead temporary
    scale = pim.full(len(x), 0.5, dtype=pim.float32) * 4.0  # folds to 2.0
    pred = x * y + x
    resid = x * y - x          # recomputed product: the CSE victim
    return pred, (resid * scale).sum()


def _inputs():
    rng = np.random.default_rng(7)
    x = (rng.uniform(-1, 1, N) * 4).astype(np.float32)
    y = (rng.uniform(0.5, 1.5, N)).astype(np.float32)
    return x, y


def _fresh(backend: str):
    device = pim.init(crossbars=CROSSBARS, rows=ROWS, backend=backend)
    x_h, y_h = _inputs()
    return device, pim.from_numpy(x_h), pim.from_numpy(y_h)


@pytest.fixture(autouse=True)
def _reset():
    yield
    pim.reset()


def _eager_reference():
    device, x, y = _fresh("simulator")
    before = device.stats_snapshot()
    pred, total = grad_terms(x, y)
    cycles = device.backend.stats.diff(before).cycles
    bits = pred.to_numpy().view(np.uint32).copy()
    scalar = np.float32(float(total)).view(np.uint32)
    pim.reset()
    return bits, scalar, cycles


def _compiled_replay(backend: str, level: int):
    """(output bits, scalar bits, replay cycles, reserved cells, report)."""
    device, x, y = _fresh(backend)
    func = pim.compile(grad_terms, opt_level=level)
    pred, total = func(x, y)  # capture
    capture_bits = pred.to_numpy().view(np.uint32).copy()
    capture_scalar = np.float32(float(total)).view(np.uint32)
    before = device.stats_snapshot()
    pred, total = func(x, y)  # replay
    cycles = device.backend.stats.diff(before).cycles
    bits = pred.to_numpy().view(np.uint32).copy()
    scalar = np.float32(float(total)).view(np.uint32)
    assert np.array_equal(bits, capture_bits)
    assert scalar == capture_scalar
    entry = next(iter(func._cache.values()))
    reserved = len(entry.reserved)
    report = func.opt_report(x, y)
    pim.reset()
    return bits, scalar, cycles, reserved, report


def test_graph_opt_acceptance():
    """>= 10% cycles saved at the highest level, bit-identical outputs
    on both backends, matching cross-backend cycle totals."""
    ref_bits, ref_scalar, eager_cycles = _eager_reference()

    cycles = {}
    reserved = {}
    report = None
    for backend in ("simulator", "numpy"):
        for level in (0, pim.OPT_LEVEL_MAX):
            bits, scalar, spent, cells, rep = _compiled_replay(backend, level)
            assert np.array_equal(bits, ref_bits), (backend, level)
            assert scalar == ref_scalar, (backend, level)
            cycles[(backend, level)] = spent
            reserved[(backend, level)] = cells
            if backend == "simulator" and level == pim.OPT_LEVEL_MAX:
                report = rep

    # Level 0 replay is cycle-exact with eager mode; the two backends
    # agree at every level.
    assert cycles[("simulator", 0)] == eager_cycles
    for level in (0, pim.OPT_LEVEL_MAX):
        assert cycles[("simulator", level)] == cycles[("numpy", level)]

    saved = 1.0 - cycles[("simulator", pim.OPT_LEVEL_MAX)] / cycles[
        ("simulator", 0)
    ]
    _LINES.append(
        f"workload: naive linear-regression gradient terms "
        f"(n={N}, {CROSSBARS}x{ROWS}, float32)"
    )
    _LINES.append(
        f"eager/O0 replay: {cycles[('simulator', 0)]} cycles/call "
        f"(cycle-exact, both backends)"
    )
    _LINES.append(
        f"O{pim.OPT_LEVEL_MAX} replay:     "
        f"{cycles[('simulator', pim.OPT_LEVEL_MAX)]} cycles/call "
        f"-> {saved:.1%} saved (floor 10%), outputs bit-identical to eager "
        f"on both backends"
    )
    _LINES.append(
        f"reserved cells:  {reserved[('simulator', 0)]} at O0 -> "
        f"{reserved[('simulator', pim.OPT_LEVEL_MAX)]} at "
        f"O{pim.OPT_LEVEL_MAX} (temporary reuse)"
    )
    if report is not None:
        _LINES.append(f"report:          {report.summary()}")
    assert saved >= 0.10, f"cycle reduction {saved:.1%} < 10%"
    assert (
        reserved[("simulator", pim.OPT_LEVEL_MAX)] < reserved[("simulator", 0)]
    ), "register reuse did not shrink the reservation"


def test_graph_opt_level_survey():
    """Non-gating survey: every level on the simulator backend."""
    ref_bits, ref_scalar, _ = _eager_reference()
    for level in pim.OPT_LEVELS:
        bits, scalar, cycles, cells, report = _compiled_replay(
            "simulator", level
        )
        assert np.array_equal(bits, ref_bits)
        assert scalar == ref_scalar
        passes = ""
        if report is not None and report.passes:
            passes = "  " + ", ".join(
                f"{k}={v}" for k, v in sorted(report.passes.items()) if v
            )
        _LINES.append(
            f"survey O{level}: {cycles:>8} cycles/call  "
            f"{cells:>3} reserved cells{passes}"
        )


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if not _LINES:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(
        ["Graph-optimizer pass pipeline (pim.compile opt_level) benchmark", ""]
        + _LINES
    )
    with open(os.path.join(RESULTS_DIR, "graph_opt.txt"), "w") as handle:
        handle.write(text + "\n")
