"""Ablation: H-tree hop-latency model for inter-crossbar reduction.

The default cycle metric charges one cycle per move micro-operation (the
paper's micro-op count). This ablation re-runs inter-crossbar summation
with the H-tree cost model (one cycle per traversed tree segment of the
longest pair) across memory sizes, quantifying how much the hierarchical
interconnect would add to reduction latency.
"""

import os

import numpy as np
import pytest

import repro.pim as pim
from repro.arch.config import PIMConfig
from repro.pim.device import PIMDevice

from benchmarks.conftest import RESULTS_DIR

_LINES = []


def _reduce_cycles(crossbars: int, move_cost: str) -> int:
    config = PIMConfig(crossbars=crossbars, rows=64)
    device = PIMDevice(config, move_cost=move_cost)
    n = config.total_rows
    data = np.arange(n, dtype=np.int32)
    tensor = pim.Tensor(device, n, pim.int32)
    device.load_array(tensor.slot, data, pim.int32)
    before = device.simulator.stats.cycles
    result = pim.reduce(tensor)
    assert result == data.sum()
    return device.simulator.stats.cycles - before


@pytest.mark.parametrize("crossbars", [4, 16, 64])
def test_htree_cost(benchmark, crossbars):
    unit = _reduce_cycles(crossbars, "unit")

    def run():
        return _reduce_cycles(crossbars, "htree")

    htree = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = (htree - unit) / unit
    _LINES.append(
        f"{crossbars:3} crossbars: unit={unit:7} cycles  "
        f"htree={htree:7} cycles  (+{overhead:.2%})"
    )
    benchmark.extra_info.update(unit=unit, htree=htree)
    assert htree >= unit


def teardown_module(module):
    if not _LINES:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(
        ["H-tree hop-latency ablation (inter-crossbar sum reduction)", ""] + _LINES
    )
    print("\n" + text)
    with open(os.path.join(RESULTS_DIR, "ablation_htree.txt"), "w") as handle:
        handle.write(text + "\n")
