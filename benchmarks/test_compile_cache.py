"""Compile/replay benchmark: the program cache on elementwise loops.

The common case in every benchmark loop is a *repeated* elementwise
macro-instruction: the driver lowers it once, then replays the compiled
:class:`~repro.driver.program.MicroProgram` through the simulator's
``execute_program`` fast path (no per-op dispatch or re-validation, gate
patterns pre-resolved).  This benchmark measures the end-to-end wall-clock
win of that pipeline versus the uncached path (full lowering + op-by-op
execution every iteration), and verifies the resulting memory image is
bit-identical.

Acceptance target: >= 2x wall-clock speedup on a repeated elementwise
macro-instruction loop — enforced by ``test_compile_cache_acceptance``
on the heaviest-lowering case (fp mult on a single crossbar, where the
host-side cost the cache removes dominates) with best-of-2 timing.  The
parametrized survey cases typically also exceed 2x (see
``results/compile_cache.txt`` for recorded numbers) but enforce a lower
1.3x floor each so the suite stays robust on noisy shared CI runners.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List

import numpy as np
import pytest

from repro.arch.config import small_config
from repro.driver.driver import Driver
from repro.isa.dtypes import float32, int32
from repro.isa.instructions import RInstr, ROp
from repro.sim.simulator import Simulator

from benchmarks.conftest import RESULTS_DIR

#: A small memory so the host-side cost dominates (what the cache removes);
#: per-op semantics and stream contents are size-independent.
CACHE_BENCH_CONFIG = small_config(crossbars=4, rows=64)

CASES = [
    # (name, op, dtype, loop iterations, enforced minimum speedup)
    ("int add", ROp.ADD, int32, 30, 1.3),
    ("int mult", ROp.MUL, int32, 10, 1.3),
    ("fp add", ROp.ADD, float32, 10, 1.3),
    ("fp mult", ROp.MUL, float32, 8, 1.3),
]

_LINES: List[str] = []


@dataclass
class CacheRow:
    name: str
    uncached_s: float
    cached_s: float
    cycles: int
    hits: int

    @property
    def speedup(self) -> float:
        return self.uncached_s / max(self.cached_s, 1e-12)

    def format(self) -> str:
        return (
            f"{self.name:<10} uncached={self.uncached_s:7.3f}s "
            f"cached={self.cached_s:7.3f}s speedup={self.speedup:5.2f}x "
            f"cycles={self.cycles:>9} cache_hits={self.hits}"
        )


def _loop_body(op: ROp, dtype) -> List[RInstr]:
    """A two-instruction elementwise loop body (dest never aliases src)."""
    return [
        RInstr(op, dtype, dest=2, src_a=0, src_b=1),
        RInstr(op, dtype, dest=3, src_a=2, src_b=1),
    ]


def _run_loop(
    cache_size: int, op: ROp, dtype, iterations: int,
    config=CACHE_BENCH_CONFIG, best_of: int = 1,
):
    """Time ``iterations`` repeats of the loop body; returns (secs, sim, drv).

    With ``best_of > 1`` the timed loop runs multiple rounds and the
    fastest is reported (suppresses scheduler noise on shared machines;
    the simulated memory state is round-independent because every round
    recomputes the same registers from the same sources).
    """
    sim = Simulator(config)
    driver = Driver(sim, cache_size=cache_size)
    body = _loop_body(op, dtype)
    for instr in body:  # warm-up: outside the timed region for both modes
        driver.execute(instr)
    best = float("inf")
    for _ in range(best_of):
        start = time.perf_counter()
        for _ in range(iterations):
            for instr in body:
                driver.execute(instr)
        best = min(best, time.perf_counter() - start)
    return best, sim, driver


@pytest.mark.parametrize(
    "name,op,dtype,iterations,min_speedup", CASES, ids=[c[0] for c in CASES]
)
def test_compile_cache_speedup(name, op, dtype, iterations, min_speedup):
    uncached_s, sim_plain, _ = _run_loop(0, op, dtype, iterations)
    cached_s, sim_cached, driver = _run_loop(4096, op, dtype, iterations)

    # Bit-identical memory state and identical cycle accounting: the
    # replay path changes wall-clock time only, never chip behavior.
    assert np.array_equal(sim_plain.memory.words, sim_cached.memory.words)
    assert sim_plain.stats.cycles == sim_cached.stats.cycles
    assert driver.cache_hits >= 2 * iterations

    row = CacheRow(
        name, uncached_s, cached_s, sim_cached.stats.cycles, driver.cache_hits
    )
    _LINES.append(row.format())
    assert row.speedup >= min_speedup, row.format()


def test_compile_cache_acceptance():
    """The headline claim: >= 2x wall-clock on a repeated elementwise loop.

    Uses the heaviest lowering (fp mult) on a single crossbar so the
    measurement isolates the host-side cost the cache removes, and
    best-of-2 timing per mode for noise robustness.
    """
    config = small_config(crossbars=1, rows=16)
    uncached_s, sim_plain, _ = _run_loop(
        0, ROp.MUL, float32, 8, config=config, best_of=2
    )
    cached_s, sim_cached, driver = _run_loop(
        4096, ROp.MUL, float32, 8, config=config, best_of=2
    )
    assert np.array_equal(sim_plain.memory.words, sim_cached.memory.words)
    assert sim_plain.stats.cycles == sim_cached.stats.cycles
    row = CacheRow(
        "acceptance", uncached_s, cached_s, sim_cached.stats.cycles,
        driver.cache_hits,
    )
    _LINES.append(row.format() + "  (fp mult, 1 crossbar, best-of-2)")
    assert row.speedup >= 2.0, row.format()


def test_recorded_stream_saves_mask_cycles():
    """Fusing a loop body with Driver.compile coalesces the per-instruction
    mask preamble: same memory state, strictly fewer PIM cycles."""
    body = _loop_body(ROp.ADD, int32)

    sim_plain = Simulator(CACHE_BENCH_CONFIG)
    plain = Driver(sim_plain, cache_size=0)
    for instr in body:
        plain.execute(instr)

    sim_fused = Simulator(CACHE_BENCH_CONFIG)
    fused = Driver(sim_fused)
    program = fused.compile(body, name="fused-loop-body", optimize=True)
    fused.run_program(program)

    assert np.array_equal(sim_plain.memory.words, sim_fused.memory.words)
    assert sim_fused.stats.cycles < sim_plain.stats.cycles
    _LINES.append(
        f"fused body cycles={sim_fused.stats.cycles} "
        f"(unfused {sim_plain.stats.cycles})"
    )


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if not _LINES:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(
        ["Program cache: compile once, replay many (wall-clock)", ""] + _LINES
    )
    with open(os.path.join(RESULTS_DIR, "compile_cache.txt"), "w") as handle:
        handle.write(text + "\n")
