"""Figure 13 (third series) + driver cache ablation + emission breakdown.

Measures the host driver's micro-op generation rate into a memory buffer
(the artifact appendix's methodology: micro-operations rerouted from the
simulator to ``OPS[...]``), for every representative macro-instruction,
with the compiled-sequence cache on and off.

Two emission paths are measured per op type: the legacy *per-macro*
dispatch (``Driver.execute``, one Python round-trip per macro) and the
*whole-stream* plans of :mod:`repro.driver.stream`
(``Driver.execute_stream``, one cached fused program per 64-macro
stream). The stream path is the headline number — it is what compiled
graphs and stream-aware hosts pay — and the CI gate: **every** op type,
including the short-bodied int add / int ``<`` that cap per-macro
dispatch below 1x, must clear 1x headroom against the 300MHz chip.

The per-op-type breakdown attributes each case's headroom: *gate
building* (cold lowering cost, paid once per distinct instruction and
then cached) versus steady-state *emission* (the per-macro cost of
shipping the cached pre-encoded stream), against the chip's own
consumption time for that macro's micro-ops. Stream-plan cache traffic
is reported alongside so cold/warm attribution stays honest: a steady
stream loop must be all plan hits.
"""

import os

import pytest

from repro.arch.config import PIMConfig
from repro.driver.throughput import (
    EmissionBreakdown,
    measure_driver_throughput,
    measure_gate_build_cost,
)
from repro.isa.dtypes import float32, int32
from repro.isa.instructions import ROp

from benchmarks.conftest import BENCH_CONFIG, RESULTS_DIR

CASES = [
    ("int add", ROp.ADD, int32),
    ("int mult", ROp.MUL, int32),
    ("int div", ROp.DIV, int32),
    ("int <", ROp.LT, int32),
    ("fp add", ROp.ADD, float32),
    ("fp mult", ROp.MUL, float32),
    ("fp div", ROp.DIV, float32),
]

STREAM_LEN = 64

_LINES = []
_BREAKDOWN = []


@pytest.fixture(scope="module")
def cfg():
    return PIMConfig(**BENCH_CONFIG)


@pytest.mark.parametrize("name,op,dtype", CASES, ids=[c[0] for c in CASES])
def test_driver_throughput(benchmark, cfg, name, op, dtype):
    iterations = 20_000 if op in (ROp.ADD, ROp.LT) and dtype is int32 else 5_000

    def run():
        stream = measure_driver_throughput(
            cfg, op, dtype, iterations=iterations, unique_sequences=16,
            emit="stream", stream_len=STREAM_LEN,
        )
        macro = measure_driver_throughput(
            cfg, op, dtype, iterations=iterations, unique_sequences=16
        )
        return stream, macro

    stream, macro = benchmark.pedantic(run, rounds=1, iterations=1)
    build = measure_gate_build_cost(cfg, op, dtype, samples=12)
    breakdown = EmissionBreakdown(stream, build)
    benchmark.extra_info.update(
        micro_per_second=f"{stream.micro_per_second:.3e}",
        headroom=f"{stream.headroom:.2f}",
        macro_headroom=f"{macro.headroom:.2f}",
        ops_per_macro=f"{stream.ops_per_macro:.0f}",
        plan_cache=f"{stream.plan_hits}h/{stream.plan_misses}m",
    )
    _LINES.append(
        f"{name:<10} stream: {stream.micro_per_second:9.3e} uops/s "
        f"(headroom {stream.headroom:5.2f}x)   "
        f"per-macro: {macro.micro_per_second:9.3e} uops/s "
        f"(headroom {macro.headroom:5.2f}x)"
    )
    _BREAKDOWN.append(
        f"{name:<10} {stream.ops_per_macro:7.0f} uops/macro | "
        f"emit {stream.emit_seconds_per_macro * 1e6:7.3f} us/macro (stream) "
        f"{macro.emit_seconds_per_macro * 1e6:7.2f} us/macro (per-macro)  "
        f"build {build * 1e6:9.2f} us/macro (cold, cached away)  "
        f"chip {stream.chip_seconds_per_macro * 1e6:7.2f} us/macro | "
        f"plans {breakdown.plan_counters} | limit: {breakdown.bottleneck}"
    )
    assert stream.micro_per_second > 1e6
    # The steady loop replays warm plans only: compilation must not be
    # hiding inside the emission figure.
    assert stream.plan_misses == 0
    # The CI headroom gate (ROADMAP item 1): with whole-stream emission
    # *every* op type — including int add and int <, which per-macro
    # dispatch caps at ~0.1x — outpaces the 300MHz chip.
    assert stream.headroom >= 1.0, (
        f"{name}: stream emission sustains only "
        f"{stream.micro_per_second:.3g} uops/s "
        f"({stream.headroom:.2f}x vs the {stream.frequency_hz:.3g}Hz chip)"
    )


def test_cache_ablation(benchmark, cfg):
    """Cache on vs off: the compiled-sequence cache is what makes a
    software driver viable (the paper's no-hardware-controller argument)."""

    def run():
        warm = measure_driver_throughput(
            cfg, ROp.MUL, float32, iterations=2000, unique_sequences=8
        )
        cold = measure_driver_throughput(
            cfg, ROp.MUL, float32, iterations=48, unique_sequences=48,
            use_cache=False,
        )
        return warm, cold

    warm, cold = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = warm.micro_per_second / cold.micro_per_second
    _LINES.append(
        f"cache ablation (fp mult): warm {warm.micro_per_second:9.3e} vs "
        f"cold {cold.micro_per_second:9.3e} uops/s -> {speedup:.1f}x"
    )
    benchmark.extra_info["cache_speedup"] = f"{speedup:.1f}x"
    assert speedup > 5


def teardown_module(module):
    if not _LINES:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    sections = [
        "Host-driver throughput (buffer-sink methodology)",
        "",
        f"stream = whole-stream emission plans ({STREAM_LEN} macros/stream,"
        " Driver.execute_stream);",
        "per-macro = legacy single-macro dispatch (Driver.execute).",
        "",
    ] + _LINES
    if _BREAKDOWN:
        sections += [
            "",
            "Per-op-type emission breakdown (headroom attribution):",
            "",
        ] + _BREAKDOWN + [
            "",
            "Whole-stream emission removes the fixed per-macro dispatch",
            "that capped the short-bodied cases (int add, int <) below 1x:",
            "a warm stream replays one cached fused plan per"
            f" {STREAM_LEN} macros",
            "(all plan-cache hits in the steady state), so every op type",
            "now clears 1x headroom — enforced in CI. Gate building stays",
            "fully amortized by the compiled-sequence cache; per-macro",
            "fallback numbers are retained for the dispatch-bound ladder.",
        ]
    text = "\n".join(sections)
    print("\n" + text)
    with open(os.path.join(RESULTS_DIR, "driver_throughput.txt"), "w") as handle:
        handle.write(text + "\n")
