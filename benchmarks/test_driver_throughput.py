"""Figure 13 (third series) + driver cache ablation + emission breakdown.

Measures the host driver's micro-op generation rate into a memory buffer
(the artifact appendix's methodology: micro-operations rerouted from the
simulator to ``OPS[...]``), for every representative macro-instruction,
with the compiled-sequence cache on and off.

The per-op-type breakdown attributes each case's headroom: *gate
building* (cold lowering cost, paid once per distinct instruction and
then cached) versus steady-state *emission* (the per-macro cost of
shipping the cached pre-encoded stream), against the chip's own
consumption time for that macro's micro-ops. Short-bodied instructions
(int add at ~tens of micro-ops/macro, int ``<`` likewise) give the chip
well under a microsecond of work per macro, so their sub-1x headroom is
the fixed per-macro emission dispatch — not gate building, which the
cache already amortizes to zero.
"""

import os

import pytest

from repro.arch.config import PIMConfig
from repro.driver.throughput import (
    EmissionBreakdown,
    measure_driver_throughput,
    measure_gate_build_cost,
)
from repro.isa.dtypes import float32, int32
from repro.isa.instructions import ROp

from benchmarks.conftest import BENCH_CONFIG, RESULTS_DIR

CASES = [
    ("int add", ROp.ADD, int32),
    ("int mult", ROp.MUL, int32),
    ("int div", ROp.DIV, int32),
    ("int <", ROp.LT, int32),
    ("fp add", ROp.ADD, float32),
    ("fp mult", ROp.MUL, float32),
    ("fp div", ROp.DIV, float32),
]

_LINES = []
_BREAKDOWN = []


@pytest.fixture(scope="module")
def cfg():
    return PIMConfig(**BENCH_CONFIG)


@pytest.mark.parametrize("name,op,dtype", CASES, ids=[c[0] for c in CASES])
def test_driver_throughput(benchmark, cfg, name, op, dtype):
    iterations = 20_000 if op in (ROp.ADD, ROp.LT) and dtype is int32 else 5_000

    def run():
        return measure_driver_throughput(
            cfg, op, dtype, iterations=iterations, unique_sequences=16
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    build = measure_gate_build_cost(cfg, op, dtype, samples=12)
    breakdown = EmissionBreakdown(result, build)
    benchmark.extra_info.update(
        micro_per_second=f"{result.micro_per_second:.3e}",
        headroom=f"{result.headroom:.2f}",
        ops_per_macro=f"{result.ops_per_macro:.0f}",
    )
    _LINES.append(
        f"{name:<10} cached: {result.micro_per_second:9.3e} uops/s "
        f"(headroom {result.headroom:5.2f}x vs 300MHz chip)"
    )
    _BREAKDOWN.append(
        f"{name:<10} {result.ops_per_macro:7.0f} uops/macro | "
        f"emit {result.emit_seconds_per_macro * 1e6:7.2f} us/macro  "
        f"build {build * 1e6:9.2f} us/macro (cold, cached away)  "
        f"chip {result.chip_seconds_per_macro * 1e6:7.2f} us/macro | "
        f"limit: {breakdown.bottleneck}"
    )
    assert result.micro_per_second > 1e6


def test_cache_ablation(benchmark, cfg):
    """Cache on vs off: the compiled-sequence cache is what makes a
    software driver viable (the paper's no-hardware-controller argument)."""

    def run():
        warm = measure_driver_throughput(
            cfg, ROp.MUL, float32, iterations=2000, unique_sequences=8
        )
        cold = measure_driver_throughput(
            cfg, ROp.MUL, float32, iterations=48, unique_sequences=48,
            use_cache=False,
        )
        return warm, cold

    warm, cold = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = warm.micro_per_second / cold.micro_per_second
    _LINES.append(
        f"cache ablation (fp mult): warm {warm.micro_per_second:9.3e} vs "
        f"cold {cold.micro_per_second:9.3e} uops/s -> {speedup:.1f}x"
    )
    benchmark.extra_info["cache_speedup"] = f"{speedup:.1f}x"
    assert speedup > 5


def teardown_module(module):
    if not _LINES:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    sections = ["Host-driver throughput (buffer-sink methodology)", ""] + _LINES
    if _BREAKDOWN:
        sections += [
            "",
            "Per-op-type emission breakdown (headroom attribution):",
            "",
        ] + _BREAKDOWN + [
            "",
            "Sub-1x headroom cases (int add, int <) are capped by the fixed",
            "per-macro emission dispatch: their bodies are so short that the",
            "chip consumes them in well under the host's per-macro overhead.",
            "Gate building is fully amortized by the compiled-sequence cache.",
        ]
    text = "\n".join(sections)
    print("\n" + text)
    with open(os.path.join(RESULTS_DIR, "driver_throughput.txt"), "w") as handle:
        handle.write(text + "\n")
