"""Shared benchmark infrastructure for the Figure 13 reproduction.

Each benchmark measures PIM cycles (micro-operations) for one workload on
the simulator and derives three series, exactly as the paper's Figure 13:

- **PyPIM**: Eq. (1) throughput of the measured end-to-end cycle count at
  Table III scale (64M-row parallelism, 300 MHz);
- **Theoretical PIM**: the same with framework overhead excluded (the
  productive NOR/NOT/move cycles only, see ``repro.theory``);
- **Host driver**: the throughput the chip could sustain if bounded only
  by the host's micro-op generation rate.

Rows are accumulated and written to ``results/`` at session end.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List

import pytest

import repro.pim as pim
from repro.arch.config import PIMConfig
from repro.sim.stats import throughput as eq1
from repro.theory.counts import theoretical_cycles

#: Table III: 8 GB = 64k crossbars x 1024 rows -> 64M-row parallelism.
PAPER_PARALLELISM = 64 * 2**20
PAPER_FREQUENCY = 300e6

#: The simulated memory used for benchmarking: 64 crossbars x 1024 rows
#: (64k elements per register). Cycle counts per macro-instruction are
#: independent of the crossbar count, so Eq. (1) scales them to paper size.
BENCH_CONFIG = dict(crossbars=64, rows=1024)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@dataclass
class Fig13Row:
    benchmark: str
    cycles: int
    theoretical: int
    pypim_tput: float
    theory_tput: float
    driver_tput: float

    def format(self) -> str:
        gap = (self.cycles - self.theoretical) / max(self.theoretical, 1)
        ratio = self.driver_tput / max(self.pypim_tput, 1e-12)
        return (
            f"{self.benchmark:<16} cycles={self.cycles:>9} "
            f"theory={self.theoretical:>9} gap={gap:7.1%} "
            f"PyPIM={self.pypim_tput:9.3e} theoryPIM={self.theory_tput:9.3e} "
            f"driver={self.driver_tput:9.3e} (driver/PyPIM={ratio:5.2f}x)"
        )


_ROWS: List[Fig13Row] = []


def record_fig13(name: str, stats, ops: int, driver_micro_per_sec: float) -> Fig13Row:
    """Derive and register one Figure 13 row from a measured stats delta."""
    cycles = stats.cycles
    theory = theoretical_cycles(stats)
    row = Fig13Row(
        benchmark=name,
        cycles=cycles,
        theoretical=theory,
        pypim_tput=eq1(ops, cycles, PAPER_FREQUENCY),
        theory_tput=eq1(ops, max(theory, 1), PAPER_FREQUENCY),
        driver_tput=ops * driver_micro_per_sec / max(cycles, 1),
    )
    _ROWS.append(row)
    return row


@pytest.fixture(scope="session")
def bench_device():
    device = pim.init(**BENCH_CONFIG)
    yield device
    pim.reset()


def pytest_sessionfinish(session, exitstatus):
    if not _ROWS:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    lines = ["Figure 13 reproduction (paper-scale throughput via Eq. 1)", ""]
    lines += [row.format() for row in _ROWS]
    text = "\n".join(lines)
    print("\n" + text)
    with open(os.path.join(RESULTS_DIR, "fig13.txt"), "w") as handle:
        handle.write(text + "\n")
