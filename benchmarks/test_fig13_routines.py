"""Figure 13 (bottom): routine throughput — CORDIC Sine, FP Sum Reduce,
FP Mult Reduce, FP Sort 1k, FP Sort 64k.

Routine cycle counts depend on the element count, so each workload runs at
its paper-relevant size on the 64k-row simulated memory; Eq. (1) then
scales to the 64M-row parallelism of Table III (the memory runs
``64M / n`` independent instances of an ``n``-element routine
concurrently, so the completed element-operations per latency are 64M).
"""

import numpy as np
import pytest

import repro.pim as pim
from repro.driver.throughput import measure_driver_throughput
from repro.isa.dtypes import float32 as isa_f32
from repro.isa.instructions import ROp

from benchmarks.conftest import PAPER_PARALLELISM, record_fig13


def _angles(rng, n):
    return rng.uniform(-np.pi / 2, np.pi / 2, n).astype(np.float32)


def _floats(rng, n, lo=0.9, hi=1.1):
    return rng.uniform(lo, hi, n).astype(np.float32)


def _driver_rate(device):
    return measure_driver_throughput(
        device.config, ROp.ADD, isa_f32, iterations=1000, unique_sequences=16
    ).micro_per_second


def test_cordic_sine(benchmark, bench_device):
    rng = np.random.default_rng(1)
    n = bench_device.config.total_rows
    z = pim.from_numpy(_angles(rng, n))

    def run():
        with pim.Profiler() as prof:
            pim.cordic_sin(z)
        return prof

    prof = benchmark.pedantic(run, rounds=1, iterations=1)
    row = record_fig13(
        "CORDIC Sine", prof.stats, PAPER_PARALLELISM, _driver_rate(bench_device)
    )
    benchmark.extra_info["cycles"] = row.cycles


@pytest.mark.parametrize("op,name", [(ROp.ADD, "FP Sum Reduce"), (ROp.MUL, "FP Mult Reduce")])
def test_fp_reduce(benchmark, bench_device, op, name):
    rng = np.random.default_rng(2)
    n = bench_device.config.total_rows
    x = pim.from_numpy(_floats(rng, n))

    def run():
        with pim.Profiler() as prof:
            pim.reduce(x, op)
        return prof

    prof = benchmark.pedantic(run, rounds=1, iterations=1)
    row = record_fig13(name, prof.stats, PAPER_PARALLELISM, _driver_rate(bench_device))
    benchmark.extra_info["cycles"] = row.cycles
    # Reduction throughput sits orders below element-wise FP Add (moves
    # serialize rows), the paper's bottom-panel shape.
    assert row.pypim_tput < 1e13


@pytest.mark.parametrize("n,name", [(1024, "FP Sort 1k"), (65536, "FP Sort 64k")])
def test_fp_sort(benchmark, bench_device, n, name):
    rng = np.random.default_rng(3)
    data = rng.normal(size=n).astype(np.float32)
    x = pim.from_numpy(data)

    def run():
        with pim.Profiler() as prof:
            result = x.sort()
        np.testing.assert_array_equal(result.to_numpy(), np.sort(data))
        return prof

    prof = benchmark.pedantic(run, rounds=1, iterations=1)
    row = record_fig13(name, prof.stats, PAPER_PARALLELISM, _driver_rate(bench_device))
    benchmark.extra_info["cycles"] = row.cycles
