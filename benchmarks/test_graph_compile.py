"""Graph capture/replay benchmark: ``pim.compile`` on the Figure-12 workload.

Three claims are enforced (the PR's acceptance criteria):

1. **Bit-accurate identity** — on the simulator backend, a compiled
   function's capture call *and* every cached replay produce exactly the
   eager call's memory image, per-kind op counts, and PIM cycle total.
2. **Cross-backend equivalence** — the NumPy functional backend returns
   the same values and reports the same PIM cycles as the bit-accurate
   backend, eager and compiled alike.
3. **Replay speed** — cached graph replay beats eager dispatch by >= 3x
   wall-clock on the functional backend, where host dispatch cost (the
   thing ``pim.compile`` removes) is the bottleneck; the bit-accurate
   backend's speedup is reported alongside (its wall-clock is dominated
   by micro-op execution, which replay cannot skip).

Results are written to ``results/graph_compile.txt``.
"""

from __future__ import annotations

import os
import time
from typing import List

import numpy as np
import pytest

import repro.pim as pim

from benchmarks.conftest import RESULTS_DIR

_LINES: List[str] = []


def my_func(a, b):
    """Figure 12's myFunc plus the strided reduction."""
    z = a * b + a
    return z[::2].sum()


def _fresh(backend: str, crossbars: int = 4, rows: int = 16, n: int = 64):
    device = pim.init(crossbars=crossbars, rows=rows, backend=backend)
    x = pim.zeros(n, dtype=pim.float32)
    y = pim.zeros(n, dtype=pim.float32)
    x[4], y[4] = 8.0, 0.5
    x[5], y[5] = 20.0, 1.0
    x[8], y[8] = 10.0, 1.0
    return device, x, y


@pytest.fixture(autouse=True)
def _reset():
    yield
    pim.reset()


def test_compiled_graph_is_bit_identical_to_eager():
    """Capture and every replay: same memory, same counters as eager."""
    device, x, y = _fresh("simulator")
    expected = my_func(x, y)
    before = device.stats_snapshot()
    assert my_func(x, y) == expected
    eager_delta = device.backend.stats.diff(before)
    eager_words = device.backend.words.copy()
    pim.reset()

    device, x, y = _fresh("simulator")
    func = pim.compile(my_func)
    before = device.stats_snapshot()
    assert func(x, y) == expected  # capture call
    capture_delta = device.backend.stats.diff(before)
    for _ in range(3):  # cached replays
        before = device.stats_snapshot()
        assert func(x, y) == expected
        replay_delta = device.backend.stats.diff(before)
        assert replay_delta.cycles == eager_delta.cycles
        assert replay_delta.op_counts == eager_delta.op_counts
        assert replay_delta.gates_executed == eager_delta.gates_executed
    assert capture_delta.cycles == eager_delta.cycles
    assert np.array_equal(device.backend.words, eager_words)
    assert func.captures == 1
    _LINES.append(
        f"bit-accurate identity: {eager_delta.cycles} cycles/call, capture + "
        f"3 replays all equal to eager (memory image bit-identical)"
    )


def test_numpy_backend_matches_bit_accurate_cycles_and_results():
    """The functional backend: same values, same reported cycles."""
    device, x, y = _fresh("simulator")
    before = device.stats_snapshot()
    expected = my_func(x, y)
    sim_delta = device.backend.stats.diff(before)
    pim.reset()

    device, x, y = _fresh("numpy")
    before = device.stats_snapshot()
    eager = my_func(x, y)
    np_delta = device.backend.stats.diff(before)
    assert eager == expected
    assert np_delta.cycles == sim_delta.cycles
    assert np_delta.op_counts == sim_delta.op_counts

    func = pim.compile(my_func)
    assert func(x, y) == expected  # capture
    before = device.stats_snapshot()
    assert func(x, y) == expected  # replay
    replay_delta = device.backend.stats.diff(before)
    assert replay_delta.cycles == sim_delta.cycles
    _LINES.append(
        f"cross-backend: numpy eager/replay == bit-accurate "
        f"({sim_delta.cycles} cycles, result {expected})"
    )


def _time_modes(backend: str, crossbars: int, rows: int, n: int, reps: int):
    """(eager s/call, replay s/call, speedup) on a fresh device pair."""
    device, x, y = _fresh(backend, crossbars, rows, n)
    my_func(x, y)  # warm caches outside the timed region
    start = time.perf_counter()
    for _ in range(reps):
        my_func(x, y)
    eager = (time.perf_counter() - start) / reps

    func = pim.compile(my_func)
    func(x, y)  # capture
    func(x, y)  # first replay builds the backend's replay plan
    start = time.perf_counter()
    for _ in range(reps):
        func(x, y)
    replay = (time.perf_counter() - start) / reps
    return eager, replay


def test_graph_replay_acceptance_speedup():
    """The headline claim: cached replay >= 3x over eager dispatch.

    Measured on the functional backend, where eager wall-clock is the
    host dispatch cost the compiled path removes (on the bit-accurate
    backend both modes are bound by micro-op execution; see the survey
    row). Best-of-2 rounds for noise robustness.
    """
    best = 0.0
    for _ in range(2):
        eager, replay = _time_modes("numpy", 16, 256, 4096, reps=5)
        best = max(best, eager / replay)
        pim.reset()
    _LINES.append(
        f"acceptance (numpy, 16x256, n=4096): eager {eager * 1e3:7.2f} ms  "
        f"replay {replay * 1e3:7.2f} ms  speedup {eager / replay:5.2f}x "
        f"(best-of-2 {best:5.2f}x, floor 3x)"
    )
    assert best >= 3.0, f"graph replay speedup {best:.2f}x < 3x"


def test_graph_replay_survey():
    """Non-gating survey rows across backends and geometries."""
    for backend, crossbars, rows, n, reps in [
        ("numpy", 4, 16, 64, 10),
        ("simulator", 4, 16, 64, 3),
    ]:
        eager, replay = _time_modes(backend, crossbars, rows, n, reps)
        _LINES.append(
            f"survey {backend:<9} {crossbars:>3}x{rows:<5} n={n:<6} "
            f"eager {eager * 1e3:8.2f} ms  replay {replay * 1e3:8.2f} ms  "
            f"speedup {eager / replay:5.2f}x"
        )
        pim.reset()


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if not _LINES:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(
        ["Graph capture/replay (pim.compile) on the Figure-12 workload", ""]
        + _LINES
    )
    with open(os.path.join(RESULTS_DIR, "graph_compile.txt"), "w") as handle:
        handle.write(text + "\n")
