"""Serving-layer benchmark: pool throughput and persistent warm-start.

Two acceptance claims of the pool + serving subsystem, both enforced:

1. **Pool throughput**: a 4-worker device pool sustains >= 2x the
   requests/sec of a single device on a many-client compiled workload.
   Throughput is measured on the *simulated* device clock (cycles /
   frequency under the scheduler's busy-until model), so the claim is
   deterministic — host GIL scheduling never enters the measurement.

2. **Warm start**: compiling against a pre-populated persistent cache
   directory (``cache_dir=``) skips >= 90% of gate-build time. Measured
   as pure ``Driver.compile`` wall-clock on the heaviest lowerings
   (float32 multiply chains), where a cold compile records gates through
   ``GateBuilder`` and a warm compile deserializes the stored program.

Results go to ``results/serving.txt`` (human-readable) and
``results/BENCH_serving.json`` (machine-readable: requests/sec, p50/p99
latency, warm-start skip fraction).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

import pytest

import numpy as np

from repro.arch.config import PIMConfig, small_config
from repro.driver.driver import Driver
from repro.isa.dtypes import float32
from repro.isa.instructions import RInstr, ROp
from repro.serve import CompiledWorkload, serve_workload
from repro.sim.simulator import Simulator

from benchmarks.conftest import RESULTS_DIR

SERVE_CONFIG = PIMConfig(crossbars=4, rows=64)
REQUESTS = 48

_LINES: List[str] = []
_JSON: Dict[str, object] = {}


def _model(a, b):
    return a * b + a


def _payloads(count, length, seed=11):
    rng = np.random.default_rng(seed)
    return [
        (rng.integers(-1000, 1000, length).astype(np.int32),
         rng.integers(-1000, 1000, length).astype(np.int32))
        for _ in range(count)
    ]


def test_pool_throughput_acceptance():
    """>= 2x requests/sec on 4 workers vs a single device (sim time)."""
    payloads = _payloads(REQUESTS, SERVE_CONFIG.total_rows)
    golden = [np.int32(a.astype(np.int64) * b + a) for a, b in payloads]

    metrics = {}
    for workers in (1, 4):
        results, m = serve_workload(
            CompiledWorkload(_model), payloads,
            workers=workers, config=SERVE_CONFIG, backend="numpy",
        )
        for result, expected in zip(results, golden):
            np.testing.assert_array_equal(result, expected)
        metrics[workers] = m

    one, four = metrics[1], metrics[4]
    speedup = four.requests_per_sec / one.requests_per_sec
    _LINES.append(
        f"throughput  1 worker : {one.requests_per_sec:12,.0f} req/s "
        f"(p50 {one.p50_latency_s * 1e6:7.1f} us, "
        f"p99 {one.p99_latency_s * 1e6:7.1f} us)"
    )
    _LINES.append(
        f"throughput  4 workers: {four.requests_per_sec:12,.0f} req/s "
        f"(p50 {four.p50_latency_s * 1e6:7.1f} us, "
        f"p99 {four.p99_latency_s * 1e6:7.1f} us)"
    )
    _LINES.append(f"pool speedup: {speedup:.2f}x ({REQUESTS} requests)")
    _JSON.update(
        requests=REQUESTS,
        requests_per_sec_1w=one.requests_per_sec,
        requests_per_sec_4w=four.requests_per_sec,
        pool_speedup=speedup,
        p50_latency_s=four.p50_latency_s,
        p99_latency_s=four.p99_latency_s,
        batches_4w=four.batches,
    )
    assert speedup >= 2.0, f"pool speedup {speedup:.2f}x below 2x floor"


def _gate_build_streams():
    """Three distinct fp-multiply chains: the heaviest gate lowerings."""
    streams = []
    for dest in (2, 4, 6):
        streams.append([
            RInstr(ROp.MUL, float32, dest=dest, src_a=0, src_b=1),
            RInstr(ROp.ADD, float32, dest=dest + 1, src_a=dest, src_b=1),
        ])
    return streams


def _compile_session(cache_dir):
    """One fresh session: compile every stream, return (seconds, programs)."""
    config = small_config(crossbars=1, rows=16)
    driver = Driver(Simulator(config), cache_dir=str(cache_dir))
    elapsed = 0.0
    programs = []
    for index, stream in enumerate(_gate_build_streams()):
        start = time.perf_counter()
        programs.append(driver.compile(stream, name=f"serve-warm-{index}"))
        elapsed += time.perf_counter() - start
    return elapsed, programs, driver


def test_warm_start_skips_gate_build(tmp_path):
    """A warm cache_dir must skip >= 90% of gate-build wall-clock."""
    # Warm up the restore code path (first-call import and bytecode
    # costs are per-process, not per-session) before any timing.
    from repro.arch.micro_ops import decode_many, encode
    from repro.arch.micro_ops import ReadOp

    decode_many([encode(ReadOp(0))] * 4)

    cold_s, cold_programs, cold_driver = _compile_session(tmp_path)
    assert cold_driver.persist.counters()["stores"] > 0

    # Best-of-2 warm sessions: scheduler noise can only *inflate* a warm
    # measurement (the assert's failure direction), so take the minimum;
    # cold noise only widens the reported skip and needs no repeats.
    warm_s, warm_programs, warm_driver = _compile_session(tmp_path)
    warm_s = min(warm_s, _compile_session(tmp_path)[0])
    counters = warm_driver.persist.counters()
    assert counters["loads"] == len(warm_programs), (
        "every warm compile must come from disk, not a re-build"
    )
    for cold_program, warm_program in zip(cold_programs, warm_programs):
        assert warm_program.ops == cold_program.ops

    skipped = 1.0 - warm_s / cold_s
    _LINES.append(
        f"warm start: cold={cold_s:6.3f}s warm={warm_s:6.3f}s "
        f"gate-build time skipped={skipped * 100:5.1f}%"
    )
    _JSON.update(
        cold_compile_s=cold_s,
        warm_compile_s=warm_s,
        warm_skip_fraction=skipped,
    )
    assert skipped >= 0.90, (
        f"warm start skipped only {skipped * 100:.1f}% of gate-build time"
    )





def test_chaos_serving_resilience():
    """Chaos leg: injected faults + stalls, p99 bounded, zero lost.

    A rotating-seed :class:`~repro.faults.plan.FaultPlan` fails ~1/7 of
    requests on their first attempt and stalls ~1/11 of them, under a
    per-request deadline with retries. The gates: every request resolves
    (a result or ``DeadlineExceeded`` — never a hang, never a lost
    future), every delivered result is bit-exact, and p99 latency stays
    bounded by the deadline (timeouts are accounted *at* the budget, so
    the deadline is a hard ceiling on the latency distribution).
    Reproduce a CI failure locally with ``REPRO_FAULT_SEED=<seed>``.
    """
    from repro.faults import FaultPlan, resolve_fault_seed
    from repro.serve import DeadlineExceeded

    seed = resolve_fault_seed(17)
    deadline = 0.05
    payloads = _payloads(REQUESTS, SERVE_CONFIG.total_rows,
                         seed=seed % 9973 + 1)
    golden = [np.int32(a.astype(np.int64) * b + a) for a, b in payloads]
    arrivals = [index * 2e-6 for index in range(REQUESTS)]
    plan = FaultPlan(
        SERVE_CONFIG, seed=seed,
        fail_every=7, serve_fail_attempts=1,   # ~1/7 fail once, then heal
        stall_every=11, stall_s=5e-5,          # ~1/11 are slow requests
    )
    results, metrics = serve_workload(
        CompiledWorkload(_model), payloads, arrivals=arrivals,
        deadline=deadline, retries=3, return_exceptions=True,
        workers=4, config=SERVE_CONFIG, backend="numpy", fault_plan=plan,
    )

    try:
        assert len(results) == REQUESTS
        delivered = timed_out = 0
        for result, expected in zip(results, golden):
            if isinstance(result, BaseException):
                assert isinstance(result, DeadlineExceeded), (
                    f"unexpected failure under chaos: {result!r}"
                )
                timed_out += 1
            else:
                np.testing.assert_array_equal(result, expected)
                delivered += 1
        assert delivered + timed_out == REQUESTS, "zero requests lost"
        assert delivered > 0, "chaos must not starve the whole run"
        assert metrics.retries >= 1, "the plan must actually inject faults"
        assert metrics.timeouts == timed_out
        assert metrics.p99_latency_s <= deadline * (1 + 1e-9), (
            f"p99 {metrics.p99_latency_s:.6f}s beyond the {deadline}s budget"
        )
    except BaseException:
        # Dump the chaos context so CI uploads it and the failure
        # replays locally with REPRO_FAULT_SEED=<seed>.
        artifact_dir = os.environ.get("REPRO_FUZZ_ARTIFACT_DIR",
                                      "fuzz_artifacts")
        os.makedirs(artifact_dir, exist_ok=True)
        with open(os.path.join(artifact_dir, "chaos_serving.json"),
                  "w") as handle:
            json.dump({
                "seed": seed,
                "requests": REQUESTS,
                "deadline_s": deadline,
                "metrics": metrics.as_dict(),
                "failures": [repr(r) for r in results
                             if isinstance(r, BaseException)],
            }, handle, indent=2)
        raise

    _LINES.append(
        f"chaos (seed {seed}): {delivered} delivered, {timed_out} timed "
        f"out, {metrics.retries} retries, {metrics.failovers} failovers, "
        f"p99 {metrics.p99_latency_s * 1e3:6.2f} ms <= {deadline * 1e3:.0f} ms"
    )
    _JSON.update(
        chaos_seed=seed,
        chaos_delivered=delivered,
        chaos_timeouts=timed_out,
        chaos_retries=metrics.retries,
        chaos_failovers=metrics.failovers,
        chaos_p99_latency_s=metrics.p99_latency_s,
    )


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if not _LINES:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    lines = ["Serving layer: pool throughput and persistent warm-start", ""]
    lines += _LINES
    with open(os.path.join(RESULTS_DIR, "serving.txt"), "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with open(os.path.join(RESULTS_DIR, "BENCH_serving.json"), "w") as handle:
        json.dump(_JSON, handle, indent=2, sort_keys=True)
        handle.write("\n")
