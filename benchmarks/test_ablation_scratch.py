"""Ablation: driver scratch-register budget vs. initialization overhead.

The gate builder amortizes stateful-logic INIT1 cycles by bulk-cleaning
scratch columns. With fewer scratch registers the pool fragments and more
single-cell (or short-run) initializations are emitted — this sweep
quantifies the cycle cost of shrinking the driver's scratch reservation,
one of the design choices DESIGN.md calls out.
"""

import os

import pytest

from repro.arch.config import PIMConfig
from repro.driver.driver import Driver
from repro.isa.dtypes import float32
from repro.isa.instructions import RInstr, ROp
from repro.sim.simulator import Simulator

from benchmarks.conftest import RESULTS_DIR

_LINES = []


def _fadd_cycles(scratch_registers: int) -> int:
    config = PIMConfig(crossbars=1, rows=1, scratch_registers=scratch_registers)
    sim = Simulator(config)
    driver = Driver(sim, parallelism="serial")
    driver.execute(RInstr(ROp.ADD, float32, dest=2, src_a=0, src_b=1))
    return sim.stats.cycles - 2


@pytest.mark.parametrize("scratch", [10, 12, 16, 24])
def test_scratch_sweep(benchmark, scratch):
    def run():
        return _fadd_cycles(scratch)

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    _LINES.append(f"scratch={scratch:2} registers: fp add = {cycles:6} cycles")
    benchmark.extra_info["cycles"] = cycles
    assert cycles > 0


def test_more_scratch_never_hurts(benchmark):
    def run():
        return _fadd_cycles(10), _fadd_cycles(24)

    lean, rich = benchmark.pedantic(run, rounds=1, iterations=1)
    _LINES.append(f"10 -> 24 registers saves {lean - rich} cycles per fp add")
    assert rich <= lean


def teardown_module(module):
    if not _LINES:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(
        ["Scratch-register ablation (init amortization, bit-serial fp add)", ""]
        + _LINES
    )
    print("\n" + text)
    with open(os.path.join(RESULTS_DIR, "ablation_scratch.txt"), "w") as handle:
        handle.write(text + "\n")
