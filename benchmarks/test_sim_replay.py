"""Vectorized simulator replay benchmark: the Figure-12 survey workload.

The PR-4 acceptance criteria, enforced here:

1. **Engine identity** — at every ``opt_level`` the vectorized
   super-step engine and the per-op thunk engine produce bit-identical
   memory images and identical :class:`~repro.sim.stats.SimStats`; at
   ``opt_level=0`` both additionally reproduce the eager memory image
   and cycle totals exactly (replay *is* the eager stream).
2. **Replay speed** — on the bit-accurate simulator backend, cached
   vectorized replay beats eager dispatch by >= 5x wall-clock (the
   seed-state figure was 1.18x: replay could skip lowering but still
   paid one Python thunk per micro-op).

Results are written to ``results/sim_replay.txt`` (eager vs thunk-replay
vs vectorized-replay survey, mirroring ``results/graph_compile.txt``).
"""

from __future__ import annotations

import os
import time
from typing import List

import numpy as np
import pytest

import repro.pim as pim

from benchmarks.conftest import RESULTS_DIR

_LINES: List[str] = []


def my_func(a, b):
    """Figure 12's myFunc plus the strided reduction."""
    z = a * b + a
    return z[::2].sum()


def _fresh(engine: str, crossbars: int = 4, rows: int = 16, n: int = 64):
    device = pim.init(
        crossbars=crossbars, rows=rows, backend="simulator",
        replay_engine=engine,
    )
    x = pim.zeros(n, dtype=pim.float32)
    y = pim.zeros(n, dtype=pim.float32)
    x[4], y[4] = 8.0, 0.5
    x[5], y[5] = 20.0, 1.0
    x[8], y[8] = 10.0, 1.0
    return device, x, y


@pytest.fixture(autouse=True)
def _reset():
    yield
    pim.reset()


@pytest.mark.parametrize("opt_level", [0, 1, 2, 3])
def test_engines_are_bit_identical(opt_level):
    """Vectorized vs thunk: same memory image, same stats, every level."""
    images = {}
    stats = {}
    for engine in ("vectorized", "thunk"):
        device, x, y = _fresh(engine)
        eager_before = device.stats_snapshot()
        expected = my_func(x, y)
        eager_delta = device.backend.stats.diff(eager_before)
        eager_words = device.backend.words.copy()
        pim.reset()

        device, x, y = _fresh(engine)
        func = pim.compile(my_func, opt_level=opt_level)
        assert func(x, y) == expected  # capture
        before = device.stats_snapshot()
        assert func(x, y) == expected  # replay (builds the plan)
        assert func(x, y) == expected  # steady-state replay
        counters = device.backend.replay_counters()
        assert counters[engine] >= 1, counters
        images[engine] = device.backend.words.copy()
        stats[engine] = device.backend.stats.diff(before)
        if opt_level == 0:
            assert np.array_equal(images[engine], eager_words), engine
            assert stats[engine].cycles == 2 * eager_delta.cycles, engine
        pim.reset()
    assert np.array_equal(images["vectorized"], images["thunk"])
    assert stats["vectorized"] == stats["thunk"]
    _LINES.append(
        f"identity O{opt_level}: vectorized == thunk (memory + stats), "
        f"level-0 replay == eager"
    )


def _time_modes(engine: str, crossbars: int, rows: int, n: int, reps: int):
    """(eager s/call, replay s/call) for one engine on a fresh device."""
    device, x, y = _fresh(engine, crossbars, rows, n)
    my_func(x, y)  # warm driver caches outside the timed region
    start = time.perf_counter()
    for _ in range(reps):
        my_func(x, y)
    eager = (time.perf_counter() - start) / reps

    func = pim.compile(my_func)
    func(x, y)  # capture
    func(x, y)  # first replay builds the engine's replay plan
    start = time.perf_counter()
    for _ in range(reps):
        func(x, y)
    replay = (time.perf_counter() - start) / reps
    pim.reset()
    return eager, replay


def test_vectorized_replay_floor():
    """The headline claim: vectorized replay >= 5x over eager dispatch
    on the bit-accurate backend (was 1.18x with per-op thunks)."""
    best = 0.0
    for _ in range(2):
        eager, replay = _time_modes("vectorized", 4, 16, 64, reps=2)
        best = max(best, eager / replay)
    _LINES.append(
        f"acceptance (simulator, 4x16, n=64): eager {eager * 1e3:8.2f} ms  "
        f"vectorized replay {replay * 1e3:7.2f} ms  speedup "
        f"{eager / replay:5.2f}x (best-of-2 {best:5.2f}x, floor 5x)"
    )
    assert best >= 5.0, f"vectorized replay speedup {best:.2f}x < 5x"


def test_replay_survey():
    """Non-gating survey: eager vs thunk vs vectorized wall-clock."""
    for crossbars, rows, n, reps in [(4, 16, 64, 2), (8, 32, 256, 1)]:
        eager, thunk = _time_modes("thunk", crossbars, rows, n, reps)
        _, vectorized = _time_modes("vectorized", crossbars, rows, n, reps)
        _LINES.append(
            f"survey {crossbars:>3}x{rows:<5} n={n:<6} "
            f"eager {eager * 1e3:9.2f} ms  thunk {thunk * 1e3:9.2f} ms "
            f"({eager / thunk:5.2f}x)  vectorized {vectorized * 1e3:8.2f} ms "
            f"({eager / vectorized:5.2f}x)"
        )


def test_replay_info_reports_segmentation():
    """The compiled function exposes the engine + super-step counts."""
    device, x, y = _fresh("vectorized")
    func = pim.compile(my_func)
    func(x, y)
    info = func.replay_info(x, y)
    assert info["engine"] == "vectorized"
    assert info["self_masked"] is True
    assert info["gate_ops"] > 0.9 * info["ops"]
    _LINES.append(
        f"segmentation: {info['ops']} ops -> {info['gate_runs']} gate runs "
        f"({info['gate_ops']} fused ops, {info['fallback_ops']} per-op "
        f"fallbacks)"
    )


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if not _LINES:
        return
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(
        ["Vectorized simulator replay (super-step engine) on the "
         "Figure-12 workload", ""]
        + _LINES
    )
    with open(os.path.join(RESULTS_DIR, "sim_replay.txt"), "w") as handle:
        handle.write(text + "\n")
