"""Regenerate the paper's design/parameter tables (Tables I-III).

Not timing benchmarks in themselves — each test renders one table from
the implementation (so the artifacts stay in sync with the code) and
writes it to ``results/``.
"""

import os

import pytest

from repro.arch.config import PIMConfig, paper_config
from repro.arch.halfgates import opcode_table
from repro.isa.dtypes import float32, int32
from repro.isa.instructions import SUPPORT_MATRIX, ROp

from benchmarks.conftest import BENCH_CONFIG, RESULTS_DIR


def _write(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    print("\n" + text)
    with open(os.path.join(RESULTS_DIR, name), "w") as handle:
        handle.write(text + "\n")


def test_table_i_opcodes(benchmark):
    def render():
        table = opcode_table()
        lines = ["Table I: per-partition opcodes (half-gates technique)", ""]
        for index in range(8):
            lines.append(f"  {index:03b}  {table[index]}")
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    assert "(InA, InB) -> Out" in text
    _write("table1_opcodes.txt", text)


def test_table_ii_operations(benchmark):
    order = [
        ("Arithmetic", [ROp.ADD, ROp.SUB, ROp.MUL, ROp.DIV, ROp.MOD, ROp.NEG]),
        ("Comparison", [ROp.LT, ROp.LE, ROp.GT, ROp.GE, ROp.EQ, ROp.NE]),
        ("Bitwise", [ROp.BIT_NOT, ROp.BIT_AND, ROp.BIT_OR, ROp.BIT_XOR]),
        ("Miscellaneous", [ROp.SIGN, ROp.ZERO, ROp.ABS, ROp.MUX]),
    ]

    def render():
        lines = ["Table II: supported R-type operations", ""]
        lines.append(f"  {'Operation':<16}{'Integer':<10}{'Float'}")
        for group, ops in order:
            lines.append(f"  -- {group} --")
            for op in ops:
                supported = SUPPORT_MATRIX[op]
                has_int = "yes" if any(d is int32 for d in supported) else ""
                has_f = "yes" if any(d is float32 for d in supported) else ""
                lines.append(f"  {op.value:<16}{has_int:<10}{has_f}")
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    assert "mod" in text
    _write("table2_operations.txt", text)


def test_table_iii_parameters(benchmark):
    def render():
        paper = paper_config()
        bench = PIMConfig(**BENCH_CONFIG)
        lines = [
            "Table III: evaluation parameters",
            "",
            "  Simulated PIM (paper scale):",
            f"    Memory size:      {paper.capacity_bits / 8 / 2**30:.0f} GB "
            f"({paper.crossbars} crossbars)",
            f"    Crossbars:        {paper.rows} x {paper.columns} "
            f"({paper.partitions} partitions)",
            f"    Word size (N):    {paper.word_size}",
            f"    Clock frequency:  {paper.frequency_hz / 1e6:.0f} MHz",
            "",
            "  Benchmark memory (this reproduction's simulator):",
            f"    Crossbars:        {bench.crossbars} x ({bench.rows} x {bench.columns})",
            f"    Elements/register: {bench.total_rows}",
        ]
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    assert "300 MHz" in text
    _write("table3_parameters.txt", text)
