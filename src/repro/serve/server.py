"""The async batch-serving scheduler over a pool of worker devices.

:class:`Server` models the production front-end the ROADMAP's north star
asks for: many logical sessions submit work concurrently, an asyncio
scheduler coalesces compatible requests into batches, and batches are
dispatched onto free worker devices — each worker a full
:class:`~repro.pim.device.PIMDevice` replica (any backend, including the
pooled one). Compiled-program caches do the heavy lifting: a worker that
has already served a request signature replays the cached program, and a
server started with ``cache_dir=`` warm-starts every worker from the
cross-session :class:`~repro.driver.persist.PersistentProgramCache`.

Latency accounting runs on *simulated device time*: executing a request
costs ``cycles / frequency_hz`` seconds of its worker's clock, a request
starts at ``max(arrival, worker-free time)``, and the reported p50/p99
latencies and sustained requests/sec are computed on that clock. This
keeps the scheduler's throughput claims about the modeled chip — which
the host's GIL cannot serialize — while wall-clock time is reported
alongside for the host-cost view.

Batching is by *signature affinity*: the scheduler drains whatever is
queued and groups requests whose workload and payload signature match,
so a batch replays one compiled program repeatedly on one worker
(maximum program-cache locality) instead of interleaving signatures
across workers.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.config import PIMConfig
from repro.faults.plan import WorkerFault
from repro.pim.device import PIMDevice


class ServerClosed(RuntimeError):
    """The server was closed while (or before) the request could run.

    Raised by ``submit`` on a closed server, and set on every future
    still outstanding when :meth:`Server.close` tears the scheduler
    down — callers never hang on an abandoned future.
    """


class DeadlineExceeded(TimeoutError):
    """A request missed its deadline on the simulated device clock."""


def _signature_of(workload: Callable, payload: Any) -> Tuple:
    """The batching key: workload identity + payload shape/dtype."""
    custom = getattr(workload, "signature", None)
    if custom is not None:
        return (id(workload), custom(payload))
    if isinstance(payload, np.ndarray):
        return (id(workload), payload.shape, str(payload.dtype))
    if isinstance(payload, (tuple, list)):
        return (
            id(workload),
            tuple(
                (a.shape, str(a.dtype))
                if isinstance(a, np.ndarray)
                else (type(a).__name__, a)
                for a in payload
            ),
        )
    return (id(workload), type(payload).__name__)


@dataclass
class _Request:
    """One queued unit of work (a logical session's call)."""

    workload: Callable
    payload: Any
    arrival: float
    key: Tuple
    future: "asyncio.Future"
    seq: int = 0
    #: Original submit-time arrival; retries move ``arrival`` forward
    #: (backoff), but latency and the deadline stay anchored here.
    submitted: float = 0.0
    attempt: int = 0
    retries: int = 0
    deadline_at: Optional[float] = None


@dataclass
class _Worker:
    """One pool worker: a device replica plus its simulated clock."""

    index: int
    device: PIMDevice
    busy_until: float = 0.0
    busy_time: float = 0.0
    requests: int = 0
    batches: int = 0


@dataclass
class ServerMetrics:
    """Aggregated serving statistics (simulated-time unless noted)."""

    requests: int = 0
    batches: int = 0
    workers: int = 0
    sim_makespan_s: float = 0.0
    requests_per_sec: float = 0.0
    p50_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    worker_busy_s: Tuple[float, ...] = ()
    wall_s: float = 0.0
    timeouts: int = 0
    retries: int = 0
    failovers: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "workers": self.workers,
            "sim_makespan_s": self.sim_makespan_s,
            "requests_per_sec": self.requests_per_sec,
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "worker_busy_s": list(self.worker_busy_s),
            "wall_s": self.wall_s,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "failovers": self.failovers,
        }


class Server:
    """An asyncio batch scheduler over ``workers`` device replicas.

    Args:
        workers: pool size (device replicas, each its own backend).
        config: device geometry (defaults to a small test geometry).
        backend: backend name per worker (``"numpy"`` default — serving
            wants host speed; use ``"simulator"`` for bit-level audits or
            ``"pooled"`` to shard each replica further).
        batch_limit: maximum requests coalesced into one batch.
        fault_plan: an optional :class:`~repro.faults.plan.FaultPlan`
            whose serving-tier entries inject deterministic worker
            failures (``serve_failures`` / ``fail_every``) and stalls
            (``serve_stalls`` / ``stall_every``) keyed on request
            sequence number and attempt.
        retry_backoff_s: base of the exponential retry backoff —
            attempt ``n``'s re-arrival is delayed ``retry_backoff_s *
            2**(n-1)`` simulated seconds after the failed attempt.
        **backend_kwargs: forwarded to every worker's backend
            (``cache_dir=...`` warm-starts all workers from one
            persistent program cache, ``parallelism``, ...).

    Usage::

        server = Server(workers=4)
        await server.start()
        result = await server.submit(workload, payload)
        ...
        await server.close()
        print(server.metrics().as_dict())
    """

    def __init__(
        self,
        workers: int = 4,
        config: Optional[PIMConfig] = None,
        backend: str = "numpy",
        batch_limit: int = 32,
        fault_plan=None,
        retry_backoff_s: float = 1e-3,
        **backend_kwargs,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        self.config = config or PIMConfig(crossbars=4, rows=64)
        self.batch_limit = max(int(batch_limit), 1)
        self.workers = [
            _Worker(i, PIMDevice(self.config, backend=backend, **backend_kwargs))
            for i in range(workers)
        ]
        self._queue: "asyncio.Queue[_Request]" = None  # built in start()
        self._free: "asyncio.Queue[_Worker]" = None
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="pim-serve"
        )
        self._scheduler_task: Optional["asyncio.Task"] = None
        self._dispatch_tasks: set = set()
        self._loop: Optional["asyncio.AbstractEventLoop"] = None
        self._sim_lock = threading.Lock()
        self._latencies: List[float] = []
        self._arrivals: List[float] = []
        self._ends: List[float] = []
        self._batches = 0
        self._wall_start: Optional[float] = None
        self._closed = False
        self._fault_plan = fault_plan
        self.retry_backoff_s = float(retry_backoff_s)
        self._seq = 0
        self._outstanding: set = set()
        self._timeouts = 0
        self._retries = 0
        self._failovers = 0

    # ------------------------------------------------------------------
    async def start(self) -> "Server":
        """Bind to the running event loop and start the scheduler."""
        from repro.pim import device as device_mod

        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._free = asyncio.Queue()
        for worker in self.workers:
            self._free.put_nowait(worker)
        self._wall_start = time.perf_counter()
        self._scheduler_task = asyncio.ensure_future(self._scheduler())
        device_mod.register_reset_guard(self)
        return self

    @property
    def reset_guard_active(self) -> bool:
        """True while started and not closed (blocks ``pim.reset()``)."""
        return self._loop is not None and not self._closed

    @property
    def reset_guard_reason(self) -> str:
        return f"serve.Server ({len(self.workers)} workers)"

    async def submit(
        self,
        workload: Callable,
        payload: Any = None,
        arrival: float = 0.0,
        deadline: Optional[float] = None,
        retries: int = 0,
    ) -> Any:
        """Queue one request and await its result.

        ``workload(device, payload)`` runs on a free worker's thread;
        ``arrival`` is the request's simulated arrival time (seconds on
        the device clock — schedulers and benchmarks supply it, sessions
        submitting "now" can leave 0.0).

        ``deadline`` is a per-request budget in simulated seconds,
        measured from ``arrival``: a request that cannot finish inside
        it fails with :class:`DeadlineExceeded` (never retried — the
        budget is the contract). ``retries`` is the number of times a
        :class:`~repro.faults.plan.WorkerFault` re-queues the request
        with exponential backoff before the fault is delivered.
        """
        if self._loop is None:
            raise RuntimeError("Server.start() has not been awaited")
        if self._closed:
            raise ServerClosed("server is closed")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive")
        future = self._loop.create_future()
        arrival = float(arrival)
        self._seq += 1
        request = _Request(
            workload,
            payload,
            arrival,
            _signature_of(workload, payload),
            future,
            seq=self._seq,
            submitted=arrival,
            retries=max(int(retries), 0),
            deadline_at=None if deadline is None else arrival + deadline,
        )
        self._outstanding.add(future)
        future.add_done_callback(self._outstanding.discard)
        await self._queue.put(request)
        return await future

    async def close(self) -> None:
        """Drain in-flight work, stop the scheduler, fail the stranded.

        Batches already dispatched run to completion; requests still
        queued (including retries in their backoff window) get
        :class:`ServerClosed` set on their futures so no caller hangs.
        """
        if self._closed:
            return
        self._closed = True
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
        if self._dispatch_tasks:
            await asyncio.gather(*self._dispatch_tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)
        for future in list(self._outstanding):
            _set_exception(future, ServerClosed("server closed with request outstanding"))

    # ------------------------------------------------------------------
    async def _scheduler(self) -> None:
        group_cap = self.batch_limit * len(self.workers)
        while True:
            request = await self._queue.get()
            group = [request]
            deferred: List[_Request] = []
            # Signature-affinity coalescing: take every queued request
            # with the same key (up to one full pool round), requeue the
            # rest. The queue is FIFO per signature, so per-session
            # ordering of identical calls is preserved.
            while len(group) < group_cap:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt.key == request.key:
                    group.append(nxt)
                else:
                    deferred.append(nxt)
            for item in deferred:
                self._queue.put_nowait(item)
            # Shard the group across the pool: one batch per worker (at
            # most ``batch_limit`` each), dispatched as workers free up —
            # same-signature floods parallelize instead of pinning one
            # worker while the rest idle.
            chunks = min(len(self.workers), len(group))
            size = -(-len(group) // chunks)
            for offset in range(0, len(group), size):
                batch = group[offset : offset + size]
                worker = await self._free.get()
                task = self._loop.run_in_executor(
                    self._executor, self._run_batch, worker, batch
                )
                self._dispatch_tasks.add(task)

                def _release(done, worker=worker):
                    self._dispatch_tasks.discard(done)
                    self._free.put_nowait(worker)

                task.add_done_callback(_release)

    def _run_batch(self, worker: _Worker, batch: List[_Request]) -> None:
        """Execute one batch on one worker (executor thread).

        Simulated-time bookkeeping: each request occupies the worker's
        clock for its measured device cycles; its latency is the span
        from arrival to completion on that clock.
        """
        device = worker.device
        plan = self._fault_plan
        with self._sim_lock:
            self._batches += 1
            worker.batches += 1
        for request in batch:
            # Deadline fail-fast: if the worker's clock already puts the
            # start past the budget, don't burn device cycles at all.
            if request.deadline_at is not None:
                with self._sim_lock:
                    start = max(request.arrival, worker.busy_until)
                if start >= request.deadline_at:
                    self._finish_timeout(worker, request)
                    continue
            stall_s = 0.0
            if plan is not None:
                # Injected DMA/compile stall: simulated seconds added to
                # the request's duration, no device cycles.
                stall_s = plan.serve_stall_s(request.seq, request.attempt)
            cycles_before = device.backend.stats.cycles
            if plan is not None and plan.serve_should_fail(
                request.seq, request.attempt
            ):
                value = None
                error: Optional[BaseException] = WorkerFault(
                    f"injected serve fault (request {request.seq}, "
                    f"attempt {request.attempt})"
                )
            else:
                try:
                    value = request.workload(device, request.payload)
                    error = None
                except BaseException as exc:  # delivered to the caller
                    value, error = None, exc
            cycles = device.backend.stats.cycles - cycles_before
            duration = cycles / self.config.frequency_hz + stall_s
            with self._sim_lock:
                start = max(request.arrival, worker.busy_until)
                end = start + duration
                worker.busy_until = end
                worker.busy_time += duration
                worker.requests += 1
            if isinstance(error, WorkerFault) and request.attempt < request.retries:
                # Exponential backoff on the simulated clock: the retry
                # re-arrives after the failed attempt plus the backoff,
                # but its deadline stays anchored at the original
                # arrival — retries spend the same budget.
                backoff = self.retry_backoff_s * (2.0 ** request.attempt)
                request.attempt += 1
                request.arrival = end + backoff
                with self._sim_lock:
                    self._retries += 1
                self._loop.call_soon_threadsafe(self._requeue, request)
                continue
            if request.deadline_at is not None and end > request.deadline_at:
                self._finish_timeout(worker, request)
                continue
            with self._sim_lock:
                self._arrivals.append(request.submitted)
                self._ends.append(end)
                self._latencies.append(end - request.submitted)
                if error is None and request.attempt:
                    self._failovers += 1
            if error is not None:
                self._loop.call_soon_threadsafe(
                    _set_exception, request.future, error
                )
            else:
                self._loop.call_soon_threadsafe(
                    _set_result, request.future, value
                )

    def _requeue(self, request: _Request) -> None:
        """Put a retry back on the queue (loop thread); a server torn
        down mid-backoff fails the request instead of stranding it."""
        if self._closed:
            _set_exception(
                request.future, ServerClosed("server closed during retry")
            )
            return
        self._queue.put_nowait(request)

    def _finish_timeout(self, worker: _Worker, request: _Request) -> None:
        """Account and deliver a missed deadline (latency = the budget)."""
        with self._sim_lock:
            self._timeouts += 1
            self._arrivals.append(request.submitted)
            self._ends.append(request.deadline_at)
            self._latencies.append(request.deadline_at - request.submitted)
        budget = request.deadline_at - request.submitted
        self._loop.call_soon_threadsafe(
            _set_exception,
            request.future,
            DeadlineExceeded(
                f"request {request.seq} missed its {budget:.6f}s deadline "
                f"(attempt {request.attempt})"
            ),
        )

    # ------------------------------------------------------------------
    def metrics(self) -> ServerMetrics:
        """Aggregate statistics over everything served so far."""
        with self._sim_lock:
            latencies = list(self._latencies)
            arrivals = list(self._arrivals)
            ends = list(self._ends)
            batches = self._batches
            busy = tuple(worker.busy_time for worker in self.workers)
            timeouts = self._timeouts
            retries = self._retries
            failovers = self._failovers
        count = len(latencies)
        makespan = (max(ends) - min(arrivals)) if count else 0.0
        wall = (
            time.perf_counter() - self._wall_start
            if self._wall_start is not None
            else 0.0
        )
        return ServerMetrics(
            requests=count,
            batches=batches,
            workers=len(self.workers),
            sim_makespan_s=makespan,
            requests_per_sec=(count / makespan) if makespan else 0.0,
            p50_latency_s=float(np.percentile(latencies, 50)) if count else 0.0,
            p99_latency_s=float(np.percentile(latencies, 99)) if count else 0.0,
            worker_busy_s=busy,
            wall_s=wall,
            timeouts=timeouts,
            retries=retries,
            failovers=failovers,
        )


def _set_result(future: "asyncio.Future", value: Any) -> None:
    if not future.done():
        future.set_result(value)


def _set_exception(future: "asyncio.Future", error: BaseException) -> None:
    if not future.done():
        future.set_exception(error)


class CompiledWorkload:
    """Serve one traced tensor function across the pool's devices.

    Wraps a plain ``fn(*tensors) -> tensor`` into the server's
    ``workload(device, payload)`` shape: numpy payload arrays become
    device tensors, the call goes through a per-device
    :class:`~repro.pim.compile.CompiledFunction` (so every worker builds
    its signature cache once and replays afterwards), and the result
    returns as numpy. The per-device compiled handles live here, keyed
    by device identity.
    """

    def __init__(
        self,
        fn: Callable,
        opt_level: Optional[int] = None,
        name: Optional[str] = None,
    ):
        self.fn = fn
        self.opt_level = opt_level
        self.name = name or getattr(fn, "__name__", "workload")
        self._compiled: Dict[int, Any] = {}
        self._lock = threading.Lock()

    def _compiled_for(self, device: PIMDevice):
        from repro.pim.compile import CompiledFunction

        with self._lock:
            handle = self._compiled.get(id(device))
            if handle is None:
                handle = CompiledFunction(
                    self.fn,
                    device=device,
                    opt_level=self.opt_level,
                    name=self.name,
                )
                self._compiled[id(device)] = handle
            return handle

    def signature(self, payload) -> Tuple:
        arrays = payload if isinstance(payload, (tuple, list)) else (payload,)
        return tuple(
            (a.shape, str(a.dtype)) if isinstance(a, np.ndarray) else repr(a)
            for a in arrays
        )

    def __call__(self, device: PIMDevice, payload) -> np.ndarray:
        from repro.pim.functional import from_numpy, to_numpy

        handle = self._compiled_for(device)
        arrays = payload if isinstance(payload, (tuple, list)) else (payload,)
        tensors = [from_numpy(array, device=device) for array in arrays]
        out = handle(*tensors)
        return to_numpy(out)


def serve_workload(
    workload: Callable,
    payloads: Sequence[Any],
    arrivals: Optional[Sequence[float]] = None,
    deadline: Optional[float] = None,
    retries: int = 0,
    return_exceptions: bool = False,
    **server_kwargs,
) -> Tuple[List[Any], ServerMetrics]:
    """Serve a payload list to completion and return (results, metrics).

    The synchronous convenience wrapper tests, benchmarks, and the CLI
    use: builds a :class:`Server`, submits every payload concurrently
    (``arrivals[i]`` on the simulated clock, default all-at-once), and
    tears the server down. Results keep submission order.

    ``deadline`` and ``retries`` apply per request (see
    :meth:`Server.submit`). With ``return_exceptions=True`` a failed
    request's exception (e.g. :class:`DeadlineExceeded`) is returned in
    its result slot instead of aborting the run — the chaos benchmarks
    use this to assert zero requests are *lost* even when some fail.
    """
    if arrivals is None:
        arrivals = [0.0] * len(payloads)
    if len(arrivals) != len(payloads):
        raise ValueError("arrivals and payloads must have equal length")

    async def _main():
        server = Server(**server_kwargs)
        await server.start()
        try:
            tasks = [
                asyncio.ensure_future(
                    server.submit(
                        workload,
                        payload,
                        arrival=arrival,
                        deadline=deadline,
                        retries=retries,
                    )
                )
                for payload, arrival in zip(payloads, arrivals)
            ]
            results = await asyncio.gather(
                *tasks, return_exceptions=return_exceptions
            )
        finally:
            await server.close()
        return list(results), server.metrics()

    return asyncio.run(_main())
