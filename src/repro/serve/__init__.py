"""Async batch serving over a pool of PIM worker devices.

Quickstart (see also ``python -m repro.serve --workers 4``)::

    from repro.serve import CompiledWorkload, serve_workload

    def model(a, b):
        return a * b + a

    results, metrics = serve_workload(
        CompiledWorkload(model),
        payloads=[(x_i, y_i) for ...],
        workers=4,
    )
    print(metrics.requests_per_sec, metrics.p99_latency_s)
"""

from repro.serve.server import (
    CompiledWorkload,
    DeadlineExceeded,
    Server,
    ServerClosed,
    ServerMetrics,
    serve_workload,
)

__all__ = [
    "CompiledWorkload",
    "DeadlineExceeded",
    "Server",
    "ServerClosed",
    "ServerMetrics",
    "serve_workload",
]
