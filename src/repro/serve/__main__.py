"""CLI demo of the serving layer: ``python -m repro.serve --workers 4``.

Spins up a :class:`~repro.serve.server.Server`, submits a synthetic
many-client workload (each client calls one compiled elementwise model
repeatedly), and prints sustained requests/sec plus p50/p99 latency on
the simulated device clock.
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from repro.arch.config import PIMConfig
from repro.serve import CompiledWorkload, serve_workload


def _model(a, b):
    return a * b + a


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve a demo compiled workload over a device pool.",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=4,
                        help="requests per client")
    parser.add_argument("--backend", default="numpy",
                        help="worker backend (numpy, simulator, pooled)")
    parser.add_argument("--crossbars", type=int, default=4)
    parser.add_argument("--rows", type=int, default=64)
    parser.add_argument("--cache-dir", default=None,
                        help="persistent program cache directory "
                             "(warm-starts every worker)")
    parser.add_argument("--interval", type=float, default=0.0,
                        help="simulated inter-arrival time per client (s)")
    parser.add_argument("--json", action="store_true",
                        help="print metrics as JSON")
    args = parser.parse_args(argv)

    config = PIMConfig(crossbars=args.crossbars, rows=args.rows)
    length = config.total_rows
    rng = np.random.default_rng(7)
    payloads, arrivals = [], []
    for client in range(args.clients):
        for turn in range(args.requests):
            payloads.append((
                rng.integers(-1000, 1000, length).astype(np.int32),
                rng.integers(-1000, 1000, length).astype(np.int32),
            ))
            arrivals.append(turn * args.interval)

    kwargs = {}
    if args.cache_dir:
        kwargs["cache_dir"] = args.cache_dir
    results, metrics = serve_workload(
        CompiledWorkload(_model),
        payloads,
        arrivals=arrivals,
        workers=args.workers,
        config=config,
        backend=args.backend,
        **kwargs,
    )
    for (a, b), result in zip(payloads, results):
        expected = a.astype(np.int64) * b + a
        assert (result.astype(np.int64) == np.int32(expected)).all()

    if args.json:
        print(json.dumps(metrics.as_dict(), indent=2))
    else:
        print(
            f"served {metrics.requests} requests "
            f"({args.clients} clients x {args.requests}) "
            f"on {metrics.workers} workers in {metrics.batches} batches"
        )
        print(
            f"  sustained   {metrics.requests_per_sec:,.0f} req/s "
            f"(simulated device time, makespan "
            f"{metrics.sim_makespan_s * 1e6:.1f} us)"
        )
        print(
            f"  latency     p50 {metrics.p50_latency_s * 1e6:.1f} us / "
            f"p99 {metrics.p99_latency_s * 1e6:.1f} us"
        )
        print(f"  wall clock  {metrics.wall_s:.2f} s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
