"""Macro-instructions of the proposed ISA (Section IV, Table II).

Four instruction families exist:

- :class:`RInstr` — register (R-type) operations executed thread-parallel
  across the activated threads of the activated warps;
- :class:`MoveInstr` — warp-parallel thread-serial data transfer, either
  within a warp or between warps following the Section III-F pattern;
- :class:`ReadInstr` — read one register of one thread of one warp;
- :class:`WriteInstr` — write a constant to one register across a
  range-based pattern of threads/warps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.arch.masks import RangeMask
from repro.isa.dtypes import DType, float32, int32


class ROp(enum.Enum):
    """R-type operations of Table II."""

    # Arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    NEG = "neg"
    # Comparison (results are 0/1 words)
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"
    NE = "ne"
    # Bitwise
    BIT_NOT = "bit_not"
    BIT_AND = "bit_and"
    BIT_OR = "bit_or"
    BIT_XOR = "bit_xor"
    # Miscellaneous
    SIGN = "sign"
    ZERO = "zero"
    ABS = "abs"
    MUX = "mux"
    COPY = "copy"  # register-to-register copy (used by the tensor library)


#: Table II — which dtypes each operation supports. ``MOD`` is integer-only.
SUPPORT_MATRIX = {
    ROp.ADD: (int32, float32),
    ROp.SUB: (int32, float32),
    ROp.MUL: (int32, float32),
    ROp.DIV: (int32, float32),
    ROp.MOD: (int32,),
    ROp.NEG: (int32, float32),
    ROp.LT: (int32, float32),
    ROp.LE: (int32, float32),
    ROp.GT: (int32, float32),
    ROp.GE: (int32, float32),
    ROp.EQ: (int32, float32),
    ROp.NE: (int32, float32),
    ROp.BIT_NOT: (int32, float32),
    ROp.BIT_AND: (int32, float32),
    ROp.BIT_OR: (int32, float32),
    ROp.BIT_XOR: (int32, float32),
    ROp.SIGN: (int32, float32),
    ROp.ZERO: (int32, float32),
    ROp.ABS: (int32, float32),
    ROp.MUX: (int32, float32),
    ROp.COPY: (int32, float32),
}

#: Operand counts per operation (sources only; every op has one destination).
ARITY = {
    ROp.ADD: 2,
    ROp.SUB: 2,
    ROp.MUL: 2,
    ROp.DIV: 2,
    ROp.MOD: 2,
    ROp.NEG: 1,
    ROp.LT: 2,
    ROp.LE: 2,
    ROp.GT: 2,
    ROp.GE: 2,
    ROp.EQ: 2,
    ROp.NE: 2,
    ROp.BIT_NOT: 1,
    ROp.BIT_AND: 2,
    ROp.BIT_OR: 2,
    ROp.BIT_XOR: 2,
    ROp.SIGN: 1,
    ROp.ZERO: 1,
    ROp.ABS: 1,
    ROp.MUX: 3,
    ROp.COPY: 1,
}


@dataclass(frozen=True)
class RInstr:
    """A thread-parallel register operation.

    ``dest = op(src_a[, src_b[, src_c]])`` computed in every activated
    thread (``row_mask``) of every activated warp (``warp_mask``). For
    :attr:`ROp.MUX`, ``src_a`` is the 0/1 condition register and the result
    is ``src_b`` where the condition is 1, else ``src_c``.
    """

    op: ROp
    dtype: DType
    dest: int
    src_a: int
    src_b: Optional[int] = None
    src_c: Optional[int] = None
    warp_mask: Optional[RangeMask] = None
    row_mask: Optional[RangeMask] = None

    def sources(self) -> "tuple[int, ...]":
        """The source register indices actually used by this instruction."""
        nargs = ARITY[self.op]
        return tuple(
            src
            for src in (self.src_a, self.src_b, self.src_c)[:nargs]
            if src is not None
        )


@dataclass(frozen=True)
class MoveInstr:
    """A warp-parallel, thread-serial move of one register value.

    Copies register ``src_reg`` of thread ``src_thread`` into register
    ``dst_reg`` of thread ``dst_thread``. With ``warp_dist == 0`` the move
    stays within each activated warp (executed in parallel across all
    activated warps); otherwise every activated warp ``W`` sends to warp
    ``W + warp_dist`` following the H-tree pattern of Section III-F.
    """

    src_reg: int
    dst_reg: int
    src_thread: int
    dst_thread: int
    warp_mask: Optional[RangeMask] = None
    warp_dist: int = 0


@dataclass(frozen=True)
class ReadInstr:
    """Read one register of one thread of one warp; responds with a word."""

    warp: int
    thread: int
    reg: int


@dataclass(frozen=True)
class WriteInstr:
    """Write a raw N-bit constant to one register across a thread pattern."""

    reg: int
    value: int
    warp_mask: Optional[RangeMask] = None
    row_mask: Optional[RangeMask] = None


Instruction = Union[RInstr, MoveInstr, ReadInstr, WriteInstr]


def validate(instr: Instruction, registers: int) -> None:
    """Validate an instruction against the architecture's register count.

    Raises ``ValueError`` for unsupported dtype/op combinations (Table II),
    missing or extra operands, and out-of-range register indices.
    """
    if isinstance(instr, RInstr):
        supported = SUPPORT_MATRIX[instr.op]
        if all(instr.dtype.name != d.name for d in supported):
            raise ValueError(f"{instr.op} does not support dtype {instr.dtype}")
        nargs = ARITY[instr.op]
        operands = (instr.src_a, instr.src_b, instr.src_c)
        if any(op is None for op in operands[:nargs]):
            raise ValueError(f"{instr.op} requires {nargs} source operands")
        if any(op is not None for op in operands[nargs:]):
            raise ValueError(f"{instr.op} takes only {nargs} source operands")
        for reg in (instr.dest, *instr.sources()):
            if not 0 <= reg < registers:
                raise ValueError(f"register {reg} out of range")
    elif isinstance(instr, MoveInstr):
        for reg in (instr.src_reg, instr.dst_reg):
            if not 0 <= reg < registers:
                raise ValueError(f"register {reg} out of range")
    elif isinstance(instr, ReadInstr):
        if not 0 <= instr.reg < registers:
            raise ValueError(f"register {instr.reg} out of range")
    elif isinstance(instr, WriteInstr):
        if not 0 <= instr.reg < registers:
            raise ValueError(f"register {instr.reg} out of range")
        if not 0 <= instr.value < (1 << 32):
            raise ValueError("write value must be a raw 32-bit word")
    else:
        raise TypeError(f"not an instruction: {instr!r}")
