"""Data types of the ISA: 32-bit two's-complement integers and IEEE floats.

Registers hold raw N-bit words; these helpers convert between raw words and
Python/NumPy values. Floating point follows IEEE-754 binary32 with
round-to-nearest-even; the driver's gate-level implementation flushes
subnormals to zero (documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DType:
    """An ISA data type.

    Attributes:
        name: short identifier (``"int32"`` / ``"float32"``).
        bits: register width consumed by one element.
        np_dtype: the matching NumPy dtype for host-side conversion.
    """

    name: str
    bits: int
    np_dtype: np.dtype

    def __repr__(self) -> str:
        return self.name

    @property
    def is_float(self) -> bool:
        return self.np_dtype.kind == "f"


int32 = DType("int32", 32, np.dtype(np.int32))
float32 = DType("float32", 32, np.dtype(np.float32))

ALL_DTYPES = (int32, float32)


def value_to_raw(value, dtype: DType) -> int:
    """Convert a Python/NumPy scalar into its raw N-bit register word."""
    if dtype is int32 or dtype.name == "int32":
        return int(np.int64(int(value)) & np.int64(0xFFFFFFFF))
    if dtype is float32 or dtype.name == "float32":
        return int(np.float32(value).view(np.uint32))
    raise TypeError(f"unsupported dtype {dtype}")


def raw_to_value(raw: int, dtype: DType):
    """Convert a raw N-bit register word back into a scalar value."""
    if not 0 <= raw < (1 << 32):
        raise ValueError("raw word out of 32-bit range")
    if dtype is int32 or dtype.name == "int32":
        return int(np.uint32(raw).view(np.int32))
    if dtype is float32 or dtype.name == "float32":
        return float(np.uint32(raw).view(np.float32))
    raise TypeError(f"unsupported dtype {dtype}")


def array_to_raw(values: np.ndarray, dtype: DType) -> np.ndarray:
    """Vectorized conversion of an array into raw uint32 register words."""
    if dtype.name == "int32":
        return values.astype(np.int32).view(np.uint32)
    if dtype.name == "float32":
        return values.astype(np.float32).view(np.uint32)
    raise TypeError(f"unsupported dtype {dtype}")


def raw_to_array(raw: np.ndarray, dtype: DType) -> np.ndarray:
    """Vectorized conversion of raw uint32 register words into values."""
    words = raw.astype(np.uint32)
    if dtype.name == "int32":
        return words.view(np.int32)
    if dtype.name == "float32":
        return words.view(np.float32)
    raise TypeError(f"unsupported dtype {dtype}")
