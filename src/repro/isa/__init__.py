"""Instruction-set architecture: warps of threads over memory registers.

Section IV of the paper: crossbars are abstracted as *warps* whose rows are
*threads*, each thread holding ``R`` N-bit registers that *are* the memory.
The ISA has R-type (register) instructions executed in parallel across
activated threads, move instructions for intra-/inter-warp data transfer,
and standard read/write instructions.
"""

from repro.isa.dtypes import DType, int32, float32, raw_to_value, value_to_raw
from repro.isa.instructions import (
    ROp,
    RInstr,
    MoveInstr,
    ReadInstr,
    WriteInstr,
    Instruction,
    SUPPORT_MATRIX,
    validate,
)

__all__ = [
    "DType",
    "int32",
    "float32",
    "raw_to_value",
    "value_to_raw",
    "ROp",
    "RInstr",
    "MoveInstr",
    "ReadInstr",
    "WriteInstr",
    "Instruction",
    "SUPPORT_MATRIX",
    "validate",
]
