"""PyPIM reproduction: digital processing-in-memory from microarchitecture to Python tensors.

This package re-implements the complete PyPIM stack (MICRO 2024):

- :mod:`repro.arch` — the partition-enabled memristive PIM microarchitecture,
  its 64-bit micro-operation encoding, the half-gates technique, and the
  H-tree inter-crossbar communication framework.
- :mod:`repro.sim` — a bit-accurate, cycle-accurate simulator that executes
  micro-operations on a condensed strided memory image (the drop-in
  replacement for a physical PIM chip).
- :mod:`repro.isa` — the warp/thread instruction-set architecture.
- :mod:`repro.driver` — the host driver lowering macro-instructions to
  micro-operations via gate-level arithmetic (the AritPIM suite rebuilt
  from scratch).
- :mod:`repro.backend` — pluggable execution engines behind one protocol:
  the bit-accurate simulator pipeline and a fast NumPy functional model
  with identical cycle accounting.
- :mod:`repro.pim` — the NumPy-like Python tensor library (the paper's
  development library): tensors, views, dynamic memory management,
  reductions, sorting, CORDIC, and ``pim.compile`` graph capture.
- :mod:`repro.theory` — theoretical PIM cycle counts and throughput bounds
  used by the evaluation.

Quickstart::

    from repro import pim

    x = pim.zeros(8, dtype=pim.float32)
    x[2] = 2.5
    print((x * x).sum())
"""

__all__ = ["pim", "__version__"]

__version__ = "1.0.0"


def __getattr__(name):
    """Lazily import the tensor library (avoids import cycles in tooling)."""
    if name == "pim":
        import importlib

        return importlib.import_module("repro.pim")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
