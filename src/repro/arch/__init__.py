"""Microarchitecture layer: configuration, micro-operations, half-gates, H-tree.

This package models Section III of the paper: the four micro-operation types
(mask, read/write, logic, move), the 64-bit operation encoding of Figure 5,
the half-gates per-partition opcodes of Table I, the restricted partition
model of Section III-D3, and the H-tree inter-crossbar communication
framework of Section III-F.
"""

from repro.arch.config import PIMConfig
from repro.arch.masks import RangeMask
from repro.arch.micro_ops import (
    GateType,
    CrossbarMaskOp,
    RowMaskOp,
    ReadOp,
    WriteOp,
    LogicHOp,
    LogicVOp,
    MoveOp,
    MicroOp,
    encode,
    decode,
)
from repro.arch.halfgates import (
    Opcode,
    opcode_table,
    expand_pattern,
    opcodes_for_pattern,
    transistor_selects,
)
from repro.arch.htree import HTree, validate_move_pattern

__all__ = [
    "PIMConfig",
    "RangeMask",
    "GateType",
    "CrossbarMaskOp",
    "RowMaskOp",
    "ReadOp",
    "WriteOp",
    "LogicHOp",
    "LogicVOp",
    "MoveOp",
    "MicroOp",
    "encode",
    "decode",
    "Opcode",
    "opcode_table",
    "expand_pattern",
    "opcodes_for_pattern",
    "transistor_selects",
    "HTree",
    "validate_move_pattern",
]
