"""Micro-operations and their 64-bit binary encoding (Figure 5).

The microarchitecture interface consists of 64-bit operations sent from the
host driver to the on-chip controller, which only buffers and broadcasts
them to the crossbars. Seven operation kinds exist:

- crossbar mask / row mask (Section III-B),
- read / write with N-bit strided granularity (Section III-C),
- horizontal logic with the restricted partition pattern (Section III-D),
- vertical logic (Section III-E),
- inter-array move over the H-tree (Section III-F).

The exact bit positions inside the 64-bit word are not published in the
paper; this module fixes one concrete layout with generous field widths
(documented per operation) while preserving the paper's counted format size:
the horizontal-logic payload occupies ``2 + 3*log2(w) + 2*log2(N) = 42``
bits for the default 1024x1024/32-partition geometry, leaving spare bits as
the paper notes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class GateType(enum.IntEnum):
    """Stateful-logic gate types supported by the periphery.

    ``INIT0``/``INIT1`` are constant gates without inputs (akin to writes);
    ``NOT`` has one input; ``NOR`` has two. Horizontal operations support all
    four; vertical operations support only ``{INIT0, INIT1, NOT}``
    (Section III-E).
    """

    INIT0 = 0
    INIT1 = 1
    NOT = 2
    NOR = 3


class _Kind(enum.IntEnum):
    """3-bit operation-type tag placed in the top bits of the encoding."""

    XB_MASK = 0
    ROW_MASK = 1
    READ = 2
    WRITE = 3
    LOGIC_H = 4
    LOGIC_V = 5
    MOVE = 6


@dataclass(frozen=True)
class CrossbarMaskOp:
    """Set the crossbar activation bits to the range ``{start..stop..step}``.

    Every crossbar stores a single volatile activation bit which gates all
    following non-mask operations.
    """

    start: int
    stop: int
    step: int = 1


@dataclass(frozen=True)
class RowMaskOp:
    """Set the per-crossbar row mask registers to ``{start..stop..step}``.

    The row mask is expanded into a binary enable vector of length ``h``
    during read/write and horizontal-logic operations.
    """

    start: int
    stop: int
    step: int = 1


@dataclass(frozen=True)
class ReadOp:
    """Read one N-bit strided word at intra-row ``index``.

    The target crossbar and row must have been selected (down to a single
    row of a single crossbar) by preceding mask operations. The response is
    the N-bit word whose bit *i* comes from partition *i* at intra-partition
    column ``index`` (Figure 6).
    """

    index: int


@dataclass(frozen=True)
class WriteOp:
    """Write the N-bit ``value`` at intra-row ``index``.

    Unlike reads, the mask may select multiple rows and crossbars, writing
    the same word to all of them in parallel (used for constants).
    """

    index: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 64):
            raise ValueError("write value must fit in 64 bits")


@dataclass(frozen=True)
class LogicHOp:
    """A horizontal stateful-logic operation with a partition pattern.

    ``in_a``, ``in_b`` and ``out`` are *intra-partition* column indices,
    identical across partitions (restriction 1 of Section III-D3). The
    partition pattern encodes the gates: gate ``k`` (for ``k = 0, 1, ...``)
    has inputs in partitions ``p_a + k*p_step`` / ``p_b + k*p_step`` and
    output in partition ``p_out + k*p_step``, up to and including the gate
    whose output partition equals ``p_end`` (restriction 2). Transistor
    selects are deduced from the per-partition opcodes (restriction 3), see
    :mod:`repro.arch.halfgates`.

    Stateful-logic semantics: the output memristor can only be pulled from
    logical 1 to logical 0, so the executed update is
    ``out &= gate(inputs)``; the driver is responsible for issuing the
    preceding ``INIT1`` and those cycles are counted.
    """

    gate: GateType
    in_a: int
    in_b: int
    out: int
    p_a: int
    p_b: int
    p_out: int
    p_end: int
    p_step: int = 1

    def __post_init__(self) -> None:
        if self.p_a > self.p_b:
            raise ValueError("encoding requires p_a <= p_b; swap NOR inputs")
        if self.p_step <= 0:
            raise ValueError("p_step must be positive")
        if (self.p_end - self.p_out) % self.p_step:
            raise ValueError("p_step must divide p_end - p_out")
        if self.p_end < self.p_out:
            raise ValueError("p_end must be >= p_out")

    @property
    def gate_count(self) -> int:
        """Number of concurrent gates encoded by the pattern."""
        return (self.p_end - self.p_out) // self.p_step + 1


@dataclass(frozen=True)
class LogicVOp:
    """A vertical stateful-logic operation (Section III-E).

    Transfers data between two rows of the same crossbar: the gate is applied
    in every partition's column at intra-partition index ``index`` in
    parallel (N columns at once), from ``in_row`` to ``out_row``. Only
    ``{INIT0, INIT1, NOT}`` are supported vertically. For ``INIT`` gates,
    ``in_row`` is ignored.
    """

    gate: GateType
    in_row: int
    out_row: int
    index: int

    def __post_init__(self) -> None:
        if self.gate == GateType.NOR:
            raise ValueError("vertical operations do not support NOR")


@dataclass(frozen=True)
class MoveOp:
    """A distributed inter-crossbar move over the H-tree (Section III-F).

    The crossbar mask (set beforehand) identifies the *source* crossbars
    ``{XB_start..XB_end..XB_step}``; each source crossbar ``XB`` transfers
    the N-bit word at (``src_row``, ``src_index``) to crossbar
    ``XB + dist`` at (``dst_row``, ``dst_index``). ``dist`` may be negative
    (the paper stores ``XB_dest >= 0`` instead; the signed field here is
    equivalent and validated identically).
    """

    dist: int
    src_row: int
    dst_row: int
    src_index: int
    dst_index: int


MicroOp = Union[
    CrossbarMaskOp, RowMaskOp, ReadOp, WriteOp, LogicHOp, LogicVOp, MoveOp
]

# Field widths (bits) for the concrete binary layout. The tag occupies the
# top 3 bits of the 64-bit word; payload fields are packed LSB-first in the
# order listed per operation below.
_XB_FIELD = 18  # up to 256k crossbars
_ROW_FIELD = 12  # up to 4096 rows
_IDX_FIELD = 7  # up to 128 registers (intra-partition indices)
_PART_FIELD = 6  # up to 64 partitions
_GATE_FIELD = 2


def _pack(fields: "list[tuple[int, int]]", kind: _Kind) -> int:
    """Pack (value, width) fields LSB-first under a 3-bit kind tag."""
    word = 0
    shift = 0
    for value, width in fields:
        if not 0 <= value < (1 << width):
            raise ValueError(f"field value {value} does not fit in {width} bits")
        word |= value << shift
        shift += width
    if shift > 61:
        raise ValueError("payload exceeds 61 bits")
    return word | (int(kind) << 61)


class _Unpacker:
    """Sequential LSB-first field reader for a 64-bit operation word."""

    def __init__(self, word: int) -> None:
        self._word = word

    def take(self, width: int) -> int:
        value = self._word & ((1 << width) - 1)
        self._word >>= width
        return value


def encode(op: MicroOp, word_size: int = 32) -> int:
    """Encode a micro-operation into its 64-bit binary representation.

    ``word_size`` bounds the write-value field (N bits).
    """
    if isinstance(op, CrossbarMaskOp):
        return _pack(
            [(op.start, _XB_FIELD), (op.stop, _XB_FIELD), (op.step, _XB_FIELD)],
            _Kind.XB_MASK,
        )
    if isinstance(op, RowMaskOp):
        return _pack(
            [(op.start, _ROW_FIELD), (op.stop, _ROW_FIELD), (op.step, _ROW_FIELD)],
            _Kind.ROW_MASK,
        )
    if isinstance(op, ReadOp):
        return _pack([(op.index, _IDX_FIELD)], _Kind.READ)
    if isinstance(op, WriteOp):
        if op.value >= (1 << word_size):
            raise ValueError("write value exceeds word size")
        return _pack([(op.index, _IDX_FIELD), (op.value, word_size)], _Kind.WRITE)
    if isinstance(op, LogicHOp):
        return _pack(
            [
                (int(op.gate), _GATE_FIELD),
                (op.in_a, _IDX_FIELD),
                (op.in_b, _IDX_FIELD),
                (op.out, _IDX_FIELD),
                (op.p_a, _PART_FIELD),
                (op.p_b, _PART_FIELD),
                (op.p_out, _PART_FIELD),
                (op.p_end, _PART_FIELD),
                (op.p_step, _PART_FIELD),
            ],
            _Kind.LOGIC_H,
        )
    if isinstance(op, LogicVOp):
        return _pack(
            [
                (int(op.gate), _GATE_FIELD),
                (op.in_row, _ROW_FIELD),
                (op.out_row, _ROW_FIELD),
                (op.index, _IDX_FIELD),
            ],
            _Kind.LOGIC_V,
        )
    if isinstance(op, MoveOp):
        # Signed distance stored as sign-magnitude to keep decode trivial.
        sign = 1 if op.dist < 0 else 0
        return _pack(
            [
                (abs(op.dist), _XB_FIELD),
                (sign, 1),
                (op.src_row, _ROW_FIELD),
                (op.dst_row, _ROW_FIELD),
                (op.src_index, _IDX_FIELD),
                (op.dst_index, _IDX_FIELD),
            ],
            _Kind.MOVE,
        )
    raise TypeError(f"not a micro-operation: {op!r}")


def decode(word: int, word_size: int = 32) -> MicroOp:
    """Decode a 64-bit operation word back into a micro-operation."""
    if not 0 <= word < (1 << 64):
        raise ValueError("operation word must fit in 64 bits")
    kind = _Kind((word >> 61) & 0b111)
    u = _Unpacker(word & ((1 << 61) - 1))
    if kind == _Kind.XB_MASK:
        return CrossbarMaskOp(u.take(_XB_FIELD), u.take(_XB_FIELD), u.take(_XB_FIELD))
    if kind == _Kind.ROW_MASK:
        return RowMaskOp(u.take(_ROW_FIELD), u.take(_ROW_FIELD), u.take(_ROW_FIELD))
    if kind == _Kind.READ:
        return ReadOp(u.take(_IDX_FIELD))
    if kind == _Kind.WRITE:
        return WriteOp(u.take(_IDX_FIELD), u.take(word_size))
    if kind == _Kind.LOGIC_H:
        return LogicHOp(
            GateType(u.take(_GATE_FIELD)),
            u.take(_IDX_FIELD),
            u.take(_IDX_FIELD),
            u.take(_IDX_FIELD),
            u.take(_PART_FIELD),
            u.take(_PART_FIELD),
            u.take(_PART_FIELD),
            u.take(_PART_FIELD),
            u.take(_PART_FIELD),
        )
    if kind == _Kind.LOGIC_V:
        return LogicVOp(
            GateType(u.take(_GATE_FIELD)),
            u.take(_ROW_FIELD),
            u.take(_ROW_FIELD),
            u.take(_IDX_FIELD),
        )
    if kind == _Kind.MOVE:
        magnitude = u.take(_XB_FIELD)
        sign = u.take(1)
        return MoveOp(
            -magnitude if sign else magnitude,
            u.take(_ROW_FIELD),
            u.take(_ROW_FIELD),
            u.take(_IDX_FIELD),
            u.take(_IDX_FIELD),
        )
    raise ValueError(f"unknown operation kind {kind}")


#: Payload layout per kind: the op class plus (field name, width) pairs,
#: LSB-first (the WRITE value field width is the runtime ``word_size``,
#: so it is filled in by :func:`decode_many`).
_LAYOUT = {
    _Kind.XB_MASK: (
        CrossbarMaskOp,
        (("start", _XB_FIELD), ("stop", _XB_FIELD), ("step", _XB_FIELD)),
    ),
    _Kind.ROW_MASK: (
        RowMaskOp,
        (("start", _ROW_FIELD), ("stop", _ROW_FIELD), ("step", _ROW_FIELD)),
    ),
    _Kind.READ: (ReadOp, (("index", _IDX_FIELD),)),
    _Kind.WRITE: (WriteOp, None),
    _Kind.LOGIC_H: (
        LogicHOp,
        (("gate", _GATE_FIELD), ("in_a", _IDX_FIELD), ("in_b", _IDX_FIELD),
         ("out", _IDX_FIELD), ("p_a", _PART_FIELD), ("p_b", _PART_FIELD),
         ("p_out", _PART_FIELD), ("p_end", _PART_FIELD),
         ("p_step", _PART_FIELD)),
    ),
    _Kind.LOGIC_V: (
        LogicVOp,
        (("gate", _GATE_FIELD), ("in_row", _ROW_FIELD),
         ("out_row", _ROW_FIELD), ("index", _IDX_FIELD)),
    ),
    _Kind.MOVE: (
        MoveOp,
        (("dist", _XB_FIELD), ("sign", 1), ("src_row", _ROW_FIELD),
         ("dst_row", _ROW_FIELD), ("src_index", _IDX_FIELD),
         ("dst_index", _IDX_FIELD)),
    ),
}


def decode_many(words, word_size: int = 32) -> "tuple[MicroOp, ...]":
    """Bulk :func:`decode`: one vectorized pass over many operation words.

    Semantically identical to ``tuple(decode(w) for w in words)`` but an
    order of magnitude faster on large programs: field extraction and the
    ``__post_init__`` invariant checks run as NumPy array operations over
    the whole batch, objects are built by direct ``__dict__`` fill (the
    per-field ``object.__setattr__`` dance of frozen dataclasses is the
    dominant scalar cost), and duplicate words share one decoded object
    (micro-ops are frozen, so sharing is safe).  This is the restore path
    of the persistent program cache, where per-op Python decoding would
    otherwise eat most of the warm-start win.
    """
    import numpy as np

    try:
        if isinstance(words, np.ndarray) and words.dtype == np.uint64:
            arr = words
        else:
            arr = np.asarray(list(words), dtype=np.uint64)
    except (OverflowError, TypeError, ValueError) as error:
        raise ValueError(f"operation words must fit in 64 bits: {error}")
    if arr.ndim != 1:
        raise ValueError("decode_many expects a flat sequence of words")
    if len(arr) == 0:
        return ()
    # Dedup by hand (np.unique pulls in numpy.ma on first use — a large
    # one-time import that would be charged to the first warm start).
    order = np.argsort(arr, kind="stable")
    ranked = arr[order]
    fresh = np.empty(len(ranked), dtype=bool)
    fresh[0] = True
    np.not_equal(ranked[1:], ranked[:-1], out=fresh[1:])
    unique = ranked[fresh]
    inverse = np.empty(len(arr), dtype=np.int64)
    inverse[order] = np.cumsum(fresh) - 1
    kinds = (unique >> np.uint64(61)).astype(np.int64)
    payload = unique & np.uint64((1 << 61) - 1)
    gate_table = {int(gate): gate for gate in GateType}
    decoded: "list[MicroOp | None]" = [None] * len(unique)

    for kind_value in sorted(set(kinds.tolist())):
        kind = _Kind(kind_value)  # raises on an unknown tag, like decode()
        cls, layout = _LAYOUT[kind]
        if layout is None:  # WRITE: the value width is the word size
            layout = (("index", _IDX_FIELD), ("value", word_size))
        positions = np.nonzero(kinds == kind_value)[0]
        sub = payload[positions]
        names = []
        columns = []
        shift = 0
        for name, width in layout:
            names.append(name)
            columns.append(
                (sub >> np.uint64(shift)) & np.uint64((1 << width) - 1)
            )
            shift += width
        raw = dict(zip(names, columns))

        # The batched equivalents of each op's __post_init__ invariants —
        # a rejected batch raises exactly like the scalar constructor.
        if kind == _Kind.LOGIC_H:
            if (raw["p_a"] > raw["p_b"]).any():
                raise ValueError("encoding requires p_a <= p_b")
            if (raw["p_step"] == 0).any():
                raise ValueError("p_step must be positive")
            if (raw["p_end"] < raw["p_out"]).any():
                raise ValueError("p_end must be >= p_out")
            if ((raw["p_end"] - raw["p_out"]) % raw["p_step"]).any():
                raise ValueError("p_step must divide p_end - p_out")
        elif kind == _Kind.LOGIC_V:
            if (raw["gate"] == int(GateType.NOR)).any():
                raise ValueError("vertical operations do not support NOR")

        columns = [column.tolist() for column in columns]
        if "gate" in raw:
            columns[names.index("gate")] = [
                gate_table[value] for value in columns[names.index("gate")]
            ]
        if kind == _Kind.MOVE:
            sign_at = names.index("sign")
            dist_at = names.index("dist")
            columns[dist_at] = [
                -dist if sign else dist
                for dist, sign in zip(columns[dist_at], columns[sign_at])
            ]
            del columns[sign_at], names[sign_at]

        new = cls.__new__
        for position, values in zip(positions.tolist(), zip(*columns)):
            op = new(cls)
            op.__dict__.update(zip(names, values))
            decoded[position] = op

    return tuple(map(decoded.__getitem__, inverse.tolist()))
