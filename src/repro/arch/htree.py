"""Hierarchical H-tree inter-crossbar communication (Section III-F).

Crossbars are numbered so that each group of the recursive hierarchy shares
a binary prefix (e.g. group ``10xx`` contains crossbars 1000..1011). A
distributed move is described by the crossbar-mask triple
``(XB_start, XB_step, XB_end)`` — where ``XB_step`` is a power of 4 — plus a
uniform distance ``XB_dist``; every masked crossbar ``XB`` sends its word to
``XB + XB_dist``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.arch.masks import RangeMask


def _is_power_of(value: int, base: int) -> bool:
    if value < 1:
        return False
    while value % base == 0:
        value //= base
    return value == 1


@dataclass(frozen=True)
class HTree:
    """An H-tree over ``crossbars`` leaves (must be a power of two).

    Groups at level ``l`` contain ``4**l`` crossbars sharing a prefix
    (levels step by factors of 4 as in Figure 9; for crossbar counts that
    are odd powers of two the top level holds a factor-2 group).
    """

    crossbars: int

    def __post_init__(self) -> None:
        if self.crossbars < 1 or (self.crossbars & (self.crossbars - 1)):
            raise ValueError("crossbars must be a positive power of two")

    @property
    def levels(self) -> int:
        """Number of factor-4 levels below the root."""
        return math.ceil(math.log(self.crossbars, 4)) if self.crossbars > 1 else 0

    def group(self, crossbar: int, level: int) -> range:
        """The group of ``4**level`` crossbars containing ``crossbar``."""
        size = min(4**level, self.crossbars)
        start = (crossbar // size) * size
        return range(start, start + size)

    def level_for_distance(self, src: int, dst: int) -> int:
        """Smallest level whose group contains both endpoints.

        This is the height in the tree that a transfer must climb — the
        latency model charges one hop per level up plus one per level down.
        """
        level = 0
        while self.group(src, level) != self.group(dst, level):
            level += 1
        return level

    def hop_count(self, src: int, dst: int) -> int:
        """Number of H-tree segments traversed between two crossbars."""
        if src == dst:
            return 0
        return 2 * self.level_for_distance(src, dst)


def move_pairs(mask: RangeMask, dist: int, crossbars: int) -> List[Tuple[int, int]]:
    """Expand a masked move into its (source, destination) crossbar pairs."""
    pairs = []
    for src in mask.indices():
        dst = src + dist
        if not 0 <= dst < crossbars:
            raise ValueError(f"move destination {dst} out of range")
        pairs.append((src, dst))
    return pairs


def validate_move_pattern(mask: RangeMask, dist: int, crossbars: int) -> None:
    """Check a distributed move against the Section III-F restrictions.

    - ``XB_step`` must be a power of 4 (so each pair lives in an aligned
      sub-tree and the interconnect switches can be set per group);
    - all destinations must be in range;
    - a crossbar may not be both a source and a destination in the same
      operation (the bus drives each segment in one direction per cycle);
    - no two pairs may share a destination.
    """
    if dist == 0:
        raise ValueError("move distance must be non-zero")
    if not _is_power_of(mask.step, 4) and len(mask) > 1:
        raise ValueError("XB_step must be a power of 4")
    pairs = move_pairs(mask, dist, crossbars)
    sources = {src for src, _ in pairs}
    destinations = [dst for _, dst in pairs]
    if len(set(destinations)) != len(destinations):
        raise ValueError("move pattern has colliding destinations")
    overlap = sources.intersection(destinations)
    if overlap:
        raise ValueError(f"crossbars {sorted(overlap)} are both source and destination")


def move_cycles(mask: RangeMask, dist: int, crossbars: int) -> int:
    """Latency (cycles) of a distributed move under the H-tree model.

    All pairs transfer concurrently; the operation completes when the pair
    spanning the most levels finishes, at one cycle per traversed segment.
    A single-crossbar H-tree degenerates to zero levels.
    """
    tree = HTree(crossbars)
    pairs = move_pairs(mask, dist, crossbars)
    return max(tree.hop_count(src, dst) for src, dst in pairs)
