"""Range-based masks (Section III-B).

Crossbar and row masks follow the pattern ``{start, start + step, ...,
stop}`` where ``step`` divides ``stop - start``. The same representation is
reused for the tensor library's slice views, since Python ``slice`` objects
with positive steps map onto it directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RangeMask:
    """An inclusive range pattern ``{start, start+step, ..., stop}``.

    Unlike Python slices, ``stop`` is *inclusive* (it is the last selected
    index), matching the microarchitecture's encoding where the triple is
    stored directly in crossbar periphery registers.
    """

    start: int
    stop: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError("step must be positive")
        if self.stop < self.start:
            raise ValueError("stop must be >= start")
        if (self.stop - self.start) % self.step:
            raise ValueError("step must divide stop - start")
        if self.start < 0:
            raise ValueError("start must be non-negative")

    @classmethod
    def all(cls, length: int) -> "RangeMask":
        """Mask selecting every index in ``[0, length)``."""
        if length <= 0:
            raise ValueError("length must be positive")
        return cls(0, length - 1, 1)

    @classmethod
    def single(cls, index: int) -> "RangeMask":
        """Mask selecting exactly one index."""
        return cls(index, index, 1)

    @classmethod
    def from_slice(cls, sl: slice, length: int) -> "RangeMask":
        """Convert a Python slice (positive step) over ``length`` elements."""
        start, stop, step = sl.indices(length)
        if step <= 0:
            raise ValueError("only positive slice steps are supported")
        count = max(0, (stop - start + step - 1) // step)
        if count == 0:
            raise ValueError("empty slice has no mask representation")
        return cls(start, start + (count - 1) * step, step)

    def __len__(self) -> int:
        return (self.stop - self.start) // self.step + 1

    def __contains__(self, index: int) -> bool:
        return (
            self.start <= index <= self.stop
            and (index - self.start) % self.step == 0
        )

    def indices(self) -> range:
        """The selected indices as a Python range."""
        return range(self.start, self.stop + 1, self.step)

    def boolean(self, length: int) -> np.ndarray:
        """Expand into a boolean vector of the given length (Section III-B)."""
        if self.stop >= length:
            raise ValueError(f"mask stop {self.stop} out of bounds for {length}")
        out = np.zeros(length, dtype=bool)
        out[self.start : self.stop + 1 : self.step] = True
        return out

    def compose(self, inner: "RangeMask") -> "RangeMask":
        """Mask selecting ``inner``'s pattern *within* this mask's indices.

        Used by tensor views: slicing a view composes the two range
        patterns. ``outer.compose(inner)`` selects ``outer[i]`` for each
        ``i`` in ``inner``.
        """
        if inner.stop >= len(self):
            raise ValueError("inner mask out of bounds")
        start = self.start + inner.start * self.step
        step = self.step * inner.step
        stop = start + (len(inner) - 1) * step
        return RangeMask(start, stop, step)
