"""PIM architecture configuration (Table III of the paper).

The paper evaluates an 8 GB memory of 64k crossbars, each a 1024x1024
memristor array with 32 transistor-delimited partitions, a 32-bit word size
and a 300 MHz clock. All of these are configurable here; tests use smaller
memories because cycle counts per macro-instruction are independent of the
crossbar count (operations are broadcast to all crossbars).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PIMConfig:
    """Static parameters of a digital memristive PIM memory.

    Attributes:
        crossbars: number of crossbar arrays (warps) in the memory. Must be a
            power of 4 so the H-tree is complete (the paper uses 64k).
        rows: number of rows (threads) per crossbar, ``h``.
        columns: number of bitlines per crossbar, ``w``.
        partitions: number of dynamically-connected partitions, ``N_p``.
        word_size: word size ``N`` in bits; the ISA and the microarchitecture
            share it. The paper sets ``word_size == partitions == 32``.
        frequency_hz: PIM clock frequency, used only to convert cycles
            into operations per second via Eq. (1).
        scratch_registers: register indices reserved at the top of each row
            for driver temporaries (not allocatable by the tensor library).
    """

    crossbars: int = 16
    rows: int = 1024
    columns: int = 1024
    partitions: int = 32
    word_size: int = 32
    frequency_hz: float = 300e6
    scratch_registers: int = 16

    def __post_init__(self) -> None:
        if self.columns % self.partitions:
            raise ValueError("columns must be divisible by partitions")
        if self.columns % self.word_size:
            raise ValueError("columns must be divisible by word_size")
        if self.word_size > 64:
            raise ValueError("word_size larger than 64 bits is not supported")
        if self.partitions != self.word_size:
            # The paper generalizes to differing values; this reproduction,
            # like the paper's evaluation, keeps them equal so that one
            # strided word spans exactly one bit per partition.
            raise ValueError("partitions must equal word_size in this model")
        if self.crossbars < 1 or (self.crossbars & (self.crossbars - 1)):
            raise ValueError("crossbars must be a positive power of two")
        if self.registers <= self.scratch_registers:
            raise ValueError(
                "not enough registers: need more than scratch_registers "
                f"({self.registers} <= {self.scratch_registers})"
            )

    @property
    def registers(self) -> int:
        """Registers per thread, ``R = w / N`` (intra-partition indices)."""
        return self.columns // self.word_size

    @property
    def user_registers(self) -> int:
        """Registers available to the tensor-library allocator."""
        return self.registers - self.scratch_registers

    @property
    def partition_width(self) -> int:
        """Columns per partition, ``w / N_p``."""
        return self.columns // self.partitions

    @property
    def total_rows(self) -> int:
        """Total rows of the memory — the element-parallelism of Eq. (1)."""
        return self.crossbars * self.rows

    @property
    def capacity_bits(self) -> int:
        """Total storage capacity of the simulated memory in bits."""
        return self.crossbars * self.rows * self.columns

    def scratch_register_indices(self) -> range:
        """The reserved (driver-owned) register indices."""
        return range(self.user_registers, self.registers)


def paper_config() -> PIMConfig:
    """The exact parameters of Table III (8 GB, 64k crossbars, 300 MHz).

    Simulating the full 8 GB image is possible but slow in pure Python; this
    is provided so throughput numbers can be derived at paper scale.
    """
    return PIMConfig(
        crossbars=65536,
        rows=1024,
        columns=1024,
        partitions=32,
        word_size=32,
        frequency_hz=300e6,
    )


def small_config(crossbars: int = 4, rows: int = 64) -> PIMConfig:
    """A small memory for unit tests (identical per-op semantics)."""
    return PIMConfig(crossbars=crossbars, rows=rows)
