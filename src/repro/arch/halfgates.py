"""The half-gates technique (Section III-D2, Table I).

A partitioned crossbar has one single-column decoder per partition, each
receiving a 3-bit opcode. A stateful-logic gate whose inputs and output live
in different partitions is realized by *half-gates*: the input partition's
decoder applies only the input voltages, the output partition's decoder
applies only the output voltages, and the combination forms a valid gate.

This module provides the Table I opcode set, the expansion of the restricted
partition pattern (p_a, p_b, p_out, p_end, p_step) into concrete gates and
per-partition opcodes, and the deduction of transistor selects from the
opcodes (restriction 3 of Section III-D3).
"""

from __future__ import annotations

import enum
from typing import List, Tuple

from repro.arch.micro_ops import GateType, LogicHOp


class Opcode(enum.IntEnum):
    """Per-partition 3-bit opcodes (Table I).

    The first bit (MSB, value 4) enables the InA input decoder, the second
    bit (value 2) enables the InB input decoder, and the last bit (value 1)
    enables the Out output decoder. ``NONE`` (000) applies no voltages at
    all, used for partitions between the input and output half-gates.
    """

    NONE = 0b000  # -
    OUT = 0b001  # ? -> Out
    INB = 0b010  # (?, InB) -> ?
    INB_OUT = 0b011  # (?, InB) -> Out
    INA = 0b100  # (InA, ?) -> ?
    INA_OUT = 0b101  # (InA, ?) -> Out
    INA_INB = 0b110  # (InA, InB) -> ?
    INA_INB_OUT = 0b111  # (InA, InB) -> Out

    @property
    def applies_in_a(self) -> bool:
        return bool(self.value & 0b100)

    @property
    def applies_in_b(self) -> bool:
        return bool(self.value & 0b010)

    @property
    def applies_out(self) -> bool:
        return bool(self.value & 0b001)


def opcode_table() -> "dict[int, str]":
    """Render Table I: index -> human-readable opcode string."""
    names = {
        Opcode.NONE: "-",
        Opcode.OUT: "? -> Out",
        Opcode.INB: "(?, InB) -> ?",
        Opcode.INB_OUT: "(?, InB) -> Out",
        Opcode.INA: "(InA, ?) -> ?",
        Opcode.INA_OUT: "(InA, ?) -> Out",
        Opcode.INA_INB: "(InA, InB) -> ?",
        Opcode.INA_INB_OUT: "(InA, InB) -> Out",
    }
    return {int(op): names[op] for op in Opcode}


# A concrete gate: (input partitions tuple, output partition). For INIT and
# NOT gates some input slots are unused and omitted from the tuple.
Gate = Tuple[Tuple[int, ...], int]


def expand_pattern(op: LogicHOp, partitions: int) -> List[Gate]:
    """Expand a LogicHOp's partition pattern into its concurrent gates.

    Returns a list of ``(input_partitions, output_partition)`` tuples and
    validates that every referenced partition is in range and that the
    sections spanned by distinct gates do not intersect (the semi-parallel
    validity requirement of Section III-D1).
    """
    gates: List[Gate] = []
    for k in range(op.gate_count):
        offset = k * op.p_step
        out_p = op.p_out + offset
        if op.gate == GateType.NOR:
            inputs: Tuple[int, ...] = (op.p_a + offset, op.p_b + offset)
        elif op.gate == GateType.NOT:
            inputs = (op.p_a + offset,)
        else:  # INIT0 / INIT1 take no inputs
            inputs = ()
        involved = inputs + (out_p,)
        if any(not 0 <= p < partitions for p in involved):
            raise ValueError(
                f"gate {k} of {op} references partition outside [0, {partitions})"
            )
        gates.append((inputs, out_p))

    # Sections (the min..max partition span of each gate) must be disjoint.
    spans = sorted(
        (min(inputs + (out,)), max(inputs + (out,))) for inputs, out in gates
    )
    for (_, hi), (lo, _) in zip(spans, spans[1:]):
        if lo <= hi:
            raise ValueError(f"intersecting gate sections in {op}")
    return gates


def opcodes_for_pattern(op: LogicHOp, partitions: int) -> List[Opcode]:
    """Compute the per-partition opcode vector for a horizontal operation.

    Each partition receives the OR of the roles it plays across the
    operation's gates (a partition may hold both inputs, or an input and
    the output, of the same gate).
    """
    codes = [0] * partitions
    for inputs, out_p in expand_pattern(op, partitions):
        if op.gate in (GateType.NOR, GateType.NOT):
            codes[inputs[0]] |= 0b100  # InA role
        if op.gate == GateType.NOR:
            codes[inputs[1]] |= 0b010  # InB role
        codes[out_p] |= 0b001  # Out role
    return [Opcode(code) for code in codes]


def transistor_selects(op: LogicHOp, partitions: int) -> List[bool]:
    """Deduce the N-1 inter-partition transistor selects from the opcodes.

    Returns a list of ``partitions - 1`` booleans where ``True`` means the
    transistor between partition ``i`` and ``i + 1`` is *conducting*.
    Restriction 3 of Section III-D3: for ``p_a <= p_out``, a transistor is
    non-conducting only if the partition to its left has an ``* -> Out``
    opcode or the partition to its right has an ``(InA, *) -> *`` opcode;
    the ``p_a > p_out`` case is mirrored.
    """
    codes = opcodes_for_pattern(op, partitions)
    selects = []
    left_to_right = op.p_a <= op.p_out
    for i in range(partitions - 1):
        left, right = codes[i], codes[i + 1]
        if left_to_right:
            non_conducting = left.applies_out or right.applies_in_a
        else:
            non_conducting = left.applies_in_a or right.applies_out
        selects.append(not non_conducting)
    return selects


def sections_from_selects(selects: List[bool]) -> List[range]:
    """Split the partition axis into sections given the transistor selects.

    A section is a maximal run of partitions connected by conducting
    transistors. Used by tests to verify that the deduced selects isolate
    each concurrent gate into its own section.
    """
    sections: List[range] = []
    start = 0
    for i, conducting in enumerate(selects):
        if not conducting:
            sections.append(range(start, i + 1))
            start = i + 1
    sections.append(range(start, len(selects) + 1))
    return sections
