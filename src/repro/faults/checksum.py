"""Per-region checksum verification of compiled-program outputs.

``verify="checksum"`` on ``Driver.run_program`` / ``pim.compile`` turns
every program replay into a self-checking transaction: after the replay
finishes, the driver checksums the program's *written regions* (derived
statically from the micro-op stream, below), opens the post-op fault
window, then re-checksums and compares. A transient flip or stuck-at
clamp that lands inside an output region between the two walks is
reported as a :class:`ChecksumError` naming the corrupted regions, which
the recovery layer (``pim.compile`` retry → allocator quarantine →
recompile) consumes.

Checksums are computed host-side over the DMA-visible word image — the
read happens outside the PIM cycle model, exactly like the device's
bulk ``dump_array`` path — so enabling verification changes no cycle
count and no memory bit.

This module deliberately imports nothing from the driver or simulator
packages (only the micro-op dataclasses), so the driver can import it
without cycles.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.config import PIMConfig
from repro.arch.micro_ops import (
    CrossbarMaskOp,
    LogicHOp,
    LogicVOp,
    MoveOp,
    ReadOp,
    RowMaskOp,
    WriteOp,
)

#: A written region: ``(reg, (xb_start, xb_stop, xb_step), (row_start,
#: row_stop, row_step))`` with *inclusive* stops (RangeMask semantics).
Region = Tuple[int, Tuple[int, int, int], Tuple[int, int, int]]


class ChecksumError(RuntimeError):
    """A verified replay left corrupted bits in its output regions.

    ``regions`` lists the mismatched :data:`Region` descriptors (or is
    ``None`` when the check ran at whole-image granularity, as on the
    pooled backend), so recovery can map the damage back to allocator
    cells and quarantine them.
    """

    def __init__(self, name: str, regions: Optional[Sequence[Region]]):
        self.program_name = name
        self.regions = tuple(regions) if regions is not None else None
        where = (
            f"{len(self.regions)} region(s)" if self.regions is not None
            else "the memory image"
        )
        super().__init__(
            f"checksum mismatch replaying {name!r}: faults corrupted {where}"
        )


def written_regions(ops, config: PIMConfig) -> Tuple[Region, ...]:
    """Statically derive the regions a micro-op stream writes.

    Walks the stream tracking the crossbar/row mask state the way the
    chip would; an op issued before any mask is charged conservatively
    to the full range. The result over-approximates (a masked-out
    partition still counts the whole word) but never misses a written
    cell, which is the property detection needs.
    """
    full_xb = (0, config.crossbars - 1, 1)
    full_row = (0, config.rows - 1, 1)
    xb, row = full_xb, full_row
    seen = set()
    regions: List[Region] = []

    def add(reg: int, xbr, rowr) -> None:
        region = (reg, xbr, rowr)
        if region not in seen:
            seen.add(region)
            regions.append(region)

    for op in ops:
        if isinstance(op, CrossbarMaskOp):
            xb = (op.start, op.stop, op.step)
        elif isinstance(op, RowMaskOp):
            row = (op.start, op.stop, op.step)
        elif isinstance(op, WriteOp):
            add(op.index, xb, row)
        elif isinstance(op, LogicHOp):
            add(op.out, xb, row)
        elif isinstance(op, LogicVOp):
            add(op.index, xb, (op.out_row, op.out_row, 1))
        elif isinstance(op, MoveOp):
            start = max(0, xb[0] + op.dist)
            stop = min(config.crossbars - 1, xb[1] + op.dist)
            if stop >= start and (stop - start) % xb[2] == 0:
                dst_xb = (start, stop, xb[2])
            else:  # clipped asymmetrically: fall back to a dense span
                dst_xb = (start, max(start, stop), 1)
            add(op.dst_index, dst_xb, (op.dst_row, op.dst_row, 1))
        elif isinstance(op, ReadOp):
            pass
    return tuple(regions)


def program_regions(program, config: PIMConfig) -> Tuple[Region, ...]:
    """:func:`written_regions` of a ``MicroProgram``, memoized on it."""
    cached = program.__dict__.get("_verify_regions")
    if cached is None:
        cached = written_regions(program.ops, config)
        program.__dict__["_verify_regions"] = cached
    return cached


def region_checksums(
    words: np.ndarray, regions: Sequence[Region]
) -> Tuple[int, ...]:
    """CRC32 per region over the ``(xb, reg, row)`` word image."""
    sums = []
    for reg, (xs, xe, xstep), (rs, re_, rstep) in regions:
        view = words[xs : xe + 1 : xstep, reg, rs : re_ + 1 : rstep]
        sums.append(zlib.crc32(np.ascontiguousarray(view).tobytes()))
    return tuple(sums)


def image_checksum(words: np.ndarray) -> int:
    """CRC32 of a whole word image (pool-level coarse verification)."""
    return zlib.crc32(np.ascontiguousarray(words).tobytes())
