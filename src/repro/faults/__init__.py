"""Fault injection & resilience: seeded fault models, detection, recovery.

The subsystem has three layers, threaded through the whole stack:

- **Injection** (:mod:`repro.faults.plan`): a seeded, config-fingerprinted
  :class:`FaultPlan` modeling stuck-at-0/1 cells and transient bit flips
  (applied at dispatch boundaries so both replay engines agree), plus
  process-level worker failures and timing stalls for the pool and the
  serving tier. Install with ``backend.install_faults(plan)`` or
  ``Server(fault_plan=plan)``; the chaos seed rotates in CI via
  ``REPRO_FAULT_SEED`` (:func:`resolve_fault_seed`).
- **Detection** (:mod:`repro.faults.checksum`): per-region CRC checks on
  compiled-program outputs (``verify="checksum"``), surfaced as
  :class:`ChecksumError` and counted by ``Backend.fault_counters()``.
- **Recovery** (in the consuming layers): ``pim.compile`` retries,
  quarantines corrupted cells in the allocator and recompiles;
  ``PooledBackend`` quarantines a failed shard and replays its portion
  on a fresh worker; ``Server.submit`` enforces deadlines with retries
  and exponential backoff.
"""

from repro.faults.checksum import (
    ChecksumError,
    image_checksum,
    program_regions,
    region_checksums,
    written_regions,
)
from repro.faults.plan import (
    STUCK0,
    STUCK1,
    FaultOverlay,
    FaultPlan,
    ShardError,
    WorkerFault,
    resolve_fault_seed,
)

__all__ = [
    "FaultPlan",
    "FaultOverlay",
    "ChecksumError",
    "ShardError",
    "WorkerFault",
    "STUCK0",
    "STUCK1",
    "resolve_fault_seed",
    "written_regions",
    "program_regions",
    "region_checksums",
    "image_checksum",
]
