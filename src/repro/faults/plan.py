"""Deterministic seeded fault models: cell, process, and timing faults.

Real memristive crossbars are not the perfect arrays the paper assumes:
cells wear out into stuck-at-0/1 states and transient upsets flip bits
between operations (see the endurance discussion in Section VI). A
served deployment adds process-level failure modes on top of the device
physics: a pool worker dying mid-batch, a DMA or compile stall blowing
a latency budget. :class:`FaultPlan` describes all of these as one
deterministic, seeded artifact so every chaos test replays from a
single integer seed — CI rotates it through ``REPRO_FAULT_SEED``.

The key design decision is *where* cell faults strike. They are applied
by the driver/backend dispatch layer at operation boundaries — one
:meth:`FaultOverlay.tick` after each macro dispatch or program replay —
never inside the micro-op interpreter. Both program-replay engines (the
vectorized super-step engine and the per-op thunk engine of
:mod:`repro.sim.replay`) therefore observe bit-identical fault behaviour
by construction: each sees the same memory image before and after every
dispatch unit. With no plan installed the hot paths stay untouched (a
single ``is None`` test per dispatch), so the disabled configuration is
bit- and cycle-identical to a build without the fault layer.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.arch.config import PIMConfig
from repro.driver.program import config_fingerprint

#: Fault kinds a cell can carry (the taxonomy of docs/architecture.md §11).
STUCK0 = "stuck0"
STUCK1 = "stuck1"


class WorkerFault(RuntimeError):
    """An injected (or real) process-level failure of one worker.

    Raised mid-batch by a pool shard or a serving worker when the
    installed :class:`FaultPlan` schedules it; the recovery layers
    (shard failover, serving retries) treat it as a crashed process.
    """


class ShardError(RuntimeError):
    """A pool worker failure annotated with shard id and work context.

    Wraps the original exception (available as ``__cause__``) so a
    failure deep inside a worker backend surfaces as *which shard* was
    running *which unit of work* instead of a bare traceback.
    """

    def __init__(self, shard: int, warps: Tuple[int, int], context: str,
                 cause: BaseException):
        self.shard = shard
        self.warps = warps
        self.context = context
        super().__init__(
            f"pool shard {shard} (warps {warps[0]}..{warps[1]}) failed "
            f"during {context}: {cause!r}"
        )


def resolve_fault_seed(default: int = 0) -> int:
    """The chaos seed: ``REPRO_FAULT_SEED`` when set, else ``default``."""
    env = os.environ.get("REPRO_FAULT_SEED", "").strip()
    return int(env) if env else default


class FaultPlan:
    """A seeded, config-fingerprinted schedule of injected faults.

    Cell faults (need a ``config`` to validate/sample addresses):

    - ``stuck``: explicit ``(xb, reg, row, bit, kind)`` entries with
      ``kind`` in ``{"stuck0", "stuck1"}`` — the cell is clamped to the
      stuck value at every fault tick from ``stuck_from_tick`` on
      (wear-out: the cell is healthy before that tick).
    - ``flips``: explicit ``(tick, xb, reg, row, bit)`` transient
      upsets, applied exactly once when the overlay reaches ``tick``.
    - ``random_stuck0``/``random_stuck1``/``random_flips``: counts of
      faults sampled from the seeded RNG over the whole geometry;
      random flip ticks are drawn from ``flip_window`` (inclusive).

    Process faults (no config needed):

    - ``worker_failures``: ``(worker_index, unit_index)`` pairs; the
      pool raises :class:`WorkerFault` from that worker on its N-th
      dispatched unit of work.
    - ``serve_failures`` / ``fail_every``: request sequence numbers
      whose first ``serve_fail_attempts`` attempts raise
      :class:`WorkerFault` inside the serving worker (``fail_every``
      selects every N-th request, phased by the seed).
    - ``serve_stalls`` / ``stall_every`` + ``stall_s``: injected
      DMA/compile stalls, in simulated seconds, added to the request's
      service time (used to exercise deadlines).
    """

    def __init__(
        self,
        config: Optional[PIMConfig] = None,
        seed: int = 0,
        *,
        stuck: Iterable[Tuple[int, int, int, int, str]] = (),
        flips: Iterable[Tuple[int, int, int, int, int]] = (),
        random_stuck0: int = 0,
        random_stuck1: int = 0,
        random_flips: int = 0,
        flip_window: Tuple[int, int] = (1, 64),
        stuck_from_tick: int = 0,
        worker_failures: Iterable[Tuple[int, int]] = (),
        serve_failures: Iterable[int] = (),
        serve_fail_attempts: int = 1,
        fail_every: int = 0,
        serve_stalls: Iterable[Tuple[int, float]] = (),
        stall_every: int = 0,
        stall_s: float = 0.0,
    ):
        self.seed = int(seed)
        self.config_fingerprint = (
            config_fingerprint(config) if config is not None else None
        )
        self.stuck_from_tick = int(stuck_from_tick)
        stuck = [tuple(entry) for entry in stuck]
        flips = [tuple(entry) for entry in flips]
        wants_random = random_stuck0 or random_stuck1 or random_flips
        if wants_random:
            if config is None:
                raise ValueError("random cell faults require a config")
            rng = np.random.default_rng(self.seed)
            for count, kind in ((random_stuck0, STUCK0), (random_stuck1, STUCK1)):
                for _ in range(count):
                    stuck.append(self._sample_cell(rng, config) + (kind,))
            lo, hi = flip_window
            for _ in range(random_flips):
                tick = int(rng.integers(lo, hi + 1))
                flips.append((tick,) + self._sample_cell(rng, config))
        if config is not None:
            for xb, reg, row, bit, kind in stuck:
                self._check_cell(config, xb, reg, row, bit)
                if kind not in (STUCK0, STUCK1):
                    raise ValueError(f"unknown stuck kind {kind!r}")
            for tick, xb, reg, row, bit in flips:
                if tick < 1:
                    raise ValueError("flip ticks start at 1")
                self._check_cell(config, xb, reg, row, bit)
        self.stuck = tuple(stuck)
        self.flips = tuple(sorted(flips))
        self.worker_failures = frozenset(
            (int(k), int(n)) for k, n in worker_failures
        )
        self.serve_failures = frozenset(int(s) for s in serve_failures)
        self.serve_fail_attempts = int(serve_fail_attempts)
        self.fail_every = int(fail_every)
        stall_items = (
            serve_stalls.items() if hasattr(serve_stalls, "items") else serve_stalls
        )
        self.serve_stalls = {int(s): float(sec) for s, sec in stall_items}
        self.stall_every = int(stall_every)
        self.stall_s = float(stall_s)

    @staticmethod
    def _sample_cell(rng, config: PIMConfig) -> Tuple[int, int, int, int]:
        return (
            int(rng.integers(0, config.crossbars)),
            int(rng.integers(0, config.registers)),
            int(rng.integers(0, config.rows)),
            int(rng.integers(0, config.word_size)),
        )

    @staticmethod
    def _check_cell(config: PIMConfig, xb: int, reg: int, row: int, bit: int):
        if not (0 <= xb < config.crossbars and 0 <= reg < config.registers
                and 0 <= row < config.rows and 0 <= bit < config.word_size):
            raise ValueError(
                f"cell ({xb}, {reg}, {row}, bit {bit}) outside the geometry"
            )

    # ------------------------------------------------------------------
    # Cell faults: the memory overlay
    # ------------------------------------------------------------------
    def overlay_for(self, words: np.ndarray, config: PIMConfig) -> "FaultOverlay":
        """Bind the plan's cell faults to one memory image."""
        if (self.config_fingerprint is not None
                and config_fingerprint(config) != self.config_fingerprint):
            raise ValueError(
                "fault plan was built for a different geometry "
                f"({self.config_fingerprint} != {config_fingerprint(config)})"
            )
        return FaultOverlay(self, words, config)

    # ------------------------------------------------------------------
    # Process faults: pool shards
    # ------------------------------------------------------------------
    def worker_fails(self, worker: int, unit: int) -> bool:
        """Should pool worker ``worker`` fail on its ``unit``-th dispatch?"""
        return (worker, unit) in self.worker_failures

    # ------------------------------------------------------------------
    # Process faults: serving tier
    # ------------------------------------------------------------------
    def serve_should_fail(self, seq: int, attempt: int) -> bool:
        """Should request ``seq``'s ``attempt``-th try raise WorkerFault?"""
        if attempt >= self.serve_fail_attempts:
            return False
        if seq in self.serve_failures:
            return True
        if self.fail_every:
            return seq % self.fail_every == self.seed % self.fail_every
        return False

    def serve_stall_s(self, seq: int, attempt: int) -> float:
        """Injected stall (simulated seconds) for one request attempt."""
        stall = self.serve_stalls.get(seq, 0.0)
        if not stall and self.stall_every and attempt == 0:
            if seq % self.stall_every == self.seed % self.stall_every:
                stall = self.stall_s
        return stall


class FaultOverlay:
    """A plan's cell faults bound to one ``(xb, reg, row)`` word image.

    :meth:`tick` is called by the owning dispatch layer after every
    operation boundary: it applies any transient flips scheduled at the
    new tick, then clamps active stuck-at cells (a stuck cell cannot
    hold the opposite value, so whatever the operation wrote is forced
    back at the next boundary). Counters mirror the style of the
    driver's emit/replay counters and surface through
    ``Backend.fault_counters()``.
    """

    def __init__(self, plan: FaultPlan, words: np.ndarray, config: PIMConfig):
        self.plan = plan
        self.words = words
        self.config = config
        self.ticks = 0
        self.counters: Dict[str, int] = {"ticks": 0, "flips": 0, "stuck_clamps": 0}
        one = words.dtype.type(1)
        stuck0: Dict[Tuple[int, int, int], np.ndarray] = {}
        stuck1: Dict[Tuple[int, int, int], np.ndarray] = {}
        for xb, reg, row, bit, kind in plan.stuck:
            table = stuck1 if kind == STUCK1 else stuck0
            cell = (xb, reg, row)
            table[cell] = table.get(cell, words.dtype.type(0)) | (one << words.dtype.type(bit))
        self._stuck0 = tuple((cell, mask) for cell, mask in sorted(stuck0.items()))
        self._stuck1 = tuple((cell, mask) for cell, mask in sorted(stuck1.items()))
        self._flips = plan.flips
        self._next_flip = 0

    def tick(self) -> None:
        """One fault window: flips due at this tick, then stuck clamps."""
        self.ticks += 1
        self.counters["ticks"] += 1
        tick = self.ticks
        words = self.words
        one = words.dtype.type(1)
        while (self._next_flip < len(self._flips)
               and self._flips[self._next_flip][0] <= tick):
            _, xb, reg, row, bit = self._flips[self._next_flip]
            self._next_flip += 1
            words[xb, reg, row] ^= one << words.dtype.type(bit)
            self.counters["flips"] += 1
        if tick < self.plan.stuck_from_tick:
            return
        for (xb, reg, row), mask in self._stuck1:
            old = words[xb, reg, row]
            new = old | mask
            if new != old:
                words[xb, reg, row] = new
                self.counters["stuck_clamps"] += 1
        for (xb, reg, row), mask in self._stuck0:
            old = words[xb, reg, row]
            new = old & ~mask
            if new != old:
                words[xb, reg, row] = new
                self.counters["stuck_clamps"] += 1
