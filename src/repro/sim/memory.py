"""Condensed strided memory image of the simulated PIM chip.

The logical state of crossbar ``x`` is an ``h x w`` bit matrix. Following
the paper's simulator optimization, rows are stored in a condensed word
format defined by the strided data layout (Figure 6): entry ``[x, t, r]``
is an N-bit word whose bit ``i`` is the memristor at row ``t``, partition
``i``, intra-partition column ``r``. Logic operations on partitions become
bitwise word operations, the same trick the paper uses on the GPU.
"""

from __future__ import annotations

import numpy as np

from repro.arch.config import PIMConfig
from repro.arch.masks import RangeMask


class CrossbarMemory:
    """The packed bit-state of every crossbar in the memory.

    Exposes raw word get/set used by the simulator, plus whole-array
    import/export helpers used by tests to compare against an unpacked
    bit-level reference model.
    """

    def __init__(self, config: PIMConfig):
        self.config = config
        dtype = np.uint32 if config.word_size <= 32 else np.uint64
        self._dtype = dtype
        # Axis order (crossbars, registers, rows): the rows of one register
        # are contiguous, so element-parallel logic operations act on
        # contiguous vectors (the simulator's memory-locality optimization,
        # mirroring the paper's GPU batching).
        self.words = np.zeros(
            (config.crossbars, config.registers, config.rows), dtype=dtype
        )
        mask = (1 << config.word_size) - 1
        self.word_mask = dtype(mask)
        #: The installed :class:`repro.faults.FaultOverlay` clamping
        #: stuck-at cells and injecting transient flips into this image
        #: (``None`` when fault-free). The overlay is *ticked* by the
        #: driver at dispatch boundaries, never by the micro-op
        #: interpreter, so all replay engines see identical faults.
        self.overlay = None

    @property
    def dtype(self) -> np.dtype:
        """The NumPy dtype used for packed words."""
        return np.dtype(self._dtype)

    def get_word(self, crossbar: int, row: int, index: int) -> int:
        """Read the N-bit strided word at (crossbar, row, intra-row index)."""
        return int(self.words[crossbar, index, row])

    def set_word(self, crossbar: int, row: int, index: int, value: int) -> None:
        """Write the N-bit strided word at (crossbar, row, intra-row index)."""
        if not 0 <= value < (1 << self.config.word_size):
            raise ValueError("value does not fit the word size")
        self.words[crossbar, index, row] = value

    def get_bit(self, crossbar: int, row: int, partition: int, index: int) -> int:
        """Read one memristor's logical state (by partition/intra-partition)."""
        return (self.get_word(crossbar, row, index) >> partition) & 1

    def set_bit(
        self, crossbar: int, row: int, partition: int, index: int, value: int
    ) -> None:
        """Write one memristor's logical state."""
        word = self.get_word(crossbar, row, index)
        if value:
            word |= 1 << partition
        else:
            word &= ~(1 << partition)
        self.set_word(crossbar, row, index, word)

    def unpack_bits(self, crossbar: int) -> np.ndarray:
        """Expand one crossbar to its full ``h x w`` boolean bit matrix.

        Column ``c = i * (w / N_p) + r`` corresponds to partition ``i``,
        intra-partition index ``r`` (the strided layout of Figure 6).
        """
        cfg = self.config
        bits = np.zeros((cfg.rows, cfg.columns), dtype=bool)
        for partition in range(cfg.partitions):
            cols = slice(
                partition * cfg.partition_width,
                (partition + 1) * cfg.partition_width,
            )
            bits[:, cols] = (
                (self.words[crossbar].T >> np.uint32(partition)) & 1
            ).astype(bool)
        return bits

    def region(self, xb: RangeMask, reg: int, row: RangeMask) -> np.ndarray:
        """Strided ``(crossbars, rows)`` view of one register's words.

        The bulk word-view used by both replay engines: the masked
        region a horizontal logic operation updates in place.
        """
        return self.words[
            xb.start : xb.stop + 1 : xb.step,
            reg,
            row.start : row.stop + 1 : row.step,
        ]

    def pack_lanes(self, xb: RangeMask, reg: int, row: RangeMask) -> int:
        """Pack a register's masked region into one guard-laned integer.

        Each word of the region occupies a 64-bit *lane* of the result
        (low ``word_size`` bits the word, high bits zero guard space), in
        row-major ``(crossbars, rows)`` order. With every partition shift
        bounded by ``partitions <= word_size <= 32``, shifted bits never
        escape a lane's 64 bits, so a whole region-wide logic operation
        is a handful of arbitrary-precision bitwise operations — the
        vectorized replay engine's representation. Requires the packed
        ``uint32`` word format (``word_size <= 32``).
        """
        return int.from_bytes(
            self.region(xb, reg, row).astype("<u8").tobytes(), "little"
        )

    def unpack_lanes(
        self, xb: RangeMask, reg: int, row: RangeMask, value: int
    ) -> None:
        """Write a :meth:`pack_lanes` integer back into the region."""
        lanes = len(xb) * len(row)
        flat = np.frombuffer(value.to_bytes(lanes * 8, "little"), dtype="<u8")
        self.region(xb, reg, row)[...] = flat.astype(self._dtype).reshape(
            len(xb), len(row)
        )

    def fill(self, value: int) -> None:
        """Set every word of the memory to ``value`` (testing helper)."""
        if not 0 <= value < (1 << self.config.word_size):
            raise ValueError("value does not fit the word size")
        self.words[...] = value
