"""The vectorized replay engine: micro-op super-steps as bulk updates.

This is the execution-layer payoff of the compile/replay pipeline. The
thunk engine replays a compiled :class:`~repro.driver.program.MicroProgram`
one Python callable per micro-op, so each horizontal gate costs several
NumPy dispatches on a tiny ``(crossbars, rows)`` view and the host — not
the modeled chip — dominates replay wall-clock. Following the paper's own
simulator trick (Figure 6 / section V: pack partition bits into strided
words so partition-parallel logic becomes bitwise word arithmetic), this
engine extends the packing one level further:

- a validated program is sliced into *super-steps*
  (:attr:`~repro.driver.program.MicroProgram.super_steps`): maximal runs
  of ``LogicHOp``\\ s between mask/read/write/vertical/move boundaries,
  each run under statically-known masks;
- at plan-compile time every run is lowered to a short straight-line
  *lane program*: each touched register's masked region is packed into
  one guard-laned arbitrary-precision integer
  (:meth:`~repro.sim.memory.CrossbarMemory.pack_lanes`), gate-pattern
  bitmasks are replicated across the lanes once, and each gate becomes a
  handful of whole-region bitwise operations with the destination updated
  by AND-accumulation — exactly the ``out &= gate(inputs)`` 1→0
  stateful-logic semantics, applied to every masked crossbar and row in
  one arithmetic operation;
- at replay time a run packs its registers, interprets the lane program,
  and writes the (provably in-range) results back through the same
  strided views the thunk engine updates.

The result is bit-identical to op-by-op execution at every operation
boundary — runs contain no observable point (no reads, no mask changes)
— and cycle accounting is untouched: vectorized plans exist only for
*self-masked* programs, whose per-replay
:class:`~repro.sim.stats.SimStats` delta is established statically and
merged once per replay by both engines. Fused whole-stream plans from
the driver's stream emission compiler (:mod:`repro.driver.stream`) are
self-masked by construction — every spliced instruction re-establishes
its masks first — so stream emission rides this engine too.

Fallback ladder (each level preserved bit-for-bit):

1. **vectorized** — self-masked programs on the packed ``uint32`` word
   format (``word_size <= 32``); gate runs execute as lane programs,
   every other op as a pre-resolved silent thunk.
2. **thunk** — everything else the plan cache handles today: per-op
   pre-resolved callables (silent for self-masked programs, counted
   otherwise). Selected explicitly with ``REPRO_SIM_REPLAY=thunk`` or
   ``Simulator(..., replay_engine="thunk")``.
3. **op-by-op** — ``Simulator.execute`` for uncompiled streams.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.arch.halfgates import expand_pattern
from repro.arch.masks import RangeMask
from repro.arch.micro_ops import GateType, LogicHOp
from repro.sim.memory import CrossbarMemory

#: Environment variable selecting the default replay engine.
ENGINE_ENV = "REPRO_SIM_REPLAY"

#: Recognized engine names, strongest first.
ENGINES = ("vectorized", "thunk")

#: Gate runs shorter than this replay through thunks instead: packing and
#: unpacking the touched registers costs more than it saves.
MIN_RUN_OPS = 2


def resolve_engine(requested: "str | None") -> str:
    """Validate an engine name, defaulting from ``REPRO_SIM_REPLAY``."""
    engine = requested or os.environ.get(ENGINE_ENV) or ENGINES[0]
    if engine not in ENGINES:
        source = "requested" if requested else f"${ENGINE_ENV}"
        raise ValueError(
            f"unknown replay engine {engine!r} ({source}); "
            f"choose from {ENGINES}"
        )
    return engine


def lanes_supported(memory: CrossbarMemory) -> bool:
    """Whether the memory's word format fits 64-bit guard lanes.

    True for ``word_size <= 32`` (the packed ``uint32`` format): a word
    and its largest partition shift stay inside 64 bits. Wider words
    fall back to the thunk engine.
    """
    return memory.dtype == np.dtype(np.uint32)


@lru_cache(maxsize=65536)
def _pattern_mask(
    gate: GateType,
    p_a: int,
    p_b: int,
    p_out: int,
    p_end: int,
    p_step: int,
    partitions: int,
) -> Tuple[int, int]:
    """(output-partition bitmask, gate count) of a validated pattern.

    Pattern validation (section disjointness, partition ranges) happens in
    :func:`expand_pattern`; patterns repeat constantly across a program, so
    the result is cached on the pattern fields.
    """
    op = LogicHOp(gate, 0, 0, 0, p_a=p_a, p_b=p_b, p_out=p_out,
                  p_end=p_end, p_step=p_step)
    gates = expand_pattern(op, partitions)
    mask = 0
    for _, out_p in gates:
        mask |= 1 << out_p
    return mask, len(gates)


# Lane-program opcodes (see GateRun): constants chosen for dispatch order
# in the hot interpreter loop (NOR first — it dominates real programs).
_NOR, _NOT, _INIT1, _INIT0 = 0, 1, 2, 3


class GateRun:
    """One ``"gates"`` super-step compiled to a lane program.

    Built once per replay plan; calling the instance executes the whole
    run — typically thousands of micro-ops — as pack / interpret /
    unpack over the packed memory image.
    """

    __slots__ = ("memory", "xb", "row", "regs", "written", "steps")

    def __init__(
        self,
        ops: Tuple[LogicHOp, ...],
        xb: RangeMask,
        row: RangeMask,
        memory: CrossbarMemory,
        partitions: int,
        rep_cache: Dict[Tuple[int, int], int],
    ):
        self.memory = memory
        self.xb = xb
        self.row = row
        lanes = len(xb) * len(row)
        word_mask = int(memory.word_mask)

        def rep(mask: int) -> int:
            """``mask`` replicated into every 64-bit lane (memoized)."""
            value = rep_cache.get((lanes, mask))
            if value is None:
                value = int.from_bytes(
                    np.full(lanes, mask, "<u8").tobytes(), "little"
                )
                rep_cache[(lanes, mask)] = value
            return value

        full = rep(word_mask)
        steps: List[Tuple] = []
        touched: Dict[int, bool] = {}  # reg -> written (order = first touch)
        for op in ops:
            out_mask, _ = _pattern_mask(
                op.gate, op.p_a, op.p_b, op.p_out, op.p_end, op.p_step,
                partitions,
            )
            if op.gate == GateType.INIT1:
                steps.append((_INIT1, op.out, rep(out_mask)))
            elif op.gate == GateType.INIT0:
                steps.append((_INIT0, op.out, rep(word_mask ^ out_mask)))
            elif op.gate == GateType.NOT:
                touched.setdefault(op.in_a, False)
                steps.append(
                    (_NOT, op.out, op.in_a, op.p_out - op.p_a,
                     rep(out_mask), full)
                )
            else:  # NOR
                touched.setdefault(op.in_a, False)
                touched.setdefault(op.in_b, False)
                steps.append(
                    (_NOR, op.out, op.in_a, op.p_out - op.p_a,
                     op.in_b, op.p_out - op.p_b, rep(out_mask), full)
                )
            touched[op.out] = True
        self.steps = tuple(steps)
        self.regs = tuple(touched)
        self.written = tuple(r for r, dirty in touched.items() if dirty)

    def __call__(self) -> None:
        memory, xb, row = self.memory, self.xb, self.row
        state = {reg: memory.pack_lanes(xb, reg, row) for reg in self.regs}
        for step in self.steps:
            kind = step[0]
            if kind == _NOR:
                _, out, a, s_a, b, s_b, out_mask, full = step
                t_a = state[a]
                if s_a > 0:
                    t_a = (t_a << s_a) & full
                elif s_a < 0:
                    t_a = (t_a >> -s_a) & full
                t_b = state[b]
                if s_b > 0:
                    t_b = (t_b << s_b) & full
                elif s_b < 0:
                    t_b = (t_b >> -s_b) & full
                state[out] &= ~((t_a | t_b) & out_mask)
            elif kind == _NOT:
                _, out, a, s_a, out_mask, full = step
                t_a = state[a]
                if s_a > 0:
                    t_a = (t_a << s_a) & full
                elif s_a < 0:
                    t_a = (t_a >> -s_a) & full
                state[out] &= ~(t_a & out_mask)
            elif kind == _INIT1:
                state[step[1]] |= step[2]
            else:  # _INIT0
                state[step[1]] &= step[2]
        for reg in self.written:
            memory.unpack_lanes(xb, reg, row, state[reg])


#: Replicated lane masks are shared across plans and simulators: they
#: depend only on (lane count, mask bits), and programs reuse a small set
#: of gate patterns, so the cache stays small while saving the dominant
#: plan-build cost. Reset wholesale past the bound to stay a cache, not
#: a leak.
_REP_CACHE: Dict[Tuple[int, int], int] = {}
_REP_CACHE_LIMIT = 1 << 16


def build_vector_steps(
    program, simulator, region_cache: dict
) -> List[Callable]:
    """Lower a self-masked program into vectorized replay steps.

    Gate runs become :class:`GateRun` instances; every other op (and
    runs below :data:`MIN_RUN_OPS`) keeps the simulator's pre-resolved
    silent thunk. The caller guarantees the program is self-masked (its
    static stats delta exists) and :func:`lanes_supported` holds.
    """
    if len(_REP_CACHE) > _REP_CACHE_LIMIT:
        _REP_CACHE.clear()
    config = simulator.config
    steps: List[Callable] = []
    for segment in program.super_steps:
        if segment.kind == "gates" and len(segment) >= MIN_RUN_OPS:
            steps.append(
                GateRun(
                    program.ops[segment.start : segment.stop],
                    RangeMask(*segment.xb),
                    RangeMask(*segment.row),
                    simulator.memory,
                    config.partitions,
                    rep_cache=_REP_CACHE,
                )
            )
        else:
            steps.extend(
                simulator._plan_step(op, region_cache, silent=True)
                for op in program.ops[segment.start : segment.stop]
            )
    return steps
