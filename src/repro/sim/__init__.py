"""Bit-accurate, cycle-accurate digital PIM simulator (Section VI).

The simulator is a drop-in replacement for a physical PIM chip: its only
interface is the micro-operation stream produced by the host driver, it
executes operations one by one on an internal memory image, and it tracks
per-operation-type profiling counters.

The paper accelerates simulation with CUDA by (1) storing rows in a
condensed 32-bit strided format and (2) using bitwise word arithmetic for
semi-parallel partition operations. This implementation applies exactly the
same two optimizations with NumPy on the CPU (see DESIGN.md, substitutions).
"""

from repro.sim.memory import CrossbarMemory
from repro.sim.simulator import Simulator
from repro.sim.stats import SimStats, throughput

__all__ = ["CrossbarMemory", "Simulator", "SimStats", "throughput"]
