"""A naive, unpacked reference executor for differential testing.

The production simulator packs partition bits into words and executes
gates with bitwise word arithmetic (the paper's GPU trick). This module
executes the *same* micro-operations on an explicit boolean bit matrix,
one memristor at a time, straight from the operation semantics — slow,
obviously-correct, and entirely independent of the packed implementation.

``tests/sim/test_differential.py`` runs random micro-operation streams
through both executors and requires identical final memory images.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.arch.config import PIMConfig
from repro.arch.halfgates import expand_pattern
from repro.arch.masks import RangeMask
from repro.arch.micro_ops import (
    CrossbarMaskOp,
    GateType,
    LogicHOp,
    LogicVOp,
    MicroOp,
    MoveOp,
    ReadOp,
    RowMaskOp,
    WriteOp,
)


class ReferenceSimulator:
    """Bit-at-a-time executor over an explicit (xbars, rows, w) bool array."""

    def __init__(self, config: PIMConfig):
        self.config = config
        self.bits = np.zeros(
            (config.crossbars, config.rows, config.columns), dtype=bool
        )
        self._active_xbars = list(range(config.crossbars))
        self._active_rows = list(range(config.rows))

    # ------------------------------------------------------------------
    def _column(self, partition: int, index: int) -> int:
        """Physical bitline of (partition, intra-partition index)."""
        return partition * self.config.partition_width + index

    def execute(self, op: MicroOp) -> Optional[int]:
        if isinstance(op, CrossbarMaskOp):
            self._active_xbars = list(range(op.start, op.stop + 1, op.step))
            return None
        if isinstance(op, RowMaskOp):
            self._active_rows = list(range(op.start, op.stop + 1, op.step))
            return None
        if isinstance(op, ReadOp):
            assert len(self._active_xbars) == 1 and len(self._active_rows) == 1
            xbar, row = self._active_xbars[0], self._active_rows[0]
            word = 0
            for partition in range(self.config.partitions):
                if self.bits[xbar, row, self._column(partition, op.index)]:
                    word |= 1 << partition
            return word
        if isinstance(op, WriteOp):
            for xbar in self._active_xbars:
                for row in self._active_rows:
                    for partition in range(self.config.partitions):
                        self.bits[xbar, row, self._column(partition, op.index)] = bool(
                            (op.value >> partition) & 1
                        )
            return None
        if isinstance(op, LogicHOp):
            self._logic_h(op)
            return None
        if isinstance(op, LogicVOp):
            self._logic_v(op)
            return None
        if isinstance(op, MoveOp):
            self._move(op)
            return None
        raise TypeError(f"unknown micro-operation {op!r}")

    def execute_all(self, ops: Iterable[MicroOp]) -> None:
        for op in ops:
            self.execute(op)

    # ------------------------------------------------------------------
    def _logic_h(self, op: LogicHOp) -> None:
        gates = expand_pattern(op, self.config.partitions)
        for xbar in self._active_xbars:
            for row in self._active_rows:
                for inputs, out_p in gates:
                    out_col = self._column(out_p, op.out)
                    if op.gate == GateType.INIT1:
                        self.bits[xbar, row, out_col] = True
                    elif op.gate == GateType.INIT0:
                        self.bits[xbar, row, out_col] = False
                    elif op.gate == GateType.NOT:
                        in_col = self._column(inputs[0], op.in_a)
                        result = not self.bits[xbar, row, in_col]
                        # Stateful: the output can only be pulled 1 -> 0.
                        self.bits[xbar, row, out_col] &= result
                    else:  # NOR
                        a_col = self._column(inputs[0], op.in_a)
                        b_col = self._column(inputs[1], op.in_b)
                        result = not (
                            self.bits[xbar, row, a_col]
                            or self.bits[xbar, row, b_col]
                        )
                        self.bits[xbar, row, out_col] &= result

    def _logic_v(self, op: LogicVOp) -> None:
        for xbar in self._active_xbars:
            for partition in range(self.config.partitions):
                col = self._column(partition, op.index)
                if op.gate == GateType.INIT1:
                    self.bits[xbar, op.out_row, col] = True
                elif op.gate == GateType.INIT0:
                    self.bits[xbar, op.out_row, col] = False
                else:  # NOT (stateful)
                    result = not self.bits[xbar, op.in_row, col]
                    self.bits[xbar, op.out_row, col] &= result

    def _move(self, op: MoveOp) -> None:
        for xbar in self._active_xbars:
            for partition in range(self.config.partitions):
                src_col = self._column(partition, op.src_index)
                dst_col = self._column(partition, op.dst_index)
                self.bits[xbar + op.dist, op.dst_row, dst_col] = self.bits[
                    xbar, op.src_row, src_col
                ]
