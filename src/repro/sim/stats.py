"""Profiling counters and the throughput derivation of Eq. (1).

The simulator counts micro-operations by type; following Section VI-B,
"PIM cycles" equals the number of micro-operations executed (each operation
is broadcast and completes in one clock). Throughput is then::

    throughput[ops/sec] = parallelism[ops] / latency[cycles] * f[cycles/sec]

where ``parallelism`` is the number of rows of the crossbar memory (64M for
the Table III configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimStats:
    """Cumulative micro-operation counters of a simulator instance."""

    op_counts: Dict[str, int] = field(default_factory=dict)
    cycles: int = 0
    htree_hop_cycles: int = 0
    gates_executed: int = 0

    def record(self, kind: str, cycles: int = 1, gates: int = 0) -> None:
        """Account one executed micro-operation."""
        self.op_counts[kind] = self.op_counts.get(kind, 0) + 1
        self.cycles += cycles
        self.gates_executed += gates

    @property
    def micro_ops(self) -> int:
        """Total micro-operations executed."""
        return sum(self.op_counts.values())

    def copy(self) -> "SimStats":
        return SimStats(
            dict(self.op_counts), self.cycles, self.htree_hop_cycles, self.gates_executed
        )

    def merge(self, delta: "SimStats") -> None:
        """Accumulate another counter set (used by batched accounting)."""
        for kind, count in delta.op_counts.items():
            self.op_counts[kind] = self.op_counts.get(kind, 0) + count
        self.cycles += delta.cycles
        self.htree_hop_cycles += delta.htree_hop_cycles
        self.gates_executed += delta.gates_executed

    def diff(self, earlier: "SimStats") -> "SimStats":
        """Counters accumulated since an earlier snapshot."""
        counts = {
            kind: count - earlier.op_counts.get(kind, 0)
            for kind, count in self.op_counts.items()
            if count - earlier.op_counts.get(kind, 0)
        }
        return SimStats(
            counts,
            self.cycles - earlier.cycles,
            self.htree_hop_cycles - earlier.htree_hop_cycles,
            self.gates_executed - earlier.gates_executed,
        )

    def summary(self) -> str:
        """Human-readable profile, used by ``pim.Profiler``."""
        lines = [f"PIM cycles (micro-ops): {self.cycles}"]
        for kind in sorted(self.op_counts):
            lines.append(f"  {kind:<14} {self.op_counts[kind]}")
        lines.append(f"  gates executed  {self.gates_executed}")
        return "\n".join(lines)


def throughput(parallelism: int, latency_cycles: int, frequency_hz: float) -> float:
    """Eq. (1): convert a latency in PIM cycles into operations per second.

    ``parallelism`` is the number of element-parallel operations completed
    per ``latency_cycles`` cycles — for element-wise macro-instructions this
    is the total row count of the memory.
    """
    if latency_cycles <= 0:
        raise ValueError("latency must be positive")
    return parallelism / latency_cycles * frequency_hz
