"""Cycle-by-cycle execution of micro-operations on the packed memory image.

The simulator interacts with the rest of the stack only through
:meth:`Simulator.execute` (plus read responses), satisfying the paper's
cycle-accurate-simulation standard: operations are modeled one at a time
with the same semantics a memristive chip would apply, including the
stateful-logic constraint that an output memristor can only be pulled from
logical 1 to logical 0 (so outputs must be ``INIT1``-ed first, and those
cycles are counted).
"""

from __future__ import annotations

import weakref
from functools import partial
from typing import Callable, Iterable, Optional

import numpy as np

from repro.arch.config import PIMConfig
from repro.arch.htree import move_cycles, validate_move_pattern
from repro.arch.masks import RangeMask
from repro.arch.micro_ops import (
    CrossbarMaskOp,
    GateType,
    LogicHOp,
    LogicVOp,
    MicroOp,
    MoveOp,
    ReadOp,
    RowMaskOp,
    WriteOp,
)
from repro.sim import replay
from repro.sim.memory import CrossbarMemory
from repro.sim.replay import _pattern_mask  # noqa: F401  (re-export)
from repro.sim.stats import SimStats


class SimulationError(Exception):
    """Raised when a micro-operation is invalid for the current state."""


_GATE_KEYS_H = {gate: f"logic_h_{gate.name.lower()}" for gate in GateType}
_GATE_KEYS_V = {gate: f"logic_v_{gate.name.lower()}" for gate in GateType}


def accounting_walk(
    ops: Iterable[MicroOp],
    config: PIMConfig,
    move_cost: str = "unit",
    xb: Optional[RangeMask] = None,
    row: Optional[RangeMask] = None,
    strict: bool = True,
) -> Optional[SimStats]:
    """Charge a micro-op stream with the chip's accounting rules, statically.

    This is the single source of truth for how replayed streams are
    billed: mask state is tracked as the chip would track it, horizontal
    gates scale with the active rows, and move patterns are validated
    against the H-tree restrictions. Two callers share it:

    - the NumPy functional backend (``strict=True``, initial masks set to
      all): invalid ops raise :class:`SimulationError`, exactly like live
      execution;
    - the simulator's static replay-plan accounting (``strict=False``,
      initial masks unknown): any op whose accounting or validity depends
      on masks the stream did not establish first returns ``None``,
      signalling that the caller must fall back to dynamic per-op
      accounting.
    """
    delta = SimStats()
    for op in ops:
        if isinstance(op, LogicHOp):
            if xb is None or row is None:
                if strict:
                    raise SimulationError("logic op executed before masks set")
                return None
            _, gate_count = _pattern_mask(
                op.gate, op.p_a, op.p_b, op.p_out, op.p_end, op.p_step,
                config.partitions,
            )
            delta.record(
                _GATE_KEYS_H[op.gate], gates=gate_count * len(xb) * len(row)
            )
        elif isinstance(op, CrossbarMaskOp):
            if op.stop >= config.crossbars:
                if strict:
                    raise SimulationError("crossbar mask out of range")
                return None
            xb = RangeMask(op.start, op.stop, op.step)
            delta.record("mask_crossbar")
        elif isinstance(op, RowMaskOp):
            if op.stop >= config.rows:
                if strict:
                    raise SimulationError("row mask out of range")
                return None
            row = RangeMask(op.start, op.stop, op.step)
            delta.record("mask_row")
        elif isinstance(op, LogicVOp):
            if xb is None:
                if strict:
                    raise SimulationError("logic op executed before masks set")
                return None
            delta.record(_GATE_KEYS_V[op.gate], gates=config.partitions * len(xb))
        elif isinstance(op, MoveOp):
            if xb is None:
                if strict:
                    raise SimulationError("move executed before masks set")
                return None
            try:
                validate_move_pattern(xb, op.dist, config.crossbars)
            except ValueError as exc:
                if strict:
                    raise SimulationError(str(exc)) from exc
                return None
            if move_cost == "htree":
                cycles = max(1, move_cycles(xb, op.dist, config.crossbars))
                delta.htree_hop_cycles += cycles - 1
            else:
                cycles = 1
            delta.record("move", cycles=cycles)
        elif isinstance(op, ReadOp):
            if not strict and (
                xb is None or row is None or len(xb) != 1 or len(row) != 1
            ):
                return None
            delta.record("read")
        elif isinstance(op, WriteOp):
            delta.record("write")
        else:
            if strict:
                raise SimulationError(f"unknown micro-operation {op!r}")
            return None
    return delta


class ReplayPlan:
    """A compiled program's pre-resolved replay recipe (one per program).

    Attributes:
        steps: the replay callables — per-op thunks, or a mix of thunks
            and :class:`~repro.sim.replay.GateRun` super-steps.
        region_cache: the register-view memo the thunk steps share.
        static_stats: the per-replay stats delta for self-masked
            programs (``None`` when accounting must be dynamic).
        engine: the engine the plan executes with (``"vectorized"`` or
            ``"thunk"`` — the latter also covers non-self-masked
            fallbacks under a vectorized-engine simulator).
        requested: the simulator's engine setting the plan was built
            under; a changed setting invalidates the plan.
        entry_clear: whether :attr:`region_cache` must be dropped at
            replay start — True only when some gate step can execute
            under caller-set masks (before the program's first mask
            operation), where a view cached by an earlier replay may
            belong to masks since changed externally.
    """

    __slots__ = (
        "steps", "region_cache", "static_stats", "engine", "requested",
        "entry_clear",
    )

    def __init__(self, steps, region_cache, static_stats, engine, requested,
                 entry_clear):
        self.steps = steps
        self.region_cache = region_cache
        self.static_stats = static_stats
        self.engine = engine
        self.requested = requested
        self.entry_clear = entry_clear


class Simulator:
    """A bit-accurate digital PIM chip model.

    Args:
        config: the architecture parameters.
        move_cost: ``"unit"`` counts every move operation as one cycle (the
            paper's micro-op-count metric); ``"htree"`` charges one cycle
            per traversed H-tree segment of the longest pair (used by the
            H-tree ablation benchmark).
        replay_engine: ``"vectorized"`` (the default) replays self-masked
            compiled programs as fused super-steps over the packed memory
            image (see :mod:`repro.sim.replay`); ``"thunk"`` forces the
            per-op callable path everywhere. Defaults from the
            ``REPRO_SIM_REPLAY`` environment variable. Either engine is
            bit-identical and cycle-identical to op-by-op execution.
    """

    def __init__(
        self,
        config: PIMConfig,
        move_cost: str = "unit",
        replay_engine: Optional[str] = None,
    ):
        if move_cost not in ("unit", "htree"):
            raise ValueError("move_cost must be 'unit' or 'htree'")
        self.config = config
        self.memory = CrossbarMemory(config)
        self.stats = SimStats()
        self.move_cost = move_cost
        self.replay_engine = replay.resolve_engine(replay_engine)
        #: Replays served per engine (``pim.Profiler`` reports deltas).
        self.replay_counters = {engine: 0 for engine in replay.ENGINES}
        self._xb_mask = RangeMask.all(config.crossbars)
        self._row_mask = RangeMask.all(config.rows)
        # Replay plans for compiled programs, built once per program and
        # dropped automatically when the program is garbage-collected.
        self._plans: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def execute(self, op: MicroOp) -> Optional[int]:
        """Execute one micro-operation; returns the word for reads."""
        if isinstance(op, CrossbarMaskOp):
            return self._exec_xb_mask(op)
        if isinstance(op, RowMaskOp):
            return self._exec_row_mask(op)
        if isinstance(op, ReadOp):
            return self._exec_read(op)
        if isinstance(op, WriteOp):
            return self._exec_write(op)
        if isinstance(op, LogicHOp):
            return self._exec_logic_h(op)
        if isinstance(op, LogicVOp):
            return self._exec_logic_v(op)
        if isinstance(op, MoveOp):
            return self._exec_move(op)
        raise SimulationError(f"unknown micro-operation {op!r}")

    def execute_all(self, ops: Iterable[MicroOp]) -> None:
        """Execute a batch of micro-operations (no read responses)."""
        for op in ops:
            self.execute(op)

    def execute_program(self, program) -> Optional[int]:
        """Replay a compiled :class:`~repro.driver.program.MicroProgram`.

        The fast path of the compile/replay pipeline: the program was
        validated once at compile time, so replay skips the per-op
        ``isinstance`` dispatch and range checks of :meth:`execute`.  On
        first sight of a program this builds a :class:`ReplayPlan` —
        with the configured :attr:`replay_engine`, fused
        :class:`~repro.sim.replay.GateRun` super-steps where the program
        supports them, per-op callables with pre-resolved constants
        everywhere else — and memoizes it on the program object.
        Profiling counters are recorded exactly as in op-by-op
        execution, so cycle accounting is unchanged.

        Returns the response word of the last :class:`ReadOp` in the
        program (``None`` if it contains no reads).
        """
        plan = self._plans.get(program)
        if plan is None or plan.requested != self.replay_engine:
            plan = self._compile_plan(program)
            self._plans[program] = plan
        if plan.entry_clear:
            # A gate step may run under caller-set masks: views cached by
            # an earlier replay could belong to masks changed in between.
            plan.region_cache.clear()
        self.replay_counters[plan.engine] += 1
        static_stats = plan.static_stats
        if program.reads == 0:
            for step in plan.steps:
                step()
            if static_stats is not None:
                self.stats.merge(static_stats)
            return None
        response: Optional[int] = None
        for step in plan.steps:
            result = step()
            if result is not None:
                response = result
        if static_stats is not None:
            self.stats.merge(static_stats)
        return response

    # ------------------------------------------------------------------
    # Replay-plan construction
    # ------------------------------------------------------------------
    def _compile_plan(self, program) -> ReplayPlan:
        from repro.driver.program import config_fingerprint

        if program.config_fingerprint != config_fingerprint(self.config):
            raise SimulationError(
                f"program {program.name!r} was compiled for fingerprint "
                f"{program.config_fingerprint}, this chip is "
                f"{config_fingerprint(self.config)}"
            )
        # Register-region views are identical between mask changes; the
        # plan's thunk steps share this memo (cleared on every mask step,
        # and at replay entry when a gate can precede the first mask op)
        # so a long gate body builds each view only once.
        region_cache: dict = {}
        # A *self-masked* program (every stats-mask-dependent op runs
        # under masks the program itself set — true for fused graph
        # streams) has a statically known stats delta: record it once at
        # plan time, build silent steps, and merge the delta per replay
        # instead of paying a counter update per micro-op. It is also
        # the eligibility condition for the vectorized engine (gate runs
        # with statically known masks and accounting).
        static_stats = self._static_stats(program)
        requested = self.replay_engine
        if static_stats is not None:
            if requested == "vectorized" and replay.lanes_supported(self.memory):
                steps = replay.build_vector_steps(program, self, region_cache)
                return ReplayPlan(
                    steps, region_cache, static_stats,
                    engine="vectorized", requested=requested,
                    entry_clear=False,
                )
            steps = [
                self._plan_step(op, region_cache, silent=True)
                for op in program.ops
            ]
        else:
            steps = [self._plan_step(op, region_cache) for op in program.ops]
        return ReplayPlan(
            steps, region_cache, static_stats,
            engine="thunk", requested=requested,
            entry_clear=self._entry_clear_needed(program.ops),
        )

    @staticmethod
    def _entry_clear_needed(ops) -> bool:
        """Must the region cache be dropped at replay entry?

        Only when a horizontal gate (the one region-cache consumer) can
        execute before the program's first mask operation — i.e. under
        caller-set masks, as in the driver's per-R-type body programs.
        Self-masked programs always set masks first, so their cached
        views are rebuilt by the mask steps of the same replay and can
        safely persist across replays.
        """
        for op in ops:
            if isinstance(op, (CrossbarMaskOp, RowMaskOp)):
                return False
            if isinstance(op, LogicHOp):
                return True
        return False

    def _static_stats(self, program) -> Optional[SimStats]:
        """The per-replay stats delta, when it is mask-independent.

        Delegates to :func:`accounting_walk` in lenient mode: ``None``
        (dynamic accounting required) when any gate/move executes under a
        mask the program did not establish first — e.g. the driver's
        per-R-type body programs, which run under caller-set masks — or
        when a move pattern would fail validation (the live path must
        raise).
        """
        return accounting_walk(
            program.ops, self.config, self.move_cost, strict=False
        )

    def _plan_step(
        self, op: MicroOp, region_cache: dict, silent: bool = False
    ) -> Callable[[], Optional[int]]:
        """One-time dispatch of an op into a pre-resolved replay thunk.

        ``silent`` steps skip per-op counter updates and runtime checks —
        used only for self-masked programs whose stats delta and move/read
        validity were established statically by :meth:`_static_stats`.
        """
        if isinstance(op, LogicHOp):
            return self._plan_logic_h(op, region_cache, silent=silent)
        if isinstance(op, CrossbarMaskOp):
            if op.stop >= self.config.crossbars:
                raise SimulationError("crossbar mask out of range")
            mask = RangeMask(op.start, op.stop, op.step)
            if silent:

                def set_xb_silent(self=self, mask=mask):
                    self._xb_mask = mask
                    region_cache.clear()

                return set_xb_silent

            def set_xb_mask(self=self, mask=mask):
                self._xb_mask = mask
                region_cache.clear()
                self.stats.record("mask_crossbar")

            return set_xb_mask
        if isinstance(op, RowMaskOp):
            if op.stop >= self.config.rows:
                raise SimulationError("row mask out of range")
            mask = RangeMask(op.start, op.stop, op.step)
            if silent:

                def set_row_silent(self=self, mask=mask):
                    self._row_mask = mask
                    region_cache.clear()

                return set_row_silent

            def set_row_mask(self=self, mask=mask):
                self._row_mask = mask
                region_cache.clear()
                self.stats.record("mask_row")

            return set_row_mask
        # Reads and moves keep their mask-state-dependent runtime checks;
        # writes and vertical logic are cheap enough to reuse directly.
        if isinstance(op, (ReadOp, WriteOp, LogicVOp, MoveOp)):
            if silent:
                handler = {
                    ReadOp: self._exec_read_silent,
                    WriteOp: self._exec_write_silent,
                    LogicVOp: self._exec_logic_v_silent,
                    MoveOp: self._exec_move_silent,
                }[type(op)]
            else:
                handler = {
                    ReadOp: self._exec_read,
                    WriteOp: self._exec_write,
                    LogicVOp: self._exec_logic_v,
                    MoveOp: self._exec_move,
                }[type(op)]
            return partial(handler, op)
        raise SimulationError(f"unknown micro-operation {op!r}")

    # -- silent step bodies (statically validated and accounted) --------
    def _exec_read_silent(self, op: ReadOp) -> int:
        return self.memory.get_word(
            self._xb_mask.start, self._row_mask.start, op.index
        )

    def _exec_write_silent(self, op: WriteOp) -> None:
        self._reg_region(op.index)[...] = self.memory.dtype.type(op.value)

    def _exec_logic_v_silent(self, op: LogicVOp) -> None:
        xm = self._xb_mask
        column = self.memory.words[
            xm.start : xm.stop + 1 : xm.step, op.index, :
        ]
        if op.gate == GateType.INIT1:
            column[:, op.out_row] = self.memory.word_mask
        elif op.gate == GateType.INIT0:
            column[:, op.out_row] = 0
        else:  # NOT
            column[:, op.out_row] &= ~column[:, op.in_row]

    def _exec_move_silent(self, op: MoveOp) -> None:
        sources = np.fromiter(self._xb_mask.indices(), dtype=np.int64)
        self.memory.words[sources + op.dist, op.dst_index, op.dst_row] = (
            self.memory.words[sources, op.src_index, op.src_row]
        )

    def _plan_logic_h(
        self, op: LogicHOp, region_cache: dict, silent: bool = False
    ) -> Callable[[], None]:
        """Pre-resolve a horizontal logic op: pattern mask, shifts, key."""
        cfg = self.config
        for index in (op.in_a, op.in_b, op.out):
            self._check_index(index)
        out_mask_int, gate_count = _pattern_mask(
            op.gate, op.p_a, op.p_b, op.p_out, op.p_end, op.p_step,
            cfg.partitions,
        )
        dtype = self.memory.dtype
        out_mask = dtype.type(out_mask_int)
        inv_mask = dtype.type(out_mask_int ^ int(self.memory.word_mask))
        key = _GATE_KEYS_H[op.gate]
        out = op.out

        # self.stats is resolved per call (not bound at plan time) so a
        # reassignment of the public ``stats`` attribute keeps counting.
        def region(reg):
            view = region_cache.get(reg)
            if view is None:
                view = self._reg_region(reg)
                region_cache[reg] = view
            return view

        if op.gate == GateType.INIT1:
            if silent:
                def step():
                    region(out).__ior__(out_mask)
                return step

            def step():
                region(out).__ior__(out_mask)
                self.stats.record(key, gates=gate_count * self._active_rows())
            return step
        if op.gate == GateType.INIT0:
            if silent:
                def step():
                    region(out).__iand__(inv_mask)
                return step

            def step():
                region(out).__iand__(inv_mask)
                self.stats.record(key, gates=gate_count * self._active_rows())
            return step
        if op.gate == GateType.NOT:
            in_a, shift_a = op.in_a, op.p_out - op.p_a
            if silent:
                def step():
                    pull = self._shift(region(in_a), shift_a)
                    region(out).__iand__(~(pull & out_mask))
                return step

            def step():
                pull = self._shift(region(in_a), shift_a)
                region(out).__iand__(~(pull & out_mask))
                self.stats.record(key, gates=gate_count * self._active_rows())
            return step
        # NOR
        in_a, shift_a = op.in_a, op.p_out - op.p_a
        in_b, shift_b = op.in_b, op.p_out - op.p_b
        if silent:
            def step():
                a = self._shift(region(in_a), shift_a)
                b = self._shift(region(in_b), shift_b)
                region(out).__iand__(~((a | b) & out_mask))
            return step

        def step():
            a = self._shift(region(in_a), shift_a)
            b = self._shift(region(in_b), shift_b)
            region(out).__iand__(~((a | b) & out_mask))
            self.stats.record(key, gates=gate_count * self._active_rows())
        return step

    def _active_rows(self) -> int:
        """Rows currently selected by the crossbar and row masks."""
        return len(self._xb_mask) * len(self._row_mask)

    @property
    def crossbar_mask(self) -> RangeMask:
        """The currently selected crossbars."""
        return self._xb_mask

    @property
    def row_mask(self) -> RangeMask:
        """The currently selected rows."""
        return self._row_mask

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.config.registers:
            raise SimulationError(f"intra-row index {index} out of range")

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.config.rows:
            raise SimulationError(f"row {row} out of range")

    def _reg_region(self, reg: int) -> np.ndarray:
        """Masked (crossbars, rows) view of one register's words."""
        return self.memory.region(self._xb_mask, reg, self._row_mask)

    def _shift(self, words: np.ndarray, amount: int) -> np.ndarray:
        """Shift packed words by a (possibly negative) partition offset."""
        dtype = self.memory.dtype
        if amount >= 0:
            return (words << dtype.type(amount)) & self.memory.word_mask
        return words >> dtype.type(-amount)

    # ------------------------------------------------------------------
    # Operation implementations
    # ------------------------------------------------------------------
    def _exec_xb_mask(self, op: CrossbarMaskOp) -> None:
        if op.stop >= self.config.crossbars:
            raise SimulationError("crossbar mask out of range")
        self._xb_mask = RangeMask(op.start, op.stop, op.step)
        self.stats.record("mask_crossbar")

    def _exec_row_mask(self, op: RowMaskOp) -> None:
        if op.stop >= self.config.rows:
            raise SimulationError("row mask out of range")
        self._row_mask = RangeMask(op.start, op.stop, op.step)
        self.stats.record("mask_row")

    def _exec_read(self, op: ReadOp) -> int:
        self._check_index(op.index)
        if len(self._xb_mask) != 1 or len(self._row_mask) != 1:
            raise SimulationError(
                "read requires masks selecting a single row of a single crossbar"
            )
        self.stats.record("read")
        return self.memory.get_word(
            self._xb_mask.start, self._row_mask.start, op.index
        )

    def _exec_write(self, op: WriteOp) -> None:
        self._check_index(op.index)
        if op.value >= (1 << self.config.word_size):
            raise SimulationError("write value exceeds word size")
        self._reg_region(op.index)[...] = self.memory.dtype.type(op.value)
        self.stats.record("write")

    def _exec_logic_h(self, op: LogicHOp) -> None:
        cfg = self.config
        for index in (op.in_a, op.in_b, op.out):
            self._check_index(index)
        out_mask_int, gate_count = _pattern_mask(
            op.gate, op.p_a, op.p_b, op.p_out, op.p_end, op.p_step,
            cfg.partitions,
        )
        dtype = self.memory.dtype
        out_mask = dtype.type(out_mask_int)

        out_region = self._reg_region(op.out)
        if op.gate == GateType.INIT1:
            out_region |= out_mask
        elif op.gate == GateType.INIT0:
            out_region &= ~out_mask
        elif op.gate == GateType.NOT:
            pull = self._shift(self._reg_region(op.in_a), op.p_out - op.p_a)
            out_region &= ~(pull & out_mask)
        else:  # NOR
            a = self._shift(self._reg_region(op.in_a), op.p_out - op.p_a)
            b = self._shift(self._reg_region(op.in_b), op.p_out - op.p_b)
            out_region &= ~((a | b) & out_mask)

        active = len(self._xb_mask) * len(self._row_mask)
        self.stats.record(_GATE_KEYS_H[op.gate], gates=gate_count * active)

    def _exec_logic_v(self, op: LogicVOp) -> None:
        self._check_index(op.index)
        self._check_row(op.out_row)
        xm = self._xb_mask
        column = self.memory.words[
            xm.start : xm.stop + 1 : xm.step, op.index, :
        ]
        if op.gate == GateType.INIT1:
            column[:, op.out_row] = self.memory.word_mask
        elif op.gate == GateType.INIT0:
            column[:, op.out_row] = 0
        else:  # NOT
            self._check_row(op.in_row)
            column[:, op.out_row] &= ~column[:, op.in_row]
        active = len(xm)
        self.stats.record(_GATE_KEYS_V[op.gate], gates=self.config.partitions * active)

    def _exec_move(self, op: MoveOp) -> None:
        cfg = self.config
        self._check_index(op.src_index)
        self._check_index(op.dst_index)
        self._check_row(op.src_row)
        self._check_row(op.dst_row)
        try:
            validate_move_pattern(self._xb_mask, op.dist, cfg.crossbars)
        except ValueError as exc:
            raise SimulationError(str(exc)) from exc
        sources = np.fromiter(self._xb_mask.indices(), dtype=np.int64)
        self.memory.words[sources + op.dist, op.dst_index, op.dst_row] = (
            self.memory.words[sources, op.src_index, op.src_row]
        )
        if self.move_cost == "htree":
            cycles = max(1, move_cycles(self._xb_mask, op.dist, cfg.crossbars))
            self.stats.htree_hop_cycles += cycles - 1
        else:
            cycles = 1
        self.stats.record("move", cycles=cycles)
