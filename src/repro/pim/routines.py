"""General-purpose PIM routines: reduction, bitonic sort, CORDIC.

These are the paper's showcase algorithms (Section VI-A), written on top
of the tensor/view machinery:

- :func:`reduce` — logarithmic-time reduction (summation/product): each
  round moves the upper half next to the lower half (bulk-grouped intra-
  and inter-crossbar moves) and performs one masked vector operation.
- :func:`sort` — a bitonic sorting network; every compare-and-swap stage
  is one partner move plus a compare, an XOR with a precomputed direction
  pattern, and a mux — all full-vector instructions.
- :func:`cordic_sin`/:func:`cordic_cos` — sine/cosine approximation by
  CORDIC rotation, expressed purely with tensor arithmetic.

All working tensors of a routine come from one *group allocation*, which
guarantees they share a warp range (so the vector instructions inside the
routine never need alignment fallbacks).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.arch.masks import RangeMask
from repro.isa.dtypes import float32, int32, value_to_raw
from repro.isa.instructions import RInstr, ROp, WriteInstr
from repro.pim.tensor import Tensor, TensorLike, TensorView, _bulk_move, _node

#: Number of CORDIC rotation iterations (enough for float32 precision).
CORDIC_ITERATIONS = 24


def reduce(operand: TensorLike, op: ROp = ROp.ADD):
    """Reduce a tensor or view to a scalar in logarithmically many rounds.

    Round invariant: the first ``n`` elements of the working tensor hold
    the partial result. Each round moves elements ``[n - n//2, n)`` onto a
    scratch tensor aligned with elements ``[0, n//2)`` and applies one
    masked vector op, halving ``n`` (odd leftovers ride along untouched).
    """
    if op not in (ROp.ADD, ROp.MUL):
        raise ValueError("reduction supports ADD (sum) and MUL (prod)")
    n = operand.length
    if n == 1:
        return operand[0]
    device, dtype = operand.device, operand.dtype
    with _node(device, "reduce", op=op.value, length=n):
        return _reduce_lowered(operand, op, device, dtype, n)


def _reduce_lowered(operand: TensorLike, op: ROp, device, dtype, n: int):
    slots = device.allocator.allocate_group(n, 2)
    work = Tensor._from_slot(device, slots[0], n, dtype)
    scratch = Tensor._from_slot(device, slots[1], n, dtype)
    _bulk_move(
        device, operand._base.slot, operand._mask.indices(),
        work.slot, range(n),
    )
    while n > 1:
        half = n // 2
        keep = n - half  # elements [0, keep) stay; [keep, n) fold in
        _bulk_move(device, work.slot, range(keep, n), scratch.slot, range(half))
        mask = RangeMask(0, half - 1, 1)
        for warp_mask, row_mask in device.segments(work.slot, mask):
            device.execute(
                RInstr(
                    op, dtype,
                    dest=work.slot.reg,
                    src_a=work.slot.reg,
                    src_b=scratch.slot.reg,
                    warp_mask=warp_mask,
                    row_mask=row_mask,
                )
            )
        n = keep
    return work[0]


def _write_pattern(tensor: Tensor, bit: int) -> None:
    """Fill ``tensor[i] = (i >> bit) & 1`` using masked constant writes.

    Within a warp (``2**bit < rows``) the 1-runs are unions of strided row
    masks; at or above warp granularity they are warp-range masks. Bits at
    or beyond the tensor length produce all zeros.
    """
    device = tensor.device
    rows = device.rows
    n = tensor.length
    slot = tensor.slot
    zero = value_to_raw(0, int32)
    one = value_to_raw(1, int32)
    for warp_mask, row_mask in device.segments(slot, RangeMask.all(n)):
        device.execute(WriteInstr(slot.reg, zero, warp_mask, row_mask))
    period = 1 << (bit + 1)
    run = 1 << bit
    if run >= n:
        return  # the bit is constant 0 over the index range
    if rows & (rows - 1):
        # Non-power-of-two row counts break the per-warp periodicity; fall
        # back to writing each 1-run through the generic segmenter.
        for start in range(run, n, period):
            stop = min(start + run, n) - 1
            for warp_mask, row_mask in device.segments(slot, RangeMask(start, stop, 1)):
                device.execute(WriteInstr(slot.reg, one, warp_mask, row_mask))
    elif run < rows:
        # Row-level pattern, identical in every warp the tensor spans.
        warp_mask = RangeMask(slot.warp_start, slot.warp_stop - 1, 1)
        span = min(rows, n)
        for offset in range(run, min(period, span)):
            row_mask = RangeMask(
                offset, offset + ((span - 1 - offset) // period) * period, period
            )
            device.execute(WriteInstr(slot.reg, one, warp_mask, row_mask))
    else:
        warp_run = run // rows
        warp_period = period // rows
        total_warps = -(-n // rows)
        all_rows = RangeMask.all(min(rows, n))
        start = warp_run
        while start < total_warps:
            stop = min(start + warp_run, total_warps) - 1
            warp_mask = RangeMask(slot.warp_start + start, slot.warp_start + stop, 1)
            device.execute(WriteInstr(slot.reg, one, warp_mask, all_rows))
            start += warp_period


def _pad_value(dtype) -> int:
    """Raw pad word sorting above every input (+inf / INT_MAX)."""
    if dtype.is_float:
        return 0x7F800000  # +inf
    return 0x7FFFFFFF


def sort(operand: TensorLike) -> Tensor:
    """Ascending bitonic sort; returns a new compact tensor.

    Every stage ``(k, j)`` is fully vectored: the partner permutation
    ``P[i] = W[i ^ j]`` becomes bulk-grouped move instructions, then
    ``W' = mux(C ^ Bj ^ Bk, W, P)`` with ``C = (W < P)`` and ``Bm`` the
    index-bit-``m`` pattern — one mux encodes both the min/max selection
    and the per-block sort direction (see DESIGN.md). Pattern tensors are
    regenerated per stage from masked constant writes, so the routine's
    register footprint is constant (6 slots) regardless of input size.
    Non-power-of-two lengths are padded with +inf / INT_MAX.
    """
    device, dtype = operand.device, operand.dtype
    n = operand.length
    if n == 1:
        result = Tensor(device, 1, dtype)
        _bulk_move(device, operand._base.slot, operand._mask.indices(),
                   result.slot, range(1))
        return result
    with _node(device, "sort", length=n):
        return _sort_lowered(operand, device, dtype, n)


def _sort_lowered(operand: TensorLike, device, dtype, n: int) -> Tensor:
    padded = 1 << (n - 1).bit_length()

    slots = device.allocator.allocate_group(padded, 6)
    work = Tensor._from_slot(device, slots[0], padded, dtype)
    partner = Tensor._from_slot(device, slots[1], padded, dtype)
    cmp = Tensor._from_slot(device, slots[2], padded, int32)
    sel = Tensor._from_slot(device, slots[3], padded, int32)
    pattern_j = Tensor._from_slot(device, slots[4], padded, int32)
    pattern_k = Tensor._from_slot(device, slots[5], padded, int32)

    if padded > n:
        pad_raw = _pad_value(dtype)
        for warp_mask, row_mask in device.segments(work.slot, RangeMask.all(padded)):
            device.execute(WriteInstr(work.slot.reg, pad_raw, warp_mask, row_mask))
    _bulk_move(device, operand._base.slot, operand._mask.indices(),
               work.slot, range(n))

    full = RangeMask.all(padded)

    def vector(op: ROp, dest: Tensor, a: Tensor, b: Tensor = None,
               c: Tensor = None, dt=dtype):
        for warp_mask, row_mask in device.segments(dest.slot, full):
            device.execute(
                RInstr(
                    op, dt,
                    dest=dest.slot.reg,
                    src_a=a.slot.reg,
                    src_b=b.slot.reg if b is not None else None,
                    src_c=c.slot.reg if c is not None else None,
                    warp_mask=warp_mask,
                    row_mask=row_mask,
                )
            )

    k = 2
    while k <= padded:
        _write_pattern(pattern_k, int(math.log2(k)))  # zeros at the top level
        j = k // 2
        while j >= 1:
            # partner[i] = work[i ^ j]
            _bulk_move(
                device,
                work.slot,
                (i ^ j for i in range(padded)),
                partner.slot,
                range(padded),
            )
            vector(ROp.LT, cmp, work, partner)  # C = (W < P), 0/1 words
            _write_pattern(pattern_j, int(math.log2(j)))
            vector(ROp.BIT_XOR, sel, pattern_j, pattern_k, dt=int32)
            vector(ROp.BIT_XOR, sel, cmp, sel, dt=int32)
            # W' = sel ? W : P   (keep-min/max selection, see DESIGN.md)
            vector(ROp.MUX, work, sel, work, partner)
            j //= 2
        k *= 2

    result = Tensor(device, n, dtype, reference=work.slot)
    _bulk_move(device, work.slot, range(n), result.slot, range(n))
    return result


def _cordic_tables():
    """(angles, gain) for the rotation-mode CORDIC iterations."""
    angles = [math.atan(2.0**-k) for k in range(CORDIC_ITERATIONS)]
    gain = 1.0
    for k in range(CORDIC_ITERATIONS):
        gain *= 1.0 / math.sqrt(1.0 + 2.0 ** (-2 * k))
    return angles, gain


def _cordic(z: TensorLike):
    """Run CORDIC rotation; returns (cos-like, sin-like) tensors.

    Valid for angles in [-pi/2, pi/2] (the paper's benchmark range).
    """
    if not z.dtype.is_float:
        raise TypeError("CORDIC requires a float32 tensor")
    from repro.pim.functional import where

    angles, gain = _cordic_tables()
    x = _full_like(z, gain)
    y = _full_like(z, 0.0)
    angle = _full_like(z, 0.0)
    _bulk_move(z.device, z._base.slot, z._mask.indices(),
               angle.slot, range(z.length))
    for k in range(CORDIC_ITERATIONS):
        positive = angle >= 0.0
        scale = 2.0**-k
        x_step = y * scale
        y_step = x * scale
        new_x = where(positive, x - x_step, x + x_step)
        new_y = where(positive, y + y_step, y - y_step)
        angle = where(positive, angle - angles[k], angle + angles[k])
        x, y = new_x, new_y
    return x, y


def _full_like(ref: TensorLike, value: float) -> Tensor:
    out = Tensor(ref.device, ref.length, ref.dtype, reference=ref._base.slot)
    raw = value_to_raw(value, ref.dtype)
    for warp_mask, row_mask in ref.device.segments(out.slot, RangeMask.all(out.length)):
        ref.device.execute(WriteInstr(out.slot.reg, raw, warp_mask, row_mask))
    return out


def cordic_sin(z: TensorLike) -> Tensor:
    """Elementwise sine approximation for angles in [-pi/2, pi/2]."""
    return _cordic(z)[1]


def cordic_cos(z: TensorLike) -> Tensor:
    """Elementwise cosine approximation for angles in [-pi/2, pi/2]."""
    return _cordic(z)[0]
