"""The PIM device: simulator + driver + allocator behind the tensor API.

A :class:`PIMDevice` bundles everything one "chip" needs. The module keeps
a lazily-created default device (configurable via :func:`init`) so that the
NumPy-style module functions (``pim.zeros`` etc.) work out of the box, as
in the paper's examples.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.arch.config import PIMConfig
from repro.arch.masks import RangeMask
from repro.isa.dtypes import DType, array_to_raw, raw_to_array
from repro.isa.instructions import Instruction
from repro.pim.malloc import Allocator, Slot
from repro.sim.simulator import Simulator
from repro.sim.stats import SimStats


class PIMDevice:
    """One simulated PIM chip with its host driver and memory manager."""

    def __init__(self, config: Optional[PIMConfig] = None, **driver_kwargs):
        from repro.driver.driver import Driver  # local import: no cycles

        self.config = config or PIMConfig()
        self.simulator = Simulator(self.config)
        self.driver = Driver(self.simulator, **driver_kwargs)
        self.allocator = Allocator(self.config)

    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        return self.config.rows

    def execute(self, instr: Instruction):
        """Run one macro-instruction through the driver."""
        return self.driver.execute(instr)

    def compile(self, instructions, name: str = "stream", optimize: bool = True):
        """Record macro-instructions into one replayable compiled program.

        See :meth:`repro.driver.driver.Driver.compile`: the stream is
        validated once and peephole-optimized (bit-identical memory state
        in fewer cycles); replay it with :meth:`run_program`.
        """
        return self.driver.compile(instructions, name=name, optimize=optimize)

    def run_program(self, program):
        """Replay a compiled program on this chip's simulator."""
        return self.driver.run_program(program)

    def stats_snapshot(self) -> SimStats:
        """Copy of the simulator's counters (for profiling diffs)."""
        return self.simulator.stats.copy()

    # ------------------------------------------------------------------
    # Element addressing
    # ------------------------------------------------------------------
    def locate(self, slot: Slot, element: int) -> Tuple[int, int]:
        """(warp, thread) of a slot's element (row-major across warps)."""
        warp, thread = divmod(element, self.rows)
        return slot.warp_start + warp, thread

    # ------------------------------------------------------------------
    # Bulk data transfer (the test harness's DMA-style load path)
    # ------------------------------------------------------------------
    def load_array(self, slot: Slot, values: np.ndarray, dtype: DType) -> None:
        """Load host data directly into the simulated memory image.

        This is the paper's correctness-flow step (1), "loading the memory
        with sample data": it bypasses the instruction stream (and the
        profiling counters), exactly like a DMA/initialization interface.
        Element-by-element ISA writes remain available via the tensor API.
        """
        raw = array_to_raw(np.asarray(values).reshape(-1), dtype)
        rows = self.rows
        mem = self.simulator.memory.words
        for offset in range(0, raw.size, rows):
            warp = slot.warp_start + offset // rows
            chunk = raw[offset : offset + rows]
            mem[warp, slot.reg, : chunk.size] = chunk.astype(mem.dtype)

    def dump_array(self, slot: Slot, length: int, dtype: DType) -> np.ndarray:
        """Read a slot's contents back to the host (correctness step (3))."""
        rows = self.rows
        mem = self.simulator.memory.words
        out = np.empty(length, dtype=np.uint32)
        for offset in range(0, length, rows):
            warp = slot.warp_start + offset // rows
            take = min(rows, length - offset)
            out[offset : offset + take] = mem[warp, slot.reg, :take].astype(np.uint32)
        return raw_to_array(out, dtype)

    # ------------------------------------------------------------------
    # Mask segmentation over element ranges
    # ------------------------------------------------------------------
    def segments(
        self, slot: Slot, elements: RangeMask
    ) -> List[Tuple[RangeMask, RangeMask]]:
        """Split an element-index mask into (warp_mask, row_mask) groups.

        Elements map to (warp, row) row-major; the masked rows of each warp
        form an arithmetic pattern, and consecutive warps with identical
        row patterns merge into one warp-range group — a single pair of
        mask micro-ops then covers the whole group.
        """
        rows = self.rows
        per_warp: List[Tuple[int, RangeMask]] = []
        first_warp = elements.start // rows
        last_warp = elements.stop // rows
        for warp in range(first_warp, last_warp + 1):
            lo, hi = warp * rows, (warp + 1) * rows - 1
            # First masked element >= lo.
            if elements.start >= lo:
                begin = elements.start
            else:
                skip = -(-(lo - elements.start) // elements.step)
                begin = elements.start + skip * elements.step
            end = min(hi, elements.stop)
            if begin > end:
                continue
            count = (end - begin) // elements.step
            end = begin + count * elements.step
            row_mask = RangeMask(begin - lo, end - lo, elements.step)
            per_warp.append((slot.warp_start + warp, row_mask))

        groups: List[Tuple[RangeMask, RangeMask]] = []
        index = 0
        while index < len(per_warp):
            warp, row_mask = per_warp[index]
            stop = index + 1
            while (
                stop < len(per_warp)
                and per_warp[stop][1] == row_mask
                and per_warp[stop][0] == per_warp[stop - 1][0] + 1
            ):
                stop += 1
            groups.append(
                (RangeMask(warp, per_warp[stop - 1][0], 1), row_mask)
            )
            index = stop
        return groups


_default_device: Optional[PIMDevice] = None


def init(config: Optional[PIMConfig] = None, **kwargs) -> PIMDevice:
    """Create (or replace) the default device, e.g. ``pim.init(PIMConfig())``.

    Keyword arguments construct a :class:`PIMConfig` directly:
    ``pim.init(crossbars=4, rows=64)``.
    """
    global _default_device
    if config is None and kwargs:
        config = PIMConfig(**kwargs)
    _default_device = PIMDevice(config)
    return _default_device


def default_device() -> PIMDevice:
    """The default device, created on first use with default parameters."""
    global _default_device
    if _default_device is None:
        _default_device = PIMDevice(PIMConfig(crossbars=16, rows=256))
    return _default_device


def reset() -> None:
    """Drop the default device (tests use this for isolation)."""
    global _default_device
    _default_device = None
