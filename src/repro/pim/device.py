"""The PIM device: an execution backend + allocator behind the tensor API.

A :class:`PIMDevice` bundles everything one "chip" needs: the memory
allocator and a pluggable execution :class:`~repro.backend.base.Backend`.
The default backend is the bit-accurate driver + simulator pair; pass
``backend="numpy"`` to :func:`init` (or a backend instance/class) for the
fast functional model with identical cycle accounting.

The module keeps a lazily-created default device (configurable via
:func:`init`) so that the NumPy-style module functions (``pim.zeros``
etc.) work out of the box, as in the paper's examples. :func:`reset`
*closes* the default device: outstanding tensors raise a clear error on
use instead of silently touching a stale allocator.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.arch.config import PIMConfig
from repro.arch.masks import RangeMask
from repro.backend import Backend, make_backend
from repro.isa.dtypes import DType, array_to_raw, raw_to_array
from repro.isa.instructions import Instruction
from repro.pim.malloc import Allocator, Slot
from repro.sim.stats import SimStats


class PIMDevice:
    """One simulated PIM chip: execution backend + host memory manager."""

    def __init__(
        self,
        config: Optional[PIMConfig] = None,
        backend: Union[str, Backend, type, None] = None,
        **backend_kwargs,
    ):
        if config is None and isinstance(backend, Backend):
            config = backend.config  # adopt a pre-built backend's geometry
        self.config = config or PIMConfig()
        self.backend = make_backend(backend, self.config, **backend_kwargs)
        self.allocator = Allocator(self.config)
        self.closed = False
        self._trace = None
        self._trace_owner: Optional[int] = None
        #: Optimizer reports of recent graph lowerings on this device
        #: (``opt_level >= 1``), newest last, bounded to the last 32.
        #: ``pim.Profiler`` snapshots this to report the pre- vs
        #: post-optimization instruction and cycle counts of programs
        #: compiled inside a profiled block.
        self.opt_reports: List = []

    # ------------------------------------------------------------------
    # Backward-compatible access to the default backend's internals
    # ------------------------------------------------------------------
    @property
    def simulator(self):
        """The bit-accurate simulator (simulator backend only)."""
        sim = getattr(self.backend, "simulator", None)
        if sim is None:
            raise AttributeError(
                f"the {self.backend.name!r} backend has no simulator; use "
                "device.backend for backend-agnostic state access"
            )
        return sim

    @property
    def driver(self):
        """The host driver (simulator backend only)."""
        drv = getattr(self.backend, "driver", None)
        if drv is None:
            raise AttributeError(
                f"the {self.backend.name!r} backend has no host driver; use "
                "device.backend for backend-agnostic state access"
            )
        return drv

    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        return self.config.rows

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError(
                "this PIMDevice has been reset (pim.reset()); create a new "
                "device with pim.init() and reallocate its tensors"
            )

    def close(self) -> None:
        """Invalidate the device: any further use raises a clear error."""
        self.closed = True

    def _check_not_tracing(self, what: str) -> None:
        """DMA-style transfers bypass the instruction stream, so a replay
        could never reproduce them — fail loudly during capture."""
        if self._trace is not None:
            from repro.pim.graph import TraceError

            raise TraceError(
                f"cannot {what} tensor data over the DMA interface inside a "
                "traced function: the transfer bypasses the instruction "
                "stream, so replays would see stale data. Create inputs "
                "outside the trace and pass them as arguments (or use "
                "via='isa' writes); read results back after the call."
            )

    def execute(self, instr: Instruction):
        """Run one macro-instruction on the backend (recorded when tracing)."""
        self._check_open()
        result = self.backend.execute(instr)
        if self.tracing_here:
            self._trace.record(instr)
        return result

    def execute_stream(self, instructions, name: str = "stream"):
        """Run a whole macro-instruction stream as one emission unit.

        See :meth:`repro.backend.base.Backend.run_stream`: on backends
        with a stream compiler the stream is fused into one cached
        emission plan and dispatched with a single call; otherwise it
        loops per macro, bit-identically. When tracing, every
        instruction is recorded individually — a capture sees exactly
        the stream a per-macro loop would have recorded.
        """
        self._check_open()
        instrs = list(instructions)
        result = self.backend.run_stream(instrs, name=name)
        if self.tracing_here:
            for instr in instrs:
                self._trace.record(instr)
        return result

    def compile(self, instructions, name: str = "stream", optimize: bool = True):
        """Record macro-instructions into one replayable compiled program.

        See :meth:`repro.backend.base.Backend.compile`: on the simulator
        backend this is :meth:`repro.driver.driver.Driver.compile` (one
        validated, optionally peephole-optimized ``MicroProgram``);
        replay it with :meth:`run_program`.
        """
        self._check_open()
        return self.backend.compile(instructions, name=name, optimize=optimize)

    def run_program(self, program, verify: Optional[str] = None):
        """Replay a compiled program on this chip's backend.

        ``verify="checksum"`` enables the driver's output-region
        checksum protocol (see :mod:`repro.faults.checksum`).
        """
        self._check_open()
        if verify is None:
            return self.backend.run_program(program)
        return self.backend.run_program(program, verify=verify)

    def install_faults(self, plan):
        """Arm a :class:`repro.faults.FaultPlan` on this device's backend."""
        self._check_open()
        return self.backend.install_faults(plan)

    def quarantine_regions(self, regions) -> List[tuple]:
        """Retire the allocator cells under corrupted checksum regions.

        ``regions`` are :data:`repro.faults.checksum.Region` descriptors
        from a :class:`~repro.faults.ChecksumError`. Damage inside a user
        register quarantines the exact ``(reg, warp)`` cells; damage in
        the driver's scratch registers retires the whole warp, since
        every computation placed there shares those columns.
        """
        cells = []
        warps = set()
        user = self.config.user_registers
        for reg, (xs, xe, xstep), _rows in regions:
            for warp in range(xs, xe + 1, xstep):
                if reg < user:
                    cells.append((reg, warp))
                else:
                    warps.add(warp)
        quarantined = self.allocator.quarantine(cells)
        for warp in sorted(warps):
            quarantined.extend(self.allocator.quarantine_warp(warp))
        return quarantined

    def stats_snapshot(self) -> SimStats:
        """Copy of the backend's counters (for profiling diffs)."""
        return self.backend.stats_snapshot()

    # ------------------------------------------------------------------
    # Graph capture (see repro.pim.graph / repro.pim.compile)
    # ------------------------------------------------------------------
    def begin_trace(self, name: str = "trace"):
        """Attach a :class:`~repro.pim.graph.TraceSession` to this device."""
        from repro.pim.graph import TraceError, TraceSession

        self._check_open()
        if self._trace is not None:
            raise TraceError("a trace is already active on this device")
        self._trace = TraceSession(self, name)
        self._trace_owner = threading.get_ident()
        # Observe allocator frees: the optimizer's dead-temporary
        # analysis needs to know which traced cells outlive the capture.
        self.allocator.observer = self._trace
        return self._trace

    @property
    def tracing_here(self) -> bool:
        """True when a trace is active *and owned by the calling thread*.

        Nested-capture inlining must key on this, not on ``_trace`` being
        set: with serving threads sharing compiled functions, another
        thread's in-progress capture would otherwise be mistaken for "we
        are inside our own trace" and executed eagerly against it.
        """
        return (
            self._trace is not None
            and self._trace_owner == threading.get_ident()
        )

    def end_trace(self):
        """Detach and freeze the active trace session."""
        session = self._trace
        self._trace = None
        self._trace_owner = None
        self.allocator.observer = None
        if session is not None:
            session.close()
        return session

    # ------------------------------------------------------------------
    # Element addressing
    # ------------------------------------------------------------------
    def locate(self, slot: Slot, element: int) -> Tuple[int, int]:
        """(warp, thread) of a slot's element (row-major across warps)."""
        warp, thread = divmod(element, self.rows)
        return slot.warp_start + warp, thread

    # ------------------------------------------------------------------
    # Bulk data transfer (the test harness's DMA-style load path)
    # ------------------------------------------------------------------
    def load_array(self, slot: Slot, values: np.ndarray, dtype: DType) -> None:
        """Load host data directly into the simulated memory image.

        This is the paper's correctness-flow step (1), "loading the memory
        with sample data": it bypasses the instruction stream (and the
        profiling counters), exactly like a DMA/initialization interface.
        Element-by-element ISA writes remain available via the tensor API.
        """
        self._check_open()
        self._check_not_tracing("bulk-load")
        raw = array_to_raw(np.asarray(values).reshape(-1), dtype)
        rows = self.rows
        mem = self.backend.words
        for offset in range(0, raw.size, rows):
            warp = slot.warp_start + offset // rows
            chunk = raw[offset : offset + rows]
            mem[warp, slot.reg, : chunk.size] = chunk.astype(mem.dtype)

    def dump_array(self, slot: Slot, length: int, dtype: DType) -> np.ndarray:
        """Read a slot's contents back to the host (correctness step (3))."""
        self._check_open()
        self._check_not_tracing("read back")
        rows = self.rows
        mem = self.backend.words
        out = np.empty(length, dtype=np.uint32)
        for offset in range(0, length, rows):
            warp = slot.warp_start + offset // rows
            take = min(rows, length - offset)
            out[offset : offset + take] = mem[warp, slot.reg, :take].astype(np.uint32)
        return raw_to_array(out, dtype)

    def read_raw(self, slot: Slot, length: int) -> np.ndarray:
        """Snapshot a slot's raw words (DMA-style, uncounted)."""
        self._check_open()
        rows = self.rows
        mem = self.backend.words
        out = np.empty(length, dtype=mem.dtype)
        for offset in range(0, length, rows):
            take = min(rows, length - offset)
            warp = slot.warp_start + offset // rows
            out[offset : offset + take] = mem[warp, slot.reg, :take]
        return out

    def write_raw(self, slot: Slot, raw: np.ndarray) -> None:
        """Write raw words into a slot (DMA-style, uncounted).

        With :meth:`read_raw`, this is how the compiled-graph replay path
        marshals fresh input data into the captured argument registers.
        """
        self._check_open()
        rows = self.rows
        mem = self.backend.words
        for offset in range(0, raw.size, rows):
            take = min(rows, raw.size - offset)
            warp = slot.warp_start + offset // rows
            mem[warp, slot.reg, :take] = raw[offset : offset + take]

    # ------------------------------------------------------------------
    # Mask segmentation over element ranges
    # ------------------------------------------------------------------
    def segments(
        self, slot: Slot, elements: RangeMask
    ) -> List[Tuple[RangeMask, RangeMask]]:
        """Split an element-index mask into (warp_mask, row_mask) groups.

        Elements map to (warp, row) row-major; the masked rows of each warp
        form an arithmetic pattern, and consecutive warps with identical
        row patterns merge into one warp-range group — a single pair of
        mask micro-ops then covers the whole group.
        """
        rows = self.rows
        per_warp: List[Tuple[int, RangeMask]] = []
        first_warp = elements.start // rows
        last_warp = elements.stop // rows
        for warp in range(first_warp, last_warp + 1):
            lo, hi = warp * rows, (warp + 1) * rows - 1
            # First masked element >= lo.
            if elements.start >= lo:
                begin = elements.start
            else:
                skip = -(-(lo - elements.start) // elements.step)
                begin = elements.start + skip * elements.step
            end = min(hi, elements.stop)
            if begin > end:
                continue
            count = (end - begin) // elements.step
            end = begin + count * elements.step
            row_mask = RangeMask(begin - lo, end - lo, elements.step)
            per_warp.append((slot.warp_start + warp, row_mask))

        groups: List[Tuple[RangeMask, RangeMask]] = []
        index = 0
        while index < len(per_warp):
            warp, row_mask = per_warp[index]
            stop = index + 1
            while (
                stop < len(per_warp)
                and per_warp[stop][1] == row_mask
                and per_warp[stop][0] == per_warp[stop - 1][0] + 1
            ):
                stop += 1
            groups.append(
                (RangeMask(warp, per_warp[stop - 1][0], 1), row_mask)
            )
            index = stop
        return groups


_default_device: Optional[PIMDevice] = None

#: Objects that must be shut down before ``reset()`` may proceed (live
#: ``repro.serve.Server`` instances register here on start). Weakly
#: referenced: a collected guard never blocks a reset. A guard exposes
#: ``reset_guard_active`` (bool) and ``reset_guard_reason`` (str).
_reset_guards: "weakref.WeakSet" = None


def register_reset_guard(guard) -> None:
    """Register an object whose liveness blocks :func:`reset`."""
    global _reset_guards
    if _reset_guards is None:
        import weakref

        _reset_guards = weakref.WeakSet()
    _reset_guards.add(guard)


def init(
    config: Optional[PIMConfig] = None,
    backend: Union[str, Backend, type, None] = None,
    **kwargs,
) -> PIMDevice:
    """Create (or replace) the default device, e.g. ``pim.init(PIMConfig())``.

    Keyword arguments matching :class:`~repro.arch.config.PIMConfig`
    fields construct a config directly (``pim.init(crossbars=4, rows=64)``);
    the rest are forwarded to the backend (e.g. ``parallelism="serial"``,
    ``move_cost="htree"``, or the simulator backend's
    ``replay_engine="thunk"`` to disable vectorized super-step replay).
    ``backend`` selects the execution engine: ``"simulator"`` (default,
    bit-accurate), ``"numpy"`` (fast functional model, same cycle
    accounting), or ``"pooled"`` (inter-crossbar sharding across worker
    backends; ``workers=4`` and ``worker_backend="simulator"`` select
    the pool shape — see :mod:`repro.pool`).

    Cache controls: ``cache_size=`` bounds each program-cache tier's LRU
    (default from ``REPRO_CACHE_SIZE``, else 4096; 0 disables) and
    ``cache_dir=`` enables the cross-session persistent program cache
    (default from ``REPRO_CACHE_DIR``) so a warm-started session skips
    gate building — see :mod:`repro.driver.persist`.

    The previous default device (if any) is closed: tensors allocated on
    it raise a clear error instead of touching stale state.
    """
    global _default_device
    config_fields = set(PIMConfig.__dataclass_fields__)
    config_kwargs = {k: v for k, v in kwargs.items() if k in config_fields}
    backend_kwargs = {k: v for k, v in kwargs.items() if k not in config_fields}
    if config is None and config_kwargs:
        config = PIMConfig(**config_kwargs)
    elif config_kwargs:
        raise TypeError("pass either a PIMConfig or config keyword arguments")
    # Build the replacement first: a failed init (bad backend name, bad
    # config) must not invalidate the still-working previous default.
    device = PIMDevice(config, backend=backend, **backend_kwargs)
    if _default_device is not None:
        _default_device.close()
    _default_device = device
    return _default_device


def default_device() -> PIMDevice:
    """The default device, created on first use with default parameters."""
    global _default_device
    if _default_device is None:
        _default_device = PIMDevice(PIMConfig(crossbars=16, rows=256))
    return _default_device


def reset() -> None:
    """Close and drop the default device (tests use this for isolation).

    Outstanding tensors are invalidated explicitly: their ``device``
    back-reference starts raising ``RuntimeError`` and their destructors
    become no-ops, so nothing can free into (or write through) a stale
    allocator.

    Resetting under a live server would tear the device out from under
    in-flight requests and leave their callers hanging, so an active
    ``repro.serve.Server`` makes ``reset()`` fail cleanly instead.
    """
    global _default_device
    if _reset_guards is not None:
        active = [
            getattr(guard, "reset_guard_reason", repr(guard))
            for guard in _reset_guards
            if getattr(guard, "reset_guard_active", False)
        ]
        if active:
            raise RuntimeError(
                "pim.reset() with active services: "
                + "; ".join(sorted(active))
                + ". Close them first."
            )
    if _default_device is not None:
        _default_device.close()
    _default_device = None
