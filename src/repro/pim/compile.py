"""``pim.compile``: whole-function graph capture with cached replay.

The Figure-12 user program becomes one fused program with a decorator::

    @pim.compile
    def my_func(a, b):
        return a * b + a

    z = my_func(x, y)        # first call: capture + lower + cache
    z = my_func(x2, y2)      # later calls: replay the fused program

The first call with a given signature (argument lengths/dtypes, scalar
values, device geometry) runs the function eagerly under a
:class:`~repro.pim.graph.TraceSession`, then lowers the captured
macro-instruction stream through the device backend into one replayable
program — on the simulator backend that is a single fused
:class:`~repro.driver.program.MicroProgram` riding the
``execute_program`` replay fast path. Under the default ``"stream"``
emission mode that lowering goes through the driver's spliced stream
compiler (:mod:`repro.driver.stream`): cached per-R-type bodies are
stitched between cached mask preambles instead of re-lowered, so
capture-time compilation of long traces is cheap and op-for-op
identical to per-macro lowering. Later calls skip the entire tensor
layer and driver: new argument data is DMA-copied into the captured
input registers, the program replays, and deferred scalar reads are
re-issued.

Replay is **cycle-exact** with eager mode by default (``opt_level=0``):
the replayed stream is the eager stream, so memory contents and PIM
cycle counters match bit-for-bit. Higher optimization levels trade that
full-memory identity for speed while keeping every *observable* value
bit-identical (outputs, arguments, deferred scalar reads): level 1
(the legacy ``optimize=True``) runs the driver's peephole passes, level
2 adds graph-level constant folding, common-subexpression elimination
and dead-temporary elimination, and level 3 adds register reuse so the
compiled graph reserves fewer crossbar cells (see
:mod:`repro.pim.optimizer`). ``CompiledFunction.opt_report()`` exposes
the pre- vs post-optimization instruction and cycle counts.

Limitations (enforced with :class:`~repro.pim.graph.TraceError` where
detectable): Python-level control flow is baked in at capture time, PIM
scalars read inside the function may only be returned (not used to steer
computation), and arguments must be compact tensors or scalars. Output
tensors are the compiled graph's persistent result buffers: every replay
returns the *same* tensor objects with refreshed contents (call
``.copy()`` to keep a result across calls), unlike eager mode's fresh
tensor per call.
"""

from __future__ import annotations

import functools
import threading
from collections import OrderedDict
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from repro.arch.masks import RangeMask
from repro.driver.program import config_fingerprint
from repro.isa.instructions import MoveInstr, ReadInstr, RInstr, WriteInstr
from repro.pim.graph import Graph, ScalarRef, TraceError, TraceSession
from repro.pim.tensor import Tensor, TensorView

#: Python/NumPy scalar types accepted as baked-in compiled-call arguments.
_SCALAR_TYPES = (int, float, np.integer, np.floating)


def _resolve(value):
    """Replace ScalarRefs with their concrete values in an output tree."""
    if isinstance(value, ScalarRef):
        return value.value
    if isinstance(value, tuple):
        return tuple(_resolve(v) for v in value)
    if isinstance(value, list):
        return [_resolve(v) for v in value]
    if isinstance(value, dict):
        return {k: _resolve(v) for k, v in value.items()}
    return value


def _resolve_replay(value, scalars: List):
    """Rebuild an output tree using this replay's deferred-read values."""
    if isinstance(value, ScalarRef):
        from repro.isa.dtypes import raw_to_value

        return raw_to_value(scalars[value.read_index], value.dtype)
    if isinstance(value, tuple):
        return tuple(_resolve_replay(v, scalars) for v in value)
    if isinstance(value, list):
        return [_resolve_replay(v, scalars) for v in value]
    if isinstance(value, dict):
        return {k: _resolve_replay(v, scalars) for k, v in value.items()}
    return value


def _collect_output_bases(value, acc: set) -> None:
    """Record the base tensors an output tree aliases (by identity)."""
    if isinstance(value, Tensor):
        acc.add(id(value))
    elif isinstance(value, TensorView):
        acc.add(id(value.base))
    elif isinstance(value, (tuple, list)):
        for item in value:
            _collect_output_bases(item, acc)
    elif isinstance(value, dict):
        for item in value.values():
            _collect_output_bases(item, acc)


def _writes_slot(instr, slot, config) -> bool:
    """Does this instruction write anywhere inside a slot's cells?"""

    def overlaps(reg: int, warps: Optional[RangeMask], shift: int = 0) -> bool:
        if reg != slot.reg:
            return False
        warps = warps or RangeMask.all(config.crossbars)
        lo, hi = warps.start + shift, warps.stop + shift
        return hi >= slot.warp_start and lo < slot.warp_stop

    if isinstance(instr, RInstr):
        return overlaps(instr.dest, instr.warp_mask)
    if isinstance(instr, WriteInstr):
        return overlaps(instr.reg, instr.warp_mask)
    if isinstance(instr, MoveInstr):
        return overlaps(instr.dst_reg, instr.warp_mask, instr.warp_dist)
    return False


def _overwrites_cell(instr, reg: int, warp: int, thread: int, config) -> bool:
    """Does this instruction write the memory word a read observed?"""
    if isinstance(instr, RInstr):
        if instr.dest != reg:
            return False
        warps = instr.warp_mask or RangeMask.all(config.crossbars)
        rows = instr.row_mask or RangeMask.all(config.rows)
        return warp in warps and thread in rows
    if isinstance(instr, WriteInstr):
        if instr.reg != reg:
            return False
        warps = instr.warp_mask or RangeMask.all(config.crossbars)
        rows = instr.row_mask or RangeMask.all(config.rows)
        return warp in warps and thread in rows
    if isinstance(instr, MoveInstr):
        if instr.dst_reg != reg or instr.dst_thread != thread:
            return False
        warps = instr.warp_mask or RangeMask.all(config.crossbars)
        return (warp - instr.warp_dist) in warps
    return False


def _check_deferred_reads(instructions, config) -> None:
    """Reject captures whose scalar reads replay cannot defer.

    Deferred reads are re-issued *after* the replayed program, which is
    only equivalent when nothing later in the stream overwrites the cell
    each read observed (true for the terminal read of a reduction, the
    common case). A mid-stream read of a subsequently recycled cell
    would silently return the later value, so it fails loudly instead.
    """
    pending: List[ReadInstr] = []
    for instr in instructions:
        if isinstance(instr, ReadInstr):
            pending.append(instr)
            continue
        for read in pending:
            if _overwrites_cell(instr, read.reg, read.warp, read.thread, config):
                raise TraceError(
                    "a scalar read inside the traced function observes "
                    "memory that later operations overwrite, so its value "
                    "cannot be re-read after replay. Restructure the "
                    "function so scalars are read from cells that stay "
                    "live (e.g. read them after the compiled call)."
                )


class CompiledGraph:
    """One captured-and-lowered graph: the unit the signature cache holds.

    Holds the capture-time argument and output tensors, and *reserves*
    the allocator cells the replayed stream writes (at ``opt_level=0``
    that is every cell the trace touched, including cells whose
    intermediate tensors were freed during capture; the optimizer
    shrinks the set when it eliminates whole temporaries) — nothing else
    may be allocated there. Dropping the compiled graph releases the
    reservation.
    """

    def __init__(
        self,
        device,
        session: TraceSession,
        program,
        bound_args: Tuple[Any, ...],
        outputs: Any,
    ):
        self.device = device
        self.graph: Graph = session.graph
        self.program = program
        self.reads = session.reads
        self.bound_args = bound_args
        self.outputs = outputs
        #: The optimizer's pre/post accounting (None for level-0 graphs).
        self.report = session.last_report
        cells = session.replay_cells
        if cells is None:
            cells = session.cells
        self.reserved = device.allocator.reserve_cells(cells)
        self.replays = 0
        # Base tensors the outputs alias: replay must leave the marshalled
        # data in these (the output *is* the argument buffer); every other
        # argument tensor is restored so calling f(y, x) cannot corrupt
        # the captured x and y.
        self._output_base_ids: set = set()
        _collect_output_bases(outputs, self._output_base_ids)
        # Argument tensors the traced stream itself writes: eager mode
        # mutates the caller's tensor in place, so replay must copy the
        # computed contents back out instead of restoring stale data.
        self._mutated_bound_ids = {
            id(bound)
            for bound in bound_args
            if isinstance(bound, Tensor)
            and any(
                _writes_slot(instr, bound.slot, device.config)
                for instr in self.graph.instructions
            )
        }

    def release(self) -> None:
        """Return the reserved scratch cells to the allocator."""
        if self.reserved and not self.device.closed:
            self.device.allocator.release_cells(self.reserved)
        self.reserved = []

    def __del__(self):
        try:
            self.release()
        except Exception:  # interpreter teardown
            pass

    def replay(self, args: Tuple[Any, ...], verify: Optional[str] = None):
        device = self.device
        backend = device.backend
        # Marshal: new argument data lands in the captured input slots (a
        # DMA-style raw copy, like the test harness's load path; a call
        # that reuses the original tensor objects copies nothing). All
        # sources are snapshotted before any slot is written, so passing
        # the captured tensors back in permuted positions cannot clobber
        # a value that another argument still needs; marshalled slots are
        # restored afterwards (unless an output aliases them), so the
        # captured tensors keep their own data across replays.
        pending = []
        saved = []
        write_back = []
        for bound, arg in zip(self.bound_args, args):
            if isinstance(bound, Tensor) and arg is not bound:
                pending.append((bound, device.read_raw(arg.slot, bound.length)))
                if id(bound) in self._mutated_bound_ids:
                    # Eager mode writes the caller's tensor in place; the
                    # replayed stream writes the bound slot, so the result
                    # is copied out to the caller afterwards.
                    write_back.append((bound, arg))
                elif id(bound) not in self._output_base_ids:
                    saved.append((bound, device.read_raw(bound.slot, bound.length)))
        for bound, raw in pending:
            device.write_raw(bound.slot, raw)
        try:
            if verify is None:
                backend.run_program(self.program)
            else:
                backend.run_program(self.program, verify=verify)
            self.replays += 1
            if not self.reads:
                return _resolve(self.outputs)
            # Deferred scalar reads are re-issued eagerly (their 3
            # micro-ops are charged exactly as eager mode charges them)
            # and converted with each ScalarRef's capture-time dtype.
            scalars = [backend.execute(instr) for instr in self.reads]
            return _resolve_replay(self.outputs, scalars)
        finally:
            for bound, arg in write_back:
                device.write_raw(arg.slot, device.read_raw(bound.slot, bound.length))
            for bound, raw in saved:
                device.write_raw(bound.slot, raw)


class CompiledFunction:
    """The callable returned by ``@pim.compile`` (one cache per function).

    Programs are cached per *signature*: argument kinds, tensor lengths
    and dtypes, baked-in scalar values, the device identity, its config
    fingerprint, and the backend — a re-``init`` or geometry change can
    never replay a stale graph.
    """

    def __init__(
        self,
        fn: Callable,
        device=None,
        optimize: bool = False,
        opt_level: Optional[int] = None,
        name: Optional[str] = None,
        cache_size: int = 32,
        verify: Optional[str] = None,
    ):
        from repro.pim.optimizer import resolve_opt_level

        functools.update_wrapper(self, fn)
        self.fn = fn
        self.opt_level = resolve_opt_level(optimize, opt_level)
        self.optimize = self.opt_level >= 1
        self.name = name or getattr(fn, "__name__", "graph")
        self.cache_size = max(int(cache_size), 1)
        if verify not in (None, "checksum"):
            raise ValueError(f"unknown verify mode {verify!r}")
        self.verify = verify
        #: Recovery accounting: replays retried after a checksum
        #: mismatch, and graphs recompiled around quarantined cells.
        self.fault_retries = 0
        self.fault_recompiles = 0
        self._device = device
        self._cache: "OrderedDict[Tuple, CompiledGraph]" = OrderedDict()
        self.captures = 0
        # Serving threads share CompiledFunction objects (the per-session
        # handle is the function, not the device), so the signature cache
        # and capture/replay critical section take a lock. Reentrant:
        # a traced body may call back into the same compiled function
        # (the nested-capture inlining path).
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _signature(self, device, args) -> Tuple:
        parts: List[Tuple] = []
        first_seen: dict = {}
        for position, arg in enumerate(args):
            if isinstance(arg, Tensor):
                if arg.device is not device:
                    raise TraceError(
                        "argument tensor lives on a different device than "
                        "the one this function compiles for"
                    )
                # The aliasing pattern is part of the graph's identity:
                # f(x, x) captures both operands in one register, so a
                # later f(y, z) must recapture, not replay.
                alias = first_seen.setdefault(id(arg), position)
                parts.append(("tensor", arg.length, arg.dtype.name, alias))
            elif isinstance(arg, TensorView):
                raise TraceError(
                    "compiled functions take compact tensors; call "
                    ".compact() on views before passing them"
                )
            elif isinstance(arg, _SCALAR_TYPES):
                parts.append(("scalar", type(arg).__name__, arg))
            else:
                raise TraceError(
                    f"unsupported compiled-call argument {type(arg).__name__}; "
                    "pass pim.Tensor or plain scalars"
                )
        return (
            id(device),
            device.backend.name,
            config_fingerprint(device.config),
            tuple(parts),
        )

    def _capture(self, device, args) -> Tuple[CompiledGraph, Any]:
        self.captures += 1
        session = device.begin_trace(self.name)
        try:
            out = self.fn(*args)
        finally:
            device.end_trace()
        _check_deferred_reads(session.graph.instructions, device.config)
        program = session.lower(opt_level=self.opt_level, keep_reads=False)
        entry = CompiledGraph(device, session, program, tuple(args), out)
        return entry, _resolve(out)

    # ------------------------------------------------------------------
    def __call__(self, *args):
        from repro.pim.device import default_device

        device = self._device or default_device()
        if device.tracing_here:
            # Nested inside another capture *on this thread*: inline into
            # the outer graph. Another thread's in-progress capture does
            # not count — those callers fall through to the lock below
            # and wait their turn.
            return self.fn(*args)
        with self._lock:
            key = self._signature(device, args)
            entry = self._cache.get(key)
            if entry is not None and entry.device is device and not device.closed:
                self._cache.move_to_end(key)
                if self.verify is None:
                    return entry.replay(args)
                return self._replay_verified(device, key, entry, args)
            if entry is not None:
                entry.release()
            entry, first = self._capture(device, args)
            self._store(key, entry)
            return first

    def _replay_verified(self, device, key, entry, args):
        """Checksum-verified replay with retry → quarantine → recompile.

        A single mismatch is treated as a transient upset: the replay is
        retried once (re-marshalling the arguments). A second mismatch
        means persistent damage (stuck-at cells): the corrupted regions
        are mapped to allocator cells and quarantined, the cached graph
        is dropped, and the signature recaptures eagerly — its fresh
        allocations planned around the bad cells.
        """
        from repro.faults.checksum import ChecksumError

        try:
            return entry.replay(args, verify=self.verify)
        except ChecksumError:
            self.fault_retries += 1
        try:
            return entry.replay(args, verify=self.verify)
        except ChecksumError as error:
            self.fault_recompiles += 1
            if error.regions:
                device.quarantine_regions(error.regions)
            entry.release()
            self._cache.pop(key, None)
            entry, first = self._capture(device, args)
            self._store(key, entry)
            return first

    def _store(self, key: Tuple, entry: CompiledGraph) -> None:
        """Insert a captured graph, enforcing the LRU bound.

        Bounded because each entry reserves allocator cells: unbounded
        growth (e.g. a sweep over baked-in scalar arguments) would
        exhaust the device memory, not just the host's.
        """
        self._cache[key] = entry
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            _, evicted = self._cache.popitem(last=False)
            evicted.release()

    # ------------------------------------------------------------------
    @property
    def cached_graphs(self) -> int:
        """Number of captured (graph, signature) entries currently held."""
        return len(self._cache)

    def _entry_for(self, args) -> CompiledGraph:
        """The cached compiled graph for a signature (capturing if new)."""
        from repro.pim.device import default_device

        device = self._device or default_device()
        with self._lock:
            key = self._signature(device, args)
            entry = self._cache.get(key)
            if entry is None or entry.device is not device or device.closed:
                if entry is not None:
                    entry.release()
                entry, _ = self._capture(device, args)
                self._store(key, entry)
        return entry

    def graph_for(self, *args) -> Graph:
        """The captured tensor-level IR for a signature (capturing if new)."""
        return self._entry_for(args).graph

    def opt_report(self, *args):
        """The optimizer's pre/post accounting for a signature.

        Returns the :class:`~repro.pim.optimizer.OptReport` recorded when
        the signature's graph was lowered (capturing if new), or ``None``
        at ``opt_level=0`` where the stream replays verbatim.
        """
        return self._entry_for(args).report

    def replay_info(self, *args):
        """Replay-engine accounting for a signature (capturing if new).

        On the simulator backend: the engine replays will use
        (``"vectorized"`` super-steps or per-op ``"thunk"``\\ s) plus the
        fused program's super-step segmentation counts — how much of the
        stream executes as bulk fused updates versus op-at-a-time (see
        :meth:`repro.backend.base.Backend.program_replay_info`). Empty on
        backends with a single execution strategy.
        """
        entry = self._entry_for(args)
        return entry.device.backend.program_replay_info(entry.program)

    def clear(self) -> None:
        """Drop every cached graph (releases the reserved cells)."""
        for entry in self._cache.values():
            entry.release()
        self._cache.clear()


def compile(
    fn: Optional[Callable] = None,
    *,
    device=None,
    optimize: bool = False,
    opt_level: Optional[int] = None,
    cache_size: int = 32,
    verify: Optional[str] = None,
):
    """Decorate a tensor function for capture-once / replay-many execution.

    Usable bare (``@pim.compile``) or parameterized
    (``@pim.compile(opt_level=2)``). ``opt_level`` selects the optimizer
    pipeline (0 = cycle-exact verbatim replay, the default; 1 = driver
    peephole passes, the legacy ``optimize=True``; 2 = graph-level
    constant folding + CSE + dead-temporary elimination; 3 = level 2
    plus register reuse — see :mod:`repro.pim.optimizer`). Optimized
    replays stay bit-identical on every observable value. ``cache_size``
    bounds the per-function signature cache (LRU; evicted graphs release
    their reserved device cells). ``verify="checksum"`` makes every
    replay self-checking: output regions are checksummed across the
    post-replay fault window, a detected corruption retries once
    (transient upsets), and a repeat offender quarantines the damaged
    cells in the allocator and recompiles the graph around them (see
    :mod:`repro.faults`). See the module docstring for the capture
    protocol, the cache key, and tracing limitations.
    """
    if fn is None:
        return functools.partial(
            compile,
            device=device,
            optimize=optimize,
            opt_level=opt_level,
            cache_size=cache_size,
            verify=verify,
        )
    return CompiledFunction(
        fn,
        device=device,
        optimize=optimize,
        opt_level=opt_level,
        cache_size=cache_size,
        verify=verify,
    )
