"""PIM-optimized dynamic memory management (Section V-A).

The allocatable unit is a *slot*: one register index across a contiguous
range of warps (every thread of those warps holds one element at that
register). A tensor of ``n`` elements needs ``ceil(n / rows)`` consecutive
warps at a single register index.

Alignment is the whole game: two tensors can feed one element-parallel
instruction only if they live in the *same warps* (at any registers), so
``allocate`` accepts a *reference* slot and tries hard to place the new
tensor over the same warp range, falling back to first-fit (the library
then inserts copy/move fallbacks, as the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.arch.config import PIMConfig


class PIMMemoryError(Exception):
    """Raised when no slot satisfies an allocation request."""


@dataclass(frozen=True)
class Slot:
    """An allocated placement: register ``reg`` across warps
    ``[warp_start, warp_start + warp_count)``."""

    reg: int
    warp_start: int
    warp_count: int

    @property
    def warp_stop(self) -> int:
        return self.warp_start + self.warp_count


class Allocator:
    """First-fit register/warp allocator with reference-alignment.

    Tracks, per user register, which warps are occupied. The scratch
    registers reserved for the driver are never handed out.
    """

    def __init__(self, config: PIMConfig):
        self.config = config
        # reg -> set of occupied warp indices
        self._occupied: Dict[int, Set[int]] = {
            reg: set() for reg in range(config.user_registers)
        }
        self._live: Set[Slot] = set()
        # Quarantined (reg, warp) cells: learned bad-cell map (stuck-at
        # faults detected by checksum verification). Bad cells are kept
        # permanently occupied so no future placement touches them.
        self._bad: Set[tuple] = set()
        #: Optional free-observer with an ``untrack_slot(slot)`` method.
        #: A live :class:`~repro.pim.graph.TraceSession` installs itself
        #: here so mid-trace frees are visible to the graph optimizer
        #: (dead-temporary analysis needs to know which cells no live
        #: tensor owns when the capture ends).
        self.observer = None

    # ------------------------------------------------------------------
    def warps_needed(self, length: int) -> int:
        """Warps required to hold ``length`` elements."""
        if length <= 0:
            raise ValueError("tensor length must be positive")
        return -(-length // self.config.rows)

    def _fits(self, reg: int, start: int, count: int) -> bool:
        if start < 0 or start + count > self.config.crossbars:
            return False
        occupied = self._occupied[reg]
        return all(w not in occupied for w in range(start, start + count))

    def allocate(self, length: int, reference: Optional[Slot] = None) -> Slot:
        """Place ``length`` elements, preferring the reference's warp range.

        The search order is: (1) exactly the reference's warp range on any
        free register; (2) first fit over (register, warp offset). Raises
        :class:`PIMMemoryError` when the memory is exhausted.
        """
        count = self.warps_needed(length)
        if reference is not None:
            for reg in range(self.config.user_registers):
                if self._fits(reg, reference.warp_start, count):
                    return self._claim(reg, reference.warp_start, count)
        # Warp-range outer / register inner: consecutive allocations land
        # in the same warp range, which is what keeps element-wise operands
        # aligned without copies (Section V-A's malloc goal).
        for start in range(self.config.crossbars - count + 1):
            for reg in range(self.config.user_registers):
                if self._fits(reg, start, count):
                    return self._claim(reg, start, count)
        raise PIMMemoryError(
            f"cannot place {length} elements ({count} warps): memory exhausted"
        )

    def allocate_group(self, length: int, k: int) -> List[Slot]:
        """Place ``k`` same-length slots in one shared warp range.

        This is the alignment guarantee behind operand staging: when the
        reference heuristic cannot align operands, the library moves them
        into a group allocated here (and raises when no warp range has
        ``k`` free registers).
        """
        count = self.warps_needed(length)
        for start in range(self.config.crossbars - count + 1):
            regs = [
                reg
                for reg in range(self.config.user_registers)
                if self._fits(reg, start, count)
            ]
            if len(regs) >= k:
                return [self._claim(reg, start, count) for reg in regs[:k]]
        raise PIMMemoryError(
            f"no warp range has {k} free registers for {length} elements"
        )

    def _claim(self, reg: int, start: int, count: int) -> Slot:
        slot = Slot(reg, start, count)
        self._occupied[reg].update(range(start, start + count))
        self._live.add(slot)
        return slot

    def free(self, slot: Slot) -> None:
        """Release a slot (idempotent, so destructors may race teardown)."""
        if slot not in self._live:
            return
        self._live.discard(slot)
        for warp in range(slot.warp_start, slot.warp_stop):
            if (slot.reg, warp) not in self._bad:
                self._occupied[slot.reg].discard(warp)
        if self.observer is not None:
            self.observer.untrack_slot(slot)

    # ------------------------------------------------------------------
    # Bad-cell quarantine (the learned fault map, Section: resilience)
    # ------------------------------------------------------------------
    def quarantine(self, cells) -> List[tuple]:
        """Permanently retire ``(reg, warp)`` cells; returns newly-bad ones.

        A quarantined cell is marked occupied and never released again —
        not by :meth:`free`, not by :meth:`release_cells` — so every
        subsequent placement plans around it. Cells outside the user
        registers (scratch damage) are ignored here; quarantine the
        whole warp with :meth:`quarantine_warp` instead, since scratch
        columns are shared by every computation on that warp.
        """
        newly = []
        for reg, warp in cells:
            occupied = self._occupied.get(reg)
            if occupied is None or (reg, warp) in self._bad:
                continue
            if not 0 <= warp < self.config.crossbars:
                continue
            self._bad.add((reg, warp))
            occupied.add(warp)
            newly.append((reg, warp))
        return newly

    def quarantine_warp(self, warp: int) -> List[tuple]:
        """Retire every user-register cell of one warp (scratch damage)."""
        return self.quarantine(
            (reg, warp) for reg in range(self.config.user_registers)
        )

    @property
    def bad_cells(self) -> Set[tuple]:
        """The learned bad-cell map (copy; ``(reg, warp)`` pairs)."""
        return set(self._bad)

    # ------------------------------------------------------------------
    # Cell-level reservation (the compiled-graph working set)
    # ------------------------------------------------------------------
    def reserve_cells(self, cells) -> List[tuple]:
        """Mark free ``(reg, warp)`` cells occupied; returns those claimed.

        A captured graph's replay stream writes into every cell its trace
        allocated, including cells whose tensors were freed before the
        capture finished — this keeps later allocations out of them.
        Cells already occupied (by live tensors) are skipped.
        """
        claimed = []
        for reg, warp in cells:
            occupied = self._occupied.get(reg)
            if occupied is None or warp in occupied:
                continue
            occupied.add(warp)
            claimed.append((reg, warp))
        return claimed

    def release_cells(self, cells) -> None:
        """Return cells claimed by :meth:`reserve_cells` to the free pool.

        Quarantined cells stay occupied: a graph whose working set
        contained a since-retired cell must not hand it back.
        """
        for reg, warp in cells:
            occupied = self._occupied.get(reg)
            if occupied is not None and (reg, warp) not in self._bad:
                occupied.discard(warp)

    @property
    def live_slots(self) -> int:
        """Number of currently allocated slots (for tests/leak checks)."""
        return len(self._live)

    def occupancy(self) -> float:
        """Fraction of (register, warp) cells currently occupied."""
        total = self.config.user_registers * self.config.crossbars
        used = sum(len(warps) for warps in self._occupied.values())
        return used / total
