"""PIM tensors and tensor views (Section V-A).

:class:`Tensor` is a compact 1-D vector: element ``i`` lives at register
``slot.reg`` of thread ``i % rows`` in warp ``slot.warp_start + i // rows``.
:class:`TensorView` wraps a tensor with a range mask, implementing Python
slicing (``x[::2]``) over the same underlying memory; operations on views
are lowered to row/warp-masked instructions, and inter-view data transfer
is automatically converted into (bulk-grouped) move instructions — the
paper's "tensor views" abstraction of inter-warp communication.

Operator overloading mirrors NumPy: ``+ - * / %``, comparisons (int32 0/1
results), bitwise ``& | ^ ~``, unary ``-``/``abs``. Mixed operands are
aligned automatically: a scalar is broadcast with masked writes, and a
misaligned tensor is copied next to its peer (the malloc fallback routine
of Section V-A).
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch.masks import RangeMask
from repro.isa.dtypes import DType, float32, int32, raw_to_value, value_to_raw
from repro.isa.instructions import (
    MoveInstr,
    ReadInstr,
    RInstr,
    ROp,
    WriteInstr,
)
from repro.pim.device import PIMDevice, default_device
from repro.pim.malloc import Slot

Scalar = Union[int, float, np.integer, np.floating]


def _active_trace(device: PIMDevice):
    """The device's trace session if *this thread* owns it, else None.

    Tensor work from other threads must never record into (or defer
    scalars against) a capture that happens to be in flight elsewhere.
    """
    return device._trace if device.tracing_here else None


def _node(device: PIMDevice, kind: str, **meta):
    """Graph-node scope when the device is tracing, else a no-op."""
    trace = _active_trace(device)
    if trace is None:
        return nullcontext()
    return trace.node(kind, **meta)


class Tensor:
    """A 1-D PIM tensor (one register index across a warp range)."""

    def __init__(
        self,
        device: PIMDevice,
        length: int,
        dtype: DType,
        reference: Optional[Slot] = None,
    ):
        self._device = device
        self.length = length
        self.dtype = dtype
        self.slot = device.allocator.allocate(length, reference=reference)
        trace = _active_trace(device)
        if trace is not None:
            trace.track(self)

    @classmethod
    def _from_slot(cls, device: PIMDevice, slot: Slot, length: int, dtype: DType):
        """Wrap a pre-allocated slot (used by group-aligned staging)."""
        tensor = cls.__new__(cls)
        tensor._device = device
        tensor.length = length
        tensor.dtype = dtype
        tensor.slot = slot
        trace = _active_trace(device)
        if trace is not None:
            trace.track(tensor)
        return tensor

    # ------------------------------------------------------------------
    # Lifecycle / basics
    # ------------------------------------------------------------------
    @property
    def device(self) -> PIMDevice:
        """The owning device; raises after ``pim.reset()`` closed it."""
        device = self._device
        if device is None or device.closed:
            raise RuntimeError(
                "this Tensor's device has been reset (pim.reset()); "
                "reallocate the tensor on the new device"
            )
        return device

    def __del__(self):
        try:
            device = self._device
            if (
                device is not None
                and not device.closed
                and self.slot is not None
            ):
                device.allocator.free(self.slot)
        except Exception:  # interpreter teardown
            pass

    def _release(self) -> None:
        """Free the backing slot early (internal staging helper)."""
        device = self._device
        if device is None or device.closed:
            self.slot = None
            return
        if self.slot is not None:
            device.allocator.free(self.slot)
            self.slot = None

    def __len__(self) -> int:
        return self.length

    @property
    def shape(self) -> Tuple[int]:
        return (self.length,)

    @property
    def _mask(self) -> RangeMask:
        return RangeMask.all(self.length)

    @property
    def _base(self) -> "Tensor":
        return self

    def __repr__(self) -> str:
        values = ", ".join(repr(v) for v in self.to_numpy().tolist())
        return (
            f"Tensor(shape=({self.length},), dtype={self.dtype}):\n[{values}]"
        )

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def __getitem__(self, key):
        if isinstance(key, slice):
            view = TensorView(self, RangeMask.from_slice(key, self.length))
            trace = _active_trace(self.device)
            if trace is not None:
                trace.note("view", slice=key, length=view.length)
            return view
        index = self._check_index(key)
        device = self.device
        warp, thread = device.locate(self.slot, index)
        instr = ReadInstr(warp, thread, self.slot.reg)
        trace = _active_trace(device)
        if trace is not None:
            with trace.node("read", index=index):
                raw = device.execute(instr)
            # Defer the scalar: replays re-read it from the fresh result.
            return trace.wrap_scalar(instr, self.dtype, raw_to_value(raw, self.dtype))
        raw = device.execute(instr)
        return raw_to_value(raw, self.dtype)

    def __setitem__(self, key, value) -> None:
        if isinstance(key, slice):
            mask = RangeMask.from_slice(key, self.length)
            with _node(self.device, "write", slice=key):
                _masked_fill(self, mask, value)
            return
        index = self._check_index(key)
        device = self.device
        warp, thread = device.locate(self.slot, index)
        with _node(device, "write", index=index):
            device.execute(
                WriteInstr(
                    self.slot.reg,
                    value_to_raw(value, self.dtype),
                    RangeMask.single(warp),
                    RangeMask.single(thread),
                )
            )

    def _check_index(self, key) -> int:
        index = int(key)
        if index < 0:
            index += self.length
        if not 0 <= index < self.length:
            raise IndexError(f"index {key} out of range for length {self.length}")
        return index

    # ------------------------------------------------------------------
    # Host transfer
    # ------------------------------------------------------------------
    def to_numpy(self) -> np.ndarray:
        """Copy the tensor to a host NumPy array (DMA-style readback)."""
        return self.device.dump_array(self.slot, self.length, self.dtype)

    def copy(self) -> "Tensor":
        """A new tensor with the same contents (one COPY instruction when
        the allocator achieves alignment, moves otherwise)."""
        return _copy_tensor(self)

    # ------------------------------------------------------------------
    # Routines (implemented in repro.pim.routines)
    # ------------------------------------------------------------------
    def sum(self):
        from repro.pim import routines

        return routines.reduce(self, ROp.ADD)

    def prod(self):
        from repro.pim import routines

        return routines.reduce(self, ROp.MUL)

    def sort(self) -> "Tensor":
        from repro.pim import routines

        return routines.sort(self)

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def __add__(self, other):
        return _elementwise(ROp.ADD, self, other)

    def __radd__(self, other):
        return _elementwise(ROp.ADD, other, self, device=self.device)

    def __sub__(self, other):
        return _elementwise(ROp.SUB, self, other)

    def __rsub__(self, other):
        return _elementwise(ROp.SUB, other, self, device=self.device)

    def __mul__(self, other):
        return _elementwise(ROp.MUL, self, other)

    def __rmul__(self, other):
        return _elementwise(ROp.MUL, other, self, device=self.device)

    def __truediv__(self, other):
        return _elementwise(ROp.DIV, self, other)

    def __rtruediv__(self, other):
        return _elementwise(ROp.DIV, other, self, device=self.device)

    def __mod__(self, other):
        return _elementwise(ROp.MOD, self, other)

    def __lt__(self, other):
        return _elementwise(ROp.LT, self, other, result_dtype=int32)

    def __le__(self, other):
        return _elementwise(ROp.LE, self, other, result_dtype=int32)

    def __gt__(self, other):
        return _elementwise(ROp.GT, self, other, result_dtype=int32)

    def __ge__(self, other):
        return _elementwise(ROp.GE, self, other, result_dtype=int32)

    def __eq__(self, other):  # type: ignore[override]
        return _elementwise(ROp.EQ, self, other, result_dtype=int32)

    def __ne__(self, other):  # type: ignore[override]
        return _elementwise(ROp.NE, self, other, result_dtype=int32)

    __hash__ = None  # type: ignore[assignment]

    def __and__(self, other):
        return _elementwise(ROp.BIT_AND, self, other)

    def __or__(self, other):
        return _elementwise(ROp.BIT_OR, self, other)

    def __xor__(self, other):
        return _elementwise(ROp.BIT_XOR, self, other)

    def __invert__(self):
        return _unary(ROp.BIT_NOT, self)

    def __neg__(self):
        return _unary(ROp.NEG, self)

    def __abs__(self):
        return _unary(ROp.ABS, self)

    def abs(self):
        return _unary(ROp.ABS, self)

    def sign(self):
        return _unary(ROp.SIGN, self)


class TensorView:
    """A strided view over a tensor's memory (``x[a:b:c]`` semantics)."""

    def __init__(self, base: Tensor, mask: RangeMask):
        if mask.stop >= base.length:
            raise IndexError("view mask exceeds base tensor")
        self.base = base
        self.mask = mask

    # ------------------------------------------------------------------
    @property
    def device(self) -> PIMDevice:
        return self.base.device

    @property
    def dtype(self) -> DType:
        return self.base.dtype

    @property
    def length(self) -> int:
        return len(self.mask)

    @property
    def shape(self) -> Tuple[int]:
        return (self.length,)

    @property
    def _mask(self) -> RangeMask:
        return self.mask

    @property
    def _base(self) -> Tensor:
        return self.base

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        values = ", ".join(repr(v) for v in self.to_numpy().tolist())
        sl = slice(self.mask.start, self.mask.stop + 1, self.mask.step)
        return (
            f"TensorView(shape=({self.length},), dtype={self.dtype}, "
            f"slicing={sl!r}):\n[{values}]"
        )

    # ------------------------------------------------------------------
    def __getitem__(self, key):
        if isinstance(key, slice):
            inner = RangeMask.from_slice(key, self.length)
            return TensorView(self.base, self.mask.compose(inner))
        index = self._check_index(key)
        return self.base[self.mask.start + index * self.mask.step]

    def __setitem__(self, key, value) -> None:
        if isinstance(key, slice):
            inner = RangeMask.from_slice(key, self.length)
            _masked_fill(self.base, self.mask.compose(inner), value)
            return
        index = self._check_index(key)
        self.base[self.mask.start + index * self.mask.step] = value

    def _check_index(self, key) -> int:
        index = int(key)
        if index < 0:
            index += self.length
        if not 0 <= index < self.length:
            raise IndexError(f"index {key} out of range for length {self.length}")
        return index

    def to_numpy(self) -> np.ndarray:
        base = self.base.to_numpy()
        return base[self.mask.start : self.mask.stop + 1 : self.mask.step].copy()

    def compact(self) -> Tensor:
        """Materialize the view into a fresh compact tensor (move instrs)."""
        return _compact(self)

    # Routines ----------------------------------------------------------
    def sum(self):
        from repro.pim import routines

        return routines.reduce(self, ROp.ADD)

    def prod(self):
        from repro.pim import routines

        return routines.reduce(self, ROp.MUL)

    def sort(self) -> Tensor:
        from repro.pim import routines

        return routines.sort(self)

    # Operators (same dispatch as Tensor) -------------------------------
    __add__ = Tensor.__add__
    __radd__ = Tensor.__radd__
    __sub__ = Tensor.__sub__
    __rsub__ = Tensor.__rsub__
    __mul__ = Tensor.__mul__
    __rmul__ = Tensor.__rmul__
    __truediv__ = Tensor.__truediv__
    __rtruediv__ = Tensor.__rtruediv__
    __mod__ = Tensor.__mod__
    __lt__ = Tensor.__lt__
    __le__ = Tensor.__le__
    __gt__ = Tensor.__gt__
    __ge__ = Tensor.__ge__
    __eq__ = Tensor.__eq__  # type: ignore[assignment]
    __ne__ = Tensor.__ne__  # type: ignore[assignment]
    __hash__ = None  # type: ignore[assignment]
    __and__ = Tensor.__and__
    __or__ = Tensor.__or__
    __xor__ = Tensor.__xor__
    __invert__ = Tensor.__invert__
    __neg__ = Tensor.__neg__
    __abs__ = Tensor.__abs__
    abs = Tensor.abs
    sign = Tensor.sign


TensorLike = Union[Tensor, TensorView]


# ----------------------------------------------------------------------
# Elementwise machinery
# ----------------------------------------------------------------------
def _is_tensor(x) -> bool:
    return isinstance(x, (Tensor, TensorView))


def _broadcast_scalar(
    value: Scalar, ref: TensorLike, dtype: Optional[DType] = None
) -> TensorView:
    """Materialize a scalar aligned with ``ref`` (masked constant writes)."""
    device, dtype = ref.device, dtype or ref.dtype
    with _node(device, "constant", value=value):
        base = Tensor(device, ref._base.length, dtype, reference=ref._base.slot)
        raw = value_to_raw(value, dtype)
        for warp_mask, row_mask in device.segments(base.slot, ref._mask):
            device.execute(WriteInstr(base.slot.reg, raw, warp_mask, row_mask))
    return TensorView(base, ref._mask)


def _masked_fill(base: Tensor, mask: RangeMask, value: Scalar) -> None:
    raw = value_to_raw(value, base.dtype)
    for warp_mask, row_mask in base.device.segments(base.slot, mask):
        base.device.execute(WriteInstr(base.slot.reg, raw, warp_mask, row_mask))


def _aligned(operands: Sequence[TensorLike]) -> bool:
    """True when all operands share one warp range and element mask."""
    first = operands[0]
    return all(
        op._base.slot.warp_start == first._base.slot.warp_start
        and op._mask == first._mask
        for op in operands[1:]
    )


def _elementwise(
    op: ROp,
    lhs,
    rhs,
    result_dtype: Optional[DType] = None,
    device: Optional[PIMDevice] = None,
) -> TensorLike:
    """Lower a binary operator: align operands, then issue masked R-instrs."""
    if not _is_tensor(lhs) and not _is_tensor(rhs):
        raise TypeError("elementwise ops need at least one tensor operand")
    ref = lhs if _is_tensor(lhs) else rhs
    if _is_tensor(lhs) and _is_tensor(rhs):
        if lhs.device is not rhs.device:
            raise ValueError("operands live on different devices")
        if lhs.dtype.name != rhs.dtype.name:
            raise TypeError(f"dtype mismatch: {lhs.dtype} vs {rhs.dtype}")
        if lhs.length != rhs.length:
            raise ValueError(f"length mismatch: {lhs.length} vs {rhs.length}")
    if not _is_tensor(lhs):
        lhs = _broadcast_scalar(lhs, rhs)
    elif not _is_tensor(rhs):
        rhs = _broadcast_scalar(rhs, lhs)
    return _nary(op, [lhs, rhs], result_dtype or ref.dtype)


def _unary(op: ROp, operand: TensorLike, result_dtype: Optional[DType] = None):
    return _nary(op, [operand], result_dtype or operand.dtype)


def _issue_op(op: ROp, dtype: DType, result: Tensor, operands, mask: RangeMask):
    device = result.device
    regs = [t._base.slot.reg for t in operands]
    for warp_mask, row_mask in device.segments(result.slot, mask):
        device.execute(
            RInstr(
                op,
                dtype,
                dest=result.slot.reg,
                src_a=regs[0],
                src_b=regs[1] if len(regs) > 1 else None,
                src_c=regs[2] if len(regs) > 2 else None,
                warp_mask=warp_mask,
                row_mask=row_mask,
            )
        )


def _nary(op: ROp, operands: List[TensorLike], result_dtype: DType):
    """Shared lowering for 1-3 operand instructions with auto-alignment.

    Fast path: operands already share one warp range and mask, and the
    result tensor lands in the same range — one masked instruction per
    segment. Otherwise every operand is staged (move instructions) into a
    group allocation that *guarantees* a common warp range.
    """
    device = operands[0].device
    with _node(device, op.value, length=operands[0].length,
               dtype=result_dtype.name):
        return _nary_lowered(op, operands, result_dtype)


def _nary_lowered(op: ROp, operands: List[TensorLike], result_dtype: DType):
    device = operands[0].device
    dtype = operands[0].dtype
    if _aligned(operands):
        mask = operands[0]._mask
        base = operands[0]._base
        result = Tensor(device, base.length, result_dtype, reference=base.slot)
        if result.slot.warp_start == base.slot.warp_start:
            _issue_op(op, dtype, result, operands, mask)
            if len(mask) == base.length and mask.step == 1:
                return result
            return TensorView(result, mask)
        result._release()  # could not align; stage below

    length = operands[0].length
    slots = device.allocator.allocate_group(length, len(operands) + 1)
    staged = []
    for operand, slot in zip(operands, slots):
        tensor = Tensor._from_slot(device, slot, length, operand.dtype)
        _bulk_move(
            device,
            operand._base.slot,
            operand._mask.indices(),
            tensor.slot,
            range(length),
        )
        staged.append(tensor)
    result = Tensor._from_slot(device, slots[-1], length, result_dtype)
    _issue_op(op, dtype, result, staged, RangeMask.all(length))
    return result


def _copy_tensor(src: Tensor) -> Tensor:
    """Duplicate a compact tensor (COPY instruction when warp-aligned)."""
    dst = Tensor(src.device, src.length, src.dtype, reference=src.slot)
    if dst.slot.warp_start == src.slot.warp_start:
        for warp_mask, row_mask in src.device.segments(src.slot, src._mask):
            src.device.execute(
                RInstr(
                    ROp.COPY,
                    src.dtype,
                    dest=dst.slot.reg,
                    src_a=src.slot.reg,
                    warp_mask=warp_mask,
                    row_mask=row_mask,
                )
            )
        return dst
    _bulk_move(
        src.device,
        src.slot,
        range(src.length),
        dst.slot,
        range(src.length),
    )
    return dst


def _compact(operand: TensorLike, reference: Optional[Tensor] = None) -> Tensor:
    """Materialize any tensor-like into a compact tensor.

    With a ``reference``, the result is placed over the reference's warps
    (allocations fall back to moves when the allocator cannot align).
    """
    ref_slot = reference.slot if reference is not None else None
    if isinstance(operand, Tensor):
        if ref_slot is None or operand.slot.warp_start == ref_slot.warp_start:
            return operand
        dst = Tensor(operand.device, operand.length, operand.dtype, reference=ref_slot)
        _bulk_move(
            operand.device, operand.slot, range(operand.length),
            dst.slot, range(operand.length),
        )
        return dst
    base = operand.base
    dst = Tensor(
        base.device, operand.length, base.dtype,
        reference=ref_slot if ref_slot is not None else base.slot,
    )
    _bulk_move(
        base.device, base.slot, operand.mask.indices(),
        dst.slot, range(operand.length),
    )
    return dst


# ----------------------------------------------------------------------
# Bulk move grouping
# ----------------------------------------------------------------------
def _power_of_four(value: int) -> bool:
    if value < 1:
        return False
    while value % 4 == 0:
        value //= 4
    return value == 1


def _bulk_move(
    device: PIMDevice,
    src_slot: Slot,
    src_elements,
    dst_slot: Slot,
    dst_elements,
) -> None:
    """Move elements between slots with maximal warp-parallel grouping.

    Pairs are grouped by (source thread, destination thread, warp
    distance); each group's source warps are split into arithmetic runs
    whose step satisfies the H-tree pattern (any step for intra-warp
    moves, a power of four for inter-warp moves), and every run becomes a
    single warp-parallel move instruction.
    """
    with _node(device, "move"):
        _bulk_move_lowered(device, src_slot, src_elements, dst_slot, dst_elements)


def _bulk_move_lowered(
    device: PIMDevice,
    src_slot: Slot,
    src_elements,
    dst_slot: Slot,
    dst_elements,
) -> None:
    rows = device.rows
    groups = {}
    for src_e, dst_e in zip(src_elements, dst_elements):
        src_warp = src_slot.warp_start + src_e // rows
        dst_warp = dst_slot.warp_start + dst_e // rows
        key = (src_e % rows, dst_e % rows, dst_warp - src_warp)
        groups.setdefault(key, []).append(src_warp)

    from repro.sim.simulator import SimulationError

    for (src_thread, dst_thread, dist), warps in groups.items():
        warps.sort()
        for mask in _warp_runs(warps, intra=(dist == 0)):
            instr = MoveInstr(
                src_reg=src_slot.reg,
                dst_reg=dst_slot.reg,
                src_thread=src_thread,
                dst_thread=dst_thread,
                warp_mask=mask,
                warp_dist=dist,
            )
            try:
                device.execute(instr)
            except SimulationError:
                # Source/destination warps of the run overlap; the pairs
                # are still individually valid, so fall back to per-warp
                # moves, ordered so a destination is never a still-unread
                # source (descending for positive distances).
                order = list(mask.indices())
                if dist > 0:
                    order.reverse()
                for warp in order:
                    device.execute(
                        MoveInstr(
                            src_reg=src_slot.reg,
                            dst_reg=dst_slot.reg,
                            src_thread=src_thread,
                            dst_thread=dst_thread,
                            warp_mask=RangeMask.single(warp),
                            warp_dist=dist,
                        )
                    )


def _warp_runs(warps: List[int], intra: bool) -> List[RangeMask]:
    """Split sorted warp indices into RangeMask-able arithmetic runs."""
    runs: List[RangeMask] = []
    index = 0
    n = len(warps)
    while index < n:
        start = warps[index]
        if index + 1 >= n:
            runs.append(RangeMask.single(start))
            index += 1
            continue
        step = warps[index + 1] - start
        if step <= 0 or (not intra and not _power_of_four(step)):
            runs.append(RangeMask.single(start))
            index += 1
            continue
        stop_idx = index + 1
        while (
            stop_idx + 1 < n
            and warps[stop_idx + 1] - warps[stop_idx] == step
        ):
            stop_idx += 1
        runs.append(RangeMask(start, warps[stop_idx], step))
        index = stop_idx + 1
    return runs
