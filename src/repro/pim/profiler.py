"""The ``with pim.Profiler():`` context manager (paper Figure 12 / VI-B).

Captures the simulator's micro-operation counters around a code block and
exposes (optionally prints) the delta, plus the Eq. (1) throughput for a
given element parallelism.
"""

from __future__ import annotations

from typing import Optional

from repro.pim.device import PIMDevice, default_device
from repro.sim.stats import SimStats, throughput


class Profiler:
    """Profile the PIM cycles of a code block.

    Example::

        with pim.Profiler() as prof:
            z = x * y + x
        print(prof.cycles, prof.stats.op_counts)
    """

    def __init__(self, device: Optional[PIMDevice] = None, echo: bool = False):
        self._device = device
        self.echo = echo
        self.stats: Optional[SimStats] = None
        self._before: Optional[SimStats] = None
        self._cache_before: Optional[tuple] = None
        self._reports_before: tuple = ()
        #: Compiled-stream cache hits/misses of the backend inside the
        #: block (how often macro-instructions replayed a compiled stream
        #: versus paying full lowering; see ``repro.driver.program`` and
        #: ``repro.backend``).
        self.cache_hits: int = 0
        self.cache_misses: int = 0
        #: LRU evictions across the backend's cache tiers in the block
        #: (non-zero means the working set outgrew ``cache_size``).
        self.cache_evictions: int = 0
        #: Persistent-cache activity inside the block
        #: (``loads``/``misses``/``invalid``/``stores`` deltas; empty
        #: when no ``cache_dir`` is configured).
        self.persist_counts: dict = {}
        self._persist_before: dict = {}
        #: :class:`~repro.pim.optimizer.OptReport`\ s of graphs lowered
        #: inside the block (``opt_level >= 1`` captures): the pre- vs
        #: post-optimization instruction and cycle counts.
        self.opt_reports: list = []
        #: Compiled-program replays inside the block, per replay engine
        #: (simulator backend: ``"vectorized"`` super-step replays vs
        #: per-op ``"thunk"`` replays; empty on single-engine backends).
        self.replay_counts: dict = {}
        self._replay_before: dict = {}
        #: Macro streams emitted inside the block, per emission level
        #: (``"stream"`` fused-plan emissions vs ``"macro"`` per-macro
        #: fallbacks; see :mod:`repro.driver.stream`). Empty on backends
        #: without a stream compiler.
        self.emit_counts: dict = {}
        self._emit_before: dict = {}
        #: Fault-injection activity inside the block (``ticks``/
        #: ``flips``/``stuck_clamps``/``verify_checks``/
        #: ``verify_detected``/``worker_faults``/``failovers`` deltas;
        #: empty when no :class:`~repro.faults.plan.FaultPlan` is
        #: installed and no checksum verification ran).
        self.fault_counts: dict = {}
        self._fault_before: dict = {}

    @property
    def device(self) -> PIMDevice:
        return self._device or default_device()

    def __enter__(self) -> "Profiler":
        self._before = self.device.stats_snapshot()
        self._cache_before = self.device.backend.cache_counters()
        # Snapshot by identity, not index: the device bounds its report
        # list, so entries present at __enter__ may be trimmed away by
        # in-block lowerings (the held references keep their ids unique).
        self._reports_before = tuple(self.device.opt_reports)
        self._replay_before = self.device.backend.replay_counters()
        self._emit_before = self.device.backend.emit_counters()
        self._persist_before = self.device.backend.persist_counters()
        self._fault_before = self.device.backend.fault_counters()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stats = self.device.backend.stats.diff(self._before)
        hits, misses, evictions = self.device.backend.cache_counters()
        self.cache_hits = hits - self._cache_before[0]
        self.cache_misses = misses - self._cache_before[1]
        self.cache_evictions = evictions - self._cache_before[2]
        persists = self.device.backend.persist_counters()
        self.persist_counts = {
            kind: count - self._persist_before.get(kind, 0)
            for kind, count in persists.items()
            if count - self._persist_before.get(kind, 0)
        }
        seen = {id(report) for report in self._reports_before}
        self.opt_reports = [
            report
            for report in self.device.opt_reports
            if id(report) not in seen
        ]
        after = self.device.backend.replay_counters()
        self.replay_counts = {
            engine: count - self._replay_before.get(engine, 0)
            for engine, count in after.items()
            if count - self._replay_before.get(engine, 0)
        }
        emits = self.device.backend.emit_counters()
        self.emit_counts = {
            level: count - self._emit_before.get(level, 0)
            for level, count in emits.items()
            if count - self._emit_before.get(level, 0)
        }
        faults = self.device.backend.fault_counters()
        self.fault_counts = {
            kind: count - self._fault_before.get(kind, 0)
            for kind, count in faults.items()
            if count - self._fault_before.get(kind, 0)
        }
        if self.echo and exc_type is None:
            print(self.stats.summary())
            print(
                f"  program cache  {self.cache_hits} hits / "
                f"{self.cache_misses} misses / "
                f"{self.cache_evictions} evictions"
            )
            if self.persist_counts:
                detail = " / ".join(
                    f"{count} {kind}"
                    for kind, count in sorted(self.persist_counts.items())
                )
                print(f"  persistent cache  {detail}")
            if self.replay_counts:
                detail = " / ".join(
                    f"{count} {engine}"
                    for engine, count in sorted(self.replay_counts.items())
                )
                print(f"  program replays  {detail}")
            if self.emit_counts:
                detail = " / ".join(
                    f"{count} {level}"
                    for level, count in sorted(self.emit_counts.items())
                )
                print(f"  stream emissions  {detail}")
            if self.fault_counts:
                detail = " / ".join(
                    f"{count} {kind}"
                    for kind, count in sorted(self.fault_counts.items())
                )
                print(f"  fault injection  {detail}")
            for report in self.opt_reports:
                print(f"  {report.summary()}")

    @property
    def cycles(self) -> int:
        """PIM cycles (micro-operations) spent inside the block."""
        if self.stats is None:
            raise RuntimeError("profiler block has not completed")
        return self.stats.cycles

    def throughput(self, operations: int) -> float:
        """Eq. (1) throughput for ``operations`` completed in the block."""
        return throughput(
            operations, self.cycles, self.device.config.frequency_hz
        )
