"""Intra-crossbar linear algebra on PIM tensors (MatPIM-style).

The paper positions matrix operations as the canonical intra-crossbar
application class (Section II-B, citing MatPIM): a matrix is laid out so
that whole columns are element-parallel vectors, and matrix-vector
products become a sequence of broadcast-multiply-accumulate vector
instructions — full row-parallelism, no data leaves the memory.

:class:`Matrix` stores an (m, n) matrix column-major: each column is one
PIM tensor of length m, all allocated over the same warp range so every
update is a single aligned vector instruction.

Everything here targets the device's execution-backend protocol
(:mod:`repro.backend`), so matrices run unchanged on the bit-accurate
simulator or the fast NumPy backend. Inside a ``pim.compile`` trace,
:meth:`Matrix.matvec` with a *PIM-tensor* vector raises
:class:`~repro.pim.graph.TraceError` (it reads the vector back
element-by-element, which a replayed stream cannot depend on); host
sequences and scalars trace fine because they are baked in as
constants.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.isa.dtypes import DType, float32, int32
from repro.pim.device import PIMDevice, default_device
from repro.pim.tensor import Tensor, TensorLike, _elementwise, _is_tensor


class Matrix:
    """A dense (rows, cols) matrix stored as column tensors."""

    def __init__(self, device: PIMDevice, rows: int, cols: int, dtype: DType):
        if rows <= 0 or cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        self.device = device
        self.rows = rows
        self.cols = cols
        self.dtype = dtype
        self.columns: List[Tensor] = []
        first = Tensor(device, rows, dtype)
        self.columns.append(first)
        for _ in range(cols - 1):
            self.columns.append(Tensor(device, rows, dtype, reference=first.slot))

    # ------------------------------------------------------------------
    @property
    def shape(self):
        return (self.rows, self.cols)

    @classmethod
    def from_numpy(cls, values: np.ndarray, device: Optional[PIMDevice] = None) -> "Matrix":
        """Load a 2-D host array (float32 or int32) into PIM columns."""
        values = np.asarray(values)
        if values.ndim != 2:
            raise ValueError("Matrix.from_numpy needs a 2-D array")
        if values.dtype == np.int32:
            dtype = int32
        elif values.dtype == np.float32:
            dtype = float32
        else:
            raise TypeError(f"unsupported matrix dtype {values.dtype}")
        device = device or default_device()
        matrix = cls(device, values.shape[0], values.shape[1], dtype)
        for col in range(matrix.cols):
            device.load_array(
                matrix.columns[col].slot, np.ascontiguousarray(values[:, col]), dtype
            )
        return matrix

    def to_numpy(self) -> np.ndarray:
        out = np.empty((self.rows, self.cols), dtype=self.dtype.np_dtype)
        for col in range(self.cols):
            out[:, col] = self.columns[col].to_numpy()
        return out

    def column(self, index: int) -> Tensor:
        """The ``index``-th column as a PIM tensor (shared storage)."""
        return self.columns[index]

    # ------------------------------------------------------------------
    def matvec(self, x) -> Tensor:
        """``y = A @ x`` — broadcast-multiply-accumulate per column.

        ``x`` may be a host sequence/array or a PIM tensor (whose elements
        are then read back thread-serially, as scalar reads are in the
        ISA). All m rows compute in parallel for each of the n columns.
        """
        scalars = self._vector_scalars(x, self.cols)
        acc = self.columns[0] * scalars[0]
        for col in range(1, self.cols):
            acc = acc + self.columns[col] * scalars[col]
        return acc

    def matmul(self, other: "Matrix") -> "Matrix":
        """``C = A @ B`` as one matvec per column of B."""
        if self.cols != other.rows:
            raise ValueError(
                f"shape mismatch: {self.shape} @ {other.shape}"
            )
        result = Matrix(self.device, self.rows, other.cols, self.dtype)
        for col in range(other.cols):
            column = self.matvec(other.columns[col])
            # Move the computed column into the result's storage.
            from repro.pim.tensor import _bulk_move

            _bulk_move(
                self.device,
                column.slot,
                range(self.rows),
                result.columns[col].slot,
                range(self.rows),
            )
        return result

    def __matmul__(self, other):
        if isinstance(other, Matrix):
            return self.matmul(other)
        return self.matvec(other)

    def transpose_numpy(self) -> "Matrix":
        """Transpose via host readback (no in-memory transpose network)."""
        return Matrix.from_numpy(
            np.ascontiguousarray(self.to_numpy().T), device=self.device
        )

    # ------------------------------------------------------------------
    def _vector_scalars(self, x, expected: int) -> List:
        if _is_tensor(x):
            if x.length != expected:
                raise ValueError(f"vector length {x.length} != {expected}")
            return [x[i] for i in range(expected)]
        values = list(np.asarray(x).reshape(-1))
        if len(values) != expected:
            raise ValueError(f"vector length {len(values)} != {expected}")
        return values


def dot(a: TensorLike, b: TensorLike):
    """Inner product: element-parallel multiply + log-time reduction."""
    return (a * b).sum()


def matvec(matrix: Matrix, x) -> Tensor:
    """Function-style alias for :meth:`Matrix.matvec`."""
    return matrix.matvec(x)


def matmul(a: Matrix, b: Matrix) -> Matrix:
    """Function-style alias for :meth:`Matrix.matmul`."""
    return a.matmul(b)
