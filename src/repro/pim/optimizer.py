"""Graph-level optimizer passes for captured tensor programs.

``pim.compile`` (PR 2) replays the *exact* eager macro-instruction
stream. That stream is full of slack a graph-level view can remove:
Python code recomputes subexpressions, broadcasts the same constant into
several scratch tensors, and computes temporaries whose results are
never observed after the trace. This module closes that gap with a pass
pipeline that runs on the linearized graph IR (the captured
macro-instruction list) between capture and backend lowering:

1. **constant folding + common-subexpression elimination** (one forward
   pass, ``fold_and_cse``) — registers are value-numbered cell-accurately
   (region containment, not just register identity), uniform-constant
   regions are tracked through ``WriteInstr`` broadcasts, R-type
   operations whose operands are all known constants are folded into a
   single constant write, and a recomputation of an available expression
   is dropped (same destination) or rewritten into a cheap ``COPY``;
2. **dead-temporary elimination** (``eliminate_dead_instructions``) — a
   backward liveness walk at cell granularity drops every instruction
   whose written cells belong only to temporaries that were freed before
   the capture ended and are never read afterwards;
3. **register reuse** (``reuse_registers``, ``opt_level >= 3``) — whole
   registers that hold only dead temporaries are renamed onto earlier
   dead-temporary registers with disjoint lifetimes, shrinking the
   crossbar-cell reservation a compiled graph holds for replays.

Every pass preserves, bit for bit, the final contents of every cell
that is *observable* after the program: argument tensors, live (output)
tensors, and the cells deferred scalar reads re-visit. Cells of dead
temporaries may legitimately diverge from eager execution — nothing can
read them.

The optimization level is threaded from ``pim.compile(opt_level=...)``
/ ``TraceSession.lower(opt_level=...)``:

====  =======================================================
0     verbatim eager stream (cycle-exact replay, the default)
1     driver peephole passes only (mask coalescing, INIT1)
2     level 1 + constant folding, CSE, dead-temporary elimination
3     level 2 + allocation-lifetime-aware register reuse
====  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.arch.config import PIMConfig
from repro.arch.masks import RangeMask
from repro.isa.instructions import (
    ARITY,
    Instruction,
    MoveInstr,
    ReadInstr,
    RInstr,
    ROp,
    WriteInstr,
)

#: The supported optimization levels (see the module docstring table).
OPT_LEVELS = (0, 1, 2, 3)
OPT_LEVEL_MAX = OPT_LEVELS[-1]

#: A ``(register, warp)`` allocator cell, the reservation granularity.
Cell = Tuple[int, int]

_EXPONENT_MASK = 0x7F800000


def resolve_opt_level(optimize: bool = False, opt_level: Optional[int] = None) -> int:
    """Resolve the legacy ``optimize`` flag and ``opt_level`` into a level.

    ``opt_level`` wins when given; otherwise ``optimize=True`` maps to
    level 1 (the PR-2 behavior: driver peephole passes only) and
    ``optimize=False`` to level 0 (cycle-exact verbatim replay).
    """
    if opt_level is None:
        return 1 if optimize else 0
    level = int(opt_level)
    if level not in OPT_LEVELS:
        raise ValueError(
            f"opt_level must be one of {OPT_LEVELS}, got {opt_level!r}"
        )
    return level


@dataclass
class OptReport:
    """Pre- vs post-optimization accounting for one lowered graph.

    Produced by :meth:`repro.pim.graph.TraceSession.lower` for every
    ``opt_level >= 1`` lowering and surfaced through
    ``CompiledFunction.opt_report()`` and ``pim.Profiler.opt_reports``.
    Cycle numbers are the per-replay bill of the compiled program
    (static accounting via ``Backend.program_stats``); ``cells`` counts
    the allocator cells the compiled graph reserves for replays.
    """

    name: str
    opt_level: int
    macros_before: int = 0
    macros_after: int = 0
    micro_ops_before: int = 0
    micro_ops_after: int = 0
    cycles_before: int = 0
    cycles_after: int = 0
    cells_before: int = 0
    cells_after: int = 0
    passes: Dict[str, int] = field(default_factory=dict)

    @property
    def cycle_reduction(self) -> float:
        """Fraction of per-replay cycles the optimizer removed."""
        if self.cycles_before <= 0:
            return 0.0
        return 1.0 - self.cycles_after / self.cycles_before

    def summary(self) -> str:
        detail = ", ".join(
            f"{key}={value}" for key, value in sorted(self.passes.items()) if value
        )
        return (
            f"optimizer[{self.name!r} O{self.opt_level}] "
            f"instrs {self.macros_before}->{self.macros_after}  "
            f"cycles {self.cycles_before}->{self.cycles_after} "
            f"({self.cycle_reduction:.1%} saved)  "
            f"cells {self.cells_before}->{self.cells_after}"
            + (f"  [{detail}]" if detail else "")
        )


# ----------------------------------------------------------------------
# Cell-accurate effect analysis
# ----------------------------------------------------------------------
def _region(
    cache: dict, config: PIMConfig, warp_mask: Optional[RangeMask],
    row_mask: Optional[RangeMask],
) -> np.ndarray:
    """The boolean ``(crossbars, rows)`` footprint of a masked access.

    Cached per mask pair; callers must treat the result as immutable.
    """
    key = (warp_mask, row_mask)
    region = cache.get(key)
    if region is None:
        warps = warp_mask or RangeMask.all(config.crossbars)
        rows = row_mask or RangeMask.all(config.rows)
        region = np.zeros((config.crossbars, config.rows), dtype=bool)
        region[
            warps.start : warps.stop + 1 : warps.step,
            rows.start : rows.stop + 1 : rows.step,
        ] = True
        cache[key] = region
    return region


def _accesses(
    instr: Instruction, config: PIMConfig, cache: dict
) -> Tuple[List[Tuple[int, np.ndarray]], List[Tuple[int, np.ndarray]]]:
    """``(writes, reads)`` of an instruction as ``(register, region)`` pairs.

    Write regions are *fully defined*: every cell in the region receives
    a new value (true for all four instruction families).
    """
    if isinstance(instr, RInstr):
        region = _region(cache, config, instr.warp_mask, instr.row_mask)
        return (
            [(instr.dest, region)],
            [(reg, region) for reg in instr.sources()],
        )
    if isinstance(instr, WriteInstr):
        return [(instr.reg, _region(cache, config, instr.warp_mask, instr.row_mask))], []
    if isinstance(instr, ReadInstr):
        key = ("read", instr.warp, instr.thread)
        region = cache.get(key)
        if region is None:
            region = np.zeros((config.crossbars, config.rows), dtype=bool)
            region[instr.warp, instr.thread] = True
            cache[key] = region
        return [], [(instr.reg, region)]
    if isinstance(instr, MoveInstr):
        warps = instr.warp_mask or RangeMask.all(config.crossbars)
        src_key = ("mv", warps, 0, instr.src_thread)
        dst_key = ("mv", warps, instr.warp_dist, instr.dst_thread)
        src = cache.get(src_key)
        if src is None:
            src = np.zeros((config.crossbars, config.rows), dtype=bool)
            src[list(warps.indices()), instr.src_thread] = True
            cache[src_key] = src
        dst = cache.get(dst_key)
        if dst is None:
            dst = np.zeros((config.crossbars, config.rows), dtype=bool)
            dst[[w + instr.warp_dist for w in warps.indices()], instr.dst_thread] = True
            cache[dst_key] = dst
        return [(instr.dst_reg, dst)], [(instr.src_reg, src)]
    raise TypeError(f"not an instruction: {instr!r}")


# ----------------------------------------------------------------------
# Pass 1: constant folding + common-subexpression elimination
# ----------------------------------------------------------------------
def _fold_value(op: ROp, dtype, raws: Sequence[int]) -> Optional[int]:
    """Fold an R-type operation over uniform constant operands.

    Returns the raw 32-bit result word, or ``None`` when folding is
    refused. Integer semantics are exact over the full domain (the
    functional model mirrors the restoring divider's division-by-zero
    convention); float folding is restricted to the value domain where
    the functional semantics are verified bit-identical to the gate
    level — no Inf/NaN operands or results, and no division (whose
    by-zero convention deviates).
    """
    if len(raws) != ARITY[op]:
        return None
    from repro.backend.numpy_backend import _float_op, _int_op

    srcs = [np.array([raw & 0xFFFFFFFF], dtype=np.uint32) for raw in raws]
    with np.errstate(all="ignore"):
        if dtype.is_float:
            if op in (ROp.DIV, ROp.MOD):
                return None
            if any((raw & _EXPONENT_MASK) == _EXPONENT_MASK for raw in raws):
                return None  # Inf/NaN operand: outside the verified domain
            word = int(_float_op(op, srcs)[0])
            if (word & _EXPONENT_MASK) == _EXPONENT_MASK:
                return None  # overflowed to Inf/NaN
            return word
        return int(_int_op(op, srcs)[0])


def fold_and_cse(
    instructions: Sequence[Instruction],
    config: PIMConfig,
    cache: dict,
    stats: Dict[str, int],
) -> List[Instruction]:
    """One forward pass of constant folding and value-numbering CSE.

    Invariant: the rewritten stream leaves *every* cell of memory with
    exactly the bits the input stream would (the pass only removes
    recomputations of values provably already present, and replaces
    constant computations with writes of the identical word).
    """
    version: Dict[int, int] = {}
    # reg -> (raw constant, owned region bool array where it holds).
    consts: Dict[int, Tuple[int, np.ndarray]] = {}
    # expression key -> (dest register, dest version right after the def).
    avail: Dict[Tuple, Tuple[int, int]] = {}
    out: List[Instruction] = []

    def bump(reg: int) -> int:
        version[reg] = version.get(reg, 0) + 1
        return version[reg]

    for instr in instructions:
        if isinstance(instr, WriteInstr):
            region = _region(cache, config, instr.warp_mask, instr.row_mask)
            bump(instr.reg)
            record = consts.get(instr.reg)
            if record is not None and record[0] == instr.value:
                np.logical_or(record[1], region, out=record[1])
            else:
                consts[instr.reg] = (instr.value, region.copy())
            out.append(instr)
            continue

        if isinstance(instr, MoveInstr):
            bump(instr.dst_reg)
            consts.pop(instr.dst_reg, None)
            out.append(instr)
            continue

        if not isinstance(instr, RInstr):  # ReadInstr: no state change
            out.append(instr)
            continue

        region = _region(cache, config, instr.warp_mask, instr.row_mask)
        numbers: List[Tuple] = []
        raws: List[int] = []
        all_const = True
        for reg in instr.sources():
            record = consts.get(reg)
            if record is not None and not (region & ~record[1]).any():
                numbers.append(("const", record[0]))
                raws.append(record[0])
            else:
                numbers.append(("reg", reg, version.get(reg, 0)))
                all_const = False
        key = (
            instr.op, instr.dtype.name, tuple(numbers),
            instr.warp_mask, instr.row_mask,
        )

        hit = avail.get(key)
        if hit is not None and version.get(hit[0], 0) == hit[1]:
            holder = hit[0]
            if holder == instr.dest:
                # The destination already holds this exact value.
                stats["cse_dropped"] = stats.get("cse_dropped", 0) + 1
                continue
            stats["cse_copies"] = stats.get("cse_copies", 0) + 1
            bump(instr.dest)
            held = consts.get(holder)
            if held is not None and not (region & ~held[1]).any():
                consts[instr.dest] = (held[0], region.copy())
            else:
                consts.pop(instr.dest, None)
            out.append(
                RInstr(
                    ROp.COPY, instr.dtype, dest=instr.dest, src_a=holder,
                    warp_mask=instr.warp_mask, row_mask=instr.row_mask,
                )
            )
            continue

        if all_const:
            folded = _fold_value(instr.op, instr.dtype, raws)
            if folded is not None:
                stats["folded"] = stats.get("folded", 0) + 1
                bump(instr.dest)
                consts[instr.dest] = (folded, region.copy())
                out.append(
                    WriteInstr(
                        instr.dest, folded, instr.warp_mask, instr.row_mask
                    )
                )
                continue

        after = bump(instr.dest)
        consts.pop(instr.dest, None)
        avail[key] = (instr.dest, after)
        out.append(instr)
    return out


# ----------------------------------------------------------------------
# Pass 2: dead-temporary elimination
# ----------------------------------------------------------------------
def eliminate_dead_instructions(
    instructions: Sequence[Instruction],
    config: PIMConfig,
    cache: dict,
    dead_cells: Set[Cell],
    stats: Dict[str, int],
) -> List[Instruction]:
    """Backward liveness walk dropping writes no later consumer observes.

    ``dead_cells`` are the ``(register, warp)`` cells that are
    unobservable once the program ends: allocated during the trace,
    freed before it finished, and not re-visited by a deferred scalar
    read. Every other cell (arguments, live tensors, pre-existing
    memory) starts live, so instructions affecting them are never
    dropped — the optimized stream is bit-identical on all of them.
    """
    live = np.ones((config.registers, config.crossbars, config.rows), dtype=bool)
    for reg, warp in dead_cells:
        if 0 <= reg < config.registers and 0 <= warp < config.crossbars:
            live[reg, warp, :] = False

    kept: List[Instruction] = []
    for instr in reversed(instructions):
        writes, reads = _accesses(instr, config, cache)
        if isinstance(instr, ReadInstr):
            # Responds with a word: observable by definition.
            for reg, region in reads:
                live[reg][region] = True
            kept.append(instr)
            continue
        if writes and not any(live[reg][region].any() for reg, region in writes):
            stats["dce_dropped"] = stats.get("dce_dropped", 0) + 1
            continue
        for reg, region in writes:  # fully defined: kills liveness above
            live[reg][region] = False
        for reg, region in reads:
            live[reg][region] = True
        kept.append(instr)
    kept.reverse()
    return kept


# ----------------------------------------------------------------------
# Pass 3: allocation-lifetime-aware register reuse
# ----------------------------------------------------------------------
def reuse_registers(
    instructions: Sequence[Instruction],
    config: PIMConfig,
    cache: dict,
    dead_cells: Set[Cell],
    stats: Dict[str, int],
) -> List[Instruction]:
    """Rename dead-temporary registers onto earlier ones (fewer cells).

    A register is a *pure temporary* when every cell the stream touches
    in it is a dead trace cell and every read is preceded by an
    in-stream write of that cell (no capture-time carry-in). Two pure
    temporaries with disjoint instruction lifetimes can share one
    register, provided the target register's dead cells cover the
    renamed footprint; the compiled graph then reserves the shared
    cells once instead of both. Renaming never merges registers that
    appear in overlapping lifetimes, so no instruction ever gains an
    operand collision it did not already have.
    """
    dead_by_reg: Dict[int, Set[int]] = {}
    for reg, warp in dead_cells:
        dead_by_reg.setdefault(reg, set()).add(warp)

    first: Dict[int, int] = {}
    last: Dict[int, int] = {}
    warps_used: Dict[int, Set[int]] = {}
    carry_in: Set[int] = set()  # read a cell the stream never wrote
    defined: Dict[int, np.ndarray] = {}

    def touch(reg: int, region: np.ndarray, pos: int) -> None:
        first.setdefault(reg, pos)
        last[reg] = pos
        warps_used.setdefault(reg, set()).update(
            int(w) for w in np.nonzero(region.any(axis=1))[0]
        )

    for pos, instr in enumerate(instructions):
        writes, reads = _accesses(instr, config, cache)
        for reg, region in reads:  # sources observed before the def
            touch(reg, region, pos)
            have = defined.get(reg)
            if have is None or (region & ~have).any():
                carry_in.add(reg)
        for reg, region in writes:
            touch(reg, region, pos)
            have = defined.get(reg)
            if have is None:
                have = defined[reg] = np.zeros(
                    (config.crossbars, config.rows), dtype=bool
                )
            have[region] = True

    candidates = [
        reg
        for reg in first
        if reg not in carry_in
        and warps_used[reg] <= dead_by_reg.get(reg, set())
    ]
    candidates.sort(key=first.__getitem__)

    mapping: Dict[int, int] = {}
    pool: List[List[int]] = []  # [root register, extended last position]
    for reg in candidates:
        for entry in pool:
            root, busy_until = entry
            if busy_until < first[reg] and warps_used[reg] <= dead_by_reg.get(
                root, set()
            ):
                mapping[reg] = root
                entry[1] = last[reg]
                break
        else:
            pool.append([reg, last[reg]])

    if not mapping:
        return list(instructions)
    stats["registers_reused"] = stats.get("registers_reused", 0) + len(mapping)

    def rename(instr: Instruction) -> Instruction:
        if isinstance(instr, RInstr):
            fields = {}
            if instr.dest in mapping:
                fields["dest"] = mapping[instr.dest]
            for name in ("src_a", "src_b", "src_c"):
                reg = getattr(instr, name)
                if reg is not None and reg in mapping:
                    fields[name] = mapping[reg]
            return replace(instr, **fields) if fields else instr
        if isinstance(instr, WriteInstr):
            if instr.reg in mapping:
                return replace(instr, reg=mapping[instr.reg])
            return instr
        if isinstance(instr, MoveInstr):
            fields = {}
            if instr.src_reg in mapping:
                fields["src_reg"] = mapping[instr.src_reg]
            if instr.dst_reg in mapping:
                fields["dst_reg"] = mapping[instr.dst_reg]
            return replace(instr, **fields) if fields else instr
        if isinstance(instr, ReadInstr):
            if instr.reg in mapping:
                return replace(instr, reg=mapping[instr.reg])
            return instr
        return instr

    return [rename(instr) for instr in instructions]


# ----------------------------------------------------------------------
# Pipeline entry points
# ----------------------------------------------------------------------
def optimize_instructions(
    instructions: Sequence[Instruction],
    config: PIMConfig,
    opt_level: int,
    dead_cells: Iterable[Cell],
) -> Tuple[List[Instruction], Dict[str, int]]:
    """Run the graph-level pass pipeline at ``opt_level`` (>= 2).

    Returns the rewritten stream and per-pass counters. Pass order is
    fixed: folding/CSE first (it creates dead broadcast writes), then
    dead-temporary elimination, then register reuse on the final stream
    (so lifetimes reflect what actually replays). To add a pass, append
    it here and state the invariant it preserves in
    ``docs/architecture.md``.
    """
    stats: Dict[str, int] = {}
    if opt_level < 2:
        return list(instructions), stats
    dead = set(dead_cells)
    cache: dict = {}
    stream = fold_and_cse(instructions, config, cache, stats)
    stream = eliminate_dead_instructions(stream, config, cache, dead, stats)
    if opt_level >= 3:
        stream = reuse_registers(stream, config, cache, dead, stats)
    return stream, stats


def plan_reservation(
    instructions: Sequence[Instruction],
    config: PIMConfig,
    trace_cells: Set[Cell],
    live_cells: Set[Cell],
    read_cells: Set[Cell],
) -> Set[Cell]:
    """The allocator cells a compiled graph must reserve for replays.

    The unoptimized reservation is every cell the trace allocated; the
    optimized stream may write far fewer. Reserved are the trace cells
    the final stream still writes, the cells of tensors live when the
    capture ended, and the cells deferred scalar reads re-visit — cells
    of fully-eliminated temporaries return to the allocator.
    """
    cache: dict = {}
    written: Set[Cell] = set()
    for instr in instructions:
        writes, _ = _accesses(instr, config, cache)
        for reg, region in writes:
            written.update(
                (reg, int(w)) for w in np.nonzero(region.any(axis=1))[0]
            )
    return (written & trace_cells) | set(live_cells) | (read_cells & trace_cells)
