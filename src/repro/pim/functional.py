"""Module-level tensor constructors and functions (the NumPy-style API).

These are the entry points the paper's example programs use::

    x = pim.zeros(2 ** 20, dtype=pim.float32)
    y = pim.from_numpy(np.arange(8, dtype=np.int32))
    z = pim.where(x < y, x, y)
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.arch.masks import RangeMask
from repro.isa.dtypes import DType, float32, int32, value_to_raw
from repro.isa.instructions import ROp, WriteInstr
from repro.pim.device import PIMDevice, default_device
from repro.pim.tensor import Tensor, TensorLike, TensorView, _nary


def _resolve_dtype(dtype) -> DType:
    if isinstance(dtype, DType):
        return dtype
    if dtype in (int, np.int32) or np.dtype(dtype) == np.dtype(np.int32):
        return int32
    if dtype in (float, np.float32) or np.dtype(dtype) == np.dtype(np.float32):
        return float32
    raise TypeError(f"unsupported dtype {dtype!r} (use pim.int32 / pim.float32)")


def full(
    length: int,
    value,
    dtype=float32,
    device: Optional[PIMDevice] = None,
) -> Tensor:
    """Allocate a tensor and fill it with a constant (masked writes)."""
    dtype = _resolve_dtype(dtype)
    device = device or default_device()
    out = Tensor(device, length, dtype)
    raw = value_to_raw(value, dtype)
    for warp_mask, row_mask in device.segments(out.slot, RangeMask.all(length)):
        device.execute(WriteInstr(out.slot.reg, raw, warp_mask, row_mask))
    return out


def zeros(length: int, dtype=float32, device: Optional[PIMDevice] = None) -> Tensor:
    """``pim.zeros(n, dtype=pim.float32)`` — the paper's canonical allocator."""
    return full(length, 0, dtype=dtype, device=device)


def ones(length: int, dtype=float32, device: Optional[PIMDevice] = None) -> Tensor:
    """A tensor of ones."""
    return full(length, 1, dtype=dtype, device=device)


def from_numpy(
    values: np.ndarray,
    device: Optional[PIMDevice] = None,
    via: str = "dma",
) -> Tensor:
    """Create a tensor from a host array.

    ``via="dma"`` (default) loads through the device's bulk interface —
    the paper's correctness-flow step (1), not counted in PIM cycles.
    ``via="isa"`` issues one genuine write macro-instruction per element
    instead (useful for end-to-end instruction-path tests).
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValueError("PIM tensors are one-dimensional")
    if values.dtype == np.int32:
        dtype = int32
    elif values.dtype == np.float32:
        dtype = float32
    else:
        raise TypeError(f"unsupported array dtype {values.dtype} (int32/float32)")
    device = device or default_device()
    out = Tensor(device, values.size, dtype)
    if via == "dma":
        device.load_array(out.slot, values, dtype)
    elif via == "isa":
        for index, value in enumerate(values):
            out[index] = value
    else:
        raise ValueError("via must be 'dma' or 'isa'")
    return out


def to_numpy(tensor: TensorLike) -> np.ndarray:
    """Copy a tensor or view back to the host."""
    return tensor.to_numpy()


def arange(length: int, dtype=int32, device: Optional[PIMDevice] = None) -> Tensor:
    """``0, 1, ..., length-1`` (loaded via the bulk interface)."""
    dtype = _resolve_dtype(dtype)
    return from_numpy(np.arange(length, dtype=dtype.np_dtype), device=device)


def where(cond: TensorLike, if_true, if_false):
    """Elementwise select: ``if_true`` where ``cond`` is nonzero.

    ``cond`` is an int32 0/1 tensor or view (as produced by comparisons);
    the value operands may be tensors, views, or scalars. With two scalar
    values the result dtype is inferred from them (float32 if either is a
    float, int32 otherwise) and both are broadcast against the condition.
    """
    from repro.pim.tensor import _broadcast_scalar, _is_tensor, _node

    if not _is_tensor(cond):
        raise TypeError("where() condition must be a tensor")
    with _node(cond.device, "where", length=cond.length):
        if not _is_tensor(if_true) and not _is_tensor(if_false):
            floatish = (float, np.floating)
            dtype = (
                float32
                if isinstance(if_true, floatish) or isinstance(if_false, floatish)
                else int32
            )
            if_true = _broadcast_scalar(if_true, cond, dtype=dtype)
            if_false = _broadcast_scalar(if_false, cond, dtype=dtype)
        elif not _is_tensor(if_true):
            if_true = _broadcast_scalar(if_true, if_false)
        elif not _is_tensor(if_false):
            if_false = _broadcast_scalar(if_false, if_true)
        if if_true.dtype.name != if_false.dtype.name:
            raise TypeError("where() value operands must share a dtype")
        return _nary(ROp.MUX, [cond, if_true, if_false], if_true.dtype)
