"""The tensor-level graph IR behind ``pim.compile`` / ``pim.trace``.

Tracing runs a user function once with its real tensor arguments while a
:class:`TraceSession` is attached to the device. Two things are recorded
simultaneously:

- a **tensor-level graph** (:class:`Graph` of :class:`GraphNode`s): one
  node per library operation — elementwise op, ``where``, reduction,
  sort, constant broadcast, bulk move, scalar read/write, view — for
  introspection (``graph.summary()``) and cache identity;
- the exact **macro-instruction stream** those operations lowered to,
  which is what :meth:`TraceSession.lower` compiles through the device
  backend into one fused replayable program.

Because the capture executes for real, anything data-dependent works
during the traced call itself — but a value read from PIM memory during
tracing is returned as a :class:`ScalarRef` (a deferred scalar), and
*using* it to steer further computation raises :class:`TraceError`: the
replay could not reproduce a stream that depended on input data. Reads
whose values are only *returned* (the ``z[::2].sum()`` pattern) are
re-resolved on every replay.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.isa.dtypes import DType
from repro.isa.instructions import Instruction, ReadInstr


class TraceError(RuntimeError):
    """Raised when a traced function does something replay cannot repeat."""


@dataclass
class GraphNode:
    """One tensor-level operation recorded during tracing."""

    index: int
    kind: str
    span: Tuple[int, int]  #: half-open range into ``Graph.instructions``
    depth: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def instructions(self) -> int:
        """Number of macro-instructions this node lowered to (own span)."""
        return self.span[1] - self.span[0]

    def __repr__(self) -> str:
        extra = "".join(
            f" {key}={value!r}" for key, value in sorted(self.meta.items())
        )
        return (
            f"GraphNode({self.index}, {self.kind!r}, instrs="
            f"{self.instructions}{extra})"
        )


class Graph:
    """A captured tensor program: nodes plus their lowered instructions."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: List[GraphNode] = []
        self.instructions: List[Instruction] = []

    def __len__(self) -> int:
        return len(self.nodes)

    def summary(self) -> str:
        """Human-readable capture report (indented by nesting depth)."""
        lines = [
            f"graph {self.name!r}: {len(self.nodes)} nodes, "
            f"{len(self.instructions)} macro-instructions"
        ]
        for node in self.nodes:
            meta = " ".join(
                f"{key}={value}" for key, value in sorted(node.meta.items())
            )
            lines.append(
                f"  {'  ' * node.depth}{node.kind:<12} "
                f"[{node.instructions:>4} instrs] {meta}".rstrip()
            )
        return "\n".join(lines)


class ScalarRef:
    """A scalar read from PIM memory during tracing (deferred value).

    Carries the concrete value observed at capture time (returned by the
    first call) and the index of its read in the trace, so replays can
    re-resolve it. Converting it to a Python number *inside* the traced
    function raises :class:`TraceError` — that would bake a trace-time
    value into the compiled stream as a constant.
    """

    __slots__ = ("instr", "dtype", "value", "read_index", "_session")

    def __init__(
        self,
        instr: ReadInstr,
        dtype: DType,
        value,
        read_index: int,
        session: "TraceSession",
    ):
        self.instr = instr
        self.dtype = dtype
        self.value = value
        self.read_index = read_index
        self._session = session

    def _blocked(self, what: str):
        if self._session.active:
            raise TraceError(
                f"cannot {what} a PIM scalar inside a traced function: the "
                "compiled program would bake the trace-time value "
                f"({self.value!r}) in as a constant. Read scalars after the "
                "traced call, or return them from the function."
            )
        return self.value

    def __float__(self) -> float:
        return float(self._blocked("convert"))

    def __int__(self) -> int:
        return int(self._blocked("convert"))

    def __index__(self) -> int:
        return int(self._blocked("index with"))

    def __bool__(self) -> bool:
        return bool(self._blocked("branch on"))

    # Comparisons would otherwise fall back to object identity and let a
    # traced function silently bake the wrong branch into the program.
    def __eq__(self, other):
        return self._blocked("compare") == other

    def __ne__(self, other):
        return self._blocked("compare") != other

    def __lt__(self, other):
        return self._blocked("compare") < other

    def __le__(self, other):
        return self._blocked("compare") <= other

    def __gt__(self, other):
        return self._blocked("compare") > other

    def __ge__(self, other):
        return self._blocked("compare") >= other

    __hash__ = None  # mutable-by-resolution; not a dict key

    def __repr__(self) -> str:
        return f"ScalarRef({self.value!r}, read={self.read_index})"


class TraceSession:
    """A live capture attached to a device by ``device.begin_trace()``.

    While attached, :meth:`record` receives every successfully executed
    macro-instruction, tensor constructors :meth:`track` their cell
    placements (so the compiled graph can reserve them for replays), and
    the tensor library opens :meth:`node` scopes around its operations.
    """

    def __init__(self, device, name: str = "trace"):
        self.device = device
        self.graph = Graph(name)
        #: Every (register, warp) cell allocated during the trace. The
        #: replayed stream writes into these cells, so the compiled graph
        #: reserves whichever of them the allocator would otherwise hand
        #: out again (tensors free normally *during* capture, keeping the
        #: instruction stream — and the memory image — identical to eager
        #: execution).
        self.cells: set = set()
        #: The subset of :attr:`cells` still allocated right now — cells
        #: leave on :meth:`untrack_slot` (the allocator notifies frees
        #: while this session observes it) and re-enter when a later
        #: allocation reuses them. After :meth:`close`, this is exactly
        #: the cells of tensors that outlived the capture; the optimizer
        #: treats everything else as dead temporaries.
        self.live_cells: set = set()
        self.reads: List[ReadInstr] = []
        #: Cells the compiled graph must reserve for replays. Defaults to
        #: every traced cell; :meth:`lower` shrinks it when the optimizer
        #: eliminates whole temporaries (``opt_level >= 2``).
        self.replay_cells: Optional[set] = None
        #: The :class:`~repro.pim.optimizer.OptReport` of the most recent
        #: :meth:`lower` call (``None`` for verbatim level-0 lowerings).
        self.last_report = None
        self.active = True
        self._depth = 0

    # -- hooks called by the device / tensor layer ----------------------
    def record(self, instr: Instruction) -> None:
        self.graph.instructions.append(instr)
        if isinstance(instr, ReadInstr):
            self.reads.append(instr)

    def track(self, tensor) -> None:
        """Register a tensor allocated during the trace (records its cells)."""
        slot = tensor.slot
        cells = [
            (slot.reg, warp) for warp in range(slot.warp_start, slot.warp_stop)
        ]
        self.cells.update(cells)
        self.live_cells.update(cells)

    def untrack_slot(self, slot) -> None:
        """Record a slot freed mid-trace (its cells become dead candidates).

        Called by the allocator's free-observer hook. Cells of tensors
        allocated *before* the trace are not tracked, so freeing them
        here is a no-op; cells reallocated later re-enter via
        :meth:`track`.
        """
        if not self.active:
            return
        self.live_cells.difference_update(
            (slot.reg, warp) for warp in range(slot.warp_start, slot.warp_stop)
        )

    def read_cells(self) -> set:
        """The (register, warp) cells deferred scalar reads re-visit."""
        return {(read.reg, read.warp) for read in self.reads}

    def dead_cells(self) -> set:
        """Trace cells unobservable after the program ends.

        Allocated during the trace, freed before it finished, and not
        re-visited by a deferred scalar read — the only cells the
        optimizer may leave with different contents than eager mode.
        """
        return self.cells - self.live_cells - self.read_cells()

    @contextmanager
    def node(self, kind: str, **meta):
        """Open a graph-node scope; instructions recorded inside belong
        to it (nested scopes record their own nodes at greater depth)."""
        start = len(self.graph.instructions)
        depth = self._depth
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            self.graph.nodes.append(
                GraphNode(
                    index=len(self.graph.nodes),
                    kind=kind,
                    span=(start, len(self.graph.instructions)),
                    depth=depth,
                    meta=meta,
                )
            )

    def note(self, kind: str, **meta) -> None:
        """Record an instruction-free node (e.g. a view creation)."""
        here = len(self.graph.instructions)
        self.graph.nodes.append(
            GraphNode(
                index=len(self.graph.nodes),
                kind=kind,
                span=(here, here),
                depth=self._depth,
                meta=meta,
            )
        )

    def wrap_scalar(self, instr: ReadInstr, dtype: DType, value) -> ScalarRef:
        """Wrap the value of the most recently recorded read."""
        return ScalarRef(instr, dtype, value, len(self.reads) - 1, self)

    # -- finalization ---------------------------------------------------
    def close(self) -> None:
        self.active = False

    def lower(
        self,
        optimize: bool = False,
        keep_reads: bool = True,
        opt_level: Optional[int] = None,
    ):
        """Compile the captured instruction stream through the backend.

        Returns the backend's program handle (a ``MicroProgram`` on the
        simulator backend). With ``keep_reads=False`` the scalar reads
        are left out — the protocol ``pim.compile`` uses, re-issuing them
        after each replay so every deferred scalar stays retrievable.
        The backend's ``compile`` hands the stream to the driver, where
        the default ``"stream"`` emission mode splices cached bodies
        instead of re-lowering every macro (see
        :mod:`repro.driver.stream`).

        ``opt_level`` selects the optimizer pipeline (see
        :mod:`repro.pim.optimizer`): 0 replays the eager stream verbatim
        (cycle-exact), 1 runs the driver's peephole passes (the legacy
        ``optimize=True``), 2 adds constant folding, CSE and
        dead-temporary elimination on the graph IR, 3 adds register
        reuse. Levels >= 1 leave an :class:`~repro.pim.optimizer.OptReport`
        in :attr:`last_report` (and on ``device.opt_reports`` for the
        Profiler); levels >= 2 shrink :attr:`replay_cells`, the cell
        reservation compiled graphs hold.
        """
        from repro.pim.optimizer import (
            OptReport,
            optimize_instructions,
            plan_reservation,
            resolve_opt_level,
        )

        level = resolve_opt_level(optimize, opt_level)
        raw = self.graph.instructions
        if not keep_reads:
            raw = [
                instr for instr in raw if not isinstance(instr, ReadInstr)
            ]
        instructions = raw
        passes: dict = {}
        config = self.device.config
        self.replay_cells = set(self.cells)
        if level >= 2:
            instructions, passes = optimize_instructions(
                raw, config, level, self.dead_cells()
            )
            self.replay_cells = plan_reservation(
                instructions, config, self.cells, self.live_cells,
                self.read_cells(),
            )
        backend = self.device.backend
        program = backend.compile(
            instructions, name=self.graph.name, optimize=level >= 1
        )
        self.last_report = None
        if level >= 1:
            after = backend.program_stats(program)
            if level >= 2:
                # The graph passes rewrote the stream itself; price the
                # verbatim baseline without building (or caching) a
                # second program — the per-instruction body cache makes
                # this a cheap re-walk.
                before = backend.stream_stats(raw)
                micro_before, cycles_before = before.micro_ops, before.cycles
            else:
                # Level 1 differs only by the peephole passes, which drop
                # 1-cycle mask/INIT1 ops without changing the mask state
                # any surviving op executes under — the raw bill is the
                # optimized bill plus one cycle per dropped op, so no
                # second lowering is needed.
                micro_before = program.source_ops
                cycles_before = after.cycles + (micro_before - after.micro_ops)
            self.last_report = OptReport(
                name=self.graph.name,
                opt_level=level,
                macros_before=len(raw),
                macros_after=len(instructions),
                micro_ops_before=micro_before,
                micro_ops_after=after.micro_ops,
                cycles_before=cycles_before,
                cycles_after=after.cycles,
                cells_before=len(self.cells),
                cells_after=len(self.replay_cells),
                passes=passes,
            )
            reports = getattr(self.device, "opt_reports", None)
            if reports is not None:
                reports.append(self.last_report)
                del reports[:-32]
        return program


@contextmanager
def trace(device=None, name: str = "trace"):
    """Context-manager capture: ``with pim.trace() as session:``.

    Runs the block eagerly while recording; afterwards ``session.graph``
    holds the tensor-level IR and ``session.lower()`` compiles the
    captured stream into one fused program for the active backend.
    """
    from repro.pim.device import default_device

    device = device or default_device()
    session = device.begin_trace(name)
    try:
        yield session
    finally:
        device.end_trace()
