"""The PyPIM development library: NumPy-style tensors on digital PIM.

This is the paper's Python development library (Section V-A): a drop-in
tensor interface whose element-wise operations, reductions, sorting and
data movement are lowered through the host driver into digital-PIM
micro-operations executed by the bit-accurate simulator.

Quickstart (Figure 12 of the paper)::

    import repro.pim as pim

    @pim.compile          # optional: capture once, replay on later calls
    def my_func(a: pim.Tensor, b: pim.Tensor):
        return a * b + a

    x = pim.zeros(1024, dtype=pim.float32)
    y = pim.zeros(1024, dtype=pim.float32)
    x[4], y[4] = 8.0, 0.5
    z = my_func(x, y)
    print(z[::2].sum())

Execution is eager by default (every operator dispatches one
macro-instruction stream to the device backend); ``@pim.compile`` defers
a whole function into a fused, cached program (see
:mod:`repro.pim.compile`), and ``pim.init(backend="numpy")`` swaps the
bit-accurate simulator for the fast functional backend
(:mod:`repro.backend`) without changing any user code.
"""

from repro.backend import Backend, NumpyBackend, SimulatorBackend
from repro.isa.dtypes import float32, int32
from repro.pim.compile import CompiledFunction, compile
from repro.pim.device import PIMDevice, default_device, init, reset
from repro.pim.graph import Graph, GraphNode, ScalarRef, TraceError, trace
from repro.pim.functional import (
    arange,
    from_numpy,
    full,
    ones,
    to_numpy,
    where,
    zeros,
)
from repro.pim.linalg import Matrix, dot, matmul, matvec
from repro.pim.malloc import PIMMemoryError
from repro.pim.optimizer import OPT_LEVEL_MAX, OPT_LEVELS, OptReport
from repro.pim.profiler import Profiler
from repro.pim.routines import cordic_cos, cordic_sin, reduce, sort
from repro.pim.tensor import Tensor, TensorView

__all__ = [
    "float32",
    "int32",
    "Backend",
    "NumpyBackend",
    "SimulatorBackend",
    "PIMDevice",
    "CompiledFunction",
    "compile",
    "trace",
    "Graph",
    "GraphNode",
    "ScalarRef",
    "TraceError",
    "default_device",
    "init",
    "reset",
    "zeros",
    "ones",
    "full",
    "arange",
    "from_numpy",
    "to_numpy",
    "where",
    "PIMMemoryError",
    "OPT_LEVELS",
    "OPT_LEVEL_MAX",
    "OptReport",
    "Profiler",
    "Tensor",
    "TensorView",
    "reduce",
    "sort",
    "cordic_sin",
    "cordic_cos",
    "Matrix",
    "dot",
    "matvec",
    "matmul",
]
