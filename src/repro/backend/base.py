"""The execution-backend protocol behind :class:`repro.pim.device.PIMDevice`.

A *backend* is the engine a device runs macro-instructions on. The tensor
library (``repro.pim``) is written entirely against this protocol, so the
same user program can execute on the bit-accurate simulator (the default,
:class:`~repro.backend.simulator.SimulatorBackend`) or on the fast
functional model (:class:`~repro.backend.numpy_backend.NumpyBackend`)
without touching user code — ``pim.init(backend="numpy")`` is the whole
switch.

Every backend exposes:

- :meth:`Backend.execute` — run one macro-instruction eagerly;
- :meth:`Backend.compile` / :meth:`Backend.run_program` — turn a recorded
  macro-instruction stream into a replayable program (the lowering target
  of the ``pim.compile`` graph front-end) and replay it;
- :attr:`Backend.words` — the raw ``(crossbars, registers, rows)`` word
  image, used by the device's DMA-style bulk load/dump path;
- :attr:`Backend.stats` — the :class:`~repro.sim.stats.SimStats` cycle
  counters, with identical accounting semantics across backends (the
  functional backend charges the same cycle model the simulator counts).
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.arch.config import PIMConfig
from repro.isa.instructions import Instruction
from repro.sim.stats import SimStats


class Backend(abc.ABC):
    """One execution engine for macro-instruction streams."""

    #: Short identifier used by ``pim.init(backend=...)`` and cache keys.
    name: str = "abstract"

    def __init__(self, config: PIMConfig):
        self.config = config

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def execute(self, instr: Instruction) -> Optional[int]:
        """Execute one macro-instruction; returns the word for reads."""

    @abc.abstractmethod
    def compile(
        self,
        instructions: Sequence[Instruction],
        name: str = "stream",
        optimize: bool = True,
    ):
        """Compile a macro-instruction stream into a replayable program.

        The returned handle is backend-specific (a
        :class:`~repro.driver.program.MicroProgram` on the simulator, a
        :class:`~repro.backend.numpy_backend.FunctionalProgram` on the
        NumPy backend); pass it back to :meth:`run_program`.
        """

    @abc.abstractmethod
    def run_program(self, program, verify: Optional[str] = None) -> Optional[int]:
        """Replay a program from :meth:`compile`; returns the last read.

        ``verify="checksum"`` additionally checksums the program's
        output regions across the post-replay fault window and raises
        :class:`repro.faults.ChecksumError` on corruption (see
        :mod:`repro.faults.checksum`). Verification is host-side and
        free of cycle/memory side effects.
        """

    def run_stream(
        self, instructions: Sequence[Instruction], name: str = "stream"
    ) -> Optional[int]:
        """Execute a macro-instruction stream as one emission unit.

        Backends with a stream compiler (see :mod:`repro.driver.stream`)
        fuse the stream into one cached emission plan and dispatch it
        with a single call; the default is the bit-identical per-macro
        loop. Returns the last read response, like the loop would.
        """
        response: Optional[int] = None
        for instr in instructions:
            result = self.execute(instr)
            if result is not None:
                response = result
        return response

    def program_stats(self, program) -> SimStats:
        """The per-replay cycle bill of a compiled program.

        Computed statically (no execution, no counter side effects) with
        the same accounting rules replay charges, so callers can report
        pre- vs post-optimization cycle counts without running anything.
        """
        raise NotImplementedError(
            f"the {self.name!r} backend does not implement program_stats"
        )

    def stream_stats(self, instructions: Sequence[Instruction]) -> SimStats:
        """The cycle bill of a macro stream lowered verbatim (no program).

        Like :meth:`program_stats` for the unoptimized lowering of
        ``instructions``, but without building (or caching) a compiled
        program — the optimizer uses it to price its baseline.
        """
        raise NotImplementedError(
            f"the {self.name!r} backend does not implement stream_stats"
        )

    # ------------------------------------------------------------------
    # State and accounting
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def words(self) -> np.ndarray:
        """Raw ``(crossbars, registers, rows)`` word image (DMA target)."""

    @property
    @abc.abstractmethod
    def stats(self) -> SimStats:
        """Cumulative cycle counters (same accounting on every backend)."""

    def stats_snapshot(self) -> SimStats:
        """Copy of the counters (for profiling diffs)."""
        return self.stats.copy()

    @property
    def cache_hits(self) -> int:
        """Compiled-stream cache hits (0 when the backend has no cache)."""
        return 0

    @property
    def cache_misses(self) -> int:
        """Compiled-stream cache misses (0 when the backend has no cache)."""
        return 0

    @property
    def cache_evictions(self) -> int:
        """LRU evictions across cache tiers (0 without a bounded cache)."""
        return 0

    def cache_counters(self) -> Tuple[int, int, int]:
        """``(hits, misses, evictions)`` — what ``pim.Profiler`` snapshots."""
        return self.cache_hits, self.cache_misses, self.cache_evictions

    def persist_counters(self) -> Dict[str, int]:
        """Cross-session persistent-cache counters.

        ``loads``/``misses``/``invalid``/``stores`` from the driver's
        :class:`~repro.driver.persist.PersistentProgramCache`; empty when
        no cache directory is configured (or the backend has no driver).
        """
        return {}

    def emit_counters(self) -> Dict[str, int]:
        """Streams served per emission level (see the fallback ladder in
        :mod:`repro.driver.stream`): ``"stream"`` counts fused-plan
        emissions, ``"macro"`` counts per-macro fallbacks.
        ``pim.Profiler`` snapshots this; backends without a stream
        compiler report nothing.
        """
        return {}

    def install_faults(self, plan):
        """Arm a :class:`repro.faults.FaultPlan` on this backend.

        Returns the bound :class:`repro.faults.FaultOverlay` (or ``None``
        for plans with only process-level faults). Backends without
        fault support reject installation rather than silently running
        fault-free.
        """
        raise NotImplementedError(
            f"the {self.name!r} backend does not support fault injection"
        )

    def fault_counters(self) -> Dict[str, int]:
        """Fault-injection and detection counters.

        ``ticks``/``flips``/``stuck_clamps`` from the installed
        :class:`~repro.faults.FaultOverlay`, plus detection/recovery
        counters the backend layers on top (``verify_checks``,
        ``verify_detected``, pool ``failovers``, ...). Empty when no
        fault plan is installed; ``pim.Profiler`` snapshots this like
        the replay/emit counters.
        """
        return {}

    def replay_counters(self) -> Dict[str, int]:
        """Program replays served per replay engine.

        ``pim.Profiler`` snapshots this to attribute replays inside a
        block to the vectorized super-step engine versus the per-op
        thunk path. Backends without engine tiers report nothing.
        """
        return {}

    def program_replay_info(self, program) -> Dict[str, object]:
        """How this backend would replay a compiled program.

        On the simulator backend: the selected engine and the program's
        super-step segmentation counts (see
        :meth:`repro.driver.program.MicroProgram.replay_summary`).
        Backends with a single execution strategy report nothing.
        """
        return {}
