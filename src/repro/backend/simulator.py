"""The bit-accurate backend: host driver + cycle-accurate simulator.

This is the default engine and the reference for every other backend:
macro-instructions are lowered by :class:`repro.driver.driver.Driver`
into stateful-logic micro-operations and executed cycle-by-cycle on the
:class:`repro.sim.simulator.Simulator`. All of PR 1's compile/replay
machinery (program cache, ``execute_program`` fast path) sits behind
:meth:`SimulatorBackend.compile` / :meth:`run_program`, which is what the
``pim.compile`` graph front-end lowers whole traced functions through.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.arch.config import PIMConfig
from repro.backend.base import Backend
from repro.driver.driver import Driver
from repro.isa.instructions import Instruction
from repro.sim.simulator import Simulator
from repro.sim.stats import SimStats


class SimulatorBackend(Backend):
    """Bit-accurate execution: ``Driver`` lowering onto a ``Simulator``.

    Keyword arguments are forwarded to the driver (``parallelism``,
    ``cache_size``, ``guard``), except ``move_cost`` which selects the
    simulator's move-cost model.
    """

    name = "simulator"

    def __init__(self, config: PIMConfig, move_cost: str = "unit", **driver_kwargs):
        super().__init__(config)
        self.simulator = Simulator(config, move_cost=move_cost)
        self.driver = Driver(self.simulator, **driver_kwargs)

    # ------------------------------------------------------------------
    def execute(self, instr: Instruction) -> Optional[int]:
        return self.driver.execute(instr)

    def compile(
        self,
        instructions: Sequence[Instruction],
        name: str = "stream",
        optimize: bool = True,
    ):
        return self.driver.compile(list(instructions), name=name, optimize=optimize)

    def run_program(self, program) -> Optional[int]:
        return self.driver.run_program(program)

    # ------------------------------------------------------------------
    @property
    def words(self) -> np.ndarray:
        return self.simulator.memory.words

    @property
    def stats(self) -> SimStats:
        return self.simulator.stats

    @property
    def cache_hits(self) -> int:
        return self.driver.programs.hits

    @property
    def cache_misses(self) -> int:
        return self.driver.programs.misses
