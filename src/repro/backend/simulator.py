"""The bit-accurate backend: host driver + cycle-accurate simulator.

This is the default engine and the reference for every other backend:
macro-instructions are lowered by :class:`repro.driver.driver.Driver`
into stateful-logic micro-operations and executed cycle-by-cycle on the
:class:`repro.sim.simulator.Simulator`. All of PR 1's compile/replay
machinery (program cache, ``execute_program`` fast path) sits behind
:meth:`SimulatorBackend.compile` / :meth:`run_program`, which is what the
``pim.compile`` graph front-end lowers whole traced functions through.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.arch.config import PIMConfig
from repro.backend.base import Backend
from repro.driver.driver import Driver
from repro.isa.instructions import Instruction
from repro.sim.simulator import Simulator
from repro.sim.stats import SimStats


class SimulatorBackend(Backend):
    """Bit-accurate execution: ``Driver`` lowering onto a ``Simulator``.

    Keyword arguments are forwarded to the driver (``parallelism``,
    ``cache_size``, ``guard``), except ``move_cost`` which selects the
    simulator's move-cost model.
    """

    name = "simulator"

    def __init__(
        self,
        config: PIMConfig,
        move_cost: str = "unit",
        replay_engine: Optional[str] = None,
        **driver_kwargs,
    ):
        super().__init__(config)
        self.simulator = Simulator(
            config, move_cost=move_cost, replay_engine=replay_engine
        )
        self.driver = Driver(self.simulator, **driver_kwargs)

    @property
    def replay_engine(self) -> str:
        """The simulator's program-replay engine (``pim.init`` kwarg)."""
        return self.simulator.replay_engine

    # ------------------------------------------------------------------
    def execute(self, instr: Instruction) -> Optional[int]:
        return self.driver.execute(instr)

    def compile(
        self,
        instructions: Sequence[Instruction],
        name: str = "stream",
        optimize: bool = True,
    ):
        return self.driver.compile(list(instructions), name=name, optimize=optimize)

    def run_program(self, program, verify: Optional[str] = None) -> Optional[int]:
        return self.driver.run_program(program, verify=verify)

    def run_stream(
        self, instructions: Sequence[Instruction], name: str = "stream"
    ) -> Optional[int]:
        return self.driver.execute_stream(instructions, name=name)

    def emit_counters(self):
        return dict(self.driver.emit_counters)

    def install_faults(self, plan):
        """Bind a fault plan's cell faults to the simulator's memory.

        The overlay is owned (and ticked) by the driver so that macro
        dispatch, fused-stream emission, and both program-replay engines
        open identical fault windows; the memory keeps a reference for
        introspection (``memory.overlay``).
        """
        overlay = plan.overlay_for(self.simulator.memory.words, self.config)
        self.driver.faults = overlay
        self.simulator.memory.overlay = overlay
        return overlay

    def fault_counters(self):
        counters = {}
        if self.driver.faults is not None:
            counters.update(self.driver.faults.counters)
        if self.driver.verify_checks:
            counters["verify_checks"] = self.driver.verify_checks
        if self.driver.verify_detected:
            counters["verify_detected"] = self.driver.verify_detected
        return counters

    def program_stats(self, program) -> SimStats:
        """Static per-replay accounting of a fused ``MicroProgram``.

        Uses :func:`~repro.sim.simulator.accounting_walk` with the masks
        a fresh chip starts from — exactly what ``execute_program``
        charges for self-masked fused streams.
        """
        return self._walk_ops(program.ops)

    def stream_stats(self, instructions: Sequence[Instruction]) -> SimStats:
        """Accounting of a verbatim lowering, without building a program.

        The per-instruction body cache makes re-lowering cheap (the
        capture already compiled every distinct instruction), and no
        ``MicroProgram`` is constructed or inserted into the cache.
        """
        ops = []
        for instr in instructions:
            ops.extend(self.driver._lower_ops(instr))
        return self._walk_ops(ops)

    def replay_counters(self):
        return dict(self.simulator.replay_counters)

    def program_replay_info(self, program):
        """Engine selection + segmentation accounting for one program.

        ``engine`` is what :meth:`run_program` will use under the current
        setting: the vectorized super-step engine needs a self-masked
        program (static per-replay accounting exists) and the packed
        ``uint32`` word format; everything else replays through per-op
        thunks. The remaining keys are the IR's
        :meth:`~repro.driver.program.MicroProgram.replay_summary` at the
        engine's run-length threshold, so ``gate_ops``/``fallback_ops``
        reflect what a vectorized replay actually fuses.
        """
        from repro.sim import replay
        from repro.sim.simulator import accounting_walk

        info = dict(program.replay_summary(replay.MIN_RUN_OPS))
        # The memoized plan is the authoritative answer (and free): only
        # programs never replayed here, or replayed under a since-changed
        # engine setting, need the eligibility predicate re-derived.
        plan = self.simulator._plans.get(program)
        if plan is not None and plan.requested == self.simulator.replay_engine:
            info["engine"] = plan.engine
            info["self_masked"] = plan.static_stats is not None
            return info
        self_masked = (
            accounting_walk(
                program.ops, self.config, self.simulator.move_cost,
                strict=False,
            )
            is not None
        )
        vectorized = (
            self.simulator.replay_engine == "vectorized"
            and self_masked
            and replay.lanes_supported(self.simulator.memory)
        )
        info["engine"] = "vectorized" if vectorized else "thunk"
        info["self_masked"] = self_masked
        return info

    def _walk_ops(self, ops) -> SimStats:
        from repro.arch.masks import RangeMask
        from repro.sim.simulator import accounting_walk

        return accounting_walk(
            ops,
            self.config,
            self.simulator.move_cost,
            xb=RangeMask.all(self.config.crossbars),
            row=RangeMask.all(self.config.rows),
            strict=True,
        )

    # ------------------------------------------------------------------
    @property
    def words(self) -> np.ndarray:
        return self.simulator.memory.words

    @property
    def stats(self) -> SimStats:
        return self.simulator.stats

    @property
    def cache_hits(self) -> int:
        """Hits across both driver cache tiers (bodies + streams)."""
        return self.driver.programs.hits + self.driver.streams.hits

    @property
    def cache_misses(self) -> int:
        return self.driver.programs.misses + self.driver.streams.misses

    @property
    def cache_evictions(self) -> int:
        return self.driver.programs.evictions + self.driver.streams.evictions

    def persist_counters(self):
        if self.driver.persist is None:
            return {}
        return self.driver.persist.counters()
