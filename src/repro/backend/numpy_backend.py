"""The fast functional backend: NumPy semantics, simulator cycle accounting.

Where the bit-accurate backend executes every stateful-logic
micro-operation individually, this backend executes each
*macro-instruction* as one vectorized NumPy operation on the same packed
``(crossbars, registers, rows)`` word image — functionally equivalent
results (two's-complement int32, IEEE binary32 with the documented
flush-to-zero convention) at a fraction of the host cost.

The chip cycle model is **not** approximated away: every instruction is
still lowered through the real :class:`~repro.driver.driver.Driver` (once
per distinct instruction, memoized) and the resulting micro-op stream is
charged to :class:`~repro.sim.stats.SimStats` with exactly the
simulator's accounting rules — per-kind counters, INIT/mask overhead,
gate counts scaled by the active rows, optional H-tree move costs. A
profiled block therefore reports the *same* PIM cycles on both backends;
only the wall-clock (and the bit-exactness guarantee of the memory
image under fault injection) differs.

Known deviations from the bit-accurate model, all outside the tested
value domain (see DESIGN.md's FTZ notes): NaN payloads, the
division-by-zero result convention, and subnormal handling in the unary
float ops follow NumPy where the gate-level suite defines its own bits.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.config import PIMConfig
from repro.arch.htree import validate_move_pattern
from repro.arch.masks import RangeMask
from repro.arch.micro_ops import MicroOp
from repro.backend.base import Backend
from repro.driver.driver import Driver
from repro.driver.program import config_fingerprint
from repro.faults.checksum import ChecksumError, region_checksums
from repro.isa.instructions import (
    Instruction,
    MoveInstr,
    ReadInstr,
    RInstr,
    ROp,
    WriteInstr,
    validate,
)
from repro.sim.simulator import SimulationError, accounting_walk
from repro.sim.stats import SimStats

_WORD_MASK = np.uint64(0xFFFFFFFF)
_EXP_MASK = np.uint32(0x7F800000)
_SIGN_MASK = np.uint32(0x80000000)


@dataclass(frozen=True, eq=False)
class FunctionalProgram:
    """A compiled macro-instruction stream for the NumPy backend.

    The functional twin of :class:`~repro.driver.program.MicroProgram`:
    ``instructions`` replay as vectorized NumPy updates, while
    ``stats_delta`` holds the micro-op accounting of the (optionally
    peephole-optimized) lowered stream, precomputed once at compile time
    so replay charges the exact cycles the simulator backend would.
    """

    instructions: Tuple[Instruction, ...]
    name: str
    config_fingerprint: Tuple[int, int, int, int, int]
    stats_delta: SimStats
    macros: int
    #: Micro-ops of the lowered stream before the peephole passes ran —
    #: the pre- vs post-optimization instruction count this backend
    #: reports (same name and meaning as ``MicroProgram.source_ops``).
    source_ops: int = 0

    def __len__(self) -> int:
        return self.stats_delta.micro_ops


class NumpyBackend(Backend):
    """Functional macro-instruction execution with simulator cycle counts.

    Accepts the same keyword arguments as the driver (``parallelism``
    changes which lowering — and therefore which cycle counts — are
    charged; ``cache_size`` bounds the lowering cache) plus the
    simulator's ``move_cost`` model. ``guard`` is accepted for interface
    parity and ignored (there is no gate level to guard).
    """

    name = "numpy"

    def __init__(
        self,
        config: PIMConfig,
        move_cost: str = "unit",
        guard: bool = False,
        **driver_kwargs,
    ):
        super().__init__(config)
        if config.word_size != 32:
            raise ValueError("the numpy backend models 32-bit words only")
        if move_cost not in ("unit", "htree"):
            raise ValueError("move_cost must be 'unit' or 'htree'")
        self.move_cost = move_cost
        self._words = np.zeros(
            (config.crossbars, config.registers, config.rows), dtype=np.uint32
        )
        self._stats = SimStats()
        # The real driver supplies the lowering this backend charges for;
        # its chip port is never used (lowered ops feed the stats replayer).
        self._driver = Driver(None, config=config, **driver_kwargs)
        self._instr_stats: Dict[Instruction, SimStats] = {}
        self._hits = 0
        self._misses = 0
        # Replay plans for compiled programs (pre-resolved per-instruction
        # closures), dropped automatically when a program is collected.
        self._plans: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        # Validated (warp_mask, dist) -> source-warp index array, shared by
        # every eager move with the same pattern.
        self._move_cache: Dict[Tuple, np.ndarray] = {}
        # Stream tier: fused FunctionalPrograms keyed on the instruction
        # tuple, mirroring the driver's StreamPlan cache (run_stream).
        self._stream_programs: Dict[Tuple, FunctionalProgram] = {}
        self._emit_counters: Dict[str, int] = {"stream": 0, "macro": 0}
        # Installed fault overlay (None = fault-free), ticked once per
        # dispatch unit exactly like the driver's — see repro.faults.
        self._fault_overlay = None
        self._verify_checks = 0
        self._verify_detected = 0

    # ------------------------------------------------------------------
    # Backend interface
    # ------------------------------------------------------------------
    @property
    def words(self) -> np.ndarray:
        return self._words

    @property
    def stats(self) -> SimStats:
        return self._stats

    @property
    def cache_hits(self) -> int:
        return self._hits

    @property
    def cache_misses(self) -> int:
        return self._misses

    @property
    def cache_evictions(self) -> int:
        # The per-instruction stats memo never evicts (it stops growing
        # at its bound); evictions come from the lowering driver's tiers.
        return (
            self._driver.programs.evictions + self._driver.streams.evictions
        )

    def persist_counters(self):
        if self._driver.persist is None:
            return {}
        return self._driver.persist.counters()

    def execute(self, instr: Instruction) -> Optional[int]:
        validate(instr, self.config.registers)
        delta = self._instr_stats.get(instr)
        if delta is None:
            self._misses += 1
            ops = self._driver._lower_ops(instr)
            try:
                delta = self._replay_stats(ops)
            except SimulationError:
                self._charge_rejected_move(instr)
                raise
            if len(self._instr_stats) < 65536:
                self._instr_stats[instr] = delta
        else:
            self._hits += 1
        result = self._apply(instr)
        self._stats.merge(delta)
        if self._fault_overlay is not None:
            self._fault_overlay.tick()
        return result

    def _charge_rejected_move(self, instr: Instruction) -> None:
        """Mirror the simulator's partial accounting for rejected moves.

        An inter-warp move lowering starts with a crossbar-mask op; the
        simulator executes (and counts) it before the H-tree validation
        rejects the ``MoveOp``, and the tensor library's bulk-move
        fallback relies on catching that error — so the mask cycle must
        be charged here too.
        """
        if isinstance(instr, MoveInstr) and instr.warp_dist:
            self._stats.record("mask_crossbar")

    def compile(
        self,
        instructions: Sequence[Instruction],
        name: str = "stream",
        optimize: bool = True,
    ) -> FunctionalProgram:
        """Compile a stream: lower once (through the real driver, with the
        peephole passes when ``optimize``) purely to fix the cycle bill,
        and keep the macro-instructions for functional replay."""
        instrs = tuple(instructions)
        micro = self._driver.compile(list(instrs), name=name, optimize=optimize)
        delta = self._replay_stats(micro.ops)
        return FunctionalProgram(
            instrs, name, config_fingerprint(self.config), delta, len(instrs),
            source_ops=micro.source_ops,
        )

    def program_stats(self, program: FunctionalProgram) -> SimStats:
        """The precomputed per-replay cycle bill (one copy, no execution)."""
        return program.stats_delta.copy()

    def stream_stats(self, instructions: Sequence[Instruction]) -> SimStats:
        """Accounting of a verbatim lowering, without building a program."""
        ops = []
        for instr in instructions:
            ops.extend(self._driver._lower_ops(instr))
        return self._replay_stats(ops)

    def run_program(
        self, program: FunctionalProgram, verify: Optional[str] = None
    ) -> Optional[int]:
        """Replay a compiled stream from its pre-resolved plan.

        On first sight of a program this builds a *replay plan* — one
        closure per macro-instruction with regions, index arrays, and
        operation constants already resolved — exactly the strategy of
        the simulator's ``execute_program`` fast path. Replay then pays
        only the vectorized memory updates plus one batched stats merge.

        ``verify="checksum"`` checksums the program's written regions
        (derived from the macro instructions) across the post-replay
        fault window, mirroring the driver's protocol.
        """
        if verify is not None and verify != "checksum":
            raise ValueError(f"unknown verify mode {verify!r}")
        if program.config_fingerprint != config_fingerprint(self.config):
            raise SimulationError(
                f"program {program.name!r} was compiled for fingerprint "
                f"{program.config_fingerprint}, this backend is "
                f"{config_fingerprint(self.config)}"
            )
        plan = self._plans.get(program)
        if plan is None:
            plan = [self._plan_instr(instr) for instr in program.instructions]
            self._plans[program] = plan
        self._hits += 1
        response: Optional[int] = None
        with np.errstate(all="ignore"):
            for step in plan:
                result = step()
                if result is not None:
                    response = result
        self._stats.merge(program.stats_delta)
        if verify is not None:
            self._verify_replay(program)
        elif self._fault_overlay is not None:
            self._fault_overlay.tick()
        return response

    def _verify_replay(self, program: FunctionalProgram) -> None:
        """The driver's checksum protocol at macro-region granularity."""
        regions = self._program_regions(program)
        self._verify_checks += 1
        before = region_checksums(self._words, regions)
        if self._fault_overlay is not None:
            self._fault_overlay.tick()
        after = region_checksums(self._words, regions)
        if after != before:
            self._verify_detected += 1
            bad = tuple(
                region
                for region, b, a in zip(regions, before, after)
                if b != a
            )
            raise ChecksumError(program.name, bad)

    def _program_regions(self, program: FunctionalProgram):
        """Written regions of the macro stream, memoized on the program.

        The functional model writes only the architectural destinations
        (no scratch staging), so regions come straight from the macro
        instructions rather than a micro-op walk.
        """
        cached = program.__dict__.get("_verify_regions")
        if cached is not None:
            return cached
        cfg = self.config
        seen = set()
        regions = []

        def add(reg, warp_mask, rows):
            wm = warp_mask or RangeMask.all(cfg.crossbars)
            region = (reg, (wm.start, wm.stop, wm.step), rows)
            if region not in seen:
                seen.add(region)
                regions.append(region)

        def row_range(row_mask):
            rm = row_mask or RangeMask.all(cfg.rows)
            return (rm.start, rm.stop, rm.step)

        for instr in program.instructions:
            if isinstance(instr, RInstr):
                add(instr.dest, instr.warp_mask, row_range(instr.row_mask))
            elif isinstance(instr, WriteInstr):
                add(instr.reg, instr.warp_mask, row_range(instr.row_mask))
            elif isinstance(instr, MoveInstr):
                wm = instr.warp_mask or RangeMask.all(cfg.crossbars)
                shifted = (
                    wm.start + instr.warp_dist,
                    wm.stop + instr.warp_dist,
                    wm.step,
                )
                add_region = (
                    instr.dst_reg,
                    shifted,
                    (instr.dst_thread, instr.dst_thread, 1),
                )
                if add_region not in seen:
                    seen.add(add_region)
                    regions.append(add_region)
        cached = tuple(regions)
        program.__dict__["_verify_regions"] = cached
        return cached

    def install_faults(self, plan):
        """Bind a fault plan's cell faults to the functional word image."""
        overlay = plan.overlay_for(self._words, self.config)
        self._fault_overlay = overlay
        return overlay

    def fault_counters(self) -> Dict[str, int]:
        counters = {}
        if self._fault_overlay is not None:
            counters.update(self._fault_overlay.counters)
        if self._verify_checks:
            counters["verify_checks"] = self._verify_checks
        if self._verify_detected:
            counters["verify_detected"] = self._verify_detected
        return counters

    def run_stream(
        self, instructions: Sequence[Instruction], name: str = "stream"
    ) -> Optional[int]:
        """Emit a whole stream through one cached ``FunctionalProgram``.

        The functional twin of the driver's
        :meth:`~repro.driver.driver.Driver.execute_stream`: under the
        default ``"stream"`` emission mode the stream compiles once into
        a fused program (identical cycle bill by construction — the
        verbatim lowering's accounting is linear in the ops) and replays
        through its pre-resolved plan; ``emit_mode="macro"`` falls back
        to the per-instruction loop, bit-identically.
        """
        from repro.driver.stream import MacroStream

        instrs = MacroStream.wrap(instructions)
        if not instrs:
            return None
        if self._driver.emit_mode == "stream":
            key = (instrs, name)
            program = self._stream_programs.get(key)
            if program is None:
                program = self.compile(instrs, name=name, optimize=False)
                if len(self._stream_programs) < 4096:
                    self._stream_programs[key] = program
            self._emit_counters["stream"] += 1
            return self.run_program(program)
        self._emit_counters["macro"] += 1
        response: Optional[int] = None
        for instr in instrs:
            result = self.execute(instr)
            if result is not None:
                response = result
        return response

    def emit_counters(self) -> Dict[str, int]:
        return dict(self._emit_counters)

    def _plan_instr(self, instr: Instruction) -> Callable[[], Optional[int]]:
        """Pre-resolve one macro-instruction into a replay closure."""
        words = self._words
        if isinstance(instr, RInstr):
            out = self._region(instr.dest, instr.warp_mask, instr.row_mask)
            srcs = [
                self._region(reg, instr.warp_mask, instr.row_mask)
                for reg in instr.sources()
            ]
            semantics = _float_op if instr.dtype.is_float else _int_op
            op = instr.op

            def r_step(out=out, srcs=srcs, op=op, semantics=semantics):
                out[...] = semantics(op, srcs)

            return r_step
        if isinstance(instr, WriteInstr):
            region = self._region(instr.reg, instr.warp_mask, instr.row_mask)
            value = np.uint32(instr.value)

            def w_step(region=region, value=value):
                region[...] = value

            return w_step
        if isinstance(instr, ReadInstr):
            warp, reg, thread = instr.warp, instr.reg, instr.thread

            def read_step():
                return int(words[warp, reg, thread])

            return read_step
        if isinstance(instr, MoveInstr):
            warps = instr.warp_mask or RangeMask.all(self.config.crossbars)
            if instr.warp_dist:
                try:
                    validate_move_pattern(
                        warps, instr.warp_dist, self.config.crossbars
                    )
                except ValueError as exc:
                    raise SimulationError(str(exc)) from exc
            src_reg, dst_reg = instr.src_reg, instr.dst_reg
            src_row, dst_row = instr.src_thread, instr.dst_thread
            if len(warps) == 1:
                sw = warps.start
                dw = sw + instr.warp_dist

                def single_move():
                    words[dw, dst_reg, dst_row] = words[sw, src_reg, src_row]

                return single_move
            sources = np.fromiter(warps.indices(), dtype=np.int64)
            dests = sources + instr.warp_dist

            def move_step(sources=sources, dests=dests):
                words[dests, dst_reg, dst_row] = words[sources, src_reg, src_row]

            return move_step
        raise SimulationError(f"not an instruction: {instr!r}")

    # ------------------------------------------------------------------
    # Cycle accounting: replay a lowered stream into a stats delta
    # ------------------------------------------------------------------
    def _replay_stats(self, ops: Sequence[MicroOp]) -> SimStats:
        """Charge a micro-op stream with the simulator's accounting rules.

        Delegates to :func:`repro.sim.simulator.accounting_walk` (the
        shared cycle-model walker) in strict mode: masks start as
        all-selected like a fresh chip, and an illegal H-tree move raises
        the same :class:`SimulationError` the simulator would.
        """
        return accounting_walk(
            ops,
            self.config,
            self.move_cost,
            xb=RangeMask.all(self.config.crossbars),
            row=RangeMask.all(self.config.rows),
            strict=True,
        )

    # ------------------------------------------------------------------
    # Functional execution
    # ------------------------------------------------------------------
    def _apply(self, instr: Instruction) -> Optional[int]:
        if isinstance(instr, RInstr):
            self._apply_rtype(instr)
            return None
        if isinstance(instr, WriteInstr):
            self._region(instr.reg, instr.warp_mask, instr.row_mask)[...] = (
                np.uint32(instr.value)
            )
            return None
        if isinstance(instr, ReadInstr):
            return int(self._words[instr.warp, instr.reg, instr.thread])
        if isinstance(instr, MoveInstr):
            self._apply_move(instr)
            return None
        raise SimulationError(f"not an instruction: {instr!r}")

    def _region(
        self,
        reg: int,
        warp_mask: Optional[RangeMask],
        row_mask: Optional[RangeMask],
    ) -> np.ndarray:
        wm = warp_mask or RangeMask.all(self.config.crossbars)
        rm = row_mask or RangeMask.all(self.config.rows)
        return self._words[
            wm.start : wm.stop + 1 : wm.step, reg, rm.start : rm.stop + 1 : rm.step
        ]

    def _apply_move(self, instr: MoveInstr) -> None:
        warps = instr.warp_mask or RangeMask.all(self.config.crossbars)
        key = (warps, instr.warp_dist)
        sources = self._move_cache.get(key)
        if sources is None:
            if instr.warp_dist:
                try:
                    validate_move_pattern(
                        warps, instr.warp_dist, self.config.crossbars
                    )
                except ValueError as exc:
                    raise SimulationError(str(exc)) from exc
            sources = np.fromiter(warps.indices(), dtype=np.int64)
            if len(self._move_cache) < 65536:
                self._move_cache[key] = sources
        self._words[sources + instr.warp_dist, instr.dst_reg, instr.dst_thread] = (
            self._words[sources, instr.src_reg, instr.src_thread]
        )

    def _apply_rtype(self, instr: RInstr) -> None:
        out = self._region(instr.dest, instr.warp_mask, instr.row_mask)
        srcs = [
            self._region(reg, instr.warp_mask, instr.row_mask)
            for reg in instr.sources()
        ]
        with np.errstate(all="ignore"):
            if instr.dtype.is_float:
                result = _float_op(instr.op, srcs)
            else:
                result = _int_op(instr.op, srcs)
        out[...] = result


# ----------------------------------------------------------------------
# Raw-word operation semantics (mirroring the gate-level suite)
# ----------------------------------------------------------------------
def _signed(raw: np.ndarray) -> np.ndarray:
    """Raw words as signed int64 values (two's complement decode)."""
    wide = raw.astype(np.int64)
    return np.where(wide >= 1 << 31, wide - (1 << 32), wide)


def _wrap(values: np.ndarray) -> np.ndarray:
    """Truncate int64 results back to raw 32-bit words."""
    return (values.astype(np.int64) & np.int64(0xFFFFFFFF)).astype(np.uint32)


def _int_op(op: ROp, srcs: List[np.ndarray]) -> np.ndarray:
    a = srcs[0]
    b = srcs[1] if len(srcs) > 1 else None
    if op is ROp.ADD:
        return _wrap(a.astype(np.int64) + b.astype(np.int64))
    if op is ROp.SUB:
        return _wrap(a.astype(np.int64) - b.astype(np.int64))
    if op is ROp.MUL:
        return _wrap(a.astype(np.int64) * b.astype(np.int64))
    if op in (ROp.DIV, ROp.MOD):
        return _int_divmod(op, a, b)
    if op is ROp.NEG:
        return _wrap(-a.astype(np.int64))
    if op is ROp.ABS:
        return _wrap(np.abs(_signed(a)))
    if op is ROp.SIGN:
        return _wrap(np.sign(_signed(a)))
    if op is ROp.ZERO:
        return (a == 0).astype(np.uint32)
    if op in _COMPARES:
        return _COMPARES[op](_signed(a), _signed(b)).astype(np.uint32)
    return _raw_op(op, srcs)


def _int_divmod(op: ROp, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Truncated division/remainder as the restoring-divider computes it.

    Magnitudes run through an unsigned datapath; ``b == 0`` yields the
    all-ones quotient magnitude and ``|a|`` remainder the hardware
    produces, and the result is sign-corrected (quotient by XOR of signs,
    remainder by the dividend's sign).
    """
    sa, sb = _signed(a), _signed(b)
    mag_a = np.abs(sa).astype(np.uint64)
    mag_b = np.abs(sb).astype(np.uint64)
    safe_b = np.where(mag_b == 0, 1, mag_b)
    q_mag = np.where(mag_b == 0, _WORD_MASK, mag_a // safe_b).astype(np.int64)
    r_mag = np.where(mag_b == 0, mag_a, mag_a % safe_b).astype(np.int64)
    if op is ROp.DIV:
        negative = (sa < 0) ^ (sb < 0)
        return _wrap(np.where(negative, -q_mag, q_mag))
    return _wrap(np.where(sa < 0, -r_mag, r_mag))


_COMPARES = {
    ROp.LT: np.less,
    ROp.LE: np.less_equal,
    ROp.GT: np.greater,
    ROp.GE: np.greater_equal,
    ROp.EQ: np.equal,
    ROp.NE: np.not_equal,
}


def _ftz(raw: np.ndarray) -> np.ndarray:
    """Flush subnormal words to signed zero (the documented FTZ model)."""
    return np.where(raw & _EXP_MASK == 0, raw & _SIGN_MASK, raw)


def _as_float(raw: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(_ftz(raw)).view(np.float32)


def _from_float(values: np.ndarray) -> np.ndarray:
    raw = np.ascontiguousarray(values.astype(np.float32)).view(np.uint32)
    return _ftz(raw)


def _float_op(op: ROp, srcs: List[np.ndarray]) -> np.ndarray:
    a = srcs[0]
    b = srcs[1] if len(srcs) > 1 else None
    if op is ROp.ADD:
        return _from_float(_as_float(a) + _as_float(b))
    if op is ROp.SUB:
        return _from_float(_as_float(a) - _as_float(b))
    if op is ROp.MUL:
        return _from_float(_as_float(a) * _as_float(b))
    if op is ROp.DIV:
        return _from_float(_as_float(a) / _as_float(b))
    if op is ROp.NEG:
        return a ^ _SIGN_MASK
    if op is ROp.ABS:
        return a & ~_SIGN_MASK
    if op is ROp.SIGN:
        nonzero = a & _EXP_MASK != 0
        one = np.uint32(0x3F800000)
        return np.where(nonzero, one | (a & _SIGN_MASK), np.uint32(0))
    if op is ROp.ZERO:
        return (a & _EXP_MASK == 0).astype(np.uint32)
    if op in _COMPARES:
        return _COMPARES[op](_as_float(a), _as_float(b)).astype(np.uint32)
    return _raw_op(op, srcs)


def _raw_op(op: ROp, srcs: List[np.ndarray]) -> np.ndarray:
    """Dtype-independent raw-word operations (bitwise, mux, copy)."""
    a = srcs[0]
    if op is ROp.COPY:
        return a.copy()
    if op is ROp.BIT_NOT:
        return ~a
    if op is ROp.BIT_AND:
        return a & srcs[1]
    if op is ROp.BIT_OR:
        return a | srcs[1]
    if op is ROp.BIT_XOR:
        return a ^ srcs[1]
    if op is ROp.MUX:
        # Bit 0 of the condition register selects, as in the gate lowering.
        return np.where(a & 1 == 1, srcs[1], srcs[2])
    raise SimulationError(f"unsupported functional op {op}")
