"""Pluggable execution backends for the PIM device.

``pim.init(backend="simulator")`` (the default) runs every
macro-instruction through the host driver onto the bit-accurate
simulator; ``pim.init(backend="numpy")`` runs the same programs as
vectorized NumPy updates while charging identical PIM cycle counts.
See :mod:`repro.backend.base` for the protocol.
"""

from __future__ import annotations

from typing import Union

from repro.arch.config import PIMConfig
from repro.backend.base import Backend
from repro.backend.numpy_backend import FunctionalProgram, NumpyBackend
from repro.backend.simulator import SimulatorBackend

#: Registered backend names, as accepted by ``pim.init(backend=...)``.
#: ``"pooled"``/``"pool"`` resolve lazily (see :func:`make_backend`) to
#: :class:`repro.pool.PooledBackend` — the pool package imports backends,
#: so a table entry here would be a circular import.
BACKENDS = {
    "simulator": SimulatorBackend,
    "sim": SimulatorBackend,
    "bit": SimulatorBackend,
    "numpy": NumpyBackend,
    "functional": NumpyBackend,
}

_LAZY_BACKENDS = ("pooled", "pool")


def make_backend(
    backend: Union[str, Backend, type, None],
    config: PIMConfig,
    **kwargs,
) -> Backend:
    """Resolve a backend spec: a name, a Backend subclass, or an instance.

    An already-constructed instance is adopted as-is (its config must
    match the device's); a class or registered name is instantiated with
    the device config plus any driver keyword arguments.
    """
    if backend is None:
        backend = "simulator"
    if isinstance(backend, Backend):
        if backend.config != config:
            raise ValueError(
                "backend instance was built for a different PIMConfig"
            )
        return backend
    if isinstance(backend, type) and issubclass(backend, Backend):
        return backend(config, **kwargs)
    key = str(backend).lower()
    if key in _LAZY_BACKENDS:
        from repro.pool import PooledBackend

        return PooledBackend(config, **kwargs)
    try:
        cls = BACKENDS[key]
    except KeyError:
        choices = sorted(set(BACKENDS) | set(_LAZY_BACKENDS))
        raise ValueError(
            f"unknown backend {backend!r}; choose from {choices}"
        ) from None
    return cls(config, **kwargs)


__all__ = [
    "Backend",
    "BACKENDS",
    "FunctionalProgram",
    "NumpyBackend",
    "SimulatorBackend",
    "make_backend",
]
