"""Pluggable execution backends for the PIM device.

``pim.init(backend="simulator")`` (the default) runs every
macro-instruction through the host driver onto the bit-accurate
simulator; ``pim.init(backend="numpy")`` runs the same programs as
vectorized NumPy updates while charging identical PIM cycle counts.
See :mod:`repro.backend.base` for the protocol.
"""

from __future__ import annotations

from typing import Union

from repro.arch.config import PIMConfig
from repro.backend.base import Backend
from repro.backend.numpy_backend import FunctionalProgram, NumpyBackend
from repro.backend.simulator import SimulatorBackend

#: Registered backend names, as accepted by ``pim.init(backend=...)``.
BACKENDS = {
    "simulator": SimulatorBackend,
    "sim": SimulatorBackend,
    "bit": SimulatorBackend,
    "numpy": NumpyBackend,
    "functional": NumpyBackend,
}


def make_backend(
    backend: Union[str, Backend, type, None],
    config: PIMConfig,
    **kwargs,
) -> Backend:
    """Resolve a backend spec: a name, a Backend subclass, or an instance.

    An already-constructed instance is adopted as-is (its config must
    match the device's); a class or registered name is instantiated with
    the device config plus any driver keyword arguments.
    """
    if backend is None:
        backend = "simulator"
    if isinstance(backend, Backend):
        if backend.config != config:
            raise ValueError(
                "backend instance was built for a different PIMConfig"
            )
        return backend
    if isinstance(backend, type) and issubclass(backend, Backend):
        return backend(config, **kwargs)
    try:
        cls = BACKENDS[str(backend).lower()]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(set(BACKENDS))}"
        ) from None
    return cls(config, **kwargs)


__all__ = [
    "Backend",
    "BACKENDS",
    "FunctionalProgram",
    "NumpyBackend",
    "SimulatorBackend",
    "make_backend",
]
