"""Theoretical PIM cycle counts (the "Theoretical PIM" series of Fig. 13).

Definition used throughout this reproduction (documented in DESIGN.md):
the theoretical cycle count of a computation is the number of *productive
stateful-logic gate cycles* it performs — NOR/NOT logic operations plus
data-movement operations — excluding initialization cycles, mask updates
and framework copies. This matches the spirit of the paper's comparison
(algorithmic lower bound vs. end-to-end measured micro-ops); the measured/
theoretical gap is the framework overhead the paper reports as 5% average
/ 16% worst-case.

Closed-form counts for the classic bit-serial algorithms are provided as
cross-checks (e.g. 9N NORs for ripple-carry addition, the AritPIM full
adder); for composite routines the theoretical count is extracted from the
simulator's per-gate-type counters via :func:`theoretical_cycles`.
"""

from __future__ import annotations

from repro.sim.stats import SimStats

#: Gate-type counter keys that count as productive work.
_PRODUCTIVE = ("logic_h_nor", "logic_h_not", "logic_v_not", "move")
#: Overhead keys (initialization, masks, reads/writes).
_OVERHEAD = (
    "logic_h_init0",
    "logic_h_init1",
    "logic_v_init0",
    "logic_v_init1",
    "mask_crossbar",
    "mask_row",
    "read",
    "write",
)


def gate_cycles(stats: SimStats) -> int:
    """Productive NOR/NOT/move cycles recorded in a stats delta."""
    return sum(stats.op_counts.get(key, 0) for key in _PRODUCTIVE)


def theoretical_cycles(stats: SimStats) -> int:
    """The theoretical-PIM cycle count for a measured stats delta.

    Equals :func:`gate_cycles`; provided under this name so benchmark
    code reads as 'measured vs theoretical'.
    """
    return gate_cycles(stats)


def overhead_cycles(stats: SimStats) -> int:
    """Initialization/mask/access cycles (the framework overhead)."""
    return sum(stats.op_counts.get(key, 0) for key in _OVERHEAD)


def serial_add_cycles(word_size: int = 32) -> int:
    """Bit-serial ripple-carry addition: 9 NOR gates per bit (AritPIM)."""
    return 9 * word_size


def serial_mul_cycles(word_size: int = 32) -> int:
    """Bit-serial shift-and-add multiplication gate count.

    Partial product ``i`` needs ``word_size - i`` AND gates (one NOR each
    against precomputed complements) and a ripple add over the remaining
    ``word_size - i`` positions (9 NORs each), plus the initial operand
    complement.
    """
    total = word_size  # ~a complements
    for i in range(word_size):
        width = word_size - i
        total += width  # partial-product NORs
        if i:
            total += 9 * width  # accumulate
    return total


def parallel_add_cycles(word_size: int = 32) -> int:
    """Kogge-Stone partition-parallel addition cycle count.

    Per prefix distance ``d``: two strided shifts (``d + 1`` micro-ops
    each) plus a constant number of partition-parallel column operations;
    see :mod:`repro.driver.parallel`.
    """
    total = 9  # p/g/p0 construction column ops
    distance = 1
    while distance < word_size:
        total += 2 * (distance + 1) + 7
        distance *= 2
    total += 2 + 5  # carry shift + final xor
    return total
