"""Theoretical PIM cycle counts and golden (ground-truth) semantics.

Used by the evaluation (Figure 13) to place measured PyPIM throughput next
to the theoretical PIM bound, and by the test suite as the NumPy-equivalent
reference for every ISA operation.
"""

from repro.theory.counts import (
    gate_cycles,
    theoretical_cycles,
    serial_add_cycles,
    serial_mul_cycles,
    parallel_add_cycles,
)
from repro.theory.golden import golden_rtype

__all__ = [
    "gate_cycles",
    "theoretical_cycles",
    "serial_add_cycles",
    "serial_mul_cycles",
    "parallel_add_cycles",
    "golden_rtype",
]
