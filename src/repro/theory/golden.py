"""Golden (CPU / NumPy) semantics for every ISA operation.

The paper's correctness methodology compares simulator output against "a
trusted CPU-only program" (NumPy). This module centralizes those reference
semantics — including the documented deviations (trunc integer division,
C-style modulo) — so tests and benchmarks share one definition.
"""

from __future__ import annotations

import numpy as np

from repro.isa.dtypes import DType
from repro.isa.instructions import ROp


def _trunc_div_int32(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C-style (truncate toward zero) int32 division; INT_MIN/-1 wraps."""
    a64 = a.astype(np.int64)
    b64 = b.astype(np.int64)
    q = np.where(b64 != 0, np.fix(a64 / np.where(b64 == 0, 1, b64)), 0)
    return (q.astype(np.int64) & 0xFFFFFFFF).astype(np.uint32).view(np.int32)


def _trunc_mod_int32(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """C-style remainder (sign of the dividend)."""
    q = _trunc_div_int32(a, b).astype(np.int64)
    r = a.astype(np.int64) - q * b.astype(np.int64)
    return (r & 0xFFFFFFFF).astype(np.uint32).view(np.int32)


def golden_rtype(op: ROp, dtype: DType, a: np.ndarray, b=None, c=None) -> np.ndarray:
    """Reference result of an R-type operation on host arrays.

    Arrays must already have the matching NumPy dtype. Comparison and
    zero-test results are int32 0/1 words; bitwise operations act on raw
    bit patterns for both dtypes.
    """
    np_dtype = dtype.np_dtype
    with np.errstate(all="ignore"):
        if op in (ROp.BIT_NOT, ROp.BIT_AND, ROp.BIT_OR, ROp.BIT_XOR):
            raw_a = np.asarray(a).view(np.uint32)
            raw_b = None if b is None else np.asarray(b).view(np.uint32)
            result = {
                ROp.BIT_NOT: lambda: ~raw_a,
                ROp.BIT_AND: lambda: raw_a & raw_b,
                ROp.BIT_OR: lambda: raw_a | raw_b,
                ROp.BIT_XOR: lambda: raw_a ^ raw_b,
            }[op]()
            return result.view(np_dtype)
        if op == ROp.ADD:
            return (a + b).astype(np_dtype)
        if op == ROp.SUB:
            return (a - b).astype(np_dtype)
        if op == ROp.MUL:
            return (a * b).astype(np_dtype)
        if op == ROp.DIV:
            if dtype.is_float:
                return (a / b).astype(np_dtype)
            return _trunc_div_int32(a, b)
        if op == ROp.MOD:
            return _trunc_mod_int32(a, b)
        if op == ROp.NEG:
            return (-a).astype(np_dtype)
        if op == ROp.ABS:
            return np.abs(a).astype(np_dtype)
        if op == ROp.SIGN:
            return np.sign(a).astype(np_dtype)
        if op == ROp.ZERO:
            return (a == 0).astype(np.int32)
        if op == ROp.LT:
            return (a < b).astype(np.int32)
        if op == ROp.LE:
            return (a <= b).astype(np.int32)
        if op == ROp.GT:
            return (a > b).astype(np.int32)
        if op == ROp.GE:
            return (a >= b).astype(np.int32)
        if op == ROp.EQ:
            return (a == b).astype(np.int32)
        if op == ROp.NE:
            return (a != b).astype(np.int32)
        if op == ROp.MUX:
            return np.where(np.asarray(a).astype(bool), b, c).astype(np_dtype)
        if op == ROp.COPY:
            return np.asarray(a).astype(np_dtype)
    raise ValueError(f"no golden semantics for {op}")
