"""Gate-level builder: the driver's interface to stateful logic.

A *cell* is one memristor addressed as ``(register, partition)`` within the
current row — every gate emitted here executes element-parallel across all
rows activated by the surrounding mask operations, which is exactly the
bit-serial element-parallel model of Section II-B.

Stateful logic can only pull an output memristor from logical 1 to logical
0, so every gate output must be initialized first. The builder accounts for
these ``INIT1`` cycles honestly while amortizing them: scratch cells are
handed out from whole *columns* (one register across all partitions) that
are bulk-initialized with a single micro-operation whenever the entire
column is reusable.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.arch.config import PIMConfig
from repro.arch.micro_ops import GateType, LogicHOp, MicroOp

#: A memristor address within a row: (register index, partition index).
Cell = Tuple[int, int]


class ScratchOverflow(Exception):
    """Raised when an instruction needs more driver scratch cells than exist."""


def _arith_runs(values: List[int]) -> List[Tuple[int, int, int]]:
    """Split a sorted integer list into (start, stop, step) arithmetic runs."""
    runs = []
    index = 0
    n = len(values)
    while index < n:
        start = values[index]
        if index + 1 >= n:
            runs.append((start, start, 1))
            break
        step = values[index + 1] - start
        stop_idx = index + 1
        while stop_idx + 1 < n and values[stop_idx + 1] - values[stop_idx] == step:
            stop_idx += 1
        runs.append((start, values[stop_idx], step))
        index = stop_idx + 1
    return runs


class GateError(Exception):
    """Raised on invalid gate usage (aliasing, read-after-free, ...)."""


class GateBuilder:
    """Emits stateful-logic micro-operations for one macro-instruction.

    Args:
        config: architecture parameters (defines partitions and scratch).
        emit: callback receiving each generated :class:`MicroOp` in order.
        scratch_registers: register indices the builder may use for
            temporaries; defaults to the config's reserved scratch range.
        guard: when True, track cell lifetimes and raise :class:`GateError`
            on use-after-free (slower; enabled in tests).
    """

    def __init__(
        self,
        config: PIMConfig,
        emit: Callable[[MicroOp], None],
        scratch_registers: Optional[List[int]] = None,
        guard: bool = False,
    ):
        self.config = config
        self.emit = emit
        self.guard = guard
        if scratch_registers is None:
            scratch_registers = list(config.scratch_register_indices())
        if not scratch_registers:
            raise ValueError("the builder needs at least one scratch register")
        self._scratch_regs = list(scratch_registers)
        parts = config.partitions
        # Per-column state: free cells and dirty cells (value unknown, needs
        # INIT1 before reuse as a gate output). Everything starts dirty.
        self._free = {reg: set(range(parts)) for reg in self._scratch_regs}
        self._dirty = {reg: set(range(parts)) for reg in self._scratch_regs}
        self._reserved_columns: List[int] = []
        self._freed_guard: set = set()
        # Shared constant cells, created lazily (never freed).
        self._const_cells: dict = {}
        self._protected: set = set()

    @classmethod
    def recording(
        cls,
        config: PIMConfig,
        scratch_registers: Optional[List[int]] = None,
        guard: bool = False,
    ) -> "Tuple[GateBuilder, List[MicroOp]]":
        """A builder that records into a fresh op list: ``(builder, ops)``.

        The recorded list is what :func:`repro.driver.compiler.compile_ops`
        turns into a replayable :class:`~repro.driver.program.MicroProgram`.
        """
        ops: List[MicroOp] = []
        builder = cls(
            config, ops.append, scratch_registers=scratch_registers, guard=guard
        )
        return builder, ops

    # ------------------------------------------------------------------
    # Scratch management
    # ------------------------------------------------------------------
    @property
    def free_cell_count(self) -> int:
        """Currently available scratch cells (for tests and sizing checks)."""
        return sum(len(free) for free in self._free.values())

    def alloc(self) -> Cell:
        """Claim one scratch cell, initialized to logical 1 (gate-ready)."""
        parts = self.config.partitions
        # Prefer a clean free cell (no init needed).
        for reg in self._scratch_regs:
            clean = self._free[reg] - self._dirty[reg]
            if clean:
                part = min(clean)
                return self._take(reg, part)
        # Next, bulk-initialize a fully-free column with one micro-op.
        for reg in self._scratch_regs:
            if len(self._free[reg]) == parts and self._dirty[reg]:
                self.init_column(reg, 1)
                self._dirty[reg].clear()
                return self._take(reg, min(self._free[reg]))
        # Otherwise, batch-clean the column holding the most reclaimable
        # cells: its free-and-dirty set is re-initialized with strided
        # INIT1 runs, amortizing init cycles over many future allocs.
        best = max(
            self._scratch_regs,
            key=lambda reg: len(self._free[reg] & self._dirty[reg]),
        )
        reclaimable = sorted(self._free[best] & self._dirty[best])
        if reclaimable:
            for start, stop, step in _arith_runs(reclaimable):
                self.emit(
                    LogicHOp(
                        GateType.INIT1, in_a=0, in_b=0, out=best,
                        p_a=0, p_b=0, p_out=start, p_end=stop, p_step=step,
                    )
                )
            self._dirty[best].difference_update(reclaimable)
            return self._take(best, reclaimable[0])
        raise ScratchOverflow(
            f"out of scratch cells ({len(self._scratch_regs)} columns x "
            f"{parts} partitions all live)"
        )

    def _take(self, reg: int, part: int) -> Cell:
        self._free[reg].discard(part)
        cell = (reg, part)
        self._freed_guard.discard(cell)
        return cell

    def alloc_bits(self, count: int) -> List[Cell]:
        """Claim ``count`` scratch cells (LSB-first bit vector)."""
        return [self.alloc() for _ in range(count)]

    def free(self, cell: Cell) -> None:
        """Release a scratch cell (its value becomes undefined).

        Freeing a register-file cell (tensor data) or a shared constant
        cell is a no-op, so callers may free whole bit vectors that mix
        scratch with aliased constants.
        """
        reg, part = cell
        if reg not in self._free or cell in self._protected:
            return
        if self.guard and part in self._free[reg]:
            raise GateError(f"double free of cell {cell}")
        self._free[reg].add(part)
        self._dirty[reg].add(part)
        self._freed_guard.add(cell)

    def free_bits(self, cells: List[Cell]) -> None:
        """Release a vector of scratch cells."""
        for cell in cells:
            self.free(cell)

    def reserve_column(self) -> int:
        """Claim an entire scratch register for partition-parallel routines.

        Returns the register index; all its cells leave the cell pool. The
        column is *not* initialized (bit-parallel routines init explicitly).
        """
        parts = self.config.partitions
        for reg in self._scratch_regs:
            if len(self._free[reg]) == parts:
                self._free[reg].clear()
                self._reserved_columns.append(reg)
                return reg
        raise ScratchOverflow("no fully-free scratch column available")

    def release_column(self, reg: int) -> None:
        """Return a reserved scratch register to the cell pool."""
        if reg not in self._reserved_columns:
            raise GateError(f"register {reg} was not reserved")
        self._reserved_columns.remove(reg)
        parts = self.config.partitions
        self._free[reg] = set(range(parts))
        self._dirty[reg] = set(range(parts))

    def const(self, bit: int) -> Cell:
        """A shared constant cell holding ``bit`` (read-only, never freed)."""
        bit = 1 if bit else 0
        if bit not in self._const_cells:
            cell = self.alloc()
            if bit == 0:
                self._emit_init_cell(cell[0], cell[1], 0)
            self._const_cells[bit] = cell
            self._protected.add(cell)
        return self._const_cells[bit]

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------
    def init_column(self, reg: int, value: int) -> None:
        """Bulk-initialize one register across all partitions (1 micro-op)."""
        gate = GateType.INIT1 if value else GateType.INIT0
        self.emit(
            LogicHOp(
                gate,
                in_a=0,
                in_b=0,
                out=reg,
                p_a=0,
                p_b=0,
                p_out=0,
                p_end=self.config.partitions - 1,
                p_step=1,
            )
        )

    def _emit_init_cell(self, reg: int, part: int, value: int) -> None:
        gate = GateType.INIT1 if value else GateType.INIT0
        self.emit(
            LogicHOp(
                gate, in_a=0, in_b=0, out=reg, p_a=0, p_b=0,
                p_out=part, p_end=part, p_step=1,
            )
        )

    def init_cell(self, cell: Cell, value: int) -> None:
        """Initialize a single cell (1 micro-op)."""
        self._emit_init_cell(cell[0], cell[1], value)

    def _check_read(self, *cells: Cell) -> None:
        if not self.guard:
            return
        for cell in cells:
            if cell in self._freed_guard:
                raise GateError(f"read of freed cell {cell}")

    # ------------------------------------------------------------------
    # Primitive gates (functional outputs allocate scratch)
    # ------------------------------------------------------------------
    def nor_into(self, a: Cell, b: Cell, out: Cell) -> None:
        """``out &= NOR(a, b)`` — out must be freshly initialized to 1."""
        self._check_read(a, b)
        if out == a or out == b:
            raise GateError("gate output must differ from its inputs")
        if a == b:
            self.not_into(a, out)
            return
        (reg_a, p_a), (reg_b, p_b) = a, b
        if p_a > p_b:
            (reg_a, p_a), (reg_b, p_b) = (reg_b, p_b), (reg_a, p_a)
        self.emit(
            LogicHOp(
                GateType.NOR,
                in_a=reg_a, in_b=reg_b, out=out[0],
                p_a=p_a, p_b=p_b, p_out=out[1], p_end=out[1], p_step=1,
            )
        )

    def not_into(self, a: Cell, out: Cell) -> None:
        """``out &= NOT(a)`` — out must be freshly initialized to 1."""
        self._check_read(a)
        if out == a:
            raise GateError("gate output must differ from its input")
        self.emit(
            LogicHOp(
                GateType.NOT,
                in_a=a[0], in_b=a[0], out=out[0],
                p_a=a[1], p_b=a[1], p_out=out[1], p_end=out[1], p_step=1,
            )
        )

    def nor(self, a: Cell, b: Cell) -> Cell:
        """NOR of two cells into a fresh scratch cell."""
        out = self.alloc()
        self.nor_into(a, b, out)
        return out

    def not_(self, a: Cell) -> Cell:
        """NOT of a cell into a fresh scratch cell."""
        out = self.alloc()
        self.not_into(a, out)
        return out

    # ------------------------------------------------------------------
    # Derived gates
    # ------------------------------------------------------------------
    def or_(self, a: Cell, b: Cell) -> Cell:
        """OR — NOR followed by NOT (2 gates)."""
        t = self.nor(a, b)
        out = self.not_(t)
        self.free(t)
        return out

    def and_(self, a: Cell, b: Cell) -> Cell:
        """AND — NOR of the complements (3 gates)."""
        na, nb = self.not_(a), self.not_(b)
        out = self.nor(na, nb)
        self.free_bits([na, nb])
        return out

    def xnor(self, a: Cell, b: Cell) -> Cell:
        """XNOR — the classic 4-NOR network."""
        n1 = self.nor(a, b)
        n2 = self.nor(a, n1)
        n3 = self.nor(b, n1)
        out = self.nor(n2, n3)
        self.free_bits([n1, n2, n3])
        return out

    def xor(self, a: Cell, b: Cell) -> Cell:
        """XOR — XNOR plus an inverter (5 gates)."""
        t = self.xnor(a, b)
        out = self.not_(t)
        self.free(t)
        return out

    def mux(self, cond: Cell, if_true: Cell, if_false: Cell) -> Cell:
        """``cond ? if_true : if_false`` — NOR(NOR(a, ~c), NOR(b, c))."""
        nc = self.not_(cond)
        t1 = self.nor(if_true, nc)
        t2 = self.nor(if_false, cond)
        out = self.nor(t1, t2)
        self.free_bits([nc, t1, t2])
        return out

    def copy(self, a: Cell) -> Cell:
        """Copy a cell's value into a fresh scratch cell (2 NOT gates)."""
        t = self.not_(a)
        out = self.not_(t)
        self.free(t)
        return out

    def copy_into(self, a: Cell, out: Cell) -> None:
        """Copy a cell's value into a freshly-initialized target cell."""
        t = self.not_(a)
        self.not_into(t, out)
        self.free(t)

    def full_adder(self, a: Cell, b: Cell, cin: Cell) -> Tuple[Cell, Cell]:
        """The 9-NOR full adder of AritPIM; returns ``(sum, carry_out)``."""
        n1 = self.nor(a, b)
        n2 = self.nor(a, n1)
        n3 = self.nor(b, n1)
        n4 = self.nor(n2, n3)  # XNOR(a, b)
        n5 = self.nor(n4, cin)
        n6 = self.nor(n4, n5)
        n7 = self.nor(cin, n5)
        total = self.nor(n6, n7)  # XNOR(XNOR(a, b), cin) = sum
        cout = self.nor(n1, n5)
        self.free_bits([n1, n2, n3, n4, n5, n6, n7])
        return total, cout

    # ------------------------------------------------------------------
    # Destination-register helpers
    # ------------------------------------------------------------------
    def register_cells(self, reg: int) -> List[Cell]:
        """The LSB-first cell vector of a data register (read-only view)."""
        return [(reg, part) for part in range(self.config.partitions)]

    def write_register(self, cells: List[Cell], dest_reg: int) -> None:
        """Materialize a computed bit vector into a destination register.

        Bulk-initializes the destination column, then copies each bit with
        two NOT gates. Alias-safe: source cells living in the destination
        register are staged through scratch copies first.
        """
        if len(cells) != self.config.partitions:
            raise GateError(
                f"need {self.config.partitions} bits, got {len(cells)}"
            )
        staged = []
        sources = []
        for cell in cells:
            if cell[0] == dest_reg:
                copy = self.copy(cell)
                staged.append(copy)
                sources.append(copy)
            else:
                sources.append(cell)
        self.init_column(dest_reg, 1)
        for part, cell in enumerate(sources):
            self.copy_into(cell, (dest_reg, part))
        self.free_bits(staged)

    def not_column(self, src_reg: int, dst_reg: int) -> None:
        """Partition-parallel NOT of a whole register (1 micro-op).

        The N concurrent gates each stay within their own partition, so the
        sections are trivially disjoint.
        """
        if src_reg == dst_reg:
            raise GateError("parallel NOT output must differ from its input")
        self.emit(
            LogicHOp(
                GateType.NOT,
                in_a=src_reg, in_b=src_reg, out=dst_reg,
                p_a=0, p_b=0, p_out=0,
                p_end=self.config.partitions - 1, p_step=1,
            )
        )
