"""Driver-throughput measurement (Section VI-B, Figure 13 third series).

Replicates the paper's methodology: micro-operations are rerouted to a
memory buffer instead of the simulator (see :class:`BufferSink`), so the
elapsed time is purely the cost of the host driver generating them. The
derived quantity is the maximal PIM micro-op consumption rate the driver
can sustain; the chip consumes one micro-op per cycle at ``frequency_hz``,
so ``micro_ops_per_second / frequency_hz`` is the headroom factor ("the
host driver is not a bottleneck" when it exceeds 1).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional

from repro.arch.config import PIMConfig
from repro.driver.driver import BufferSink, Driver
from repro.isa.dtypes import DType
from repro.isa.instructions import ARITY, RInstr, ROp


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of a driver-throughput run.

    ``emit`` records the emission path the run measured (``"macro"``:
    per-macro ``Driver.execute`` dispatch; ``"stream"``: whole-stream
    plans via ``Driver.execute_stream``), and ``plan_hits`` /
    ``plan_misses`` are the stream-tier cache counters accumulated
    during the timed loop — a warm stream run should show only hits, so
    cold/warm attribution stays honest.
    """

    macro_instructions: int
    micro_ops: int
    seconds: float
    frequency_hz: float
    emit: str = "macro"
    plan_hits: int = 0
    plan_misses: int = 0

    @property
    def macro_per_second(self) -> float:
        return self.macro_instructions / self.seconds

    @property
    def micro_per_second(self) -> float:
        return self.micro_ops / self.seconds

    @property
    def headroom(self) -> float:
        """How many times faster than the chip's consumption rate."""
        return self.micro_per_second / self.frequency_hz

    @property
    def ops_per_macro(self) -> float:
        """Micro-operations emitted per macro-instruction."""
        return self.micro_ops / max(self.macro_instructions, 1)

    @property
    def emit_seconds_per_macro(self) -> float:
        """Host time spent emitting one macro-instruction's stream."""
        return self.seconds / max(self.macro_instructions, 1)

    @property
    def chip_seconds_per_macro(self) -> float:
        """Time the chip needs to consume one macro's micro-ops."""
        return self.ops_per_macro / self.frequency_hz


@dataclass(frozen=True)
class EmissionBreakdown:
    """Per-op-type attribution of the driver-throughput headroom.

    Separates the two candidate bottlenecks behind a sub-1x headroom
    figure: *gate building* (lowering a macro-instruction into its
    micro-op body — paid once per distinct instruction, then cached)
    versus *emission* (the steady-state per-macro cost of shipping the
    cached, pre-encoded stream). ``ops_per_macro`` converts both into a
    comparison against the chip's consumption rate: a short body (e.g.
    the parallel int adder) gives the chip only nanoseconds of work per
    macro, so even a microsecond of fixed per-macro host dispatch caps
    headroom — that is an emission (dispatch-overhead) limit, not a
    gate-building one.
    """

    steady: ThroughputResult
    build_seconds_per_macro: float

    @property
    def ops_per_macro(self) -> float:
        return self.steady.ops_per_macro

    @property
    def plan_counters(self) -> str:
        """The steady run's stream-plan cache traffic, for reports.

        A warm whole-stream measurement must be all hits ("N hits / 0
        misses"); misses in the steady loop would mean the attribution
        is charging plan compilation to emission.
        """
        return (
            f"{self.steady.plan_hits} hits / {self.steady.plan_misses} misses"
        )

    @property
    def cold_headroom(self) -> float:
        """Headroom if every macro paid gate building (cache disabled)."""
        return self.steady.chip_seconds_per_macro / (
            self.build_seconds_per_macro + self.steady.emit_seconds_per_macro
        )

    @property
    def bottleneck(self) -> str:
        """Which stage caps headroom, from the two measured costs.

        A warm cache removes gate building from the steady state
        entirely, so a sub-1x steady headroom is an emission-dispatch
        limit by construction; gate building is the limit only for the
        cold stream (before the cache warms), which
        :attr:`cold_headroom` measures.
        """
        if self.steady.headroom >= 1.0:
            if self.cold_headroom < 1.0:
                return "gate building, until the cache warms"
            return "none (driver outpaces the chip)"
        return "per-macro emission dispatch"


def measure_gate_build_cost(
    config: PIMConfig,
    op: ROp,
    dtype: DType,
    samples: int = 24,
    seed: int = 0,
    parallelism: str = "parallel",
) -> float:
    """Seconds to *build* one macro's micro-op body, uncached.

    Times the driver's gate-building path (:meth:`Driver._rtype_program`
    with the program cache disabled) over ``samples`` distinct register
    tuples — the one-time cost the compiled-sequence cache amortizes
    away, reported so headroom gaps can be attributed to building versus
    emission.
    """
    sink = BufferSink(config, capacity=1)
    driver = Driver(sink, config=config, parallelism=parallelism, cache_size=0)
    rng = random.Random(seed)
    user = config.user_registers
    arity = ARITY[op]
    pool = []
    for _ in range(max(1, samples)):
        regs = [rng.randrange(user) for _ in range(1 + arity)]
        pool.append(
            RInstr(
                op,
                dtype,
                dest=regs[0],
                src_a=regs[1],
                src_b=regs[2] if arity >= 2 else None,
                src_c=regs[3] if arity >= 3 else None,
            )
        )
    driver._rtype_program(pool[0])  # warm imports/halfgate tables
    start = time.perf_counter()
    for instr in pool:
        driver._rtype_program(instr)
    return (time.perf_counter() - start) / len(pool)


def measure_driver_throughput(
    config: PIMConfig,
    op: ROp,
    dtype: DType,
    iterations: int = 10_000,
    use_cache: bool = True,
    seed: int = 0,
    parallelism: str = "parallel",
    buffer_capacity: int = 100_000,
    unique_sequences: int = 64,
    warmup: bool = True,
    emit: Optional[str] = None,
    stream_len: int = 0,
) -> ThroughputResult:
    """Time the generation of ``iterations`` random macro-instructions.

    Register operands are drawn at random from the user registers (like the
    paper's ``rand() % 32`` benchmark loop). ``unique_sequences`` bounds
    how many distinct register tuples appear — real instruction streams
    reuse a small working set of tuples, which is what makes the compiled-
    sequence cache effective; pass ``iterations`` to make every tuple
    fresh (the cold-cache ablation).

    With ``stream_len > 1`` the instructions are grouped into
    ``stream_len``-macro streams emitted via ``Driver.execute_stream``
    (several distinct stream tuples rotate, so the plan cache holds more
    than one entry); ``emit`` then selects the emission mode the driver
    runs under (``"stream"`` measures fused-plan dispatch, ``"macro"``
    measures the per-macro fallback through the same entry point).
    The default (``stream_len=0``) is the legacy per-``execute`` loop.
    """
    from repro.driver.stream import MacroStream

    sink = BufferSink(config, capacity=buffer_capacity)
    driver = Driver(
        sink, config=config,
        parallelism=parallelism,
        cache_size=4096 if use_cache else 0,
        emit_mode=emit,
    )
    rng = random.Random(seed)
    user = config.user_registers
    arity = ARITY[op]

    pool = []
    for _ in range(max(1, unique_sequences)):
        regs = [rng.randrange(user) for _ in range(1 + arity)]
        pool.append(
            RInstr(
                op,
                dtype,
                dest=regs[0],
                src_a=regs[1],
                src_b=regs[2] if arity >= 2 else None,
                src_c=regs[3] if arity >= 3 else None,
            )
        )

    if stream_len > 1:
        # Whole-stream emission: a handful of distinct stream tuples
        # (rotated offsets into the instruction pool) emitted repeatedly,
        # like a host loop dispatching the same compiled kernels.
        count = max(1, min(8, iterations // stream_len))
        streams = [
            MacroStream(
                pool[(7 * index + position) % len(pool)]
                for position in range(stream_len)
            )
            for index in range(count)
        ]
        loops = max(1, iterations // stream_len)
        if use_cache and warmup:
            for stream in streams:
                driver.execute_stream(stream)
        counted_before = sink.count
        hits_before = driver.streams.hits
        misses_before = driver.streams.misses

        start = time.perf_counter()
        for index in range(loops):
            driver.execute_stream(streams[index % count])
        elapsed = time.perf_counter() - start
        return ThroughputResult(
            macro_instructions=loops * stream_len,
            micro_ops=sink.count - counted_before,
            seconds=max(elapsed, 1e-9),
            frequency_hz=config.frequency_hz,
            emit=driver.emit_mode,
            plan_hits=driver.streams.hits - hits_before,
            plan_misses=driver.streams.misses - misses_before,
        )

    instructions = [pool[i % len(pool)] for i in range(iterations)]

    if use_cache and warmup:
        # Populate the compiled-sequence cache before timing, so the
        # measurement reflects the steady state (the paper amortizes the
        # one-time lowering over 10M-instruction loops).
        for instr in pool:
            driver.execute(instr)
    counted_before = sink.count

    start = time.perf_counter()
    for instr in instructions:
        driver.execute(instr)
    elapsed = time.perf_counter() - start
    return ThroughputResult(
        macro_instructions=iterations,
        micro_ops=sink.count - counted_before,
        seconds=max(elapsed, 1e-9),
        frequency_hz=config.frequency_hz,
    )
