"""Driver-throughput measurement (Section VI-B, Figure 13 third series).

Replicates the paper's methodology: micro-operations are rerouted to a
memory buffer instead of the simulator (see :class:`BufferSink`), so the
elapsed time is purely the cost of the host driver generating them. The
derived quantity is the maximal PIM micro-op consumption rate the driver
can sustain; the chip consumes one micro-op per cycle at ``frequency_hz``,
so ``micro_ops_per_second / frequency_hz`` is the headroom factor ("the
host driver is not a bottleneck" when it exceeds 1).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional

from repro.arch.config import PIMConfig
from repro.driver.driver import BufferSink, Driver
from repro.isa.dtypes import DType
from repro.isa.instructions import ARITY, RInstr, ROp


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of a driver-throughput run."""

    macro_instructions: int
    micro_ops: int
    seconds: float
    frequency_hz: float

    @property
    def macro_per_second(self) -> float:
        return self.macro_instructions / self.seconds

    @property
    def micro_per_second(self) -> float:
        return self.micro_ops / self.seconds

    @property
    def headroom(self) -> float:
        """How many times faster than the chip's consumption rate."""
        return self.micro_per_second / self.frequency_hz


def measure_driver_throughput(
    config: PIMConfig,
    op: ROp,
    dtype: DType,
    iterations: int = 10_000,
    use_cache: bool = True,
    seed: int = 0,
    parallelism: str = "parallel",
    buffer_capacity: int = 100_000,
    unique_sequences: int = 64,
    warmup: bool = True,
) -> ThroughputResult:
    """Time the generation of ``iterations`` random macro-instructions.

    Register operands are drawn at random from the user registers (like the
    paper's ``rand() % 32`` benchmark loop). ``unique_sequences`` bounds
    how many distinct register tuples appear — real instruction streams
    reuse a small working set of tuples, which is what makes the compiled-
    sequence cache effective; pass ``iterations`` to make every tuple
    fresh (the cold-cache ablation).
    """
    sink = BufferSink(config, capacity=buffer_capacity)
    driver = Driver(
        sink, config=config,
        parallelism=parallelism,
        cache_size=4096 if use_cache else 0,
    )
    rng = random.Random(seed)
    user = config.user_registers
    arity = ARITY[op]

    pool = []
    for _ in range(max(1, unique_sequences)):
        regs = [rng.randrange(user) for _ in range(1 + arity)]
        pool.append(
            RInstr(
                op,
                dtype,
                dest=regs[0],
                src_a=regs[1],
                src_b=regs[2] if arity >= 2 else None,
                src_c=regs[3] if arity >= 3 else None,
            )
        )
    instructions = [pool[i % len(pool)] for i in range(iterations)]

    if use_cache and warmup:
        # Populate the compiled-sequence cache before timing, so the
        # measurement reflects the steady state (the paper amortizes the
        # one-time lowering over 10M-instruction loops).
        for instr in pool:
            driver.execute(instr)
    counted_before = sink.count

    start = time.perf_counter()
    for instr in instructions:
        driver.execute(instr)
    elapsed = time.perf_counter() - start
    return ThroughputResult(
        macro_instructions=iterations,
        micro_ops=sink.count - counted_before,
        seconds=max(elapsed, 1e-9),
        frequency_hz=config.frequency_hz,
    )
