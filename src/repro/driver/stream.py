"""Whole-stream emission: macro-instruction streams as one cached plan.

The per-macro emission path (``Driver.execute``) pays a fixed Python
dispatch cost per macro-instruction — validation, cache lookup, mask
encoding, one or two chip calls.  For multi-thousand-cycle bodies that
cost vanishes into the chip's own consumption time, but the short
bit-parallel bodies (int add at ~185 micro-ops, comparisons at ~274)
leave the chip idle: the emission breakdown in
``results/driver_throughput.txt`` attributes their sub-1x headroom
entirely to per-macro dispatch.

This module is the fix: the *stream* — not the macro — becomes the unit
of emission.  A whole macro-instruction sequence is lowered once into a
single fused :class:`~repro.driver.program.MicroProgram` (splicing the
cached per-(op, dtype, operand-layout) bodies, with mask/region
resolution batched across the stream) and wrapped in a :class:`StreamPlan`
that fixes, at build time, the fastest dispatch route the chip supports.
Replaying the plan re-enters Python once per *stream*: one cache lookup,
one chip call.

Three pieces live here:

- :class:`MacroStream` — the stream IR handle: an immutable instruction
  tuple with a cached content hash, so steady-state plan lookups cost an
  identity check instead of re-hashing every instruction;
- :class:`StreamPlan` — a fused program plus its pre-resolved dispatch
  route (``execute_program`` replay, or pre-encoded ``execute_batch``
  word blocks);
- :func:`resolve_emit_mode` — the emission-mode selector, mirroring the
  replay-engine selection of :mod:`repro.sim.replay`: ``"stream"`` (the
  default) emits through plans, ``"macro"`` forces the legacy per-macro
  ladder (set ``REPRO_DRIVER_EMIT=macro``, or pass
  ``emit_mode="macro"`` to the driver / ``pim.init``).

Fallback ladder (each level bit-identical in memory and ``SimStats``):

1. **stream** — a supported plan exists: one fused program per stream,
   dispatched via ``execute_program`` or as one pre-encoded word block.
2. **macro** — no plan route (a chip without program/batch transport, a
   batch-only sink with in-stream reads whose responses it cannot
   return, a disabled cache) or ``emit_mode="macro"``: each macro goes
   through ``Driver.execute``'s own per-macro ladder.

The :attr:`Driver.emit_counters <repro.driver.driver.Driver.emit_counters>`
dict records which level served each stream; ``pim.Profiler`` snapshots
it as ``emit_counts``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.driver.program import MicroProgram
from repro.isa.instructions import Instruction, ReadInstr  # noqa: F401

#: Environment variable selecting the default emission mode.
EMIT_ENV = "REPRO_DRIVER_EMIT"

#: Recognized emission modes, strongest first.
EMIT_MODES = ("stream", "macro")


def resolve_emit_mode(requested: "str | None" = None) -> str:
    """Validate an emission mode, defaulting from ``REPRO_DRIVER_EMIT``."""
    mode = requested or os.environ.get(EMIT_ENV) or EMIT_MODES[0]
    if mode not in EMIT_MODES:
        source = "requested" if requested else f"${EMIT_ENV}"
        raise ValueError(
            f"unknown emission mode {mode!r} ({source}); "
            f"choose from {EMIT_MODES}"
        )
    return mode


class MacroStream(tuple):
    """An immutable macro-instruction sequence with a cached content hash.

    The stream-plan cache is keyed on the instruction tuple itself, so a
    naive lookup would re-hash every instruction dataclass on every
    emission.  A ``MacroStream`` computes that hash once and memoizes it;
    callers that hold on to the handle (the throughput harness, a host
    loop emitting the same stream repeatedly) then pay an identity
    comparison per lookup.  Equality stays tuple equality, so plain
    tuples and lists of the same instructions find the same cache entry.
    """

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = tuple.__hash__(self)
            self.__dict__["_hash"] = cached
        return cached

    @classmethod
    def wrap(cls, instructions) -> "MacroStream":
        """Adopt an existing handle, or freeze any instruction iterable."""
        if isinstance(instructions, cls):
            return instructions
        return cls(instructions)


@dataclass(frozen=True, eq=False)
class StreamPlan:
    """A fused emission plan: one program, one pre-resolved dispatch route.

    Attributes:
        program: the fused (unoptimized — cycle counts must match the
            per-macro ladder exactly) :class:`MicroProgram` of the whole
            stream.
        macros: number of macro-instructions the plan covers.
        reads: number of in-stream :class:`~repro.isa.instructions.ReadInstr`
            responses (replay returns the last one).
        route: ``"program"`` (chip ``execute_program`` replay) or
            ``"batch"`` (one pre-encoded ``execute_batch`` word block).
    """

    program: MicroProgram
    macros: int
    reads: int
    route: str

    def __len__(self) -> int:
        return len(self.program)


#: Cache sentinel for streams with no supported plan route, so the
#: unsupported verdict is cached instead of re-derived per emission.
UNSUPPORTED = object()


def plan_route(chip, reads: int) -> Optional[str]:
    """The fastest whole-stream dispatch route ``chip`` supports.

    ``execute_program`` replay handles everything (including in-stream
    reads — replay returns the last response).  Batch-only sinks ship one
    pre-encoded word block, but cannot return read responses
    (``execute_batch`` has no return channel), so streams containing
    reads are unsupported there.  Chips exposing only ``execute`` gain
    nothing from a fused plan — per-op dispatch dominates either way —
    and fall back to the per-macro ladder.
    """
    if chip is None:
        return None
    if hasattr(chip, "execute_program"):
        return "program"
    if hasattr(chip, "execute_batch") and reads == 0:
        return "batch"
    return None


def build_plan(driver, instructions, name: str = "stream") -> Optional[StreamPlan]:
    """Compile a macro stream into a :class:`StreamPlan`, or ``None``.

    ``None`` means no supported dispatch route exists for this chip and
    stream shape (see :func:`plan_route`); the caller falls back to
    per-macro emission.  The fused program is compiled *unoptimized*: a
    plan must be bit-identical to the per-macro ladder in both memory
    effects and cycle accounting, and the peephole passes trade cycles
    for a different (if state-equivalent) stream.
    """
    instrs = MacroStream.wrap(instructions)
    reads = sum(1 for instr in instrs if isinstance(instr, ReadInstr))
    route = plan_route(driver.chip, reads)
    if route is None:
        return None
    program = driver.compile(instrs, name=name, optimize=False)
    return StreamPlan(program=program, macros=len(instrs), reads=reads, route=route)
