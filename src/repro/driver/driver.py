"""The host driver: macro-instructions in, micro-operations out.

The driver is the software replacement for the on-chip controllers of
previous works (Section V-B): it lowers each ISA macro-instruction into the
stateful-logic micro-operation sequence of the microarchitecture and
forwards the stream to the chip (the simulator, or any sink implementing
``execute``).

Because lowering is deterministic in the register operands, the driver
keeps a *program cache*: the micro-op body of an R-type instruction is
compiled once per (op, dtype, operand layout, config fingerprint) into an
immutable :class:`~repro.driver.program.MicroProgram` and replayed on
later calls with fresh mask operations prepended. This is what makes the
Python driver fast enough to outpace the PIM chip's consumption rate (the
claim benchmarked in ``benchmarks/test_driver_throughput.py``).

Replay takes the fastest route the chip supports: pre-encoded 64-bit word
blocks for batch sinks (``execute_batch``), pre-validated program replay
for the simulator (``execute_program``, skipping per-op dispatch and
validation — see ``benchmarks/test_compile_cache.py``), or op-by-op
``execute`` otherwise. Multi-instruction streams can additionally be
recorded and peephole-optimized with :meth:`Driver.compile` /
:meth:`Driver.run_program` (see :mod:`repro.driver.compiler`).
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.arch.config import PIMConfig
from repro.arch.masks import RangeMask
from repro.arch.micro_ops import (
    CrossbarMaskOp,
    GateType,
    LogicHOp,
    LogicVOp,
    MicroOp,
    MoveOp,
    ReadOp,
    RowMaskOp,
    WriteOp,
    encode,
)
from repro.driver import fixed, floating, parallel
from repro.driver.compiler import CompileError, compile_ops, validate_ops
from repro.driver.gates import GateBuilder
from repro.driver.persist import PersistentProgramCache, resolve_cache_dir
from repro.driver.program import MicroProgram, ProgramCache, config_fingerprint
from repro.driver.stream import (
    UNSUPPORTED,
    MacroStream,
    build_plan,
    resolve_emit_mode,
)
from repro.isa.instructions import (
    Instruction,
    MoveInstr,
    ReadInstr,
    RInstr,
    ROp,
    WriteInstr,
    validate,
)


#: Default LRU capacity of each program-cache tier.
DEFAULT_CACHE_SIZE = 4096

#: Environment variable overriding the default cache capacity.
CACHE_SIZE_ENV = "REPRO_CACHE_SIZE"


def resolve_cache_size(requested: Optional[int] = None) -> int:
    """The effective per-tier LRU capacity.

    Explicit ``cache_size=`` wins; otherwise ``REPRO_CACHE_SIZE`` (an
    unparsable value falls back to the default rather than erroring —
    cache sizing must never take the session down); otherwise
    :data:`DEFAULT_CACHE_SIZE`. Zero disables caching entirely.
    """
    if requested is not None:
        return int(requested)
    raw = os.environ.get(CACHE_SIZE_ENV)
    if raw:
        try:
            return int(raw)
        except ValueError:
            pass
    return DEFAULT_CACHE_SIZE


class BufferSink:
    """A chip stand-in that encodes micro-ops into a bounded ring buffer.

    Mirrors the paper's driver-throughput methodology (artifact appendix):
    micro-operations are rerouted to a memory buffer instead of the
    simulator, so the measured time is purely the host's generation cost.
    Exposes :meth:`execute_batch` so the driver can DMA pre-encoded cached
    sequences instead of re-encoding them operation by operation.
    """

    def __init__(self, config: PIMConfig, capacity: int = 100_000):
        import numpy as np

        self.config = config
        self.buffer = np.zeros(capacity, dtype=np.uint64)
        self.count = 0

    def execute(self, op: MicroOp) -> Optional[int]:
        self.buffer[self.count % len(self.buffer)] = encode(op, self.config.word_size)
        self.count += 1
        if isinstance(op, ReadOp):
            return 0
        return None

    def execute_batch(self, words) -> None:
        """Copy a pre-encoded operation block into the ring buffer."""
        capacity = len(self.buffer)
        size = len(words)
        start = self.count % capacity
        take = min(size, capacity - start)
        self.buffer[start : start + take] = words[:take]
        if take < size:
            rest = min(size - take, capacity)
            self.buffer[:rest] = words[size - rest : size]
        self.count += size


class Driver:
    """Translates macro-instructions into micro-operations (Section V-B).

    Args:
        chip: the micro-op consumer (a :class:`repro.sim.Simulator` or a
            :class:`BufferSink`); must expose ``execute(op)``.
        config: architecture parameters (defaults to the chip's config).
        parallelism: ``"parallel"`` uses the partition-based fast paths for
            addition/subtraction and bitwise operations (the paper's
            configuration); ``"serial"`` forces the bit-serial suite
            everywhere (the parallelism ablation).
        cache_size: maximum number of compiled R-type bodies to retain
            (the stream-plan tier is bounded by the same size). Defaults
            from ``REPRO_CACHE_SIZE`` when unset (else 4096); evictions
            beyond the bound are counted per tier and surfaced via
            ``Backend.cache_counters()``.
        cache_dir: directory for the cross-session persistent program
            store (see :mod:`repro.driver.persist`): compiled bodies and
            fused streams are written through and restored on later
            sessions' misses, skipping gate building entirely. Defaults
            from ``REPRO_CACHE_DIR``; ``None`` (and no env var) keeps
            the cache in-memory only.
        guard: enable gate-level lifetime checking (slow; for tests).
        emit_mode: ``"stream"`` (default) lets :meth:`execute_stream`
            emit whole macro streams through fused cached plans;
            ``"macro"`` forces the legacy per-macro ladder everywhere
            (also selectable via ``REPRO_DRIVER_EMIT``, see
            :mod:`repro.driver.stream`).
    """

    #: The two scratch registers used as staging columns by move lowering.
    _MOVE_STAGE = 2

    def __init__(
        self,
        chip,
        config: Optional[PIMConfig] = None,
        parallelism: str = "parallel",
        cache_size: Optional[int] = None,
        guard: bool = False,
        emit_mode: Optional[str] = None,
        cache_dir: Optional[str] = None,
    ):
        if parallelism not in ("parallel", "serial"):
            raise ValueError("parallelism must be 'parallel' or 'serial'")
        self.chip = chip
        self.config = config if config is not None else chip.config
        self.parallelism = parallelism
        self.guard = guard
        self.emit_mode = resolve_emit_mode(emit_mode)
        cache_size = resolve_cache_size(cache_size)
        self.cache_enabled = cache_size > 0
        self.cache_dir = resolve_cache_dir(cache_dir)
        #: The durable cross-session tier (``None`` when no cache
        #: directory is configured); shared by both in-memory tiers.
        self.persist: Optional[PersistentProgramCache] = (
            PersistentProgramCache(self.cache_dir, self.config)
            if self.cache_dir is not None
            else None
        )
        self.programs = ProgramCache(maxsize=cache_size, store=self.persist)
        #: The stream tier: fused multi-instruction programs and
        #: :class:`~repro.driver.stream.StreamPlan`\ s, keyed on the
        #: instruction-tuple signature plus everything lowering depends
        #: on. Separate from :attr:`programs` (the per-R-type body tier)
        #: so body-cache hit rates stay meaningful.
        self.streams = ProgramCache(maxsize=cache_size, store=self.persist)
        # The config is fixed for the driver's lifetime; hoist the
        # fingerprint out of the per-instruction cache-key path.
        self._fingerprint = config_fingerprint(self.config)
        self._mask_cache: Dict[Tuple, "object"] = {}
        self._mask_op_cache: Dict[Tuple, Tuple[MicroOp, MicroOp]] = {}
        self.macro_count = 0
        self.micro_count = 0
        #: Streams served per emission level (see the fallback ladder in
        #: :mod:`repro.driver.stream`): ``"stream"`` counts fused-plan
        #: emissions, ``"macro"`` counts per-macro fallbacks.
        self.emit_counters: Dict[str, int] = {"stream": 0, "macro": 0}
        #: Installed :class:`repro.faults.FaultOverlay` (``None`` = no
        #: faults). Ticked once per dispatch unit — after each macro
        #: ``execute``, fused-stream emission, or program replay — so
        #: every replay engine observes identical fault behaviour.
        self.faults = None
        #: ``verify="checksum"`` accounting (replays checked / corrupted
        #: replays caught), surfaced via ``Backend.fault_counters()``.
        self.verify_checks = 0
        self.verify_detected = 0

    @property
    def cache_hits(self) -> int:
        """Program-cache hits — read-only view of ``programs.hits``.

        Unlike ``macro_count``/``micro_count`` this cannot be reset by
        assignment; reset or snapshot the :attr:`programs` counters
        directly (``pim.Profiler`` takes the snapshot approach).
        """
        return self.programs.hits

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def execute(self, instr: Instruction) -> Optional[int]:
        """Lower one macro-instruction and forward it to the chip.

        Returns the read word for :class:`ReadInstr`, otherwise ``None``.
        When the chip supports batched transfer (``execute_batch``, e.g.
        :class:`BufferSink`), cached R-type bodies are shipped as
        pre-encoded 64-bit word blocks — the DMA-style path a production
        host driver uses, and what the throughput benchmark measures.
        """
        if isinstance(instr, RInstr):
            if hasattr(self.chip, "execute_batch"):
                response = self._execute_rtype_batched(instr)
            elif self.cache_enabled and hasattr(self.chip, "execute_program"):
                response = self._execute_rtype_program(instr)
            else:
                response = self._execute_lowered(instr)
        else:
            response = self._execute_lowered(instr)
        if self.faults is not None:
            self.faults.tick()
        return response

    def _execute_lowered(self, instr: Instruction) -> Optional[int]:
        """The uncached path: lower and forward op-by-op."""
        ops = self.lower(instr)
        response: Optional[int] = None
        for op in ops:
            result = self.chip.execute(op)
            if result is not None:
                response = result
        return response

    # ------------------------------------------------------------------
    # Compiled-program paths
    # ------------------------------------------------------------------
    def _rtype_key(self, instr: RInstr) -> Tuple:
        """The program-cache key: everything body lowering depends on."""
        return (
            instr.op,
            instr.dtype.name,
            instr.dest,
            instr.sources(),
            self.parallelism,
            self._fingerprint,
        )

    def _rtype_program(self, instr: RInstr) -> MicroProgram:
        """The compiled body program of an R-type instruction (cached).

        The body excludes the two leading mask operations (which vary per
        call); it is validated once at compile time and preserved verbatim
        (``optimize=False``) so cycle counts match uncached lowering.
        """
        if self.cache_enabled:
            key = self._rtype_key(instr)
            program = self.programs.get(key)
            if program is not None:
                return program
        builder, ops = GateBuilder.recording(self.config, guard=self.guard)
        self._build_rtype(builder, instr)
        # The builder's output is valid by construction; skip per-op
        # validation so the uncached path pays no new per-call cost.
        program = compile_ops(
            ops,
            self.config,
            name=f"{instr.op.value}.{instr.dtype.name}",
            optimize=False,
            validate=False,
        )
        if self.cache_enabled:
            self.programs.put(key, program)
        return program

    def _execute_rtype_program(self, instr: RInstr) -> None:
        """Replay path: masks op-by-op, then the pre-validated body."""
        validate(instr, self.config.registers)
        self.macro_count += 1
        program = self._rtype_program(instr)
        mask_ops = self._mask_ops(instr.warp_mask, instr.row_mask)
        for op in mask_ops:
            self.chip.execute(op)
        self.chip.execute_program(program)
        self.micro_count += len(mask_ops) + len(program)

    def _execute_rtype_batched(self, instr: RInstr) -> None:
        import numpy as np

        validate(instr, self.config.registers)
        self.macro_count += 1
        words = self._rtype_program(instr).encoded(self.config.word_size)

        mask_key = (instr.warp_mask, instr.row_mask)
        mask_words = self._mask_cache.get(mask_key)
        if mask_words is None:
            mask_words = np.array(
                [
                    encode(op, self.config.word_size)
                    for op in self._mask_ops(instr.warp_mask, instr.row_mask)
                ],
                dtype=np.uint64,
            )
            if len(self._mask_cache) < 4096:
                self._mask_cache[mask_key] = mask_words
        self.chip.execute_batch(mask_words)
        self.chip.execute_batch(words)
        self.micro_count += len(words) + len(mask_words)

    def lower(self, instr: Instruction) -> List[MicroOp]:
        """Produce the full micro-operation sequence for an instruction."""
        validate(instr, self.config.registers)
        self.macro_count += 1
        ops = self._lower_ops(instr)
        self.micro_count += len(ops)
        return ops

    def _lower_ops(self, instr: Instruction) -> List[MicroOp]:
        """Lowering without validation or counter updates (shared core)."""
        if isinstance(instr, RInstr):
            return self._lower_rtype(instr)
        if isinstance(instr, MoveInstr):
            return self._lower_move(instr)
        if isinstance(instr, ReadInstr):
            return self._lower_read(instr)
        if isinstance(instr, WriteInstr):
            return self._lower_write(instr)
        raise TypeError(f"not an instruction: {instr!r}")

    def compile(
        self,
        instructions: List[Instruction],
        name: str = "stream",
        optimize: bool = True,
        emit: Optional[str] = None,
    ) -> MicroProgram:
        """Record a macro-instruction sequence into one compiled program.

        Each instruction is lowered exactly as :meth:`execute` would, the
        streams are concatenated, and the result is validated and (by
        default) peephole-optimized: redundant mask changes between
        consecutive instructions are coalesced and provably-redundant
        ``INIT1`` cycles are eliminated (see :mod:`repro.driver.compiler`).
        The optimized program produces a bit-identical memory state in
        fewer cycles; replay it with :meth:`run_program`.

        Under the default ``"stream"`` emission mode the lowering is
        *spliced*: cached per-R-type bodies (valid by construction, never
        re-validated) are stitched between cached mask preambles, so the
        per-macro cost is a cache lookup plus a list extend instead of a
        full re-lowering and per-op validation pass. ``emit="macro"``
        (or the driver-wide mode) selects the legacy per-macro lowering
        with full stream validation; both produce identical programs.

        Compiled streams are cached in :attr:`streams` (the stream tier),
        keyed on the exact instruction sequence, the profiling ``name``,
        *and the full lowering configuration* (the ``optimize`` flag, the
        emission mode, the parallelism mode, and the config fingerprint):
        recompiling the same stream is a cache hit, and switching any of
        those mid-session can never replay a stale program compiled
        under different flags.
        """
        instrs = MacroStream.wrap(instructions)
        mode = resolve_emit_mode(emit) if emit is not None else self.emit_mode
        key = None
        if self.cache_enabled:
            key = ("stream", instrs, name, bool(optimize), mode,
                   self.parallelism, self._fingerprint)
            cached = self.streams.get(key)
            if cached is not None:
                return cached
        if mode == "stream":
            program = self._compile_spliced(instrs, name, optimize)
        else:
            ops: List[MicroOp] = []
            for instr in instrs:
                validate(instr, self.config.registers)
                ops.extend(self._lower_ops(instr))
            program = compile_ops(ops, self.config, name=name, optimize=optimize)
        program = replace(program, macros=len(instrs))
        if key is not None:
            self.streams.put(key, program)
        return program

    def _compile_spliced(
        self, instrs: Tuple[Instruction, ...], name: str, optimize: bool
    ) -> MicroProgram:
        """Splice cached bodies between cached mask preambles (no re-walk).

        R-type bodies come pre-validated from the body cache; only their
        mask preambles need range checks here (the single check the full
        validation pass would add for them). The short non-R lowerings
        (moves, reads, writes) are validated op-by-op as before.
        """
        registers = self.config.registers
        ops: List[MicroOp] = []
        for instr in instrs:
            validate(instr, registers)
            if isinstance(instr, RInstr):
                self._check_instr_masks(instr.warp_mask, instr.row_mask)
                ops.extend(self._mask_ops(instr.warp_mask, instr.row_mask))
                ops.extend(self._rtype_program(instr).ops)
            else:
                lowered = self._lower_ops(instr)
                validate_ops(lowered, self.config)
                ops.extend(lowered)
        return compile_ops(
            ops, self.config, name=name, optimize=optimize, validate=False
        )

    def _check_instr_masks(
        self, warp_mask: Optional[RangeMask], row_mask: Optional[RangeMask]
    ) -> None:
        """The mask-range checks full validation would apply (spliced path)."""
        if warp_mask is not None and warp_mask.stop >= self.config.crossbars:
            raise CompileError("crossbar mask out of range")
        if row_mask is not None and row_mask.stop >= self.config.rows:
            raise CompileError("row mask out of range")

    def execute_stream(
        self, instructions, name: str = "stream"
    ) -> Optional[int]:
        """Emit a whole macro-instruction stream as one dispatch unit.

        Under the default ``"stream"`` emission mode the stream is fused
        into a cached :class:`~repro.driver.stream.StreamPlan` (see
        :mod:`repro.driver.stream`) and dispatched with a single chip
        call — ``execute_program`` replay, or one pre-encoded
        ``execute_batch`` word block.  Streams without a supported plan
        route (and everything under ``emit_mode="macro"`` or a disabled
        cache) fall back to per-macro :meth:`execute`, bit-identically.
        Returns the last read response, like a per-macro loop would.
        """
        instrs = MacroStream.wrap(instructions)
        if not instrs:
            return None
        if self.emit_mode == "stream" and self.cache_enabled:
            key = ("plan", instrs, name, self.parallelism, self._fingerprint)
            plan = self.streams.get(key)
            if plan is None:
                plan = build_plan(self, instrs, name=name) or UNSUPPORTED
                self.streams.put(key, plan)
            if plan is not UNSUPPORTED:
                self.emit_counters["stream"] += 1
                self.macro_count += plan.macros
                self.micro_count += len(plan.program)
                if plan.route == "program":
                    response = self.chip.execute_program(plan.program)
                else:
                    self.chip.execute_batch(
                        plan.program.encoded(self.config.word_size)
                    )
                    response = None
                if self.faults is not None:
                    self.faults.tick()
                return response
        self.emit_counters["macro"] += 1
        response: Optional[int] = None
        for instr in instrs:
            result = self.execute(instr)
            if result is not None:
                response = result
        return response

    def run_program(
        self, program: MicroProgram, verify: Optional[str] = None
    ) -> Optional[int]:
        """Replay a compiled program on the chip.

        Uses the chip's ``execute_program`` fast path when available,
        then the DMA-style ``execute_batch`` word-block path (e.g.
        :class:`BufferSink`), falling back to op-by-op ``execute``.
        Returns the last read response (``None`` if the program contains
        no reads; batch sinks never respond).

        ``verify="checksum"`` checksums the program's statically-derived
        written regions across the post-replay fault window and raises
        :class:`repro.faults.ChecksumError` when injected faults
        corrupted any of them. The checksums are host-side reads of the
        DMA-visible word image, so verification changes no cycle count
        and no memory bit.
        """
        if verify is not None and verify != "checksum":
            raise ValueError(f"unknown verify mode {verify!r}")
        self.macro_count += program.macros
        self.micro_count += len(program)
        if hasattr(self.chip, "execute_program"):
            response = self.chip.execute_program(program)
        elif hasattr(self.chip, "execute_batch"):
            self.chip.execute_batch(program.encoded(self.config.word_size))
            response = None
        else:
            response = None
            for op in program:
                result = self.chip.execute(op)
                if result is not None:
                    response = result
        if verify is not None:
            self._verify_replay(program)
        elif self.faults is not None:
            self.faults.tick()
        return response

    def _verify_replay(self, program: MicroProgram) -> None:
        """Checksum the written regions across the post-op fault window."""
        from repro.faults.checksum import (
            ChecksumError,
            program_regions,
            region_checksums,
        )

        memory = getattr(self.chip, "memory", None)
        if memory is None:
            raise ValueError(
                "verify='checksum' requires a chip with a memory image"
            )
        regions = program_regions(program, self.config)
        self.verify_checks += 1
        before = region_checksums(memory.words, regions)
        if self.faults is not None:
            self.faults.tick()
        after = region_checksums(memory.words, regions)
        if after != before:
            self.verify_detected += 1
            bad = tuple(
                region
                for region, b, a in zip(regions, before, after)
                if b != a
            )
            raise ChecksumError(program.name, bad)

    # ------------------------------------------------------------------
    # Masks
    # ------------------------------------------------------------------
    def _mask_ops(
        self, warp_mask: Optional[RangeMask], row_mask: Optional[RangeMask]
    ) -> List[MicroOp]:
        """The two-mask preamble of an instruction, built once per pair.

        Mask resolution (the ``None`` → full-range defaulting and the
        range arithmetic) is cached per distinct ``(warp, row)`` pair, so
        splicing a long stream re-resolves each address pattern once —
        not once per macro.  The cached ops are immutable; a fresh list
        is returned because callers concatenate.
        """
        key = (warp_mask, row_mask)
        cached = self._mask_op_cache.get(key)
        if cached is None:
            warps = warp_mask or RangeMask.all(self.config.crossbars)
            rows = row_mask or RangeMask.all(self.config.rows)
            cached = (
                CrossbarMaskOp(warps.start, warps.stop, warps.step),
                RowMaskOp(rows.start, rows.stop, rows.step),
            )
            if len(self._mask_op_cache) < 4096:
                self._mask_op_cache[key] = cached
        return list(cached)

    # ------------------------------------------------------------------
    # R-type
    # ------------------------------------------------------------------
    def _lower_rtype(self, instr: RInstr) -> List[MicroOp]:
        body = self._rtype_program(instr)
        return self._mask_ops(instr.warp_mask, instr.row_mask) + list(body.ops)

    def _build_rtype(self, gb: GateBuilder, instr: RInstr) -> None:
        op, dest = instr.op, instr.dest
        a, b, c = instr.src_a, instr.src_b, instr.src_c
        is_float = instr.dtype.is_float
        use_parallel = self.parallelism == "parallel"

        if op in (ROp.BIT_NOT, ROp.BIT_AND, ROp.BIT_OR, ROp.BIT_XOR):
            if use_parallel:
                parallel.lower_bitwise_parallel(gb, op.value, dest, a, b)
            else:
                fixed.lower_bitwise(gb, op.value, dest, a, b)
        elif op == ROp.MUX:
            fixed.lower_mux(gb, dest, a, b, c)
        elif op == ROp.COPY:
            fixed.lower_copy(gb, dest, a)
        elif is_float:
            self._build_float(gb, op, dest, a, b)
        else:
            self._build_int(gb, op, dest, a, b, use_parallel)

    def _build_int(
        self, gb: GateBuilder, op: ROp, dest: int, a: int, b: Optional[int],
        use_parallel: bool,
    ) -> None:
        if op in (ROp.ADD, ROp.SUB):
            subtract = op == ROp.SUB
            if use_parallel and dest not in (a, b):
                parallel.lower_add_parallel(gb, dest, a, b, subtract)
            else:
                fixed.lower_add(gb, dest, a, b, subtract)
        elif op == ROp.MUL:
            fixed.lower_mul(gb, dest, a, b)
        elif op in (ROp.DIV, ROp.MOD):
            fixed.lower_divmod(gb, op.value, dest, a, b)
        elif op == ROp.NEG:
            fixed.lower_neg(gb, dest, a)
        elif op == ROp.ABS:
            fixed.lower_abs(gb, dest, a)
        elif op == ROp.SIGN:
            fixed.lower_sign(gb, dest, a)
        elif op == ROp.ZERO:
            fixed.lower_zero(gb, dest, a)
        elif op in (ROp.LT, ROp.LE, ROp.GT, ROp.GE, ROp.EQ, ROp.NE):
            fixed.lower_compare(gb, op.value, dest, a, b)
        else:
            raise ValueError(f"unsupported integer op {op}")

    def _build_float(
        self, gb: GateBuilder, op: ROp, dest: int, a: int, b: Optional[int]
    ) -> None:
        if op in (ROp.ADD, ROp.SUB):
            floating.lower_fadd(gb, dest, a, b, subtract=op == ROp.SUB)
        elif op == ROp.MUL:
            floating.lower_fmul(gb, dest, a, b)
        elif op == ROp.DIV:
            floating.lower_fdiv(gb, dest, a, b)
        elif op == ROp.NEG:
            floating.lower_fneg(gb, dest, a)
        elif op == ROp.ABS:
            floating.lower_fabs(gb, dest, a)
        elif op == ROp.SIGN:
            floating.lower_fsign(gb, dest, a)
        elif op == ROp.ZERO:
            floating.lower_fzero(gb, dest, a)
        elif op in (ROp.LT, ROp.LE, ROp.GT, ROp.GE, ROp.EQ, ROp.NE):
            floating.lower_fcompare(gb, op.value, dest, a, b)
        else:
            raise ValueError(f"unsupported float op {op}")

    # ------------------------------------------------------------------
    # Moves (thread-to-thread data transfer, Section III-E/F)
    # ------------------------------------------------------------------
    def _stage_registers(self) -> Tuple[int, int]:
        regs = list(self.config.scratch_register_indices())
        return regs[-1], regs[-2]

    def _lower_move(self, instr: MoveInstr) -> List[MicroOp]:
        cfg = self.config
        stage1, stage2 = self._stage_registers()
        warps = instr.warp_mask or RangeMask.all(cfg.crossbars)
        ops: List[MicroOp] = []

        def init_column(reg: int) -> MicroOp:
            return LogicHOp(
                GateType.INIT1, in_a=0, in_b=0, out=reg,
                p_a=0, p_b=0, p_out=0, p_end=cfg.partitions - 1, p_step=1,
            )

        def not_column(src: int, dst: int) -> MicroOp:
            return LogicHOp(
                GateType.NOT, in_a=src, in_b=src, out=dst,
                p_a=0, p_b=0, p_out=0, p_end=cfg.partitions - 1, p_step=1,
            )

        if instr.warp_dist == 0 and instr.src_thread == instr.dst_thread:
            # Same thread: a pure register-to-register copy (two parallel
            # NOT gates through a staging column, row-masked).
            if instr.src_reg == instr.dst_reg:
                return ops
            ops.append(CrossbarMaskOp(warps.start, warps.stop, warps.step))
            ops.append(RowMaskOp(instr.src_thread, instr.src_thread, 1))
            ops.append(init_column(stage1))
            ops.append(not_column(instr.src_reg, stage1))
            ops.append(init_column(instr.dst_reg))
            ops.append(not_column(stage1, instr.dst_reg))
            return ops

        if instr.warp_dist == 0:
            # Intra-warp: horizontal copy to a staging column at the source
            # row, a vertical NOT pair to the destination row, then a
            # horizontal fix-up into the destination register (four NOT
            # gates in total, so the value parity is preserved).
            ops.append(CrossbarMaskOp(warps.start, warps.stop, warps.step))
            ops.append(RowMaskOp(instr.src_thread, instr.src_thread, 1))
            ops.append(init_column(stage1))
            ops.append(not_column(instr.src_reg, stage1))  # stage1 = ~v
            ops.append(LogicVOp(GateType.INIT1, 0, instr.dst_thread, stage1))
            ops.append(
                LogicVOp(GateType.NOT, instr.src_thread, instr.dst_thread, stage1)
            )  # stage1@dst = v
            ops.append(RowMaskOp(instr.dst_thread, instr.dst_thread, 1))
            ops.append(init_column(stage2))
            ops.append(not_column(stage1, stage2))  # stage2 = ~v
            ops.append(init_column(instr.dst_reg))
            ops.append(not_column(stage2, instr.dst_reg))  # dst = v
            return ops

        # Inter-warp: the H-tree move writes the source word directly into
        # the staging column of the destination warps (a plain overwrite),
        # then a NOT pair lands it in the destination register.
        ops.append(CrossbarMaskOp(warps.start, warps.stop, warps.step))
        ops.append(
            MoveOp(
                instr.warp_dist,
                instr.src_thread,
                instr.dst_thread,
                instr.src_reg,
                stage1,
            )
        )
        dest_warps = RangeMask(
            warps.start + instr.warp_dist, warps.stop + instr.warp_dist, warps.step
        )
        ops.append(CrossbarMaskOp(dest_warps.start, dest_warps.stop, dest_warps.step))
        ops.append(RowMaskOp(instr.dst_thread, instr.dst_thread, 1))
        ops.append(init_column(stage2))
        ops.append(not_column(stage1, stage2))  # stage2 = ~v
        ops.append(init_column(instr.dst_reg))
        ops.append(not_column(stage2, instr.dst_reg))  # dst = v
        return ops

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def _lower_read(self, instr: ReadInstr) -> List[MicroOp]:
        return [
            CrossbarMaskOp(instr.warp, instr.warp, 1),
            RowMaskOp(instr.thread, instr.thread, 1),
            ReadOp(instr.reg),
        ]

    def _lower_write(self, instr: WriteInstr) -> List[MicroOp]:
        return self._mask_ops(instr.warp_mask, instr.row_mask) + [
            WriteOp(instr.reg, instr.value)
        ]
