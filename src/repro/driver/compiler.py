"""Compilation of micro-op streams into validated :class:`MicroProgram`s.

This is the "compile" half of the compile/replay pipeline: a recorded
micro-operation list goes through

1. **peephole optimization** (optional) — stream-level rewrites that
   preserve the final memory state bit-for-bit while removing wasted
   cycles:

   - *mask coalescing*: a ``CrossbarMaskOp``/``RowMaskOp`` that is
     superseded by a later mask of the same kind before any consuming
     operation, or that re-sets the mask value already in effect, is
     dropped.  Macro-instruction streams re-emit identical full-range
     masks before every instruction, so this collapses the per-instruction
     mask preamble of a fused loop body to a single pair.
   - *INIT1 elimination*: an ``INIT1`` whose output cells are already
     known to hold logical 1 (from an earlier ``INIT1`` under the same
     masks, with no intervening pull-down on those cells) is a no-op and
     is dropped.  Tracking is reset conservatively on every mask change
     and on any write the pass cannot reason about.

2. **validation** — every op is range-checked against the architecture
   exactly once (register/row/crossbar bounds, partition-pattern
   disjointness via :func:`repro.arch.halfgates.expand_pattern`, H-tree
   move restrictions), so replay paths can skip per-op re-validation.
   Callers that assemble streams from already-validated pieces (the
   driver's cached R-type bodies, the spliced stream compiler in
   :meth:`repro.driver.driver.Driver._compile_spliced`) pass
   ``validate=False`` and take responsibility for the few checks their
   construction does not imply (mask ranges).

The result is an immutable :class:`~repro.driver.program.MicroProgram`
stamped with the config fingerprint it was validated against.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.arch.config import PIMConfig
from repro.arch.halfgates import expand_pattern
from repro.arch.htree import validate_move_pattern
from repro.arch.masks import RangeMask
from repro.arch.micro_ops import (
    CrossbarMaskOp,
    GateType,
    LogicHOp,
    LogicVOp,
    MicroOp,
    MoveOp,
    ReadOp,
    RowMaskOp,
    WriteOp,
)
from repro.driver.program import MicroProgram, config_fingerprint


class CompileError(Exception):
    """Raised when a recorded stream is invalid for the architecture."""


# ----------------------------------------------------------------------
# Peephole pass 1: mask coalescing
# ----------------------------------------------------------------------
def coalesce_masks(ops: Sequence[MicroOp]) -> List[MicroOp]:
    """Drop redundant and superseded crossbar/row mask operations.

    Semantics-preserving for any starting simulator state: the first mask
    of each kind is always emitted (the mask state at replay time is
    unknown), and trailing masks are kept because mask state persists
    beyond the program.
    """
    out: List[MicroOp] = []
    # The mask value in effect at this point of the *optimized* stream
    # (None = unknown), and the pending not-yet-emitted mask ops.
    current = {CrossbarMaskOp: None, RowMaskOp: None}
    pending: Dict[type, Optional[MicroOp]] = {
        CrossbarMaskOp: None, RowMaskOp: None,
    }

    def flush() -> None:
        for kind in (CrossbarMaskOp, RowMaskOp):
            op = pending[kind]
            if op is not None:
                out.append(op)
                current[kind] = (op.start, op.stop, op.step)
                pending[kind] = None

    for op in ops:
        kind = type(op)
        if kind in pending:
            if current[kind] == (op.start, op.stop, op.step):
                pending[kind] = None  # back to the value in effect: cancel
            else:
                pending[kind] = op  # supersedes any unconsumed pending mask
        else:
            flush()
            out.append(op)
    flush()
    return out


# ----------------------------------------------------------------------
# Peephole pass 2: redundant-INIT1 elimination
# ----------------------------------------------------------------------
def _h_output_mask(op: LogicHOp) -> int:
    """Bitmask of the partitions written by a horizontal operation."""
    mask = 0
    for p_out in range(op.p_out, op.p_end + 1, op.p_step):
        mask |= 1 << p_out
    return mask


def eliminate_redundant_init1(ops: Sequence[MicroOp]) -> List[MicroOp]:
    """Drop ``INIT1`` ops whose output cells are provably already 1.

    Tracks, per register, the set of partitions known to hold logical 1 in
    the currently-masked region.  Any mask change resets all knowledge
    (the known-ones property is relative to the selected rows/crossbars);
    any operation that can pull cells down, or whose effect the pass does
    not model (writes, moves, vertical logic), clears the affected
    register conservatively.
    """
    out: List[MicroOp] = []
    known: Dict[int, int] = {}  # register -> bitmask of known-one partitions

    for op in ops:
        if isinstance(op, (CrossbarMaskOp, RowMaskOp)):
            known.clear()
            out.append(op)
        elif isinstance(op, LogicHOp):
            written = _h_output_mask(op)
            if op.gate == GateType.INIT1:
                if known.get(op.out, 0) & written == written:
                    continue  # every output cell is already 1: a no-op
                known[op.out] = known.get(op.out, 0) | written
                out.append(op)
            else:
                # INIT0 / NOT / NOR pull (or force) outputs toward 0.
                known[op.out] = known.get(op.out, 0) & ~written
                out.append(op)
        elif isinstance(op, WriteOp):
            known.pop(op.index, None)
            out.append(op)
        elif isinstance(op, LogicVOp):
            known.pop(op.index, None)
            out.append(op)
        elif isinstance(op, MoveOp):
            known.pop(op.dst_index, None)
            out.append(op)
        else:  # ReadOp: no state change
            out.append(op)
    return out


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def validate_ops(ops: Iterable[MicroOp], config: PIMConfig) -> int:
    """Range-check every micro-op against the architecture once.

    Mirrors the per-op checks of :meth:`repro.sim.Simulator.execute`
    (minus the mask-state-dependent ones, which remain runtime checks in
    the replay plan).  Returns the number of :class:`ReadOp`s.  Raises
    :class:`CompileError` on the first invalid operation.
    """
    registers, rows, crossbars = config.registers, config.rows, config.crossbars
    reads = 0
    for position, op in enumerate(ops):
        try:
            if isinstance(op, LogicHOp):
                for index in (op.in_a, op.in_b, op.out):
                    if not 0 <= index < registers:
                        raise ValueError(f"intra-row index {index} out of range")
                expand_pattern(op, config.partitions)
            elif isinstance(op, CrossbarMaskOp):
                if op.stop >= crossbars:
                    raise ValueError("crossbar mask out of range")
                RangeMask(op.start, op.stop, op.step)
            elif isinstance(op, RowMaskOp):
                if op.stop >= rows:
                    raise ValueError("row mask out of range")
                RangeMask(op.start, op.stop, op.step)
            elif isinstance(op, ReadOp):
                if not 0 <= op.index < registers:
                    raise ValueError(f"intra-row index {op.index} out of range")
                reads += 1
            elif isinstance(op, WriteOp):
                if not 0 <= op.index < registers:
                    raise ValueError(f"intra-row index {op.index} out of range")
                if op.value >= (1 << config.word_size):
                    raise ValueError("write value exceeds word size")
            elif isinstance(op, LogicVOp):
                if not 0 <= op.index < registers:
                    raise ValueError(f"intra-row index {op.index} out of range")
                # in_row is ignored (and unchecked) for INIT gates, matching
                # the simulator's runtime behavior.
                checked = (
                    (op.in_row, op.out_row)
                    if op.gate == GateType.NOT
                    else (op.out_row,)
                )
                for row in checked:
                    if not 0 <= row < rows:
                        raise ValueError(f"row {row} out of range")
            elif isinstance(op, MoveOp):
                for index in (op.src_index, op.dst_index):
                    if not 0 <= index < registers:
                        raise ValueError(f"intra-row index {index} out of range")
                for row in (op.src_row, op.dst_row):
                    if not 0 <= row < rows:
                        raise ValueError(f"row {row} out of range")
                # The crossbar-pattern restrictions depend on the mask in
                # effect at replay time; checked there (see _plan_step).
            else:
                raise ValueError(f"unknown micro-operation {op!r}")
        except ValueError as exc:
            raise CompileError(f"op {position}: {exc}") from exc
    return reads


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def compile_ops(
    ops: Iterable[MicroOp],
    config: PIMConfig,
    name: str = "program",
    optimize: bool = True,
    validate: bool = True,
) -> MicroProgram:
    """Validate (and optionally peephole-optimize) a recorded op stream.

    With ``optimize=False`` the stream is preserved verbatim — the mode
    the driver uses for its per-instruction cache, where cycle counts
    must match uncached lowering exactly.  With ``optimize=True`` the
    stream may shrink (fewer cycles), but the resulting memory state is
    bit-identical.

    ``validate=False`` skips the per-op range checks — only for streams
    that are valid by construction (the driver's own lowering output);
    externally recorded streams should keep the default.
    """
    ops = list(ops)
    source_ops = len(ops)
    if optimize:
        ops = coalesce_masks(ops)
        ops = eliminate_redundant_init1(ops)
    if validate:
        reads = validate_ops(ops, config)
        return MicroProgram(
            tuple(ops), name, config_fingerprint(config), reads,
            source_ops=source_ops,
        )
    return MicroProgram.from_ops(ops, name, config, source_ops=source_ops)
