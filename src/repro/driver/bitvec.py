"""Bit-vector combinators over gate-level cells.

A *bit vector* is a plain LSB-first list of cells. All combinators take the
:class:`~repro.driver.gates.GateBuilder` as their first argument, free
their internal temporaries, never free their inputs, and return freshly
allocated output cells (except where a docstring notes aliasing, e.g.
constant fill bits, which the builder protects from accidental freeing).

These are the building blocks of the AritPIM arithmetic suite: ripple
adders and borrow chains, variable shifters with sticky-bit collection,
zero/equality trees, normalizers and round-to-nearest-even — everything
needed to assemble fixed- and floating-point macro-instructions.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.driver.gates import Cell, GateBuilder

BitVec = List[Cell]


def const_bits(gb: GateBuilder, value: int, width: int) -> BitVec:
    """An LSB-first constant vector built from shared constant cells."""
    if value < 0:
        value &= (1 << width) - 1
    return [gb.const((value >> i) & 1) for i in range(width)]


def copy_bits(gb: GateBuilder, bits: BitVec) -> BitVec:
    """Copy every bit into fresh scratch cells (2 gates per bit)."""
    return [gb.copy(cell) for cell in bits]


def not_bits(gb: GateBuilder, bits: BitVec) -> BitVec:
    """Bitwise complement."""
    return [gb.not_(cell) for cell in bits]


def and_bits(gb: GateBuilder, a: BitVec, b: BitVec) -> BitVec:
    """Bitwise AND (widths must match)."""
    _check_widths(a, b)
    return [gb.and_(x, y) for x, y in zip(a, b)]


def or_bits(gb: GateBuilder, a: BitVec, b: BitVec) -> BitVec:
    """Bitwise OR (widths must match)."""
    _check_widths(a, b)
    return [gb.or_(x, y) for x, y in zip(a, b)]


def xor_bits(gb: GateBuilder, a: BitVec, b: BitVec) -> BitVec:
    """Bitwise XOR (widths must match)."""
    _check_widths(a, b)
    return [gb.xor(x, y) for x, y in zip(a, b)]


def mux_bits(gb: GateBuilder, cond: Cell, if_true: BitVec, if_false: BitVec) -> BitVec:
    """Per-bit multiplexer sharing one inverted condition (1 + 3n gates)."""
    _check_widths(if_true, if_false)
    ncond = gb.not_(cond)
    out = []
    for t_bit, f_bit in zip(if_true, if_false):
        t1 = gb.nor(t_bit, ncond)
        t2 = gb.nor(f_bit, cond)
        out.append(gb.nor(t1, t2))
        gb.free_bits([t1, t2])
    gb.free(ncond)
    return out


def broadcast(gb: GateBuilder, cell: Cell, width: int) -> BitVec:
    """Replicate one bit across ``width`` cells (1 + width gates)."""
    ncell = gb.not_(cell)
    out = [gb.not_(ncell) for _ in range(width)]
    gb.free(ncell)
    return out


# ----------------------------------------------------------------------
# Reduction trees
# ----------------------------------------------------------------------
def or_tree(gb: GateBuilder, cells: BitVec) -> Cell:
    """OR of all cells (balanced tree, ~2 gates per node)."""
    if not cells:
        raise ValueError("or_tree of nothing")
    level = list(cells)
    owned: List[bool] = [False] * len(level)
    while len(level) > 1:
        nxt, nxt_owned = [], []
        for i in range(0, len(level) - 1, 2):
            nxt.append(gb.or_(level[i], level[i + 1]))
            nxt_owned.append(True)
            if owned[i]:
                gb.free(level[i])
            if owned[i + 1]:
                gb.free(level[i + 1])
        if len(level) % 2:  # carry the odd element (ownership unchanged)
            nxt.append(level[-1])
            nxt_owned.append(owned[-1])
        level, owned = nxt, nxt_owned
    return level[0] if owned[0] else gb.copy(level[0])


def and_tree(gb: GateBuilder, cells: BitVec) -> Cell:
    """AND of all cells (complement of the OR tree of complements)."""
    complements = not_bits(gb, cells)
    any_zero = or_tree(gb, complements)
    gb.free_bits(complements)
    out = gb.not_(any_zero)
    gb.free(any_zero)
    return out


def is_zero(gb: GateBuilder, bits: BitVec) -> Cell:
    """1 iff every bit is 0."""
    any_set = or_tree(gb, bits)
    out = gb.not_(any_set)
    gb.free(any_set)
    return out


def equals(gb: GateBuilder, a: BitVec, b: BitVec) -> Cell:
    """1 iff the two vectors are bit-identical."""
    _check_widths(a, b)
    matches = [gb.xnor(x, y) for x, y in zip(a, b)]
    out = and_tree(gb, matches)
    gb.free_bits(matches)
    return out


# ----------------------------------------------------------------------
# Addition / subtraction / comparison
# ----------------------------------------------------------------------
def ripple_add(
    gb: GateBuilder, a: BitVec, b: BitVec, cin: Optional[Cell] = None
) -> Tuple[BitVec, Cell]:
    """Ripple-carry addition (9 NORs per bit); returns ``(sum, carry_out)``."""
    _check_widths(a, b)
    carry = cin if cin is not None else gb.const(0)
    own_carry = False
    out = []
    for a_bit, b_bit in zip(a, b):
        total, cout = gb.full_adder(a_bit, b_bit, carry)
        if own_carry:
            gb.free(carry)
        carry, own_carry = cout, True
        out.append(total)
    if not own_carry:
        carry = gb.copy(carry)
    return out, carry


def ripple_sub(gb: GateBuilder, a: BitVec, b: BitVec) -> Tuple[BitVec, Cell]:
    """``a - b`` as ``a + ~b + 1``; returns ``(difference, borrow)``.

    ``borrow`` is 1 iff ``a < b`` unsigned (the complement of the carry).
    """
    nb = not_bits(gb, b)
    diff, carry = ripple_add(gb, a, nb, cin=gb.const(1))
    gb.free_bits(nb)
    borrow = gb.not_(carry)
    gb.free(carry)
    return diff, borrow


def increment(gb: GateBuilder, bits: BitVec, cond: Cell) -> Tuple[BitVec, Cell]:
    """Add the single bit ``cond`` to the vector (half-adder chain).

    Returns ``(sum, carry_out)`` — roughly 8 gates per bit, used by the
    round-to-nearest-even step of the floating-point suite.
    """
    carry = cond
    own_carry = False
    out = []
    for bit in bits:
        out.append(gb.xor(bit, carry))
        new_carry = gb.and_(bit, carry)
        if own_carry:
            gb.free(carry)
        carry, own_carry = new_carry, True
    if not own_carry:
        carry = gb.copy(carry)
    return out, carry


def carry_chain(gb: GateBuilder, a: BitVec, b: BitVec, cin: Cell) -> Cell:
    """Final carry of ``a + b + cin`` without computing the sums.

    Uses the carry portion of the 9-NOR full adder (6 gates per bit); the
    workhorse behind cheap comparisons.
    """
    _check_widths(a, b)
    carry = cin
    own_carry = False
    for a_bit, b_bit in zip(a, b):
        n1 = gb.nor(a_bit, b_bit)
        n4 = gb.xnor(a_bit, b_bit)
        n5 = gb.nor(n4, carry)
        cout = gb.nor(n1, n5)
        gb.free_bits([n1, n4, n5])
        if own_carry:
            gb.free(carry)
        carry, own_carry = cout, True
    if not own_carry:
        carry = gb.copy(carry)
    return carry


def ult(gb: GateBuilder, a: BitVec, b: BitVec) -> Cell:
    """Unsigned ``a < b`` — the borrow of ``a - b``."""
    nb = not_bits(gb, b)
    carry = carry_chain(gb, a, nb, gb.const(1))
    gb.free_bits(nb)
    out = gb.not_(carry)
    gb.free(carry)
    return out


def slt(gb: GateBuilder, a: BitVec, b: BitVec) -> Cell:
    """Signed (two's complement) ``a < b`` via the bias-flip trick.

    Complementing both sign bits maps signed order onto unsigned order.
    """
    _check_widths(a, b)
    a_flip = list(a[:-1]) + [gb.not_(a[-1])]
    b_flip = list(b[:-1]) + [gb.not_(b[-1])]
    out = ult(gb, a_flip, b_flip)
    gb.free(a_flip[-1])
    gb.free(b_flip[-1])
    return out


# ----------------------------------------------------------------------
# Shifters
# ----------------------------------------------------------------------
def shift_right_var(
    gb: GateBuilder,
    bits: BitVec,
    amount: BitVec,
    collect_sticky: bool = False,
) -> Tuple[BitVec, Optional[Cell]]:
    """Logical right shift by a variable amount (barrel shifter).

    ``amount`` is LSB-first; stage ``k`` conditionally shifts by ``2**k``.
    With ``collect_sticky`` the OR of every shifted-out bit is returned as
    the sticky cell (needed for IEEE round-to-nearest-even alignment).
    Amount bits beyond the width simply shift everything out.
    """
    width = len(bits)
    zero = gb.const(0)
    cur, own = list(bits), False
    sticky: Optional[Cell] = gb.const(0) if collect_sticky else None
    sticky_owned = False
    for k, sel in enumerate(amount):
        shift = 1 << k
        if collect_sticky:
            dropped = or_tree(gb, cur[: min(shift, width)])
            contrib = gb.and_(sel, dropped)
            new_sticky = gb.or_(sticky, contrib)
            if sticky_owned:
                gb.free(sticky)
            sticky, sticky_owned = new_sticky, True
            gb.free_bits([dropped, contrib])
        nsel = gb.not_(sel)
        nxt = []
        for i in range(width):
            hi = cur[i + shift] if i + shift < width else zero
            t1 = gb.nor(hi, nsel)
            t2 = gb.nor(cur[i], sel)
            nxt.append(gb.nor(t1, t2))
            gb.free_bits([t1, t2])
        gb.free(nsel)
        if own:
            gb.free_bits(cur)
        cur, own = nxt, True
    if not own:
        cur = copy_bits(gb, cur)
    if collect_sticky and not sticky_owned:
        sticky = gb.copy(sticky)
    return cur, sticky


def shift_left_var(gb: GateBuilder, bits: BitVec, amount: BitVec) -> BitVec:
    """Logical left shift by a variable amount (barrel shifter)."""
    width = len(bits)
    zero = gb.const(0)
    cur, own = list(bits), False
    for k, sel in enumerate(amount):
        shift = 1 << k
        nsel = gb.not_(sel)
        nxt = []
        for i in range(width):
            lo = cur[i - shift] if i - shift >= 0 else zero
            t1 = gb.nor(lo, nsel)
            t2 = gb.nor(cur[i], sel)
            nxt.append(gb.nor(t1, t2))
            gb.free_bits([t1, t2])
        gb.free(nsel)
        if own:
            gb.free_bits(cur)
        cur, own = nxt, True
    if not own:
        cur = copy_bits(gb, cur)
    return cur


def normalize_left(gb: GateBuilder, bits: BitVec) -> Tuple[BitVec, BitVec]:
    """Shift left until the MSB is 1 (binary-search leading-zero count).

    Returns ``(normalized, shift_amount)`` with the amount LSB-first. For
    an all-zero input the amount saturates and the result stays zero —
    callers detect the zero case separately.
    """
    width = len(bits)
    stages = max(1, math.ceil(math.log2(width)))
    zero = gb.const(0)
    cur, own = list(bits), False
    amount: List[Optional[Cell]] = [None] * stages
    for k in reversed(range(stages)):
        shift = 1 << k
        top = cur[width - min(shift, width):]
        any_top = or_tree(gb, top)
        sel = gb.not_(any_top)  # top `shift` bits all zero -> shift left
        gb.free(any_top)
        nsel = gb.not_(sel)
        nxt = []
        for i in range(width):
            lo = cur[i - shift] if i - shift >= 0 else zero
            t1 = gb.nor(lo, nsel)
            t2 = gb.nor(cur[i], sel)
            nxt.append(gb.nor(t1, t2))
            gb.free_bits([t1, t2])
        gb.free(nsel)
        if own:
            gb.free_bits(cur)
        cur, own = nxt, True
        amount[k] = sel
    if not own:
        cur = copy_bits(gb, cur)
    return cur, [cell for cell in amount if cell is not None]


# ----------------------------------------------------------------------
# Rounding
# ----------------------------------------------------------------------
def round_nearest_even(
    gb: GateBuilder,
    mantissa: BitVec,
    guard: Cell,
    rnd: Cell,
    sticky: Cell,
) -> Tuple[BitVec, Cell]:
    """IEEE round-to-nearest-even of a mantissa with G/R/S bits.

    Rounds up iff ``guard AND (rnd OR sticky OR lsb)``. Returns the rounded
    mantissa and the carry-out (mantissa overflow, meaning the caller must
    bump the exponent and the mantissa becomes ``1.00...0``).
    """
    tail = gb.or_(rnd, sticky)
    tail_or_lsb = gb.or_(tail, mantissa[0])
    round_up = gb.and_(guard, tail_or_lsb)
    gb.free_bits([tail, tail_or_lsb])
    rounded, carry = increment(gb, mantissa, round_up)
    gb.free(round_up)
    return rounded, carry


def _check_widths(a: BitVec, b: BitVec) -> None:
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
