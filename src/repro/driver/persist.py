"""Cross-session persistence for compiled micro-op programs.

Gate building dominates cold-start latency: the 20-25x cold/warm gap in
``results/compile_cache.txt`` is almost entirely the cost of recording
R-type bodies through :class:`~repro.driver.gates.GateBuilder`.  Within a
session the driver's :class:`~repro.driver.program.ProgramCache` tiers
absorb that cost, but every new process pays it again.  This module makes
the cache *durable*: compiled :class:`~repro.driver.program.MicroProgram`
entries are written through to a cache directory and loaded back on the
first miss of a later session, so a warm-started process (``pim.init(
cache_dir=...)``, or ``REPRO_CACHE_DIR``) skips gate building entirely.

Design constraints, in order:

1. **Never replay a stale or foreign program.** Entries embed the format
   version, the config fingerprint, and the *full repr of the cache key*
   (SHA-256 keys the filename; the embedded repr guards against
   collisions and key-scheme drift between repo versions). Any mismatch
   is treated as a miss.
2. **Never crash on bad cache state.** A corrupt, truncated,
   version-skewed or otherwise unreadable entry falls back to a cold
   compile; the offending file is deleted best-effort so the fresh
   compile heals the cache. I/O errors (read-only dirs, races with
   concurrent writers) degrade to cold compiles, never exceptions.
3. **Atomic writes.** Entries are written to a temp file and
   ``os.replace``\\ d into place, so concurrent processes sharing a
   cache directory can only ever observe whole entries.

Serialized form: one JSON file per entry holding the program metadata
plus the ops as their 64-bit binary encodings (the same
:func:`~repro.arch.micro_ops.encode` words the DMA path ships), packed
little-endian into one base64 blob and bulk-decoded through
:func:`~repro.arch.micro_ops.decode_many` on load — a warm start must
not spend its win parsing a six-digit integer list.  Cache keys are
deterministic across processes because every key component has a
value-based repr (enums, frozen dataclasses, strings, ints).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.arch.config import PIMConfig
from repro.arch.micro_ops import decode, decode_many, encode
from repro.driver.program import MicroProgram, config_fingerprint

#: Bump when the on-disk entry layout (or the meaning of any field)
#: changes; older entries then read as cold misses, never as garbage.
#: v2: ops stored as one base64 little-endian uint64 blob (was an int list).
FORMAT_VERSION = 2

#: Environment variable supplying a default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def resolve_cache_dir(requested: "str | None" = None) -> Optional[str]:
    """The effective persistent-cache directory (``None`` disables)."""
    return requested or os.environ.get(CACHE_DIR_ENV) or None


def _key_repr(key: Hashable) -> str:
    """The canonical serialized form of a cache key.

    Stable across processes: keys are built from enums, frozen
    dataclasses, strings, ints and tuples of those, all of which repr by
    value (``PYTHONHASHSEED`` never enters the picture because the
    *repr*, not the hash, is serialized).
    """
    return repr(key)


class PersistentProgramCache:
    """A durable write-through store behind the in-memory program cache.

    One instance per driver, shared by both cache tiers (bodies and
    streams — entries embed their full key, so the tiers cannot
    collide).  Lookup is lazy: nothing is scanned at init; each in-memory
    miss probes exactly one file.

    Counters (snapshotted by ``pim.Profiler`` via
    ``Backend.persist_counters()``):

    - ``loads`` — entries restored from disk (gate building skipped);
    - ``misses`` — probes that found no entry;
    - ``invalid`` — entries rejected (corrupt/truncated file, format
      version skew, config-fingerprint mismatch, key collision) and
      deleted best-effort;
    - ``stores`` — entries written.
    """

    def __init__(self, cache_dir: str, config: PIMConfig):
        self.cache_dir = cache_dir
        self.config = config
        self.fingerprint = config_fingerprint(config)
        self.loads = 0
        self.misses = 0
        self.invalid = 0
        self.stores = 0
        os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        return {
            "loads": self.loads,
            "misses": self.misses,
            "invalid": self.invalid,
            "stores": self.stores,
        }

    def _path(self, key: Hashable) -> str:
        digest = hashlib.sha256(_key_repr(key).encode()).hexdigest()[:40]
        return os.path.join(self.cache_dir, f"pim-{digest}.json")

    # ------------------------------------------------------------------
    def load(self, key: Hashable) -> Optional[MicroProgram]:
        """Restore a program, or ``None`` (cold compile) on any problem."""
        path = self._path(key)
        try:
            with open(path, "r") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            # Unreadable or not-JSON (corrupt/truncated): treat as
            # invalid so the fresh compile overwrites it.
            self._reject(path)
            return None
        try:
            program = self._deserialize(entry, key)
        except Exception:
            self._reject(path)
            return None
        if program is None:
            self._reject(path)
            return None
        self.loads += 1
        return program

    def store(self, key: Hashable, program: MicroProgram) -> None:
        """Write a program through to disk (atomically; errors ignored)."""
        if program.config_fingerprint != self.fingerprint:
            return
        entry = {
            "version": FORMAT_VERSION,
            "key": _key_repr(key),
            "fingerprint": list(self.fingerprint),
            "word_size": self.config.word_size,
            "name": program.name,
            "reads": program.reads,
            "macros": program.macros,
            "source_ops": program.source_ops,
            "ops": base64.b64encode(
                np.array(
                    [encode(op, self.config.word_size) for op in program.ops],
                    dtype="<u8",
                ).tobytes()
            ).decode("ascii"),
        }
        path = self._path(key)
        try:
            fd, tmp = tempfile.mkstemp(
                dir=self.cache_dir, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(entry, handle)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return  # read-only cache dir, disk full, ...: stay cold
        self.stores += 1

    # ------------------------------------------------------------------
    def _deserialize(
        self, entry: dict, key: Hashable
    ) -> Optional[MicroProgram]:
        """Rebuild a program; ``None`` marks an invalid/stale entry."""
        if not isinstance(entry, dict):
            return None
        if entry.get("version") != FORMAT_VERSION:
            return None  # version skew: recompile under the new format
        if tuple(entry.get("fingerprint", ())) != self.fingerprint:
            return None  # compiled for a different geometry
        if entry.get("word_size") != self.config.word_size:
            return None
        if entry.get("key") != _key_repr(key):
            return None  # hash collision or key-scheme drift
        words = np.frombuffer(
            base64.b64decode(entry["ops"], validate=True), dtype="<u8"
        )
        ops = decode_many(words, self.config.word_size)
        return MicroProgram(
            ops=ops,
            name=str(entry["name"]),
            config_fingerprint=self.fingerprint,
            reads=int(entry["reads"]),
            macros=int(entry["macros"]),
            source_ops=int(entry["source_ops"]),
        )

    def _reject(self, path: str) -> None:
        """Count and delete (best-effort) an invalid entry."""
        self.invalid += 1
        try:
            os.unlink(path)
        except OSError:
            pass


def serialize_roundtrip(program: MicroProgram, config: PIMConfig) -> Tuple:
    """The encode/decode round-trip of a program's ops (test helper)."""
    return tuple(
        decode(encode(op, config.word_size), config.word_size)
        for op in program.ops
    )
