"""Bit-parallel (partition-based) fast paths (Section III-D1, Figure 4(b)).

With N partitions, the bit-striped word layout allows up to N concurrent
gates per row per cycle. Bitwise operations become O(1) micro-operations;
addition and subtraction use a Kogge–Stone parallel prefix whose
inter-partition shifts are realized with *strided* NOT passes — a gate
from partition ``k - d`` to partition ``k`` spans a section of ``d + 1``
partitions, so gates at stride ``d + 1`` stay disjoint and one distance-
``d`` shift costs ``d + 1`` micro-operations. This reproduces the
semi-parallel pattern of Figure 7(c,d).

Multiplication and division keep the bit-serial datapath (the MultPIM-style
bit-parallel multiplier is out of scope; DESIGN.md documents this and the
benchmarks account for it).

The short bodies built here (an int add is ~185 micro-ops) are the ones
whose per-macro dispatch cost capped driver headroom below 1x; they are
compiled once per (op, dtype, operand layout) into cached
``MicroProgram`` bodies and spliced verbatim — no re-lowering, no
re-validation — by the whole-stream emission compiler
(:mod:`repro.driver.stream`).
"""

from __future__ import annotations

from typing import List

from repro.arch.micro_ops import GateType, LogicHOp
from repro.driver.gates import GateBuilder


def _nor_column(gb: GateBuilder, a_reg: int, b_reg: int, out_reg: int) -> None:
    """Partition-parallel NOR of two registers (1 micro-op, N gates)."""
    gb.emit(
        LogicHOp(
            GateType.NOR,
            in_a=min(a_reg, b_reg), in_b=max(a_reg, b_reg), out=out_reg,
            p_a=0, p_b=0, p_out=0,
            p_end=gb.config.partitions - 1, p_step=1,
        )
    )


def _strided_not(gb: GateBuilder, src_reg: int, dst_reg: int, dist: int) -> int:
    """``dst[k] = NOT src[k - dist]`` for all ``k >= dist``.

    The destination must be pre-initialized to 1; partitions below ``dist``
    keep their initialized 1, which reads as NOT(0) — a zero fill of the
    shifted source. Returns the number of micro-ops emitted (``<= dist+1``).
    """
    parts = gb.config.partitions
    step = dist + 1
    emitted = 0
    for offset in range(step):
        first_out = dist + offset
        if first_out >= parts:
            break
        last_out = first_out + ((parts - 1 - first_out) // step) * step
        gb.emit(
            LogicHOp(
                GateType.NOT,
                in_a=src_reg, in_b=src_reg, out=dst_reg,
                p_a=offset, p_b=offset, p_out=first_out,
                p_end=last_out, p_step=step,
            )
        )
        emitted += 1
    return emitted


def lower_not_parallel(gb: GateBuilder, dest: int, a: int) -> None:
    """``dest = ~a`` — one parallel NOT (plus staging when aliased)."""
    if dest != a:
        gb.init_column(dest, 1)
        gb.not_column(a, dest)
        return
    stage = gb.reserve_column()
    stage2 = gb.reserve_column()
    gb.init_column(stage, 1)
    gb.not_column(a, stage)  # stage = ~a
    gb.init_column(stage2, 1)
    gb.not_column(stage, stage2)  # stage2 = a
    gb.init_column(dest, 1)
    gb.not_column(stage2, dest)  # dest = ~a
    gb.release_column(stage)
    gb.release_column(stage2)


def lower_bitwise_parallel(gb: GateBuilder, op: str, dest: int, a: int, b: int = None) -> None:
    """Partition-parallel AND/OR/XOR (a handful of micro-ops each)."""
    if op == "bit_not":
        lower_not_parallel(gb, dest, a)
        return
    if op == "bit_and":
        na = gb.reserve_column()
        nb = gb.reserve_column()
        gb.init_column(na, 1)
        gb.not_column(a, na)
        gb.init_column(nb, 1)
        gb.not_column(b, nb)
        gb.init_column(dest, 1)
        _nor_column(gb, na, nb, dest)
        gb.release_column(na)
        gb.release_column(nb)
    elif op == "bit_or":
        t = gb.reserve_column()
        gb.init_column(t, 1)
        _nor_column(gb, a, b, t)
        gb.init_column(dest, 1)
        gb.not_column(t, dest)
        gb.release_column(t)
    elif op == "bit_xor":
        n1 = gb.reserve_column()
        n2 = gb.reserve_column()
        n3 = gb.reserve_column()
        gb.init_column(n1, 1)
        _nor_column(gb, a, b, n1)
        gb.init_column(n2, 1)
        _nor_column(gb, a, n1, n2)
        gb.init_column(n3, 1)
        _nor_column(gb, b, n1, n3)
        gb.init_column(n1, 1)  # reuse as the XNOR column
        _nor_column(gb, n2, n3, n1)
        gb.init_column(dest, 1)
        gb.not_column(n1, dest)
        for reg in (n1, n2, n3):
            gb.release_column(reg)
    else:
        raise ValueError(f"unknown bitwise op {op}")


def lower_add_parallel(gb: GateBuilder, dest: int, a: int, b: int, subtract: bool = False) -> None:
    """Kogge–Stone addition/subtraction with partition parallelism.

    Prefix recurrences (per distance ``d`` in 1, 2, 4, ...):
    ``G' = G | (P & G>>d)`` and ``P' = P & P>>d``; the final carry into bit
    ``k`` is ``G[k-1]``, and ``sum = P0 ^ carry`` where ``P0`` is the
    original propagate vector. Subtraction feeds ``~b`` and absorbs the
    +1 carry-in by seeding ``G[0] |= P[0]``.
    """
    parts = gb.config.partitions
    col_p0 = gb.reserve_column()  # original propagate (for the final sum)
    col_p = gb.reserve_column()
    col_g = gb.reserve_column()
    t1 = gb.reserve_column()
    t2 = gb.reserve_column()
    t3 = gb.reserve_column()
    cols = [col_p0, col_p, col_g, t1, t2, t3]

    operand = b
    if subtract:
        nb_col = gb.reserve_column()
        cols.append(nb_col)
        gb.init_column(nb_col, 1)
        gb.not_column(b, nb_col)
        operand = nb_col

    # col_p = col_p0 = a ^ operand (propagate); col_g = a & operand.
    gb.init_column(t1, 1)
    _nor_column(gb, a, operand, t1)  # t1 = NOR(a, op)
    gb.init_column(t2, 1)
    _nor_column(gb, a, t1, t2)
    gb.init_column(t3, 1)
    _nor_column(gb, operand, t1, t3)
    gb.init_column(t1, 1)
    _nor_column(gb, t2, t3, t1)  # t1 = XNOR(a, op)
    gb.init_column(col_p, 1)
    gb.not_column(t1, col_p)  # propagate (consumed by the prefix rounds)
    gb.init_column(col_p0, 1)
    gb.not_column(t1, col_p0)  # propagate copy (kept for the final sum)
    gb.init_column(t1, 1)
    gb.not_column(a, t1)
    gb.init_column(t2, 1)
    gb.not_column(operand, t2)
    gb.init_column(col_g, 1)
    _nor_column(gb, t1, t2, col_g)  # generate = a & op

    if subtract:
        # Absorb the +1 carry-in: G[0] |= P[0].
        g0 = (col_g, 0)
        p0 = (col_p, 0)
        t = gb.nor(g0, p0)
        new_g0 = gb.not_(t)
        gb.free(t)
        gb.init_cell(g0, 1)
        # NOT twice through a scratch cell to write the value back.
        tmp = gb.not_(new_g0)
        gb.not_into(tmp, g0)
        gb.free_bits([tmp, new_g0])

    # Prefix rounds.
    distance = 1
    while distance < parts:
        # t1 = ~ (G >> d); t2 = ~P
        gb.init_column(t1, 1)
        _strided_not(gb, col_g, t1, distance)
        gb.init_column(t2, 1)
        gb.not_column(col_p, t2)
        # t3 = P & (G >> d) = NOR(~P, ~(G>>d))
        gb.init_column(t3, 1)
        _nor_column(gb, t1, t2, t3)
        # G = G | t3  (t1 = NOR(G, t3); G = ~t1)
        gb.init_column(t1, 1)
        _nor_column(gb, col_g, t3, t1)
        gb.init_column(col_g, 1)
        gb.not_column(t1, col_g)
        # t3 = P & (P>>d) = NOR(~(P>>d), ~P); copy back into P via two NOTs.
        gb.init_column(t1, 1)
        _strided_not(gb, col_p, t1, distance)
        gb.init_column(t3, 1)
        _nor_column(gb, t1, t2, t3)
        gb.init_column(t1, 1)
        gb.not_column(t3, t1)
        gb.init_column(col_p, 1)
        gb.not_column(t1, col_p)
        distance *= 2

    # carries: c[k] = G[k-1]  -> t1 = ~(G >> 1); t2 = carry = ~t1.
    gb.init_column(t1, 1)
    _strided_not(gb, col_g, t1, 1)
    gb.init_column(t2, 1)
    gb.not_column(t1, t2)
    if subtract:
        # carry into bit 0 is the +1 carry-in itself.
        gb.init_cell((t2, 0), 1)

    # sum = P0 ^ carry (5-op XOR on columns), into dest.
    gb.init_column(t1, 1)
    _nor_column(gb, col_p0, t2, t1)
    gb.init_column(t3, 1)
    _nor_column(gb, col_p0, t1, t3)
    gb.init_column(col_g, 1)
    _nor_column(gb, t2, t1, col_g)
    gb.init_column(t2, 1)
    _nor_column(gb, t3, col_g, t2)  # XNOR
    gb.init_column(dest, 1)
    gb.not_column(t2, dest)

    for reg in cols:
        gb.release_column(reg)
