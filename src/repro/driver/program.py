"""Compiled micro-operation streams: the :class:`MicroProgram` IR.

The driver's job is to translate macro-instructions into micro-operation
streams fast enough to keep the chip busy (Section V-B).  Because lowering
is deterministic in the operands, the stream for a repeated
macro-instruction never changes — so the natural unit of reuse is a
*program*: an immutable, pre-validated sequence of micro-operations that
can be replayed many times at near-zero host cost ("compile once, replay
many times").

Three pieces live here:

- :class:`MicroProgram` — the immutable IR: a tuple of micro-ops plus
  metadata (a name for profiling, the fingerprint of the architecture it
  was validated against, and a lazily-built 64-bit encoding for DMA-style
  transfer to a :class:`~repro.driver.driver.BufferSink`).
- :func:`config_fingerprint` — the hashable identity of every
  :class:`~repro.arch.config.PIMConfig` parameter that affects micro-op
  validity.  Cache keys embed it, and the simulator's
  ``execute_program`` fast path refuses programs compiled for a different
  geometry, so a configuration change can never replay a stale stream.
- :class:`ProgramCache` — a small LRU mapping cache keys to compiled
  programs, with hit/miss counters surfaced by ``pim.Profiler``.

Programs are *built* by :mod:`repro.driver.compiler` (validation and the
peephole passes) and *consumed* either op-by-op, as pre-encoded word
blocks (``BufferSink.execute_batch``), or via the simulator's
:meth:`~repro.sim.simulator.Simulator.execute_program` replay fast path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

import numpy as np

from repro.arch.config import PIMConfig
from repro.arch.micro_ops import (
    CrossbarMaskOp,
    LogicHOp,
    MicroOp,
    ReadOp,
    RowMaskOp,
    encode,
)

#: The cache-key type: any hashable tuple assembled by the caller.
ProgramKey = Hashable


@dataclass(frozen=True)
class SuperStep:
    """One segment of a program's super-step decomposition.

    A ``"gates"`` segment is a maximal run of consecutive
    :class:`~repro.arch.micro_ops.LogicHOp`\\ s whose crossbar and row
    masks are *statically known* (both were set by earlier operations of
    the same program — always true for self-masked fused streams); the
    vectorized replay engine lowers each such run into a handful of
    fused bulk updates over the packed memory image. Every other
    operation — mask changes, reads, writes, vertical logic, H-tree
    moves, and gates executing under caller-set masks — is its own
    ``"op"`` segment and replays through the per-op fallback path.

    Attributes:
        kind: ``"gates"`` or ``"op"``.
        start: index of the segment's first op in ``program.ops``.
        stop: one past the segment's last op.
        xb: the ``(start, stop, step)`` crossbar mask the segment runs
            under (``None`` when unknown or irrelevant).
        row: the ``(start, stop, step)`` row mask, likewise.
    """

    kind: str
    start: int
    stop: int
    xb: Optional[Tuple[int, int, int]] = None
    row: Optional[Tuple[int, int, int]] = None

    def __len__(self) -> int:
        return self.stop - self.start


def segment_super_steps(ops: Tuple[MicroOp, ...]) -> Tuple[SuperStep, ...]:
    """Slice an op stream into :class:`SuperStep` segments.

    Purely structural (geometry-independent): mask state is tracked as
    the triples the stream itself establishes, and gate runs are broken
    at every mask/read/write/vertical/move boundary.
    """
    segments: List[SuperStep] = []
    xb = row = None
    run_start: Optional[int] = None

    def close_run(end: int) -> None:
        nonlocal run_start
        if run_start is not None:
            segments.append(SuperStep("gates", run_start, end, xb, row))
            run_start = None

    for index, op in enumerate(ops):
        if isinstance(op, LogicHOp) and xb is not None and row is not None:
            if run_start is None:
                run_start = index
            continue
        close_run(index)
        segments.append(SuperStep("op", index, index + 1, xb, row))
        if isinstance(op, CrossbarMaskOp):
            xb = (op.start, op.stop, op.step)
        elif isinstance(op, RowMaskOp):
            row = (op.start, op.stop, op.step)
    close_run(len(ops))
    return tuple(segments)


def config_fingerprint(config: PIMConfig) -> Tuple[int, int, int, int, int]:
    """The geometry identity a compiled program depends on.

    Two configs with equal fingerprints validate exactly the same micro-op
    streams (register/row/crossbar ranges, partition patterns, and word
    size all match).  ``frequency_hz`` and ``scratch_registers`` are
    deliberately excluded: they change throughput numbers and lowering
    choices, but never the validity of an already-generated stream.
    """
    return (
        config.crossbars,
        config.rows,
        config.columns,
        config.partitions,
        config.word_size,
    )


@dataclass(frozen=True, eq=False)
class MicroProgram:
    """An immutable, validated micro-operation stream.

    Instances are identity-hashed (``eq=False``): the simulator keys its
    per-program replay plans on the object itself, so equality by content
    would make every lookup O(len(ops)).

    Attributes:
        ops: the micro-operations, in execution order.
        name: a human-readable label (e.g. ``"add.int32"``) for profiling.
        config_fingerprint: the :func:`config_fingerprint` of the config
            the program was validated against.
        reads: number of :class:`ReadOp`s in the stream (replay returns
            the last read's response word).
        macros: number of macro-instructions the stream was recorded
            from (0 when built from raw ops); lets the driver keep its
            macro/micro counters consistent across fused replays.
        source_ops: number of micro-operations the stream held *before*
            the compiler's peephole passes ran (equals ``len(ops)`` for
            unoptimized programs) — the pre- vs post-optimization
            instruction count backends report.
    """

    ops: Tuple[MicroOp, ...]
    name: str
    config_fingerprint: Tuple[int, int, int, int, int]
    reads: int = field(default=0)
    macros: int = field(default=0)
    source_ops: int = field(default=0)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self.ops)

    @property
    def super_steps(self) -> Tuple[SuperStep, ...]:
        """The program's super-step decomposition (built once, memoized).

        See :func:`segment_super_steps`; the simulator's vectorized
        replay engine consumes this, and :meth:`replay_summary` reports
        it.
        """
        cached = self.__dict__.get("_super_steps")
        if cached is None:
            cached = segment_super_steps(self.ops)
            self.__dict__["_super_steps"] = cached
        return cached

    def replay_summary(self, min_run_ops: int = 1) -> Dict[str, int]:
        """Segmentation accounting: how much of the stream can fuse.

        Returns ``gate_runs`` (number of ``"gates"`` segments at least
        ``min_run_ops`` long), ``gate_ops`` (ops inside them — the
        fusable fraction), and ``fallback_ops`` (ops replayed one at a
        time). Callers reporting what the vectorized engine *actually*
        fuses must pass its run-length threshold
        (:data:`repro.sim.replay.MIN_RUN_OPS`): shorter gate runs
        execute through per-op thunks.
        """
        gate_runs = gate_ops = 0
        for segment in self.super_steps:
            if segment.kind == "gates" and len(segment) >= min_run_ops:
                gate_runs += 1
                gate_ops += len(segment)
        return {
            "ops": len(self.ops),
            "super_steps": len(self.super_steps),
            "gate_runs": gate_runs,
            "gate_ops": gate_ops,
            "fallback_ops": len(self.ops) - gate_ops,
        }

    def encoded(self, word_size: int) -> "np.ndarray":
        """The stream as a ``np.uint64`` array of 64-bit operation words.

        Built on first use and memoized on the instance per ``word_size``
        (the program is immutable, so the encoding never changes).
        """
        cached = self.__dict__.get("_encoded")
        if cached is None or cached[0] != word_size:
            words = np.array(
                [encode(op, word_size) for op in self.ops], dtype=np.uint64
            )
            # Frozen dataclass: memoize through __dict__ (not __setattr__).
            self.__dict__["_encoded"] = (word_size, words)
            return words
        return cached[1]

    @classmethod
    def from_ops(
        cls, ops, name: str, config: PIMConfig, source_ops: Optional[int] = None
    ) -> "MicroProgram":
        """Wrap an op sequence without optimization (validation is the
        compiler's job; prefer :func:`repro.driver.compiler.compile_ops`)."""
        ops = tuple(ops)
        reads = sum(1 for op in ops if isinstance(op, ReadOp))
        return cls(
            ops, name, config_fingerprint(config), reads,
            source_ops=len(ops) if source_ops is None else source_ops,
        )


class ProgramCache:
    """An LRU cache of compiled :class:`MicroProgram`s with counters.

    The driver keys entries on ``(instruction kind, dtype, operand
    layout, parallelism, config fingerprint)`` — everything lowering
    depends on — so a hit is always safe to replay verbatim. Fused
    streams (:meth:`repro.driver.driver.Driver.compile`) additionally
    key on the optimizer configuration (the peephole ``optimize`` flag),
    so changing the optimization level mid-session can never replay a
    program compiled under different flags.

    The driver holds two independent instances: the per-R-type *body*
    tier (``Driver.programs``) and the whole-stream *plan* tier
    (``Driver.streams``, fused programs and
    :class:`~repro.driver.stream.StreamPlan`\\ s keyed on the
    instruction-tuple signature plus the emission mode). Keeping the
    tiers separate keeps each one's hit/miss accounting meaningful;
    ``SimulatorBackend.cache_hits``/``cache_misses`` report the sum.

    Both tiers are thread-safe: lookups and inserts hold an internal
    lock, so a driver shared by several serving threads (see
    :mod:`repro.serve`) keeps coherent LRU order and exact counters.
    Capacity overflow evicts least-recently-used entries and counts them
    in :attr:`evictions` (surfaced via ``Backend.cache_counters()``).

    When a :class:`~repro.driver.persist.PersistentProgramCache` is
    attached as ``store``, misses probe the disk tier before reporting a
    miss, and inserts write through — the cross-session warm-start path
    (``pim.init(cache_dir=...)``). Only :class:`MicroProgram` values
    persist; plan-tier wrappers (``StreamPlan``, the ``UNSUPPORTED``
    sentinel) are cheap to rebuild and stay in-memory only.
    """

    def __init__(self, maxsize: int = 4096, store=None):
        self.maxsize = max(int(maxsize), 0)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.store = store
        self._lock = threading.Lock()
        self._entries: "OrderedDict[ProgramKey, MicroProgram]" = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ProgramKey) -> bool:
        return key in self._entries

    def get(self, key: ProgramKey) -> Optional[MicroProgram]:
        """Look up a program, counting the hit/miss and refreshing LRU order."""
        with self._lock:
            program = self._entries.get(key)
            if program is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return program
        if self.store is not None and self.enabled:
            # Probe the disk tier outside the lock (file I/O); a load
            # still counts as a hit for callers — the compile was
            # skipped — and the entry is promoted into the LRU.
            program = self.store.load(key)
            if program is not None:
                with self._lock:
                    self.hits += 1
                    self._insert(key, program)
                return program
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: ProgramKey, program: MicroProgram) -> None:
        """Insert a program, evicting the least-recently-used beyond maxsize."""
        if not self.enabled:
            return
        with self._lock:
            self._insert(key, program)
        if self.store is not None and isinstance(program, MicroProgram):
            self.store.store(key, program)

    def _insert(self, key: ProgramKey, program: MicroProgram) -> None:
        self._entries[key] = program
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all in-memory entries (counters and disk tier preserved)."""
        with self._lock:
            self._entries.clear()
