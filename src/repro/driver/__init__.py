"""Host driver: lowering ISA macro-instructions into micro-operations.

Section V-B of the paper: the driver translates abstract macro-instructions
(e.g. a floating-point register multiply) into the NOR/NOT/INIT
micro-operation sequences of the microarchitecture. The arithmetic routines
re-implement the AritPIM suite from scratch:

- :mod:`repro.driver.gates` — the gate-level builder (scratch wires,
  stateful-logic primitives, init accounting);
- :mod:`repro.driver.bitvec` — bit-vector combinators (adders, shifters
  with sticky collection, comparators, normalizers, rounding);
- :mod:`repro.driver.fixed` — fixed-point (two's-complement) routines;
- :mod:`repro.driver.floating` — IEEE-754 binary32 routines;
- :mod:`repro.driver.parallel` — bit-parallel (partition) fast paths;
- :mod:`repro.driver.program` — the :class:`MicroProgram` IR and the LRU
  :class:`ProgramCache` (compile once, replay many times);
- :mod:`repro.driver.compiler` — stream validation plus the peephole
  passes (mask coalescing, redundant-INIT1 elimination);
- :mod:`repro.driver.driver` — the :class:`Driver` itself, with its
  compiled-program cache;
- :mod:`repro.driver.stream` — the whole-stream emission compiler
  (:class:`MacroStream` IR, cached :class:`StreamPlan` dispatch, the
  ``REPRO_DRIVER_EMIT`` fallback ladder);
- :mod:`repro.driver.throughput` — the driver-throughput measurement
  harness (micro-ops rerouted to a memory buffer, Section VI-B / artifact
  appendix).
"""

from repro.driver.compiler import CompileError, compile_ops
from repro.driver.driver import Driver, BufferSink
from repro.driver.gates import GateBuilder, ScratchOverflow
from repro.driver.program import MicroProgram, ProgramCache, config_fingerprint
from repro.driver.stream import (
    EMIT_ENV,
    EMIT_MODES,
    MacroStream,
    StreamPlan,
    resolve_emit_mode,
)

__all__ = [
    "Driver",
    "BufferSink",
    "GateBuilder",
    "ScratchOverflow",
    "MicroProgram",
    "ProgramCache",
    "MacroStream",
    "StreamPlan",
    "CompileError",
    "compile_ops",
    "config_fingerprint",
    "resolve_emit_mode",
    "EMIT_ENV",
    "EMIT_MODES",
]
