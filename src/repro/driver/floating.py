"""IEEE-754 binary32 arithmetic at the gate level (AritPIM float suite).

All routines operate on the raw register bit layout (sign at partition 31,
exponent at 23..30, fraction at 0..22) and produce round-to-nearest-even
results bit-identical to NumPy ``float32`` arithmetic, with the documented
deviations: subnormal inputs and outputs are flushed to zero (FTZ) and
NaN inputs are unsupported (division by zero yields a signed infinity,
multiplying to overflow yields a signed infinity).

Addition/subtraction use an exact wide datapath: both mantissas are placed
on a 52-bit grid (24 integer + 28 fraction bits) aligned to the larger
operand, bits shifted below the grid are folded into a sticky flag (which
also supplies the extra borrow in effective subtraction), so the rounding
decision is exact — see the module tests, which sweep the classic corner
cases (massive cancellation, carry-out rounding, ties-to-even).

Float lowering is by far the most expensive to generate (thousands of
micro-ops per macro-instruction), which is exactly why the driver caches
the recorded stream as a :class:`~repro.driver.program.MicroProgram` and
replays it on repeats (see ``docs/architecture.md``, compile/replay
pipeline, and ``benchmarks/test_compile_cache.py``).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.driver import bitvec as bv
from repro.driver.fixed import write_flag
from repro.driver.gates import Cell, GateBuilder

FRAC_BITS = 23
EXP_BITS = 8
BIAS = 127
#: Fraction-grid width of the exact add/sub datapath (24 mantissa bits are
#: placed above this many fractional grid bits).
ADD_GRID_FRAC = 28


def _fields(gb: GateBuilder, reg: int) -> Tuple[List[Cell], Cell, List[Cell], List[Cell]]:
    """Return (all 32 bits, sign, exponent LSB-first, fraction LSB-first)."""
    bits = gb.register_cells(reg)
    return bits, bits[31], bits[23:31], bits[:23]


def _exp10(gb: GateBuilder, exp: List[Cell]) -> List[Cell]:
    """Zero-extend an 8-bit exponent to the 10-bit working width."""
    zero = gb.const(0)
    return list(exp) + [zero, zero]


def _flags_from_exp10(gb: GateBuilder, e10: List[Cell]) -> Tuple[Cell, Cell]:
    """(underflow, overflow) flags of a 10-bit two's-complement biased exp.

    Underflow: negative or exactly zero (biased 0 would be subnormal — FTZ).
    Overflow: non-negative and >= 255.
    """
    neg = e10[9]
    e_zero = bv.is_zero(gb, e10)
    underflow = gb.or_(neg, e_zero)
    gb.free(e_zero)
    all_ones = bv.and_tree(gb, e10[:8])
    hi = gb.or_(e10[8], all_ones)
    not_neg = gb.not_(neg)
    overflow = gb.and_(not_neg, hi)
    gb.free_bits([all_ones, hi, not_neg])
    return underflow, overflow


def _apply_specials(
    gb: GateBuilder,
    assembled: List[Cell],
    sign: Cell,
    overflow: Cell,
    zero_flag: Cell,
) -> List[Cell]:
    """Overlay the overflow (±inf) and zero (+/- per sign arg) patterns."""
    zero, one = gb.const(0), gb.const(1)
    inf_pattern = [zero] * FRAC_BITS + [one] * EXP_BITS + [sign]
    zero_pattern = [zero] * 31 + [sign]
    with_inf = bv.mux_bits(gb, overflow, inf_pattern, assembled)
    result = bv.mux_bits(gb, zero_flag, zero_pattern, with_inf)
    gb.free_bits(with_inf)
    return result


def lower_fadd(gb: GateBuilder, dest: int, a: int, b: int, subtract: bool = False) -> None:
    """``dest = a + b`` (or ``a - b``) in IEEE binary32 with RNE."""
    a_bits, sign_a, _, _ = _fields(gb, a)
    b_bits, sign_b_orig, _, _ = _fields(gb, b)
    zero = gb.const(0)

    sign_b = gb.not_(sign_b_orig) if subtract else gb.copy(sign_b_orig)
    a_is_zero = bv.is_zero(gb, a_bits[23:31])
    b_is_zero = bv.is_zero(gb, b_bits[23:31])

    # Order the operands by magnitude (raw low-31-bit unsigned compare).
    a_low, b_low = a_bits[:31], b_bits[:31]
    a_smaller = bv.ult(gb, a_low, b_low)
    large_low = bv.mux_bits(gb, a_smaller, b_low, a_low)
    small_low = bv.mux_bits(gb, a_smaller, a_low, b_low)
    sign_large = gb.mux(a_smaller, sign_b, sign_a)
    sign_small = gb.mux(a_smaller, sign_a, sign_b)
    gb.free(a_smaller)

    exp_large = large_low[23:31]
    exp_small = small_low[23:31]
    large_zero = bv.is_zero(gb, exp_large)
    hidden_large = gb.not_(large_zero)
    gb.free(large_zero)
    small_zero = bv.is_zero(gb, exp_small)
    hidden_small = gb.not_(small_zero)
    gb.free(small_zero)
    mant_large = large_low[:23] + [hidden_large]
    mant_small = small_low[:23] + [hidden_small]

    # Align the smaller mantissa on the 52-bit grid, collecting sticky.
    diff, diff_borrow = bv.ripple_sub(gb, exp_large, exp_small)
    gb.free(diff_borrow)
    ext_small = [zero] * ADD_GRID_FRAC + mant_small
    aligned, sticky = bv.shift_right_var(gb, ext_small, diff, collect_sticky=True)
    gb.free_bits(diff)
    gb.free_bits(small_low)
    gb.free(hidden_small)

    # Effective add or subtract on the grid; the sticky remainder supplies
    # the extra borrow of an effective subtraction (see module docstring).
    effective_sub = gb.xor(sign_large, sign_small)
    operand = [gb.xor(bit, effective_sub) for bit in aligned]
    gb.free_bits(aligned)
    not_sticky = gb.not_(sticky)
    carry_in = gb.and_(effective_sub, not_sticky)
    gb.free(not_sticky)
    ext_large = [zero] * ADD_GRID_FRAC + mant_large
    total, carry = bv.ripple_add(gb, ext_large, operand, cin=carry_in)
    gb.free_bits(operand)
    gb.free(carry_in)
    gb.free(hidden_large)

    # In subtraction the carry-out is the no-borrow indicator, not a value
    # bit; keep it only for the addition case.
    not_sub = gb.not_(effective_sub)
    top = gb.and_(carry, not_sub)
    gb.free_bits([carry, not_sub])

    value = total + [top]
    norm, lzc = bv.normalize_left(gb, value)
    gb.free_bits(value)
    result_is_zero = gb.not_(norm[-1])

    width = len(norm)  # 53
    mant = norm[width - 24:]
    guard = norm[width - 25]
    rest = bv.or_tree(gb, norm[: width - 25])
    sticky_all = gb.or_(rest, sticky)
    gb.free_bits([rest, sticky])
    rounded, round_carry = bv.round_nearest_even(gb, mant, guard, zero, sticky_all)
    gb.free(sticky_all)
    gb.free_bits(norm)

    # exponent' = exp_large + 1 + round_carry - lzc  (10-bit arithmetic)
    exp10 = _exp10(gb, exp_large)
    plus_one, c1 = bv.ripple_add(gb, exp10, bv.const_bits(gb, 1, 10), cin=round_carry)
    gb.free_bits([c1, round_carry])
    lzc10 = list(lzc) + [zero] * (10 - len(lzc))
    exp_final, eb = bv.ripple_sub(gb, plus_one, lzc10)
    gb.free(eb)
    gb.free_bits(plus_one)
    gb.free_bits(lzc)
    gb.free_bits(large_low)

    underflow, overflow = _flags_from_exp10(gb, exp_final)
    zero_total = gb.or_(underflow, result_is_zero)
    gb.free_bits([underflow, result_is_zero])

    result_sign = gb.and_(sign_large, gb_not := gb.not_(zero_total))
    gb.free(gb_not)
    assembled = rounded[:23] + exp_final[:8] + [result_sign]
    computed = _apply_specials(gb, assembled, result_sign, overflow, zero_total)
    gb.free_bits(rounded)
    gb.free_bits(exp_final)
    gb.free_bits([overflow, zero_total, result_sign, sign_large, sign_small])
    gb.free(effective_sub)

    # Early-outs for (flushed-to-)zero operands, applied outermost so any
    # garbage computed from a zero operand is discarded.
    b_signed = b_bits[:31] + [sign_b]
    with_b_zero = bv.mux_bits(gb, b_is_zero, a_bits, computed)
    with_a_zero = bv.mux_bits(gb, a_is_zero, b_signed, with_b_zero)
    gb.free_bits(computed)
    gb.free_bits(with_b_zero)
    # Both-zero with differing (effective) signs is +0 under RNE.
    both_zero = gb.and_(a_is_zero, b_is_zero)
    same_sign = gb.xnor(sign_a, sign_b)
    diff_sign = gb.not_(same_sign)
    force_pzero = gb.and_(both_zero, diff_sign)
    zero_pattern = bv.const_bits(gb, 0, 32)
    result = bv.mux_bits(gb, force_pzero, zero_pattern, with_a_zero)
    gb.free_bits(with_a_zero)
    gb.free_bits([both_zero, same_sign, diff_sign, force_pzero])
    gb.free_bits([a_is_zero, b_is_zero, sign_b])

    gb.write_register(result, dest)
    gb.free_bits(result)


def lower_fmul(gb: GateBuilder, dest: int, a: int, b: int) -> None:
    """``dest = a * b`` in IEEE binary32 with RNE (FTZ, overflow to inf)."""
    a_bits, sign_a, exp_a, frac_a = _fields(gb, a)
    b_bits, sign_b, exp_b, frac_b = _fields(gb, b)
    zero, one = gb.const(0), gb.const(1)

    result_sign = gb.xor(sign_a, sign_b)
    a_is_zero = bv.is_zero(gb, exp_a)
    b_is_zero = bv.is_zero(gb, exp_b)

    # 24x24 -> 48-bit mantissa product (shift-and-add; garbage when an
    # operand is zero is fine, the early-out below discards it).
    mant_a = frac_a + [one]
    mant_b = frac_b + [one]
    not_a = bv.not_bits(gb, mant_a)
    product: List[Cell] = []
    for i in range(24):
        not_b_i = gb.not_(mant_b[i])
        addend = [gb.nor(not_a[j], not_b_i) for j in range(24)]
        gb.free(not_b_i)
        if i == 0:
            product = addend
            continue
        upper = product[i:]
        if len(upper) < 24:  # step 1 only: step 0 appended no carry bit
            upper = upper + [zero] * (24 - len(upper))
        total, carry = bv.ripple_add(gb, upper, addend)
        gb.free_bits(upper)
        gb.free_bits(addend)
        product = product[:i] + total + [carry]
    gb.free_bits(not_a)

    # Product in [1, 4): normalize by the top bit.
    norm_sel = product[47]
    mant = bv.mux_bits(gb, norm_sel, product[24:48], product[23:47])
    guard = gb.mux(norm_sel, product[23], product[22])
    low_or = bv.or_tree(gb, product[:22])
    extra = gb.and_(norm_sel, product[22])
    sticky = gb.or_(low_or, extra)
    gb.free_bits([low_or, extra])
    rounded, round_carry = bv.round_nearest_even(gb, mant, guard, zero, sticky)
    gb.free_bits(mant)
    gb.free_bits([guard, sticky])

    # exponent = ea + eb - 127 + norm_sel + round_carry (mod 1024, signed)
    t1, c1 = bv.ripple_add(gb, _exp10(gb, exp_a), _exp10(gb, exp_b), cin=norm_sel)
    gb.free(c1)
    t2, c2 = bv.ripple_add(gb, t1, bv.const_bits(gb, 1024 - BIAS, 10), cin=round_carry)
    gb.free_bits([c2, round_carry])
    gb.free_bits(t1)
    gb.free_bits(product)

    underflow, overflow = _flags_from_exp10(gb, t2)
    assembled = rounded[:23] + t2[:8] + [result_sign]
    computed = _apply_specials(gb, assembled, result_sign, overflow, underflow)
    gb.free_bits(rounded)
    gb.free_bits(t2)
    gb.free_bits([underflow, overflow])

    either_zero = gb.or_(a_is_zero, b_is_zero)
    zero_pattern = [zero] * 31 + [result_sign]
    result = bv.mux_bits(gb, either_zero, zero_pattern, computed)
    gb.free_bits(computed)
    gb.free_bits([either_zero, a_is_zero, b_is_zero, result_sign])

    gb.write_register(result, dest)
    gb.free_bits(result)


def lower_fdiv(gb: GateBuilder, dest: int, a: int, b: int) -> None:
    """``dest = a / b`` in IEEE binary32 with RNE.

    Restoring division produces 27 quotient bits plus an exact remainder
    sticky, so rounding is exact. ``a/0`` yields a signed infinity and
    ``0/0`` yields +0 (documented deviation; NumPy raises warnings and
    produces inf/nan — the tests avoid zero divisors).
    """
    _, sign_a, exp_a, frac_a = _fields(gb, a)
    _, sign_b, exp_b, frac_b = _fields(gb, b)
    zero, one = gb.const(0), gb.const(1)

    result_sign = gb.xor(sign_a, sign_b)
    a_is_zero = bv.is_zero(gb, exp_a)
    b_is_zero = bv.is_zero(gb, exp_b)

    mant_a = frac_a + [one]
    mant_b = frac_b + [one]
    den = list(mant_b) + [zero]  # 25-bit working width

    rem = bv.copy_bits(gb, mant_a) + [gb.copy(zero)]
    qbits: List[Cell] = []  # generation order: weights 2**0 .. 2**-26
    for _ in range(27):
        diff, borrow = bv.ripple_sub(gb, rem, den)
        qbits.append(gb.not_(borrow))
        kept = bv.mux_bits(gb, borrow, rem, diff)
        gb.free(borrow)
        gb.free_bits(diff)
        gb.free_bits(rem)
        gb.free(kept[24])  # always 0: remainder < divisor < 2**24
        rem = [gb.copy(zero)] + kept[:24]
    nonzero_rem = bv.or_tree(gb, rem)
    gb.free_bits(rem)

    # Normalize: quotient in (1/2, 2). q0 set -> 1.q1..q23; else hidden q1.
    q0 = qbits[0]
    mant_hi = list(reversed(qbits[0:24]))
    mant_lo = list(reversed(qbits[1:25]))
    mant = bv.mux_bits(gb, q0, mant_hi, mant_lo)
    guard = gb.mux(q0, qbits[24], qbits[25])
    rnd = gb.mux(q0, qbits[25], qbits[26])
    extra = gb.and_(q0, qbits[26])
    sticky = gb.or_(nonzero_rem, extra)
    gb.free_bits([nonzero_rem, extra])
    rounded, round_carry = bv.round_nearest_even(gb, mant, guard, rnd, sticky)
    gb.free_bits(mant)
    gb.free_bits([guard, rnd, sticky])

    # exponent = ea - eb + 126 + q0 + round_carry (mod 1024, signed)
    neg_eb = bv.not_bits(gb, _exp10(gb, exp_b))
    t1, c1 = bv.ripple_add(gb, _exp10(gb, exp_a), neg_eb, cin=one)
    gb.free_bits(neg_eb)
    gb.free(c1)
    t2, c2 = bv.ripple_add(gb, t1, bv.const_bits(gb, 126, 10), cin=q0)
    gb.free_bits(t1)
    gb.free(c2)
    t3, c3 = bv.increment(gb, t2, round_carry)
    gb.free_bits(t2)
    gb.free_bits([c3, round_carry])
    gb.free_bits(qbits)

    underflow, overflow = _flags_from_exp10(gb, t3)
    assembled = rounded[:23] + t3[:8] + [result_sign]
    computed = _apply_specials(gb, assembled, result_sign, overflow, underflow)
    gb.free_bits(rounded)
    gb.free_bits(t3)
    gb.free_bits([underflow, overflow])

    # b == 0 -> signed infinity; a == 0 -> signed zero (outermost).
    inf_pattern = [zero] * FRAC_BITS + [one] * EXP_BITS + [result_sign]
    with_inf = bv.mux_bits(gb, b_is_zero, inf_pattern, computed)
    zero_pattern = [zero] * 31 + [result_sign]
    result = bv.mux_bits(gb, a_is_zero, zero_pattern, with_inf)
    gb.free_bits(computed)
    gb.free_bits(with_inf)
    gb.free_bits([a_is_zero, b_is_zero, result_sign])

    gb.write_register(result, dest)
    gb.free_bits(result)


def _float_lt(gb: GateBuilder, a_bits: List[Cell], b_bits: List[Cell]) -> Cell:
    """``a < b`` for finite floats (sign-magnitude order, ±0 equal)."""
    sign_a, sign_b = a_bits[31], b_bits[31]
    a_is_zero = bv.is_zero(gb, a_bits[23:31])
    b_is_zero = bv.is_zero(gb, b_bits[23:31])
    both_zero = gb.and_(a_is_zero, b_is_zero)
    gb.free_bits([a_is_zero, b_is_zero])
    mag_lt = bv.ult(gb, a_bits[:31], b_bits[:31])
    mag_gt = bv.ult(gb, b_bits[:31], a_bits[:31])
    same_sign_branch = gb.mux(sign_a, mag_gt, mag_lt)
    diff_sign = gb.xor(sign_a, sign_b)
    pre = gb.mux(diff_sign, sign_a, same_sign_branch)
    not_both_zero = gb.not_(both_zero)
    out = gb.and_(pre, not_both_zero)
    gb.free_bits([both_zero, mag_lt, mag_gt, same_sign_branch, diff_sign, pre, not_both_zero])
    return out


def _float_eq(gb: GateBuilder, a_bits: List[Cell], b_bits: List[Cell]) -> Cell:
    """``a == b`` for finite floats (bit equality or both zero)."""
    raw_eq = bv.equals(gb, a_bits, b_bits)
    a_is_zero = bv.is_zero(gb, a_bits[23:31])
    b_is_zero = bv.is_zero(gb, b_bits[23:31])
    both_zero = gb.and_(a_is_zero, b_is_zero)
    out = gb.or_(raw_eq, both_zero)
    gb.free_bits([raw_eq, a_is_zero, b_is_zero, both_zero])
    return out


def lower_fcompare(gb: GateBuilder, op: str, dest: int, a: int, b: int) -> None:
    """Floating comparisons producing 0/1 words (op in lt/le/gt/ge/eq/ne)."""
    a_bits = gb.register_cells(a)
    b_bits = gb.register_cells(b)
    if op in ("eq", "ne"):
        flag = _float_eq(gb, a_bits, b_bits)
        invert = op == "ne"
    elif op in ("lt", "ge"):
        flag = _float_lt(gb, a_bits, b_bits)
        invert = op == "ge"
    elif op in ("gt", "le"):
        flag = _float_lt(gb, b_bits, a_bits)
        invert = op == "le"
    else:
        raise ValueError(f"unknown comparison {op}")
    if invert:
        inverted = gb.not_(flag)
        gb.free(flag)
        flag = inverted
    write_flag(gb, flag, dest)
    gb.free(flag)


def lower_fneg(gb: GateBuilder, dest: int, a: int) -> None:
    """``dest = -a`` (sign-bit flip, exact for every input incl. ±0)."""
    a_bits = gb.register_cells(a)
    flipped = gb.not_(a_bits[31])
    gb.write_register(a_bits[:31] + [flipped], dest)
    gb.free(flipped)


def lower_fabs(gb: GateBuilder, dest: int, a: int) -> None:
    """``dest = |a|`` (sign-bit clear)."""
    a_bits = gb.register_cells(a)
    gb.write_register(a_bits[:31] + [gb.const(0)], dest)


def lower_fsign(gb: GateBuilder, dest: int, a: int) -> None:
    """``dest = sign(a)`` in {-1.0, 0.0, 1.0} (zero for FTZ inputs)."""
    a_bits = gb.register_cells(a)
    a_is_zero = bv.is_zero(gb, a_bits[23:31])
    nonzero = gb.not_(a_is_zero)
    gb.free(a_is_zero)
    sign = gb.and_(a_bits[31], nonzero)
    zero = gb.const(0)
    # ±1.0: exponent 127 = 0b01111111, fraction 0.
    result = [zero] * 23 + [nonzero] * 7 + [zero] + [sign]
    gb.write_register(result, dest)
    gb.free_bits([nonzero, sign])


def lower_fzero(gb: GateBuilder, dest: int, a: int) -> None:
    """``dest = 1 if a == ±0 (incl. FTZ subnormals) else 0``."""
    a_bits = gb.register_cells(a)
    flag = bv.is_zero(gb, a_bits[23:31])
    write_flag(gb, flag, dest)
    gb.free(flag)
