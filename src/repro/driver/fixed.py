"""Fixed-point (two's complement) arithmetic routines (AritPIM suite).

Every routine lowers one R-type macro-instruction on ``int32`` registers
into a gate sequence via the :class:`GateBuilder`. Routines compute into
scratch cells and materialize the result with :meth:`write_register`, which
makes them alias-safe (``dest`` may equal a source); addition and
subtraction additionally have a direct-to-destination fast path saving the
final copy when there is no aliasing.

Semantics (matching the NumPy ground truth used by the tests):

- add/sub/mul/neg wrap around modulo 2**32 (like ``np.int32``);
- division truncates toward zero (``int(a / b)``), matching the paper's
  ``__truediv__`` test which casts ``np.true_divide`` back to int32;
- modulo takes the sign of the dividend (C semantics, ``a - trunc(a/b)*b``);
- division/modulo by zero are documented as undefined (tests avoid them).

The gate sequences these routines emit are deterministic in the operands,
so the :class:`~repro.driver.driver.Driver` records them once into an
immutable :class:`~repro.driver.program.MicroProgram` and replays the
compiled stream on every repeated macro-instruction (see
``docs/architecture.md``, compile/replay pipeline).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.driver import bitvec as bv
from repro.driver.gates import Cell, GateBuilder


def _full_adder_into(gb: GateBuilder, a: Cell, b: Cell, cin: Cell, out: Cell) -> Cell:
    """9-NOR full adder writing the sum into a pre-initialized cell."""
    n1 = gb.nor(a, b)
    n2 = gb.nor(a, n1)
    n3 = gb.nor(b, n1)
    n4 = gb.nor(n2, n3)
    n5 = gb.nor(n4, cin)
    n6 = gb.nor(n4, n5)
    n7 = gb.nor(cin, n5)
    gb.nor_into(n6, n7, out)
    cout = gb.nor(n1, n5)
    gb.free_bits([n1, n2, n3, n4, n5, n6, n7])
    return cout


def negate(gb: GateBuilder, bits: bv.BitVec) -> bv.BitVec:
    """Two's complement negation: ``~bits + 1``."""
    inverted = bv.not_bits(gb, bits)
    out, carry = bv.increment(gb, inverted, gb.const(1))
    gb.free_bits(inverted)
    gb.free(carry)
    return out


def write_flag(gb: GateBuilder, flag: Cell, dest_reg: int) -> None:
    """Write a 0/1 word: bit 0 gets ``flag``, all other bits become 0."""
    gb.init_column(dest_reg, 0)
    gb.init_cell((dest_reg, 0), 1)
    gb.copy_into(flag, (dest_reg, 0))


def lower_add(gb: GateBuilder, dest: int, a: int, b: int, subtract: bool = False) -> None:
    """``dest = a + b`` (or ``a - b``), wrapping modulo 2**32."""
    a_bits = gb.register_cells(a)
    b_bits = gb.register_cells(b)
    if dest in (a, b):
        if subtract:
            result, borrow = bv.ripple_sub(gb, a_bits, b_bits)
            gb.free(borrow)
        else:
            result, carry = bv.ripple_add(gb, a_bits, b_bits)
            gb.free(carry)
        gb.write_register(result, dest)
        gb.free_bits(result)
        return
    # Fast path: ripple directly into the destination column.
    gb.init_column(dest, 1)
    if subtract:
        operand = bv.not_bits(gb, b_bits)
        carry: Cell = gb.const(1)
    else:
        operand = list(b_bits)
        carry = gb.const(0)
    own_carry = False
    for part, (a_bit, b_bit) in enumerate(zip(a_bits, operand)):
        cout = _full_adder_into(gb, a_bit, b_bit, carry, (dest, part))
        if own_carry:
            gb.free(carry)
        carry, own_carry = cout, True
    gb.free(carry)
    if subtract:
        gb.free_bits(operand)


def lower_neg(gb: GateBuilder, dest: int, a: int) -> None:
    """``dest = -a`` (two's complement, wrapping at INT_MIN)."""
    result = negate(gb, gb.register_cells(a))
    gb.write_register(result, dest)
    gb.free_bits(result)


def lower_abs(gb: GateBuilder, dest: int, a: int) -> None:
    """``dest = |a|`` (INT_MIN wraps to itself, like ``np.abs``)."""
    a_bits = gb.register_cells(a)
    negated = negate(gb, a_bits)
    result = bv.mux_bits(gb, a_bits[-1], negated, a_bits)
    gb.free_bits(negated)
    gb.write_register(result, dest)
    gb.free_bits(result)


def lower_sign(gb: GateBuilder, dest: int, a: int) -> None:
    """``dest = sign(a)`` in {-1, 0, 1}.

    Bit 0 of the result is the nonzero flag; bits 1..31 replicate the sign
    bit (yielding 0xFFFFFFFF == -1 for negatives).
    """
    a_bits = gb.register_cells(a)
    nonzero = bv.or_tree(gb, a_bits)
    high = bv.broadcast(gb, a_bits[-1], len(a_bits) - 1)
    result = [nonzero] + high
    gb.write_register(result, dest)
    gb.free_bits(result)


def lower_zero(gb: GateBuilder, dest: int, a: int) -> None:
    """``dest = 1 if a == 0 else 0``."""
    flag = bv.is_zero(gb, gb.register_cells(a))
    write_flag(gb, flag, dest)
    gb.free(flag)


def lower_compare(gb: GateBuilder, op: str, dest: int, a: int, b: int) -> None:
    """Signed comparisons producing a 0/1 word (op in lt/le/gt/ge/eq/ne)."""
    a_bits = gb.register_cells(a)
    b_bits = gb.register_cells(b)
    if op in ("eq", "ne"):
        flag = bv.equals(gb, a_bits, b_bits)
        invert = op == "ne"
    elif op in ("lt", "ge"):
        flag = bv.slt(gb, a_bits, b_bits)
        invert = op == "ge"
    elif op in ("gt", "le"):
        flag = bv.slt(gb, b_bits, a_bits)
        invert = op == "le"
    else:
        raise ValueError(f"unknown comparison {op}")
    if invert:
        inverted = gb.not_(flag)
        gb.free(flag)
        flag = inverted
    write_flag(gb, flag, dest)
    gb.free(flag)


def lower_bitwise(gb: GateBuilder, op: str, dest: int, a: int, b: int = None) -> None:
    """Bit-serial bitwise operations (the partition-parallel fast path in
    :mod:`repro.driver.parallel` is preferred; this exists for the
    parallelism ablation)."""
    a_bits = gb.register_cells(a)
    if op == "bit_not":
        result = bv.not_bits(gb, a_bits)
    else:
        b_bits = gb.register_cells(b)
        func = {"bit_and": bv.and_bits, "bit_or": bv.or_bits, "bit_xor": bv.xor_bits}[op]
        result = func(gb, a_bits, b_bits)
    gb.write_register(result, dest)
    gb.free_bits(result)


def lower_mux(gb: GateBuilder, dest: int, cond: int, a: int, b: int) -> None:
    """``dest = a if cond else b`` with the condition in bit 0 of ``cond``."""
    cond_cell = (cond, 0)
    result = bv.mux_bits(
        gb, cond_cell, gb.register_cells(a), gb.register_cells(b)
    )
    gb.write_register(result, dest)
    gb.free_bits(result)


def lower_copy(gb: GateBuilder, dest: int, a: int) -> None:
    """``dest = a`` (two parallel NOT micro-ops through a scratch column)."""
    if dest == a:
        return
    scratch = gb.reserve_column()
    gb.init_column(scratch, 1)
    gb.not_column(a, scratch)
    gb.init_column(dest, 1)
    gb.not_column(scratch, dest)
    gb.release_column(scratch)


def lower_mul(gb: GateBuilder, dest: int, a: int, b: int) -> None:
    """``dest = a * b`` truncated to 32 bits.

    Shift-and-add on the raw two's-complement words: the truncated product
    equals the unsigned product modulo 2**32, so no sign handling is
    needed. The complements of ``a``'s bits are computed once and reused by
    every partial product (the AND is a single NOR per bit).
    """
    a_bits = gb.register_cells(a)
    b_bits = gb.register_cells(b)
    width = len(a_bits)
    not_a = bv.not_bits(gb, a_bits)
    acc: List[Cell] = []
    for i in range(width):
        not_b_i = gb.not_(b_bits[i])
        addend = [gb.nor(not_a[j], not_b_i) for j in range(width - i)]
        gb.free(not_b_i)
        if i == 0:
            acc = addend
            continue
        upper = acc[i:]
        total, carry = bv.ripple_add(gb, upper, addend)
        gb.free(carry)
        gb.free_bits(upper)
        gb.free_bits(addend)
        acc = acc[:i] + total
    gb.free_bits(not_a)
    gb.write_register(acc, dest)
    gb.free_bits(acc)


def _unsigned_divmod(
    gb: GateBuilder, num: bv.BitVec, den: bv.BitVec
) -> Tuple[bv.BitVec, bv.BitVec]:
    """Restoring division of unsigned vectors; returns (quotient, remainder).

    The remainder is kept one bit wider than the operands during the loop
    (after the shift-in it can reach ``2 * den``).
    """
    width = len(num)
    zero = gb.const(0)
    den_ext = list(den) + [zero]
    rem: bv.BitVec = [zero] * (width + 1)
    rem_owned = False
    quotient: List[Cell] = [None] * width  # type: ignore[list-item]
    for i in reversed(range(width)):
        shifted = [gb.copy(num[i])] + rem[:width]
        if rem_owned:
            gb.free(rem[width])
        diff, borrow = bv.ripple_sub(gb, shifted, den_ext)
        quotient[i] = gb.not_(borrow)
        new_rem = bv.mux_bits(gb, borrow, shifted, diff)
        gb.free(borrow)
        gb.free_bits(diff)
        gb.free_bits(shifted)
        rem, rem_owned = new_rem, True
    remainder = rem[:width]
    if rem_owned:
        gb.free(rem[width])
    else:
        remainder = bv.copy_bits(gb, remainder)
    return quotient, remainder


def lower_divmod(gb: GateBuilder, op: str, dest: int, a: int, b: int) -> None:
    """``dest = a / b`` (trunc toward zero) or ``a % b`` (sign of dividend).

    Both raw words are conditionally negated to magnitudes, an unsigned
    restoring division runs, and the requested output is sign-corrected.
    INT_MIN magnitudes work because 0x80000000 is its own two's complement
    and the unsigned datapath treats it as 2**31.
    """
    if op not in ("div", "mod"):
        raise ValueError(f"unknown division op {op}")
    a_bits = gb.register_cells(a)
    b_bits = gb.register_cells(b)
    sign_a, sign_b = a_bits[-1], b_bits[-1]

    neg_a = negate(gb, a_bits)
    mag_a = bv.mux_bits(gb, sign_a, neg_a, a_bits)
    gb.free_bits(neg_a)
    neg_b = negate(gb, b_bits)
    mag_b = bv.mux_bits(gb, sign_b, neg_b, b_bits)
    gb.free_bits(neg_b)

    quotient, remainder = _unsigned_divmod(gb, mag_a, mag_b)
    gb.free_bits(mag_a)
    gb.free_bits(mag_b)

    if op == "div":
        sign_q = gb.xor(sign_a, sign_b)
        neg_q = negate(gb, quotient)
        result = bv.mux_bits(gb, sign_q, neg_q, quotient)
        gb.free_bits(neg_q)
        gb.free(sign_q)
    else:
        neg_r = negate(gb, remainder)
        result = bv.mux_bits(gb, sign_a, neg_r, remainder)
        gb.free_bits(neg_r)
    gb.free_bits(quotient)
    gb.free_bits(remainder)
    gb.write_register(result, dest)
    gb.free_bits(result)
