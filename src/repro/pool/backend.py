"""The pooled backend: N worker backends sharding one crossbar space.

Sharding model
--------------

A :class:`PooledBackend` over a config of ``C`` crossbars owns ``N``
workers (``N`` a power of two, ``N <= C``); worker ``k`` executes warps
``[k*C/N, (k+1)*C/N)`` on its own :class:`~repro.backend.simulator.
SimulatorBackend` or :class:`~repro.backend.numpy_backend.NumpyBackend`
built for the ``C/N``-crossbar sub-geometry. All workers share one
``(C, registers, rows)`` word image — each worker's memory array is a
contiguous axis-0 view into it — so DMA marshalling
(``PIMDevice.load_array``/``dump_array`` writing ``backend.words``)
needs no scatter/gather, and cross-shard data movement is a plain slice
copy.

Instruction routing:

- :class:`~repro.isa.instructions.RInstr` / ``WriteInstr`` / intra-warp
  ``MoveInstr`` (``warp_dist == 0``): the warp mask is intersected with
  each shard's window, rebased to shard-local coordinates, and the
  localized instruction dispatched to every worker it touches.
- ``ReadInstr``: routed to the worker owning the warp.
- Inter-warp ``MoveInstr`` (``warp_dist != 0``): always executed at pool
  level as a *bridge* — a functional slice copy over the shared image.
  H-tree legality depends on the total crossbar count, so validating the
  full-geometry pattern at pool level (never a rebased shard pattern)
  keeps accept/reject behavior bit-identical to a single device.

Cycle accounting is *canonical*, not additive: the pool charges the
full-geometry accounting walk of the driver's lowering for every
instruction (memoized, exactly like the NumPy backend), so a pooled run
reports the same :class:`~repro.sim.stats.SimStats` a single device
would — the crossbars of one memory operate in lock-step, and sharding
the host-side work does not change what the chip executes. Worker
backends keep their own per-shard stats for inspection
(:meth:`PooledBackend.worker_stats`).

Compiled streams (:meth:`PooledBackend.compile`) become a
:class:`PooledProgram`: the instruction stream is cut at bridges into
segments, each segment compiled per worker it touches, and replay runs
segments in order (bridges at pool level, shard segments through each
worker's own compiled-replay fast path). The replayed response is the
globally-last read's worker result.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.config import PIMConfig
from repro.arch.masks import RangeMask
from repro.backend.base import Backend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.simulator import SimulatorBackend
from repro.driver.driver import Driver
from repro.driver.program import config_fingerprint
from repro.faults.checksum import ChecksumError, image_checksum
from repro.faults.plan import ShardError, WorkerFault
from repro.isa.instructions import (
    Instruction,
    MoveInstr,
    ReadInstr,
    RInstr,
    WriteInstr,
    validate,
)
from repro.sim.simulator import SimulationError, accounting_walk
from repro.sim.stats import SimStats

#: Worker-backend choices for ``pim.init(backend="pooled", worker_backend=...)``.
WORKER_BACKENDS = {
    "simulator": SimulatorBackend,
    "sim": SimulatorBackend,
    "bit": SimulatorBackend,
    "numpy": NumpyBackend,
    "functional": NumpyBackend,
}


def shard_mask(mask: RangeMask, lo: int, hi: int) -> Optional[RangeMask]:
    """Intersect a full-geometry range mask with the window ``[lo, hi]``.

    Returns the intersection *rebased to window-local coordinates*, or
    ``None`` when the mask selects nothing inside the window. The step is
    preserved, so strided masks spanning several shards split exactly.
    """
    if mask.start > hi or mask.stop < lo:
        return None
    step = mask.step
    first = mask.start
    if first < lo:
        first += -(-(lo - first) // step) * step
    top = min(mask.stop, hi)
    if first > top:
        return None
    last = first + ((top - first) // step) * step
    return RangeMask(first - lo, last - lo, step)


@dataclass(frozen=True)
class _Segment:
    """One replay unit of a :class:`PooledProgram`.

    ``kind == "bridge"``: ``instr`` is the inter-warp move executed at
    pool level. ``kind == "shard"``: ``programs`` maps worker index to
    that worker's compiled program for this run of instructions.
    """

    kind: str
    instr: Optional[MoveInstr] = None
    programs: Optional[Tuple[Tuple[int, object], ...]] = None


@dataclass(frozen=True, eq=False)
class PooledProgram:
    """A compiled macro stream, pre-split across the worker shards.

    Identity-hashed like its single-device twins. ``stats_delta`` is the
    canonical full-geometry cycle bill charged once per replay;
    ``response_site`` is the ``(segment index, worker index)`` holding
    the stream's last read (``None`` for read-free streams).
    """

    segments: Tuple[_Segment, ...]
    name: str
    config_fingerprint: Tuple[int, int, int, int, int]
    stats_delta: SimStats
    macros: int
    source_ops: int = 0
    response_site: Optional[Tuple[int, int]] = None

    def __len__(self) -> int:
        return self.stats_delta.micro_ops


class PooledBackend(Backend):
    """N-worker inter-crossbar sharding behind the ``Backend`` protocol.

    Args:
        config: the *full* geometry (all ``C`` crossbars).
        workers: shard count ``N`` (power of two, at most ``C``).
        worker_backend: per-shard engine — ``"simulator"`` (bit-accurate,
            default) or ``"numpy"`` (functional).
        move_cost: the move-cost model, applied to both the canonical
            accounting and the workers.
        **driver_kwargs: forwarded to the accounting driver and every
            worker (``parallelism``, ``cache_size``, ``cache_dir``, ...),
            so e.g. a persistent cache directory warms all shards.
    """

    name = "pooled"

    def __init__(
        self,
        config: PIMConfig,
        workers: int = 4,
        worker_backend: str = "simulator",
        move_cost: str = "unit",
        **driver_kwargs,
    ):
        super().__init__(config)
        workers = int(workers)
        if workers < 1 or (workers & (workers - 1)):
            raise ValueError("workers must be a positive power of two")
        if workers > config.crossbars:
            raise ValueError(
                f"cannot shard {config.crossbars} crossbars across "
                f"{workers} workers"
            )
        try:
            worker_cls = WORKER_BACKENDS[str(worker_backend).lower()]
        except KeyError:
            raise ValueError(
                f"unknown worker backend {worker_backend!r}; choose from "
                f"{sorted(set(WORKER_BACKENDS))}"
            ) from None
        self.shard = config.crossbars // workers
        self._sub_config = replace(config, crossbars=self.shard)
        # Kept so failover can spawn a replacement worker with the exact
        # construction arguments of the one it retires.
        self._worker_cls = worker_cls
        self._worker_kwargs = dict(driver_kwargs)
        self.workers: List[Backend] = [
            worker_cls(self._sub_config, move_cost=move_cost, **driver_kwargs)
            for _ in range(workers)
        ]
        # One shared word image; each worker's memory becomes a contiguous
        # axis-0 view (safe pre-execution: simulator replay plans and the
        # numpy backend's closures resolve regions lazily, so every later
        # access goes through the view).
        self._words = np.zeros_like(self._worker_words(0), shape=(
            config.crossbars, config.registers, config.rows
        ))
        for k in range(workers):
            lo = k * self.shard
            self._set_worker_words(k, self._words[lo : lo + self.shard])
        self.move_cost = move_cost
        self._stats = SimStats()
        # The accounting driver lowers against the FULL geometry purely to
        # price instructions; its chip port is never used.
        self._acc = Driver(None, config=config, **driver_kwargs)
        self._instr_stats: Dict[Instruction, SimStats] = {}
        self._hits = 0
        self._misses = 0
        self._stream_programs: Dict[Tuple, PooledProgram] = {}
        self._emit_counters: Dict[str, int] = {"stream": 0, "macro": 0}
        # Fault-injection / resilience state (repro.faults).
        self._fault_plan = None
        self._pool_overlay = None
        self._resilient = False
        self._unit_counts = [0] * workers
        self._quarantined: List[Tuple[int, Backend]] = []
        self._fault_counters: Dict[str, int] = {
            "worker_faults": 0,
            "failovers": 0,
        }
        self._verify_checks = 0
        self._verify_detected = 0

    # ------------------------------------------------------------------
    # Worker memory plumbing
    # ------------------------------------------------------------------
    def _worker_words(self, k: int) -> np.ndarray:
        worker = self.workers[k]
        if isinstance(worker, SimulatorBackend):
            return worker.simulator.memory.words
        return worker._words

    def _set_worker_words(self, k: int, view: np.ndarray) -> None:
        worker = self.workers[k]
        if isinstance(worker, SimulatorBackend):
            worker.simulator.memory.words = view
        else:
            worker._words = view

    def worker_stats(self) -> List[SimStats]:
        """Per-shard stats snapshots (host-side accounting of each worker)."""
        return [worker.stats.copy() for worker in self.workers]

    # ------------------------------------------------------------------
    # Backend interface
    # ------------------------------------------------------------------
    @property
    def words(self) -> np.ndarray:
        return self._words

    @property
    def stats(self) -> SimStats:
        return self._stats

    @property
    def cache_hits(self) -> int:
        return self._hits

    @property
    def cache_misses(self) -> int:
        return self._misses

    @property
    def cache_evictions(self) -> int:
        total = self._acc.programs.evictions + self._acc.streams.evictions
        for worker in self.workers:
            total += worker.cache_evictions
        return total

    def persist_counters(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        drivers = [self._acc] + [
            w.driver if isinstance(w, SimulatorBackend) else w._driver
            for w in self.workers
        ]
        for driver in drivers:
            if driver.persist is None:
                continue
            for kind, count in driver.persist.counters().items():
                merged[kind] = merged.get(kind, 0) + count
        return merged

    def install_faults(self, plan) -> object:
        """Arm a :class:`~repro.faults.plan.FaultPlan` on the pool.

        Cell faults become a single overlay over the *shared* word image
        (ticked once per pool-level dispatch boundary, exactly like a
        single device, so both engines and all shards see one fault
        timeline). Worker-failure entries arm resilient mode: a failed
        shard is quarantined and its work replayed bit-identically on a
        fresh replacement worker.
        """
        overlay = plan.overlay_for(self._words, self.config)
        self._fault_plan = plan
        self._pool_overlay = overlay
        self._resilient = bool(plan.worker_failures)
        return overlay

    def fault_counters(self) -> Dict[str, int]:
        counters: Dict[str, int] = {}
        if self._pool_overlay is not None:
            counters.update(self._pool_overlay.counters)
        for kind, count in self._fault_counters.items():
            if count:
                counters[kind] = count
        if self._quarantined:
            counters["quarantined_shards"] = len(self._quarantined)
        if self._verify_checks:
            counters["verify_checks"] = self._verify_checks
            counters["verify_detected"] = self._verify_detected
        return counters

    @property
    def quarantined_workers(self) -> List[Tuple[int, Backend]]:
        """Retired ``(shard index, worker)`` pairs, in failure order."""
        return list(self._quarantined)

    def execute(self, instr: Instruction) -> Optional[int]:
        validate(instr, self.config.registers)
        delta = self._instr_stats.get(instr)
        if delta is None:
            self._misses += 1
            ops = self._acc._lower_ops(instr)
            try:
                delta = self._replay_stats(ops)
            except SimulationError:
                self._charge_rejected_move(instr)
                raise
            if len(self._instr_stats) < 65536:
                self._instr_stats[instr] = delta
        else:
            self._hits += 1
        result = self._dispatch(instr)
        self._stats.merge(delta)
        if self._pool_overlay is not None:
            self._pool_overlay.tick()
        return result

    def compile(
        self,
        instructions: Sequence[Instruction],
        name: str = "stream",
        optimize: bool = True,
    ) -> PooledProgram:
        """Compile a stream: price it against the full geometry, then cut
        it at bridge moves and compile each segment per worker shard."""
        instrs = tuple(instructions)
        micro = self._acc.compile(list(instrs), name=name, optimize=optimize)
        delta = self._replay_stats(micro.ops)
        segments, response_site = self._partition(instrs, name, optimize)
        return PooledProgram(
            segments,
            name,
            config_fingerprint(self.config),
            delta,
            macros=len(instrs),
            source_ops=micro.source_ops,
            response_site=response_site,
        )

    def run_program(
        self, program: PooledProgram, verify: Optional[str] = None
    ) -> Optional[int]:
        if verify not in (None, "checksum"):
            raise ValueError(
                f"unknown verify mode {verify!r}; expected 'checksum'"
            )
        if program.config_fingerprint != config_fingerprint(self.config):
            raise SimulationError(
                f"program {program.name!r} was compiled for fingerprint "
                f"{program.config_fingerprint}, this backend is "
                f"{config_fingerprint(self.config)}"
            )
        self._hits += 1
        response: Optional[int] = None
        for index, segment in enumerate(program.segments):
            if segment.kind == "bridge":
                self._bridge_move(segment.instr)
                continue
            for k, sub in segment.programs:
                result = self._run_shard(
                    k, lambda w, sub=sub: w.run_program(sub), program.name
                )
                if program.response_site == (index, k):
                    response = result
        self._stats.merge(program.stats_delta)
        if verify is not None:
            # Whole-image granularity: the pool's shards share one word
            # image, so one CRC over it brackets the post-replay fault
            # window (region-precise checksums live in the single-device
            # drivers; the pool only needs corruption *detection*).
            self._verify_checks += 1
            before = image_checksum(self._words)
            if self._pool_overlay is not None:
                self._pool_overlay.tick()
            if image_checksum(self._words) != before:
                self._verify_detected += 1
                raise ChecksumError(program.name, None)
        elif self._pool_overlay is not None:
            self._pool_overlay.tick()
        return response

    def run_stream(
        self, instructions: Sequence[Instruction], name: str = "stream"
    ) -> Optional[int]:
        """Emit a whole stream through one cached :class:`PooledProgram`
        (the pooled twin of the driver's ``execute_stream`` ladder)."""
        from repro.driver.stream import MacroStream

        instrs = MacroStream.wrap(instructions)
        if not instrs:
            return None
        if self._acc.emit_mode == "stream":
            key = (instrs, name)
            program = self._stream_programs.get(key)
            if program is None:
                program = self.compile(instrs, name=name, optimize=False)
                if len(self._stream_programs) < 4096:
                    self._stream_programs[key] = program
            self._emit_counters["stream"] += 1
            return self.run_program(program)
        self._emit_counters["macro"] += 1
        response: Optional[int] = None
        for instr in instrs:
            result = self.execute(instr)
            if result is not None:
                response = result
        return response

    def emit_counters(self) -> Dict[str, int]:
        return dict(self._emit_counters)

    def program_stats(self, program: PooledProgram) -> SimStats:
        return program.stats_delta.copy()

    def stream_stats(self, instructions: Sequence[Instruction]) -> SimStats:
        ops = []
        for instr in instructions:
            ops.extend(self._acc._lower_ops(instr))
        return self._replay_stats(ops)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _dispatch(self, instr: Instruction) -> Optional[int]:
        if isinstance(instr, ReadInstr):
            k = instr.warp // self.shard
            local = replace(instr, warp=instr.warp - k * self.shard)
            return self._run_shard(
                k, lambda w, local=local: w.execute(local), instr
            )
        if isinstance(instr, MoveInstr) and instr.warp_dist:
            self._bridge_move(instr)
            return None
        for k, local in self._localize(instr):
            self._run_shard(k, lambda w, local=local: w.execute(local), instr)
        return None

    # ------------------------------------------------------------------
    # Shard fault handling: injection, quarantine, failover
    # ------------------------------------------------------------------
    def _run_shard(self, k: int, thunk, what) -> Optional[int]:
        """Run one unit of shard work with crash containment.

        Every worker call funnels through here. A worker exception (real
        or injected) either surfaces as a :class:`ShardError` carrying
        the shard id and program context, or — when a fault plan armed
        resilient mode — triggers failover: quarantine the worker, spawn
        a replacement on the same shard window, restore the shard's
        pre-unit memory from the snapshot, and re-run the unit
        bit-identically. Chip-model rejections (``SimulationError``) are
        architectural results, not crashes, and propagate untouched.
        """
        unit = self._unit_counts[k]
        self._unit_counts[k] = unit + 1
        lo = k * self.shard
        snapshot = None
        if self._resilient:
            snapshot = self._words[lo : lo + self.shard].copy()
        try:
            self._maybe_inject(k, unit, lo, snapshot is not None)
            return thunk(self.workers[k])
        except SimulationError:
            raise
        except Exception as exc:
            if snapshot is not None:
                return self._failover(k, snapshot, thunk, what, exc)
            raise ShardError(
                k, (lo, lo + self.shard - 1), self._context(what), exc
            ) from exc

    def _maybe_inject(
        self, k: int, unit: int, lo: int, resilient: bool
    ) -> None:
        plan = self._fault_plan
        if plan is None or not plan.worker_fails(k, unit):
            return
        self._fault_counters["worker_faults"] += 1
        if resilient:
            # A crashing worker may leave its shard image in any state;
            # scribble seeded garbage so failover provably restores from
            # the snapshot rather than getting lucky.
            shard_view = self._words[lo : lo + self.shard]
            rng = np.random.default_rng((plan.seed, k, unit))
            limit = 1 << self.config.word_size
            shard_view[...] = rng.integers(
                0, limit, size=shard_view.shape, dtype=np.uint64
            ).astype(shard_view.dtype)
        raise WorkerFault(
            f"injected fault in pool worker {k} (unit {unit})"
        )

    def _failover(self, k, snapshot, thunk, what, cause) -> Optional[int]:
        lo = k * self.shard
        self._quarantined.append((k, self.workers[k]))
        self.workers[k] = self._worker_cls(
            self._sub_config, move_cost=self.move_cost, **self._worker_kwargs
        )
        self._set_worker_words(k, self._words[lo : lo + self.shard])
        self._words[lo : lo + self.shard] = snapshot
        self._fault_counters["failovers"] += 1
        try:
            return thunk(self.workers[k])
        except SimulationError:
            raise
        except Exception as exc:
            raise ShardError(
                k, (lo, lo + self.shard - 1), self._context(what), exc
            ) from exc

    @staticmethod
    def _context(what) -> str:
        return what if isinstance(what, str) else repr(what)

    def _localize(self, instr: Instruction):
        """Split a warp-masked instruction across the shards it touches."""
        mask = instr.warp_mask or RangeMask.all(self.config.crossbars)
        for k in range(len(self.workers)):
            lo = k * self.shard
            local = shard_mask(mask, lo, lo + self.shard - 1)
            if local is not None:
                yield k, replace(instr, warp_mask=local)

    def _bridge_move(self, instr: MoveInstr) -> None:
        """Execute an inter-warp move over the shared word image.

        The H-tree pattern was already validated against the full
        geometry by the canonical accounting (strict walk), which runs
        before any mutation — so by the time a bridge executes, the move
        is known legal and reduces to an exact word copy.  To stay
        bit-identical with the single-device memory image, the staging
        residue of the lowering is reproduced too: the H-tree lands the
        word in ``stage1`` of the destination warps and the NOT pair
        leaves ``stage2 = ~v`` before writing the destination register.
        """
        warps = instr.warp_mask or RangeMask.all(self.config.crossbars)
        sources = np.fromiter(warps.indices(), dtype=np.int64)
        dests = sources + instr.warp_dist
        value = self._words[sources, instr.src_reg, instr.src_thread]
        stage1, stage2 = self._acc._stage_registers()
        self._words[dests, stage1, instr.dst_thread] = value
        self._words[dests, stage2, instr.dst_thread] = ~value
        self._words[dests, instr.dst_reg, instr.dst_thread] = value

    def _partition(
        self, instrs: Tuple[Instruction, ...], name: str, optimize: bool
    ):
        """Cut a stream at bridges; compile each segment per shard."""
        segments: List[_Segment] = []
        pending: List[List[Instruction]] = [[] for _ in self.workers]
        pending_read: Optional[int] = None
        response_site: Optional[Tuple[int, int]] = None

        def flush() -> None:
            nonlocal pending, pending_read, response_site
            if any(pending):
                programs = tuple(
                    (
                        k,
                        self.workers[k].compile(
                            sub,
                            name=f"{name}#s{len(segments)}w{k}",
                            optimize=optimize,
                        ),
                    )
                    for k, sub in enumerate(pending)
                    if sub
                )
                segments.append(_Segment("shard", programs=programs))
                if pending_read is not None:
                    response_site = (len(segments) - 1, pending_read)
            pending = [[] for _ in self.workers]
            pending_read = None

        for instr in instrs:
            if isinstance(instr, MoveInstr) and instr.warp_dist:
                flush()
                segments.append(_Segment("bridge", instr=instr))
            elif isinstance(instr, ReadInstr):
                k = instr.warp // self.shard
                pending[k].append(
                    replace(instr, warp=instr.warp - k * self.shard)
                )
                pending_read = k
            else:
                for k, local in self._localize(instr):
                    pending[k].append(local)
        flush()
        return tuple(segments), response_site

    # ------------------------------------------------------------------
    # Canonical accounting
    # ------------------------------------------------------------------
    def _replay_stats(self, ops) -> SimStats:
        """Full-geometry cycle bill with the simulator's accounting rules."""
        return accounting_walk(
            ops,
            self.config,
            self.move_cost,
            xb=RangeMask.all(self.config.crossbars),
            row=RangeMask.all(self.config.rows),
            strict=True,
        )

    def _charge_rejected_move(self, instr: Instruction) -> None:
        """Partial accounting for H-tree-rejected moves (simulator parity:
        the crossbar-mask op executes before validation rejects the move)."""
        if isinstance(instr, MoveInstr) and instr.warp_dist:
            self._stats.record("mask_crossbar")
