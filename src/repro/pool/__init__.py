"""Multi-crossbar device pooling: inter-crossbar sharding of tensor work.

:class:`~repro.pool.backend.PooledBackend` generalizes the driver's
intra-crossbar partition parallelism (:mod:`repro.driver.parallel`) one
level up: a memory of ``C`` crossbars is carved into ``N`` equal shards,
each owned by an independent worker backend, and every macro-instruction
is split along its warp mask and dispatched to the shards it touches —
all behind the same :class:`~repro.backend.base.Backend` protocol, so
``pim.init(backend="pooled", workers=4)`` is the whole switch.
"""

from repro.pool.backend import PooledBackend, PooledProgram

__all__ = ["PooledBackend", "PooledProgram"]
