"""Shared fixtures and data strategies for the test suite.

Float test data deliberately avoids subnormal inputs/results and NaN/Inf
(the documented FTZ deviations, see DESIGN.md): values are built from a
biased exponent in a safe band so that sums stay normal and products/
quotients cannot underflow or overflow.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

import repro.pim as pim
from repro.arch.config import PIMConfig, small_config
from repro.driver.driver import Driver
from repro.sim.simulator import Simulator


# ----------------------------------------------------------------------
# Configs / devices
# ----------------------------------------------------------------------
@pytest.fixture
def config() -> PIMConfig:
    """A small memory: 4 crossbars x 16 rows (fast, same semantics)."""
    return small_config(crossbars=4, rows=16)


@pytest.fixture
def simulator(config) -> Simulator:
    return Simulator(config)


@pytest.fixture
def driver(simulator) -> Driver:
    return Driver(simulator, guard=True)


@pytest.fixture
def device():
    """A fresh default pim device per test (64 elements per register)."""
    dev = pim.init(crossbars=4, rows=16)
    yield dev
    pim.reset()


@pytest.fixture
def big_device():
    """A device spanning more warps (for inter-crossbar paths)."""
    dev = pim.init(crossbars=16, rows=32)
    yield dev
    pim.reset()


# ----------------------------------------------------------------------
# Random data helpers (seeded NumPy)
# ----------------------------------------------------------------------
def rand_int32(rng: np.random.Generator, size: int) -> np.ndarray:
    return rng.integers(-(2**31), 2**31, size=size, dtype=np.int64).astype(np.int32)


def rand_float32(rng: np.random.Generator, size: int, exp_band: int = 12) -> np.ndarray:
    """Normal floats with biased exponent in [127-band, 127+band]."""
    sign = rng.integers(0, 2, size=size).astype(np.uint32) << 31
    exponent = rng.integers(127 - exp_band, 127 + exp_band + 1, size=size).astype(
        np.uint32
    ) << 23
    mantissa = rng.integers(0, 1 << 23, size=size).astype(np.uint32)
    return (sign | exponent | mantissa).view(np.float32)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
def int32s() -> st.SearchStrategy[int]:
    return st.integers(min_value=-(2**31), max_value=2**31 - 1)


def safe_float_bits(exp_lo: int = 97, exp_hi: int = 157) -> st.SearchStrategy[int]:
    """Raw words of normal float32 values in a safe exponent band."""
    return st.builds(
        lambda s, e, m: (s << 31) | (e << 23) | m,
        st.integers(0, 1),
        st.integers(exp_lo, exp_hi),
        st.integers(0, (1 << 23) - 1),
    )


def safe_floats(exp_lo: int = 97, exp_hi: int = 157) -> st.SearchStrategy[float]:
    return safe_float_bits(exp_lo, exp_hi).map(
        lambda bits: float(np.uint32(bits).view(np.float32))
    )
