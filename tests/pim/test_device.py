"""Tests for PIMDevice: element addressing, DMA paths, mask segmentation."""

import numpy as np
import pytest

import repro.pim as pim
from repro.arch.config import PIMConfig
from repro.arch.masks import RangeMask
from repro.isa.dtypes import float32, int32
from repro.pim.device import PIMDevice
from repro.pim.malloc import Slot


@pytest.fixture
def dev():
    return PIMDevice(PIMConfig(crossbars=4, rows=8))


class TestAddressing:
    def test_locate_row_major(self, dev):
        slot = Slot(reg=0, warp_start=1, warp_count=2)
        assert dev.locate(slot, 0) == (1, 0)
        assert dev.locate(slot, 7) == (1, 7)
        assert dev.locate(slot, 8) == (2, 0)


class TestDMA:
    def test_load_dump_roundtrip(self, dev):
        slot = dev.allocator.allocate(20)
        data = np.arange(20, dtype=np.int32)
        dev.load_array(slot, data, int32)
        np.testing.assert_array_equal(dev.dump_array(slot, 20, int32), data)

    def test_load_respects_warp_offset(self, dev):
        first = dev.allocator.allocate(8)
        slot = Slot(reg=1, warp_start=2, warp_count=1)
        dev.allocator._claim(1, 2, 1)
        data = np.full(8, 7.5, dtype=np.float32)
        dev.load_array(slot, data, float32)
        assert dev.simulator.memory.get_word(2, 0, 1) == np.float32(7.5).view(np.uint32)

    def test_dma_does_not_touch_stats(self, dev):
        slot = dev.allocator.allocate(8)
        before = dev.simulator.stats.cycles
        dev.load_array(slot, np.zeros(8, np.int32), int32)
        dev.dump_array(slot, 8, int32)
        assert dev.simulator.stats.cycles == before


class TestSegments:
    def _segments(self, dev, slot_warps, mask):
        slot = Slot(reg=0, warp_start=0, warp_count=slot_warps)
        return dev.segments(slot, mask)

    def _covered(self, segments, rows):
        elements = []
        for warp_mask, row_mask in segments:
            for warp in warp_mask.indices():
                for row in row_mask.indices():
                    elements.append(warp * rows + row)
        return sorted(elements)

    def test_full_single_warp(self, dev):
        segments = self._segments(dev, 1, RangeMask.all(8))
        assert len(segments) == 1
        assert self._covered(segments, 8) == list(range(8))

    def test_full_multi_warp_merges(self, dev):
        segments = self._segments(dev, 3, RangeMask.all(24))
        assert len(segments) == 1  # identical row masks merge into one group
        assert self._covered(segments, 8) == list(range(24))

    def test_partial_last_warp_splits(self, dev):
        segments = self._segments(dev, 3, RangeMask.all(20))
        assert len(segments) == 2
        assert self._covered(segments, 8) == list(range(20))

    def test_stride_dividing_rows(self, dev):
        mask = RangeMask(0, 22, 2)  # step 2 divides rows=8
        segments = self._segments(dev, 3, mask)
        assert self._covered(segments, 8) == list(range(0, 23, 2))
        assert len(segments) == 1

    def test_stride_not_dividing_rows(self, dev):
        mask = RangeMask(0, 21, 3)  # step 3 vs rows=8: phase shifts per warp
        segments = self._segments(dev, 3, mask)
        assert self._covered(segments, 8) == list(range(0, 22, 3))
        assert len(segments) >= 2  # cannot merge differing phases

    def test_offset_stride(self, dev):
        mask = RangeMask(5, 21, 4)
        segments = self._segments(dev, 3, mask)
        assert self._covered(segments, 8) == [5, 9, 13, 17, 21]

    @pytest.mark.parametrize("start,stop,step", [
        (0, 31, 1), (1, 31, 2), (3, 27, 4), (0, 30, 5), (7, 23, 8), (2, 2, 1),
    ])
    def test_coverage_property(self, dev, start, stop, step):
        stop = start + ((stop - start) // step) * step
        mask = RangeMask(start, stop, step)
        segments = self._segments(dev, 4, mask)
        assert self._covered(segments, 8) == list(mask.indices())

    def test_segments_use_absolute_warps(self, dev):
        slot = Slot(reg=0, warp_start=2, warp_count=2)
        segments = dev.segments(slot, RangeMask.all(16))
        (warp_mask, _), = segments
        assert warp_mask.start == 2
        assert warp_mask.stop == 3
