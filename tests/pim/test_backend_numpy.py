"""Differential tests: the NumPy functional backend vs the bit-accurate one.

The backend contract (see ``repro.backend``): same tensor-level results
on the tested value domain, and — because the functional backend charges
the micro-op streams the real driver lowers — *identical* cycle counters,
per-kind op counts, and gate totals for every operation.
"""

import numpy as np
import pytest

import repro.pim as pim
from repro.backend import NumpyBackend, SimulatorBackend, make_backend
from tests.conftest import rand_float32, rand_int32


@pytest.fixture(autouse=True)
def _cleanup():
    yield
    pim.reset()


def _run_on(backend, workload):
    """Run a workload on a fresh device; returns (result, stats delta)."""
    device = pim.init(crossbars=4, rows=16, backend=backend)
    before = device.stats_snapshot()
    result = workload()
    delta = device.backend.stats.diff(before)
    return result, delta


def _assert_parity(workload, exact_bits=True):
    ref, ref_delta = _run_on("simulator", workload)
    got, got_delta = _run_on("numpy", workload)
    if exact_bits:
        np.testing.assert_array_equal(np.asarray(got), np.asarray(ref))
    else:
        np.testing.assert_allclose(got, ref, rtol=1e-6)
    assert got_delta.cycles == ref_delta.cycles
    assert got_delta.op_counts == ref_delta.op_counts
    assert got_delta.gates_executed == ref_delta.gates_executed


class TestElementwiseParity:
    def test_int_arithmetic(self, rng):
        a_host = rand_int32(rng, 48)
        b_host = rand_int32(rng, 48)

        def workload():
            a = pim.from_numpy(a_host)
            b = pim.from_numpy(b_host)
            return ((a + b) - (a * b)).to_numpy()

        _assert_parity(workload)

    def test_int_divmod_truncates_toward_zero(self, rng):
        a_host = np.array([7, -7, 9, -9, 5, -5, 0, 123], dtype=np.int32)
        b_host = np.array([2, 2, -4, -4, 3, -3, 7, -11], dtype=np.int32)

        def workload():
            a = pim.from_numpy(a_host)
            b = pim.from_numpy(b_host)
            return np.stack([(a / b).to_numpy(), (a % b).to_numpy()])

        _assert_parity(workload)

    def test_float_arithmetic(self, rng):
        a_host = rand_float32(rng, 48)
        b_host = rand_float32(rng, 48)

        def workload():
            a = pim.from_numpy(a_host)
            b = pim.from_numpy(b_host)
            return ((a * b) + (a - b)).to_numpy()

        _assert_parity(workload)

    def test_float_division(self, rng):
        a_host = rand_float32(rng, 32, exp_band=6)
        b_host = rand_float32(rng, 32, exp_band=6)

        def workload():
            a = pim.from_numpy(a_host)
            b = pim.from_numpy(b_host)
            return (a / b).to_numpy()

        _assert_parity(workload)

    def test_comparisons_and_unary(self, rng):
        a_host = rand_int32(rng, 32)
        b_host = rand_int32(rng, 32)

        def workload():
            a = pim.from_numpy(a_host)
            b = pim.from_numpy(b_host)
            return np.stack([
                (a < b).to_numpy(),
                (a >= b).to_numpy(),
                (a == a).to_numpy(),
                (-a).to_numpy(),
                abs(a).to_numpy(),
                a.sign().to_numpy(),
                (~a).to_numpy(),
                (a ^ b).to_numpy(),
            ])

        _assert_parity(workload)


class TestRoutineParity:
    def test_where_with_views(self, rng):
        a_host = rand_float32(rng, 64)
        b_host = rand_float32(rng, 64)

        def workload():
            a = pim.from_numpy(a_host)
            b = pim.from_numpy(b_host)
            return pim.where(a[::2] < b[::2], a[::2], b[::2]).to_numpy()

        _assert_parity(workload)

    def test_reduction_and_sort(self, rng):
        host = rand_int32(rng, 48)

        def workload():
            x = pim.from_numpy(host)
            return (x.sum(), x.sort().to_numpy())

        (ref_sum, ref_sorted), ref_delta = _run_on("simulator", workload)
        (got_sum, got_sorted), got_delta = _run_on("numpy", workload)
        assert got_sum == ref_sum
        np.testing.assert_array_equal(got_sorted, ref_sorted)
        assert got_delta.cycles == ref_delta.cycles
        assert got_delta.op_counts == ref_delta.op_counts

    def test_misaligned_operands_stage_identically(self, rng):
        """Mixed-base arithmetic exercises the group-staging move path
        (including the overlapping-run fallback) on both backends."""
        a_host = rand_int32(rng, 40)
        b_host = rand_int32(rng, 20)

        def workload():
            a = pim.from_numpy(a_host)
            b = pim.from_numpy(b_host)
            return (a[::2] + b).to_numpy()

        _assert_parity(workload)


class TestBackendInterface:
    def test_init_by_name_and_class(self):
        device = pim.init(crossbars=4, rows=16, backend="numpy")
        assert isinstance(device.backend, NumpyBackend)
        device = pim.init(crossbars=4, rows=16, backend=NumpyBackend)
        assert isinstance(device.backend, NumpyBackend)
        device = pim.init(crossbars=4, rows=16)
        assert isinstance(device.backend, SimulatorBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            pim.init(crossbars=4, rows=16, backend="quantum")

    def test_failed_init_keeps_previous_default_alive(self):
        pim.init(crossbars=4, rows=16)
        x = pim.ones(8, dtype=pim.int32)
        with pytest.raises(ValueError, match="unknown backend"):
            pim.init(crossbars=4, rows=16, backend="bogus")
        # The old default survived the failed replacement.
        assert x.to_numpy().sum() == 8

    def test_prebuilt_backend_instance_adopted(self):
        from repro.arch.config import small_config
        from repro.pim.device import PIMDevice

        config = small_config(crossbars=4, rows=16)
        instance = NumpyBackend(config)
        device = PIMDevice(backend=instance)  # no config: adopt the backend's
        assert device.backend is instance
        assert device.config == config
        # An equal-but-distinct config also matches (value equality).
        device = PIMDevice(small_config(crossbars=4, rows=16), backend=instance)
        assert device.backend is instance
        with pytest.raises(ValueError, match="different PIMConfig"):
            PIMDevice(small_config(crossbars=8, rows=16), backend=instance)

    def test_simulator_attribute_raises_on_numpy_backend(self):
        device = pim.init(crossbars=4, rows=16, backend="numpy")
        with pytest.raises(AttributeError, match="no simulator"):
            device.simulator
        with pytest.raises(AttributeError, match="no host driver"):
            device.driver

    def test_profiler_works_on_numpy_backend(self):
        pim.init(crossbars=4, rows=16, backend="numpy")
        x = pim.from_numpy(np.arange(8, dtype=np.int32))
        with pim.Profiler() as prof:
            _ = x * x
        assert prof.cycles > 1000

    def test_compiled_graph_on_numpy_backend(self):
        pim.init(crossbars=4, rows=16, backend="numpy")

        @pim.compile
        def my_func(a, b):
            z = a * b + a
            return z[::2].sum()

        x = pim.zeros(64, dtype=pim.float32)
        y = pim.zeros(64, dtype=pim.float32)
        x[4], y[4] = 8.0, 0.5
        assert my_func(x, y) == 12.0
        x[4] = 16.0
        assert my_func(x, y) == 24.0
        assert my_func.captures == 1

    def test_program_rejected_on_other_geometry(self):
        device = pim.init(crossbars=4, rows=16, backend="numpy")
        x = pim.ones(8, dtype=pim.int32)
        with pim.trace() as session:
            _ = x + x
        program = session.lower()
        from repro.sim.simulator import SimulationError

        other = make_backend("numpy", __import__(
            "repro.arch.config", fromlist=["small_config"]
        ).small_config(crossbars=8, rows=32))
        with pytest.raises(SimulationError, match="fingerprint"):
            other.run_program(program)
