"""Tests for lazy graph capture: ``pim.compile`` / ``pim.trace``.

The contract under test (see ``repro.pim.compile``): a compiled function
is bit-identical to eager mode — same memory image, same cycle counters —
on the bit-accurate backend, replays with fresh input data, caches per
signature, and fails loudly on anything replay could not reproduce.
"""

import numpy as np
import pytest

import repro.pim as pim
from repro.driver.program import MicroProgram


def fig12(a, b):
    z = a * b + a
    return z[::2].sum()


def _setup(backend="simulator"):
    device = pim.init(crossbars=4, rows=16, backend=backend)
    x = pim.zeros(64, dtype=pim.float32)
    y = pim.zeros(64, dtype=pim.float32)
    x[4], y[4] = 8.0, 0.5
    x[5], y[5] = 20.0, 1.0
    x[8], y[8] = 10.0, 1.0
    return device, x, y


@pytest.fixture(autouse=True)
def _cleanup():
    yield
    pim.reset()


class TestCompiledVsEager:
    def test_first_call_matches_eager(self):
        device, x, y = _setup()
        before = device.stats_snapshot()
        eager = fig12(x, y)
        eager_cycles = device.backend.stats.diff(before).cycles
        eager_words = device.backend.words.copy()
        pim.reset()

        device, x, y = _setup()
        func = pim.compile(fig12)
        before = device.stats_snapshot()
        result = func(x, y)
        cycles = device.backend.stats.diff(before).cycles
        assert result == eager
        assert cycles == eager_cycles
        assert np.array_equal(device.backend.words, eager_words)

    def test_replay_is_cycle_exact_and_bit_identical(self):
        device, x, y = _setup()
        eager = fig12(x, y)
        eager_delta = None
        before = device.stats_snapshot()
        fig12(x, y)
        eager_delta = device.backend.stats.diff(before)
        eager_words = device.backend.words.copy()
        pim.reset()

        device, x, y = _setup()
        func = pim.compile(fig12)
        assert func(x, y) == eager  # capture
        before = device.stats_snapshot()
        assert func(x, y) == eager  # replay
        delta = device.backend.stats.diff(before)
        assert delta.cycles == eager_delta.cycles
        assert delta.op_counts == eager_delta.op_counts
        assert delta.gates_executed == eager_delta.gates_executed
        assert np.array_equal(device.backend.words, eager_words)
        assert func.captures == 1

    def test_replay_with_fresh_data(self):
        _setup()
        func = pim.compile(fig12)
        x = pim.zeros(64, dtype=pim.float32)
        y = pim.zeros(64, dtype=pim.float32)
        x[2], y[2] = 4.0, 2.0
        assert func(x, y) == 12.0  # capture: 4 * 2 + 4
        x[2] = 6.0
        assert func(x, y) == 18.0  # replay, same tensors, new data
        x2 = pim.zeros(64, dtype=pim.float32)
        y2 = pim.zeros(64, dtype=pim.float32)
        x2[0], y2[0] = 1.0, 3.0
        assert func(x2, y2) == 4.0  # replay, different tensors
        assert func.captures == 1

    def test_tensor_output_replays(self):
        _setup()

        @pim.compile
        def scale(a):
            return a * 2.0 + 1.0

        x = pim.zeros(32, dtype=pim.float32)
        x[3] = 5.0
        out = scale(x)
        assert out.to_numpy()[3] == 11.0
        x[3] = 7.0
        out = scale(x)
        assert out.to_numpy()[3] == 15.0


class TestOptimizedLowering:
    def test_optimize_true_same_memory_fewer_cycles(self):
        device, x, y = _setup()
        expected = fig12(x, y)
        before = device.stats_snapshot()
        fig12(x, y)
        eager_delta = device.backend.stats.diff(before)
        eager_words = device.backend.words.copy()
        pim.reset()

        device, x, y = _setup()
        func = pim.compile(fig12, optimize=True)
        assert func(x, y) == expected  # capture (eager, full cycles)
        before = device.stats_snapshot()
        assert func(x, y) == expected  # optimized replay
        delta = device.backend.stats.diff(before)
        assert delta.cycles < eager_delta.cycles  # mask preambles coalesced
        assert np.array_equal(device.backend.words, eager_words)


class TestOptimizerLevels:
    """The graph optimizer (`opt_level >= 2`) on compiled functions.

    Contract: optimized replays keep every observable value bit-identical
    to eager mode (outputs, arguments, deferred scalar reads) while
    spending fewer cycles; levels are part of no shared state, so
    switching levels mid-session never replays a stale program.
    """

    def test_all_levels_bit_identical_outputs(self):
        device, x, y = _setup()
        expected = fig12(x, y)
        pim.reset()
        for level in pim.OPT_LEVELS:
            device, x, y = _setup()
            func = pim.compile(fig12, opt_level=level)
            assert func(x, y) == expected  # capture
            assert func(x, y) == expected  # replay
            assert func.captures == 1
            pim.reset()

    def test_cse_saves_cycles_and_matches_eager(self):
        def recompute(a, b):
            num = a * b + a
            den = a * b - a        # a*b recomputed: the CSE victim
            return num, den.sum()

        device, x, y = _setup()
        num, total = recompute(x, y)
        expected = (num.to_numpy().copy(), float(total))
        pim.reset()

        cycles = {}
        for level in (0, 2):
            device, x, y = _setup()
            func = pim.compile(recompute, opt_level=level)
            func(x, y)  # capture
            before = device.stats_snapshot()
            num, total = func(x, y)
            cycles[level] = device.backend.stats.diff(before).cycles
            assert np.array_equal(num.to_numpy(), expected[0])
            assert float(total) == expected[1]
            pim.reset()
        assert cycles[2] < cycles[0]

    def test_dead_temporary_frees_reserved_cells(self):
        def with_dead(a, b):
            _ = a - b              # freed mid-trace, never observed
            return a + b

        reserved = {}
        for level in (0, 2):
            device, x, y = _setup()
            func = pim.compile(with_dead, opt_level=level)
            out = func(x, y)
            assert out.to_numpy()[4] == 8.5
            entry = next(iter(func._cache.values()))
            reserved[level] = len(entry.reserved)
            report = func.opt_report(x, y)
            if level >= 2:
                assert report.passes.get("dce_dropped", 0) >= 1
                assert report.cells_after < report.cells_before
            pim.reset()
        assert reserved[2] < reserved[0]

    def test_opt_report_counts_pre_vs_post(self):
        device, x, y = _setup()
        func = pim.compile(fig12, opt_level=2)
        func(x, y)
        report = func.opt_report(x, y)
        assert report.opt_level == 2
        assert report.macros_after <= report.macros_before
        assert report.cycles_after < report.cycles_before
        assert 0.0 < report.cycle_reduction < 1.0
        assert "optimizer" in report.summary()
        # Level 0 replays verbatim: no report.
        verbatim = pim.compile(fig12, opt_level=0)
        verbatim(x, y)
        assert verbatim.opt_report(x, y) is None

    def test_profiler_reports_optimizer_activity(self):
        device, x, y = _setup()
        func = pim.compile(fig12, opt_level=2)
        with pim.Profiler() as prof:
            func(x, y)
        assert len(prof.opt_reports) == 1
        assert prof.opt_reports[0].cycles_after < prof.opt_reports[0].cycles_before

    def test_profiler_reports_survive_device_report_cap(self):
        """Regression: once the device's bounded report list is full, the
        trim on each new lowering must not hide in-block reports from
        the profiler (an index snapshot would see an empty slice)."""
        device, x, y = _setup()
        device.opt_reports.extend(
            pim.OptReport(name=f"old{i}", opt_level=1) for i in range(32)
        )
        func = pim.compile(fig12, opt_level=2)
        with pim.Profiler() as prof:
            func(x, y)
        assert len(prof.opt_reports) == 1
        assert prof.opt_reports[0].name == "fig12"

    def test_level1_report_matches_true_baseline(self):
        """Level 1's derived pre-peephole bill (no second lowering) must
        equal what actually compiling the verbatim stream reports."""
        device, x, y = _setup()
        with pim.trace() as session:
            _ = x * y + x
        verbatim = session.lower(opt_level=0)
        baseline = device.backend.program_stats(verbatim)
        session.lower(opt_level=1)
        report = session.last_report
        assert report.cycles_before == baseline.cycles
        assert report.micro_ops_before == baseline.micro_ops
        assert report.cycles_after < report.cycles_before

    def test_switching_levels_mid_session_not_stale(self):
        """Two compiled variants of one function on one device: each must
        replay its own program (the regression the ProgramCache
        optimizer-configuration key closes)."""
        device, x, y = _setup()
        expected = fig12(x, y)
        verbatim = pim.compile(fig12, opt_level=0)
        tuned = pim.compile(fig12, opt_level=2)
        assert verbatim(x, y) == expected
        assert tuned(x, y) == expected
        cycles = {}
        for name, func in (("verbatim", verbatim), ("tuned", tuned)):
            before = device.stats_snapshot()
            assert func(x, y) == expected
            cycles[name] = device.backend.stats.diff(before).cycles
        assert cycles["tuned"] < cycles["verbatim"]

    def test_levels_on_numpy_backend_match_simulator_cycles(self):
        totals = {}
        for backend in ("simulator", "numpy"):
            device, x, y = _setup(backend)
            func = pim.compile(fig12, opt_level=3)
            func(x, y)
            before = device.stats_snapshot()
            func(x, y)
            totals[backend] = device.backend.stats.diff(before).cycles
            pim.reset()
        assert totals["simulator"] == totals["numpy"]


class TestOptimizerEdgeCases:
    """Aliased/permuted arguments, deferred reads, mid-trace frees."""

    def test_aliased_arguments_optimize_correctly(self):
        _setup()

        @pim.compile(opt_level=3)
        def square_sum(a, b):
            return a * b + a

        x = pim.zeros(8, dtype=pim.float32)
        x[0] = 3.0
        out = square_sum(x, x)       # capture with aliasing: a and b share
        assert out.to_numpy()[0] == 12.0
        x[0] = 5.0
        out = square_sum(x, x)       # replay
        assert out.to_numpy()[0] == 30.0
        assert square_sum.captures == 1

    def test_permuted_replay_after_optimized_capture(self):
        _setup()

        @pim.compile(opt_level=3)
        def sub(a, b):
            return a - b

        x = pim.zeros(16, dtype=pim.float32)
        y = pim.zeros(16, dtype=pim.float32)
        x[0], y[0] = 10.0, 3.0
        assert sub(x, y).to_numpy()[0] == 7.0
        assert sub(y, x).to_numpy()[0] == -7.0  # swapped replay
        assert x.to_numpy()[0] == 10.0 and y.to_numpy()[0] == 3.0
        assert sub.captures == 1

    def test_deferred_read_survives_optimization(self):
        """The reduction feeding a returned ScalarRef must not be swept
        as a dead temporary: its cell is re-read after every replay."""
        _setup()

        @pim.compile(opt_level=3)
        def strided_total(a):
            return a[::2].sum()

        x = pim.zeros(32, dtype=pim.float32)
        x[0], x[2] = 1.5, 2.5
        assert float(strided_total(x)) == 4.0   # capture
        x[2] = 10.5
        assert float(strided_total(x)) == 12.0  # replay re-reads the cell
        assert strided_total.captures == 1

    def test_mid_trace_free_with_cell_reuse(self):
        """A temporary freed mid-trace whose cells a *live* tensor then
        reuses: the optimizer must keep every write the live tensor's
        contents depend on."""
        _setup()

        @pim.compile(opt_level=3)
        def churn(a):
            tmp = a + 1.0
            del tmp                   # cells return to the allocator
            keep = a * 2.0            # may land in tmp's old cells
            return keep

        x = pim.zeros(16, dtype=pim.float32)
        x[1] = 4.0
        assert churn(x).to_numpy()[1] == 8.0
        x[1] = 6.0
        assert churn(x).to_numpy()[1] == 12.0
        assert churn.captures == 1

    def test_mid_stream_read_still_fails_loudly_when_optimized(self):
        """The deferred-read overwrite check applies at every level."""
        _setup()

        @pim.compile(opt_level=3)
        def bad(a, b):
            s = (a * b)[0]
            t = a + b
            return s, t[0]

        x = pim.zeros(8, dtype=pim.float32)
        y = pim.zeros(8, dtype=pim.float32)
        x[0], y[0] = 4.0, 5.0
        with pytest.raises(pim.TraceError, match="overwrite"):
            bad(x, y)

    def test_view_output_of_optimized_graph(self):
        _setup()

        @pim.compile(opt_level=2)
        def evens(a):
            return (a * 2.0)[::2]

        x = pim.zeros(16, dtype=pim.float32)
        x[2] = 1.25
        assert evens(x).to_numpy()[1] == 2.5
        x[2] = 2.25
        assert evens(x).to_numpy()[1] == 4.5


class TestSignatureCache:
    def test_new_length_recaptures(self):
        _setup()
        func = pim.compile(fig12)
        x = pim.zeros(32, dtype=pim.float32)
        y = pim.zeros(32, dtype=pim.float32)
        func(x, y)
        a = pim.zeros(16, dtype=pim.float32)
        b = pim.zeros(16, dtype=pim.float32)
        func(a, b)
        assert func.captures == 2
        assert func.cached_graphs == 2

    def test_scalar_arguments_are_part_of_the_key(self):
        _setup()

        @pim.compile
        def shift(a, k):
            return a + k

        x = pim.zeros(16, dtype=pim.float32)
        x[0] = 1.0
        assert shift(x, 2.0).to_numpy()[0] == 3.0
        assert shift(x, 5.0).to_numpy()[0] == 6.0  # new constant, new graph
        assert shift.captures == 2
        assert shift(x, 2.0).to_numpy()[0] == 3.0  # cached replay
        assert shift.captures == 2

    def test_reset_invalidates_cached_graphs(self):
        _setup()
        func = pim.compile(fig12)
        x = pim.zeros(64, dtype=pim.float32)
        y = pim.zeros(64, dtype=pim.float32)
        func(x, y)
        pim.reset()
        _, x, y = _setup()
        func(x, y)
        assert func.captures == 2

    def test_dtype_is_part_of_the_key(self):
        _setup()

        @pim.compile
        def double(a):
            return a + a

        xf = pim.zeros(16, dtype=pim.float32)
        xi = pim.zeros(16, dtype=pim.int32)
        double(xf)
        double(xi)
        assert double.captures == 2


class TestReplayMarshalling:
    def test_permuted_captured_tensors(self):
        """Passing the captured tensors back in swapped positions must not
        clobber one argument with the other mid-marshal."""
        _setup()

        @pim.compile
        def sub(a, b):
            return a - b

        x = pim.zeros(16, dtype=pim.float32)
        y = pim.zeros(16, dtype=pim.float32)
        x[0], y[0] = 10.0, 3.0
        assert sub(x, y).to_numpy()[0] == 7.0   # capture
        assert sub(y, x).to_numpy()[0] == -7.0  # swapped replay
        # The captured tensors keep their own data (marshalling restores).
        assert x.to_numpy()[0] == 10.0
        assert y.to_numpy()[0] == 3.0
        assert sub(x, y).to_numpy()[0] == 7.0
        assert sub.captures == 1


    def test_duplicated_argument_aliasing_recaptures(self):
        """f(x, x) binds both operands to one register; a later f(y, z)
        must recapture (the aliasing pattern is part of the signature)."""
        _setup()

        @pim.compile
        def add(a, b):
            return a + b

        x = pim.zeros(8, dtype=pim.float32)
        y = pim.zeros(8, dtype=pim.float32)
        z = pim.zeros(8, dtype=pim.float32)
        x[0], y[0], z[0] = 50.0, 10.0, 100.0
        assert add(x, x).to_numpy()[0] == 100.0   # capture with aliasing
        assert add(y, z).to_numpy()[0] == 110.0   # distinct args: recapture
        assert add(x, x).to_numpy()[0] == 100.0   # aliased replay still cached
        assert add.captures == 2

    def test_argument_mutation_writes_back(self):
        """Eager mode mutates the caller's tensor in place; replay must
        copy the computed contents back out."""
        _setup()

        @pim.compile
        def touch(a):
            a[0] = 9.0
            return a[1]

        p = pim.zeros(8, dtype=pim.float32)
        q = pim.zeros(8, dtype=pim.float32)
        touch(p)  # capture
        assert p.to_numpy()[0] == 9.0
        touch(q)  # replay with a different tensor
        assert q.to_numpy()[0] == 9.0


class TestCacheEviction:
    def test_scalar_sweep_does_not_exhaust_memory(self):
        """Each cached graph reserves device cells; the LRU bound must
        release them as signatures churn (a scalar sweep would otherwise
        die with PIMMemoryError)."""
        _setup()

        @pim.compile(cache_size=4)
        def shift(a, k):
            return a + k

        x = pim.zeros(16, dtype=pim.float32)
        x[0] = 1.0
        for step in range(40):  # far more signatures than the device holds
            assert shift(x, float(step)).to_numpy()[0] == 1.0 + step
        assert shift.cached_graphs == 4
        assert shift.captures == 40


class TestTraceLimitations:
    def test_view_arguments_rejected(self):
        _setup()
        func = pim.compile(fig12)
        x = pim.zeros(64, dtype=pim.float32)
        y = pim.zeros(64, dtype=pim.float32)
        with pytest.raises(pim.TraceError, match="compact"):
            func(x[::2], y[::2])

    def test_data_dependent_comparison_rejected(self):
        """Branching on a PIM scalar comparison would bake the wrong branch
        into the cached program — it must raise, not fall back to identity."""
        _setup()

        @pim.compile
        def bad(a):
            s = a[0]
            if s == 3.0:
                return a + 100.0
            return a + 1.0

        x = pim.zeros(8, dtype=pim.float32)
        x[0] = 3.0
        with pytest.raises(pim.TraceError, match="compare"):
            bad(x)

    def test_data_dependent_scalar_use_rejected(self):
        _setup()

        @pim.compile
        def bad(a):
            total = a.sum()          # ScalarRef during trace
            return a * total         # ...used to steer computation

        x = pim.ones(16, dtype=pim.float32)
        with pytest.raises(pim.TraceError, match="trace"):
            bad(x)

    def test_scalar_usable_after_trace(self):
        _setup()

        @pim.compile
        def total(a):
            return a.sum()

        x = pim.ones(16, dtype=pim.float32)
        value = total(x)
        assert float(value) == 16.0
        assert value == 16.0

    def test_mid_stream_read_of_recycled_cell_rejected(self):
        """A deferred read whose cell later operations overwrite cannot be
        re-read after replay — capture must fail loudly, not corrupt."""
        _setup()

        @pim.compile
        def bad(a, b):
            s = (a * b)[0]      # temporary dies; its cell gets recycled
            t = a + b
            return s, t[0]

        x = pim.zeros(8, dtype=pim.float32)
        y = pim.zeros(8, dtype=pim.float32)
        x[0], y[0] = 4.0, 5.0
        with pytest.raises(pim.TraceError, match="overwrite"):
            bad(x, y)

    def test_dma_load_inside_trace_rejected(self):
        _setup()

        @pim.compile
        def bad(a):
            k = pim.from_numpy(np.full(8, 10, dtype=np.int32))
            return a + k

        x = pim.zeros(8, dtype=pim.int32)
        with pytest.raises(pim.TraceError, match="DMA"):
            bad(x)

    def test_dma_readback_inside_trace_rejected(self):
        _setup()

        @pim.compile
        def bad(a):
            return a.to_numpy()

        x = pim.zeros(8, dtype=pim.int32)
        with pytest.raises(pim.TraceError, match="DMA"):
            bad(x)

    def test_nested_compiled_function_inlines(self):
        _setup()

        inner = pim.compile(lambda a: a + 1.0)

        @pim.compile
        def outer(a):
            return inner(a) * 2.0

        x = pim.zeros(16, dtype=pim.float32)
        out = outer(x)
        assert out.to_numpy()[0] == 2.0
        assert inner.captures == 0  # inlined into the outer capture
        assert outer.captures == 1
        assert outer(x).to_numpy()[0] == 2.0


class TestRoutinesUnderCapture:
    def test_where_and_comparisons(self):
        _setup()

        @pim.compile
        def clamp(a):
            return pim.where(a > 1.0, 1.0, a)

        x = pim.zeros(32, dtype=pim.float32)
        x[1], x[2] = 0.5, 3.0
        out = clamp(x)
        assert out.to_numpy()[1] == 0.5
        assert out.to_numpy()[2] == 1.0
        x[2] = 0.25
        assert clamp(x).to_numpy()[2] == 0.25
        assert clamp.captures == 1

    def test_sort_inside_compiled_function(self):
        _setup()

        @pim.compile
        def sorted_front(a):
            return a.sort()

        x = pim.from_numpy(np.array([4, 1, 3, 2], dtype=np.int32))
        assert sorted_front(x).to_numpy().tolist() == [1, 2, 3, 4]
        x2 = pim.from_numpy(np.array([9, -1, 5, 0], dtype=np.int32))
        assert sorted_front(x2).to_numpy().tolist() == [-1, 0, 5, 9]
        assert sorted_front.captures == 1


class TestTraceSession:
    def test_trace_records_graph_nodes(self):
        device, x, y = _setup()
        with pim.trace() as session:
            fig12(x, y)
        kinds = {node.kind for node in session.graph.nodes}
        assert {"mul", "add", "view", "reduce", "read"} <= kinds
        assert len(session.graph.instructions) > 0
        assert "graph" in session.graph.summary()

    def test_lowered_program_replays_on_device(self):
        device, x, y = _setup()
        with pim.trace() as session:
            z = x * y + x
        program = session.lower()
        assert isinstance(program, MicroProgram)
        before = device.backend.words.copy()
        device.run_program(program)  # recompute: idempotent stream
        assert np.array_equal(device.backend.words, before)

    def test_optimized_lowering_saves_cycles(self):
        device, x, y = _setup()
        with pim.trace() as session:
            _ = x * y + x
        raw = session.lower(optimize=False)
        tight = session.lower(optimize=True)
        assert len(tight) < len(raw)

    def test_trace_lower_opt_level_with_kept_reads(self):
        """The pim.trace() path: graph passes apply with in-stream reads
        kept, and the optimized program still replays correctly."""
        device, x, y = _setup()
        with pim.trace() as session:
            z = x * y + x
            w = x * y - x          # recomputed product
            total = w[0]           # in-stream scalar read
        verbatim = session.lower(opt_level=0)
        tuned = session.lower(opt_level=2)
        assert len(tuned) < len(verbatim)
        assert session.last_report is not None
        assert session.last_report.passes.get("cse_dropped", 0) >= 1
        before_z = z.to_numpy().copy()
        response = device.run_program(tuned)  # idempotent recompute
        assert np.array_equal(z.to_numpy(), before_z)
        assert response is not None  # the kept read still responds

    def test_nested_trace_rejected(self):
        device, x, y = _setup()
        with pim.trace():
            with pytest.raises(pim.TraceError, match="already active"):
                device.begin_trace()
