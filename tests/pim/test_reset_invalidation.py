"""Regression tests: device teardown, ``pim.reset()`` invalidation, and
allocator-free idempotence (the Tensor lifetime fragility fixes)."""

import gc

import numpy as np
import pytest

import repro.pim as pim


@pytest.fixture(autouse=True)
def _cleanup():
    yield
    pim.reset()


class TestResetInvalidation:
    def test_use_after_reset_raises_clearly(self):
        pim.init(crossbars=4, rows=16)
        x = pim.zeros(16, dtype=pim.float32)
        pim.reset()
        with pytest.raises(RuntimeError, match="reset"):
            x.to_numpy()
        with pytest.raises(RuntimeError, match="reset"):
            _ = x + 1.0
        with pytest.raises(RuntimeError, match="reset"):
            x[0] = 1.0
        with pytest.raises(RuntimeError, match="reset"):
            _ = x[0]

    def test_view_use_after_reset_raises(self):
        pim.init(crossbars=4, rows=16)
        view = pim.zeros(16, dtype=pim.float32)[::2]
        pim.reset()
        with pytest.raises(RuntimeError, match="reset"):
            view.to_numpy()

    def test_device_handle_rejects_use_after_reset(self):
        device = pim.init(crossbars=4, rows=16)
        pim.reset()
        from repro.isa.instructions import ReadInstr

        with pytest.raises(RuntimeError, match="reset"):
            device.execute(ReadInstr(0, 0, 0))

    def test_destructor_after_reset_is_harmless(self):
        """A tensor outliving pim.reset() must not free into the stale
        allocator (or blow up in __del__)."""
        pim.init(crossbars=4, rows=16)
        x = pim.zeros(16, dtype=pim.float32)
        old_allocator = pim.default_device().allocator
        live_before = old_allocator.live_slots
        pim.reset()
        new_device = pim.init(crossbars=4, rows=16)
        del x
        gc.collect()
        # The stale allocator saw no free after the reset...
        assert old_allocator.live_slots == live_before
        # ...and the fresh device is untouched.
        assert new_device.allocator.live_slots == 0

    def test_new_tensors_work_after_reset(self):
        pim.init(crossbars=4, rows=16)
        _ = pim.zeros(16, dtype=pim.float32)
        pim.reset()
        pim.init(crossbars=4, rows=16)
        y = pim.ones(16, dtype=pim.float32)
        assert y.to_numpy().sum() == 16.0

    def test_reinit_closes_previous_default(self):
        pim.init(crossbars=4, rows=16)
        x = pim.zeros(16, dtype=pim.float32)
        pim.init(crossbars=4, rows=16)  # replaces (and closes) the default
        with pytest.raises(RuntimeError, match="reset"):
            x.to_numpy()


class TestFreeIdempotence:
    def test_release_then_destructor(self):
        device = pim.init(crossbars=4, rows=16)
        x = pim.zeros(16, dtype=pim.float32)
        x._release()
        assert x.slot is None
        x._release()  # second release is a no-op
        del x
        gc.collect()
        assert device.allocator.live_slots == 0

    def test_allocator_double_free_is_noop(self):
        device = pim.init(crossbars=4, rows=16)
        slot = device.allocator.allocate(16)
        device.allocator.free(slot)
        device.allocator.free(slot)
        assert device.allocator.live_slots == 0
        assert device.allocator.occupancy() == 0.0

    def test_reserve_and_release_cells(self):
        device = pim.init(crossbars=4, rows=16)
        allocator = device.allocator
        slot = allocator.allocate(16)
        cells = [(slot.reg, slot.warp_start), (slot.reg + 1, 0)]
        claimed = allocator.reserve_cells(cells)
        # The live slot's cell is skipped; the free one is claimed.
        assert claimed == [(slot.reg + 1, 0)]
        allocator.release_cells(claimed)
        allocator.free(slot)
        assert allocator.occupancy() == 0.0
