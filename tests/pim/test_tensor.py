"""Tests for Tensor: indexing, operators, scalars, alignment fallback."""

import numpy as np
import pytest

import repro.pim as pim
from repro.theory.golden import golden_rtype
from repro.isa.instructions import ROp
from repro.isa.dtypes import int32 as isa_int32

from tests.conftest import rand_float32, rand_int32


class TestCreationAndIndexing:
    def test_zeros(self, device):
        x = pim.zeros(10, dtype=pim.float32)
        assert x.shape == (10,)
        assert (x.to_numpy() == 0).all()

    def test_scalar_read_write(self, device):
        x = pim.zeros(8, dtype=pim.float32)
        x[4] = 8.0
        assert x[4] == 8.0
        assert x[0] == 0.0

    def test_negative_index(self, device):
        x = pim.from_numpy(np.arange(8, dtype=np.int32))
        assert x[-1] == 7
        x[-2] = 99
        assert x[6] == 99

    def test_index_out_of_range(self, device):
        x = pim.zeros(4, dtype=pim.int32)
        with pytest.raises(IndexError):
            x[4]
        with pytest.raises(IndexError):
            x[-5] = 1

    def test_repr_matches_paper_style(self, device):
        x = pim.zeros(3, dtype=pim.float32)
        text = repr(x)
        assert text.startswith("Tensor(shape=(3,), dtype=float32)")

    def test_multi_warp_tensor(self, device):
        n = device.rows * 3 + 5
        data = np.arange(n, dtype=np.int32)
        x = pim.from_numpy(data)
        assert (x.to_numpy() == data).all()
        assert x[device.rows + 1] == device.rows + 1

    def test_from_numpy_via_isa(self, device):
        data = np.array([3, -1, 7], dtype=np.int32)
        x = pim.from_numpy(data, via="isa")
        assert (x.to_numpy() == data).all()

    def test_from_numpy_rejects_other_dtypes(self, device):
        with pytest.raises(TypeError):
            pim.from_numpy(np.arange(4, dtype=np.float64))

    def test_slot_freed_on_del(self, device):
        before = device.allocator.live_slots
        x = pim.zeros(8, dtype=pim.int32)
        assert device.allocator.live_slots == before + 1
        del x
        assert device.allocator.live_slots == before


class TestArithmeticOperators:
    def test_int_binary_ops(self, device, rng):
        n = 32
        a = rand_int32(rng, n)
        b = rand_int32(rng, n)
        b[b == 0] = 2
        ta, tb = pim.from_numpy(a), pim.from_numpy(b)
        cases = [
            (ta + tb, ROp.ADD), (ta - tb, ROp.SUB), (ta * tb, ROp.MUL),
            (ta / tb, ROp.DIV), (ta % tb, ROp.MOD),
            (ta & tb, ROp.BIT_AND), (ta | tb, ROp.BIT_OR), (ta ^ tb, ROp.BIT_XOR),
        ]
        for result, op in cases:
            want = golden_rtype(op, isa_int32, a, b)
            assert (result.to_numpy().view(np.uint32) == want.view(np.uint32)).all(), op

    def test_float_binary_ops(self, device, rng):
        n = 32
        a = rand_float32(rng, n)
        b = rand_float32(rng, n)
        ta, tb = pim.from_numpy(a), pim.from_numpy(b)
        for result, want in [
            (ta + tb, a + b), (ta - tb, a - b), (ta * tb, a * b), (ta / tb, a / b),
        ]:
            got = result.to_numpy()
            assert (got.view(np.uint32) == want.astype(np.float32).view(np.uint32)).all()

    def test_unary_ops(self, device, rng):
        a = rand_int32(rng, 16)
        ta = pim.from_numpy(a)
        assert ((-ta).to_numpy() == golden_rtype(ROp.NEG, isa_int32, a)).all()
        assert (abs(ta).to_numpy() == golden_rtype(ROp.ABS, isa_int32, a)).all()
        assert ((~ta).to_numpy() == ~a).all()
        assert (ta.sign().to_numpy() == np.sign(a)).all()

    def test_comparisons_return_int32(self, device, rng):
        a = rand_float32(rng, 16)
        b = rand_float32(rng, 16)
        ta, tb = pim.from_numpy(a), pim.from_numpy(b)
        lt = ta < tb
        assert lt.dtype is pim.int32 or lt.dtype.name == "int32"
        assert (lt.to_numpy() == (a < b).astype(np.int32)).all()
        assert ((ta >= tb).to_numpy() == (a >= b).astype(np.int32)).all()
        assert ((ta == tb).to_numpy() == (a == b).astype(np.int32)).all()


class TestScalarBroadcast:
    def test_scalar_rhs(self, device):
        x = pim.from_numpy(np.arange(8, dtype=np.int32))
        assert ((x + 5).to_numpy() == np.arange(8) + 5).all()
        assert ((x * 3).to_numpy() == np.arange(8) * 3).all()

    def test_scalar_lhs(self, device):
        x = pim.from_numpy(np.arange(1, 9, dtype=np.int32))
        assert ((10 - x).to_numpy() == 10 - np.arange(1, 9)).all()
        assert ((2 * x).to_numpy() == 2 * np.arange(1, 9)).all()

    def test_float_scalar(self, device):
        x = pim.from_numpy(np.linspace(0, 1, 8).astype(np.float32))
        want = (x.to_numpy() + np.float32(0.5)).astype(np.float32)
        assert ((x + 0.5).to_numpy() == want).all()

    def test_scalar_comparison(self, device):
        x = pim.from_numpy(np.arange(8, dtype=np.int32))
        assert ((x < 4).to_numpy() == (np.arange(8) < 4).astype(np.int32)).all()


class TestAlignmentFallback:
    def test_misaligned_tensors_are_copied(self, device):
        """Tensors in different warp ranges still add correctly."""
        rows = device.rows
        a = pim.from_numpy(np.arange(rows, dtype=np.int32))  # warp 0
        # Force b onto a different warp range by exhausting warp-0 registers.
        blockers = [pim.zeros(rows, dtype=pim.int32) for _ in range(
            device.config.user_registers - 1)]
        b = pim.from_numpy(np.arange(rows, dtype=np.int32) * 2)
        assert b.slot.warp_start != a.slot.warp_start
        result = a + b
        assert (result.to_numpy() == np.arange(rows) * 3).all()

    def test_length_mismatch_rejected(self, device):
        with pytest.raises(ValueError):
            pim.zeros(4, dtype=pim.int32) + pim.zeros(5, dtype=pim.int32)

    def test_dtype_mismatch_rejected(self, device):
        with pytest.raises(TypeError):
            pim.zeros(4, dtype=pim.int32) + pim.zeros(4, dtype=pim.float32)

    def test_copy_preserves_contents(self, device, rng):
        a = rand_int32(rng, 24)
        ta = pim.from_numpy(a)
        tb = ta.copy()
        ta[0] = 42
        assert tb.to_numpy()[0] == a[0]
        assert (tb.to_numpy()[1:] == a[1:]).all()


class TestMemoryBehaviour:
    def test_slice_fill(self, device):
        x = pim.zeros(16, dtype=pim.int32)
        x[2:10:2] = 7
        want = np.zeros(16, dtype=np.int32)
        want[2:10:2] = 7
        assert (x.to_numpy() == want).all()

    def test_chained_expression(self, device):
        x = pim.from_numpy(np.arange(8, dtype=np.int32))
        y = pim.from_numpy(np.full(8, 3, dtype=np.int32))
        result = (x * y + x) / y
        want = golden_rtype(
            ROp.DIV, isa_int32,
            (np.arange(8) * 3 + np.arange(8)).astype(np.int32),
            np.full(8, 3, dtype=np.int32),
        )
        assert (result.to_numpy() == want).all()
