"""Tests for the pim.Profiler context manager."""

import numpy as np
import pytest

import repro.pim as pim
from repro.theory.counts import gate_cycles


class TestProfiler:
    def test_captures_cycle_delta(self, device):
        x = pim.from_numpy(np.arange(8, dtype=np.int32))
        y = pim.from_numpy(np.arange(8, dtype=np.int32))
        with pim.Profiler() as prof:
            _ = x * y
        assert prof.cycles > 1000  # a 32-bit multiply is thousands of gates

    def test_excludes_outside_work(self, device):
        x = pim.from_numpy(np.arange(8, dtype=np.int32))
        _ = x + x  # outside the profiled block
        with pim.Profiler() as prof:
            pass
        assert prof.cycles == 0

    def test_nested_ops_accumulate(self, device):
        x = pim.from_numpy(np.arange(8, dtype=np.int32))
        with pim.Profiler() as single:
            _ = x + x
        with pim.Profiler() as double:
            _ = x + x
            _ = x + x
        assert double.cycles > single.cycles * 1.5

    def test_cycles_before_exit_raises(self, device):
        prof = pim.Profiler()
        with pytest.raises(RuntimeError):
            prof.cycles

    def test_throughput_uses_eq1(self, device):
        x = pim.from_numpy(np.arange(8, dtype=np.int32))
        with pim.Profiler() as prof:
            _ = x + x
        ops = device.config.total_rows
        expected = ops / prof.cycles * device.config.frequency_hz
        assert prof.throughput(ops) == pytest.approx(expected)

    def test_stats_gate_breakdown(self, device):
        x = pim.from_numpy(np.arange(8, dtype=np.int32))
        with pim.Profiler() as prof:
            _ = x * x
        assert gate_cycles(prof.stats) > 0
        assert gate_cycles(prof.stats) < prof.cycles

    def test_echo_prints_summary(self, device, capsys):
        x = pim.from_numpy(np.arange(4, dtype=np.int32))
        with pim.Profiler(echo=True):
            _ = x + x
        out = capsys.readouterr().out
        assert "PIM cycles" in out
