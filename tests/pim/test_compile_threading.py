"""Thread-safety regression test: one CompiledFunction, many threads.

The serving layer (:mod:`repro.serve`) calls compiled functions from a
thread pool, so ``CompiledFunction.__call__`` and the driver's two
program-cache tiers must tolerate concurrent callers.  The hazards this
hammers:

- the capture race: N threads hit a cold CompiledFunction at once; the
  signature must be captured exactly once, everyone else replays;
- the driver cache tiers: concurrent compiles/lookups must keep the LRU
  dict consistent (no lost entries, no double-count drift);
- result integrity: every thread's scalar result must be bit-identical
  to the single-threaded golden value for its inputs.

Failures here historically present as rare ``KeyError``/``RuntimeError``
flakes or silently wrong results, so the test runs enough iterations to
make a race likely while staying fast on the small geometry.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.pim as pim


# 5 threads x 2 resident input tensors leaves headroom in the 16 user
# registers of the small geometry for the captured graph's intermediates.
THREADS = 5
CALLS_PER_THREAD = 12


@pytest.fixture(autouse=True)
def _cleanup():
    yield
    pim.reset()


def model(a, b):
    z = a * b + a
    return z[::2].sum()


def _inputs(seed):
    rng = np.random.default_rng(seed)
    return (rng.integers(-50, 50, 32).astype(np.int32),
            rng.integers(-50, 50, 32).astype(np.int32))


def _golden(a, b):
    z = a.astype(np.int64) * b + a
    return int(np.int32(z[::2].sum()))


def test_many_threads_one_compiled_function():
    device = pim.init(crossbars=4, rows=8, backend="simulator")
    func = pim.compile(model)

    # Tensors are created up front on the main thread: worker threads
    # only ever touch the device through func(), whose internal lock is
    # the synchronization point under test.
    tensors, goldens = [], []
    for index in range(THREADS):
        a, b = _inputs(seed=100 + index)
        tensors.append((pim.from_numpy(a), pim.from_numpy(b)))
        goldens.append(_golden(a, b))

    barrier = threading.Barrier(THREADS)
    failures = []

    def hammer(index):
        x, y = tensors[index]
        expected = goldens[index]
        barrier.wait()  # maximize contention on the capture race
        for turn in range(CALLS_PER_THREAD):
            try:
                result = func(x, y)
            except Exception as error:  # noqa: BLE001 - recorded for report
                failures.append((index, turn, repr(error)))
                return
            if int(result) != expected:
                failures.append((index, turn, f"{result} != {expected}"))
                return

    threads = [
        threading.Thread(target=hammer, args=(index,))
        for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not failures, failures
    # All threads share one signature: exactly one capture ever happens,
    # no matter how the race resolved.
    assert func.captures == 1
    assert func.cached_graphs == 1

    hits, misses, evictions = device.backend.cache_counters()
    # Capture compiled some bodies (misses); every later call replays the
    # compiled graph, so the counters stay sane rather than growing per
    # call. Exact values depend on the lowering, so assert shape only.
    assert misses > 0
    assert evictions == 0
    assert hits >= 0


def test_concurrent_distinct_signatures():
    """Two shapes racing: the per-signature entry table stays consistent."""
    pim.init(crossbars=4, rows=8, backend="simulator")
    func = pim.compile(model)

    cases = []
    for index, length in enumerate((16, 32) * 2):
        rng = np.random.default_rng(7 + index)
        a = rng.integers(-20, 20, length).astype(np.int32)
        b = rng.integers(-20, 20, length).astype(np.int32)
        cases.append((pim.from_numpy(a), pim.from_numpy(b), _golden(a, b)))

    barrier = threading.Barrier(len(cases))
    failures = []

    def run(case_index):
        x, y, expected = cases[case_index]
        barrier.wait()
        for _ in range(6):
            result = func(x, y)
            if int(result) != expected:
                failures.append((case_index, int(result), expected))
                return

    threads = [
        threading.Thread(target=run, args=(index,))
        for index in range(len(cases))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not failures, failures
    assert func.cached_graphs == 2  # one per shape
    assert func.captures == 2
