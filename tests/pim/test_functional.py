"""Tests for the module-level constructors and where()."""

import numpy as np
import pytest

import repro.pim as pim


class TestConstructors:
    def test_zeros_ones_full(self, device):
        assert (pim.zeros(6, dtype=pim.int32).to_numpy() == 0).all()
        assert (pim.ones(6, dtype=pim.int32).to_numpy() == 1).all()
        assert (pim.full(6, 2.5, dtype=pim.float32).to_numpy() == 2.5).all()

    def test_arange(self, device):
        assert (pim.arange(10).to_numpy() == np.arange(10)).all()

    def test_dtype_aliases(self, device):
        assert pim.zeros(3, dtype=int).dtype.name == "int32"
        assert pim.zeros(3, dtype=float).dtype.name == "float32"
        assert pim.zeros(3, dtype=np.int32).dtype.name == "int32"

    def test_unsupported_dtype(self, device):
        with pytest.raises(TypeError):
            pim.zeros(3, dtype=np.float64)

    def test_from_to_numpy_roundtrip(self, device):
        data = np.array([1.5, -2.25, 0.0, 1e10], dtype=np.float32)
        assert (pim.to_numpy(pim.from_numpy(data)) == data).all()

    def test_from_numpy_rejects_2d(self, device):
        with pytest.raises(ValueError):
            pim.from_numpy(np.zeros((2, 2), dtype=np.int32))

    def test_multi_warp_fill(self, device):
        n = device.rows * 3 + 1
        assert (pim.full(n, 9, dtype=pim.int32).to_numpy() == 9).all()


class TestWhere:
    def test_tensor_operands(self, device):
        cond = pim.from_numpy(np.array([1, 0, 1, 0], dtype=np.int32))
        a = pim.from_numpy(np.array([10, 20, 30, 40], dtype=np.int32))
        b = pim.from_numpy(np.array([-1, -2, -3, -4], dtype=np.int32))
        assert (pim.where(cond, a, b).to_numpy() == [10, -2, 30, -4]).all()

    def test_scalar_operands(self, device):
        x = pim.from_numpy(np.arange(8, dtype=np.int32))
        result = pim.where(x < 4, x, pim.full(8, -1, dtype=pim.int32))
        assert (result.to_numpy() == [0, 1, 2, 3, -1, -1, -1, -1]).all()

    def test_scalar_true_branch(self, device):
        x = pim.from_numpy(np.arange(6, dtype=np.int32))
        result = pim.where(x < 3, 100, x)
        assert (result.to_numpy() == [100, 100, 100, 3, 4, 5]).all()

    def test_float_values(self, device):
        cond = pim.from_numpy(np.array([0, 1, 1, 0], dtype=np.int32))
        a = pim.from_numpy(np.array([1.5, 2.5, 3.5, 4.5], dtype=np.float32))
        b = pim.from_numpy(np.array([-1.0, -2.0, -3.0, -4.0], dtype=np.float32))
        assert (pim.where(cond, a, b).to_numpy() == [-1.0, 2.5, 3.5, -4.0]).all()

    def test_condition_must_be_tensor(self, device):
        with pytest.raises(TypeError):
            pim.where(1, pim.zeros(2, dtype=pim.int32), pim.zeros(2, dtype=pim.int32))

    def test_value_dtypes_must_match(self, device):
        cond = pim.zeros(2, dtype=pim.int32)
        with pytest.raises(TypeError):
            pim.where(cond, pim.zeros(2, dtype=pim.int32), pim.zeros(2, dtype=pim.float32))


class TestDeviceManagement:
    def test_init_with_kwargs(self):
        device = pim.init(crossbars=4, rows=16)
        assert device.config.crossbars == 4
        x = pim.zeros(4, dtype=pim.int32)
        assert x.device is device
        pim.reset()

    def test_reset_creates_fresh_default(self):
        first = pim.default_device()
        pim.reset()
        second = pim.default_device()
        assert first is not second
        pim.reset()
