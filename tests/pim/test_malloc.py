"""Tests for the dynamic memory manager (register/warp allocator)."""

import pytest

from repro.arch.config import small_config
from repro.pim.malloc import Allocator, PIMMemoryError, Slot


@pytest.fixture
def allocator():
    # 4 crossbars x 16 rows, 16 user registers
    return Allocator(small_config(crossbars=4, rows=16))


class TestAllocation:
    def test_warps_needed(self, allocator):
        assert allocator.warps_needed(1) == 1
        assert allocator.warps_needed(16) == 1
        assert allocator.warps_needed(17) == 2
        assert allocator.warps_needed(64) == 4

    def test_invalid_length(self, allocator):
        with pytest.raises(ValueError):
            allocator.warps_needed(0)

    def test_first_fit_packs_registers(self, allocator):
        a = allocator.allocate(16)
        b = allocator.allocate(16)
        assert a.warp_start == b.warp_start == 0
        assert a.reg != b.reg

    def test_reference_alignment_preferred(self, allocator):
        ref = allocator.allocate(32)  # warps 0..1
        blocker = allocator.allocate(16)  # takes reg on warp 0
        aligned = allocator.allocate(32, reference=ref)
        assert aligned.warp_start == ref.warp_start
        assert aligned.reg not in (ref.reg, blocker.reg)

    def test_reference_alignment_with_offset_reference(self, allocator):
        # Occupy warps so a later reference sits at warp 2.
        filler = [allocator.allocate(32) for _ in range(2)]
        ref = Slot(reg=5, warp_start=2, warp_count=2)
        aligned = allocator.allocate(32, reference=ref)
        assert aligned.warp_start == 2

    def test_falls_back_when_reference_range_full(self, allocator):
        cfg_regs = allocator.config.user_registers
        ref = allocator.allocate(16)
        for _ in range(cfg_regs - 1):
            allocator.allocate(16)  # exhaust registers on warp 0
        other = allocator.allocate(16, reference=ref)
        assert other.warp_start != ref.warp_start

    def test_exhaustion_raises(self, allocator):
        total = allocator.config.user_registers * allocator.config.crossbars
        for _ in range(total):
            allocator.allocate(16)
        with pytest.raises(PIMMemoryError):
            allocator.allocate(16)

    def test_multi_warp_contiguity(self, allocator):
        slot = allocator.allocate(49)  # 4 warps of 16
        assert slot.warp_count == 4
        assert slot.warp_stop == slot.warp_start + 4


class TestFree:
    def test_free_enables_reuse(self, allocator):
        slot = allocator.allocate(64)
        allocator.free(slot)
        again = allocator.allocate(64)
        assert again == slot

    def test_free_is_idempotent(self, allocator):
        slot = allocator.allocate(16)
        allocator.free(slot)
        allocator.free(slot)  # no error
        assert allocator.live_slots == 0

    def test_live_slots_and_occupancy(self, allocator):
        assert allocator.occupancy() == 0.0
        slot = allocator.allocate(32)
        assert allocator.live_slots == 1
        assert allocator.occupancy() == pytest.approx(2 / (16 * 4))
        allocator.free(slot)
        assert allocator.occupancy() == 0.0
