"""Tests for reduction, sorting and CORDIC routines."""

import numpy as np
import pytest

import repro.pim as pim
from repro.isa.instructions import ROp

from tests.conftest import rand_float32, rand_int32


class TestReduce:
    def test_int_sum_matches_numpy(self, device, rng):
        data = rng.integers(-1000, 1000, 50).astype(np.int32)
        assert pim.from_numpy(data).sum() == data.sum()

    def test_single_element(self, device):
        assert pim.from_numpy(np.array([7], dtype=np.int32)).sum() == 7

    def test_odd_lengths(self, device):
        for n in (2, 3, 5, 7, 13, 31):
            data = np.arange(n, dtype=np.int32)
            assert pim.from_numpy(data).sum() == data.sum(), n

    def test_float_sum_bit_exact_with_fold_order(self, device):
        """The log-time reduction adds in a fixed fold pattern; the result
        must be bit-identical to the same fold computed on the host."""
        for n in (5, 16, 23):
            data = rand_float32(np.random.default_rng(n), n)
            got = pim.from_numpy(data).sum()
            vals = list(data)
            while len(vals) > 1:
                half = len(vals) // 2
                keep = len(vals) - half
                vals = [
                    np.float32(vals[i] + vals[keep + i]) if i < half else vals[i]
                    for i in range(keep)
                ]
            assert np.float32(got).view(np.uint32) == np.float32(vals[0]).view(
                np.uint32
            ), n

    def test_prod(self, device):
        data = np.array([1, 2, 3, 4, 5], dtype=np.int32)
        assert pim.from_numpy(data).prod() == 120

    def test_float_prod(self, device):
        data = np.array([0.5, 2.0, 4.0, 0.25], dtype=np.float32)
        assert pim.from_numpy(data).prod() == 1.0

    def test_sum_across_warps(self, big_device):
        n = big_device.rows * 5 + 3
        data = np.arange(n, dtype=np.int32)
        assert pim.from_numpy(data).sum() == data.sum()

    def test_reduce_rejects_other_ops(self, device):
        with pytest.raises(ValueError):
            pim.reduce(pim.zeros(4, dtype=pim.int32), ROp.SUB)

    def test_reduce_does_not_clobber_input(self, device):
        data = np.arange(8, dtype=np.int32)
        x = pim.from_numpy(data)
        x.sum()
        assert (x.to_numpy() == data).all()


class TestSort:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 16, 20, 33])
    def test_int_sort_lengths(self, device, n):
        rng = np.random.default_rng(n)
        data = rng.integers(-100, 100, n).astype(np.int32)
        got = pim.from_numpy(data).sort().to_numpy()
        assert (got == np.sort(data)).all()

    def test_float_sort(self, device, rng):
        data = (rng.normal(size=24) * 100).astype(np.float32)
        got = pim.from_numpy(data).sort().to_numpy()
        assert (got == np.sort(data)).all()

    def test_sort_with_duplicates(self, device):
        data = np.array([3, 1, 3, 1, 2, 2, 3, 1], dtype=np.int32)
        assert (pim.from_numpy(data).sort().to_numpy() == np.sort(data)).all()

    def test_sort_negative_floats(self, device):
        data = np.array([-1.5, 2.5, -3.5, 0.0, 1.0, -0.5], dtype=np.float32)
        assert (pim.from_numpy(data).sort().to_numpy() == np.sort(data)).all()

    def test_sort_already_sorted(self, device):
        data = np.arange(16, dtype=np.int32)
        assert (pim.from_numpy(data).sort().to_numpy() == data).all()

    def test_sort_does_not_clobber_input(self, device):
        data = np.array([5, 2, 9, 1], dtype=np.int32)
        x = pim.from_numpy(data)
        x.sort()
        assert (x.to_numpy() == data).all()

    def test_inter_crossbar_sort(self, big_device):
        """Sorting more elements than one crossbar holds forces the
        bitonic stages through inter-warp move instructions."""
        rng = np.random.default_rng(77)
        n = big_device.rows * 4  # spans 4 warps
        data = rng.integers(-10000, 10000, n).astype(np.int32)
        got = pim.from_numpy(data).sort().to_numpy()
        assert (got == np.sort(data)).all()

    def test_view_sort(self, device):
        data = np.array([9, 1, 8, 2, 7, 3], dtype=np.int32)
        x = pim.from_numpy(data)
        assert (x[1::2].sort().to_numpy() == np.sort(data[1::2])).all()


class TestCordic:
    def test_sine_accuracy(self, device, rng):
        angles = rng.uniform(-np.pi / 2, np.pi / 2, 16).astype(np.float32)
        got = pim.cordic_sin(pim.from_numpy(angles)).to_numpy()
        assert np.abs(got - np.sin(angles)).max() < 1e-5

    def test_cosine_accuracy(self, device, rng):
        angles = rng.uniform(-np.pi / 2, np.pi / 2, 16).astype(np.float32)
        got = pim.cordic_cos(pim.from_numpy(angles)).to_numpy()
        assert np.abs(got - np.cos(angles)).max() < 1e-5

    def test_boundary_angles(self, device):
        angles = np.array([-np.pi / 2, 0.0, np.pi / 2], dtype=np.float32)
        got = pim.cordic_sin(pim.from_numpy(angles)).to_numpy()
        assert np.abs(got - np.sin(angles)).max() < 1e-5

    def test_requires_float(self, device):
        with pytest.raises(TypeError):
            pim.cordic_sin(pim.zeros(4, dtype=pim.int32))

    def test_view_input(self, device, rng):
        angles = rng.uniform(-1.0, 1.0, 16).astype(np.float32)
        x = pim.from_numpy(angles)
        got = pim.cordic_sin(x[::2]).to_numpy()
        assert np.abs(got - np.sin(angles[::2])).max() < 1e-5
