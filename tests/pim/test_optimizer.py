"""Unit tests for the graph-optimizer passes (``repro.pim.optimizer``).

Each pass is exercised directly on hand-built macro-instruction streams,
and the pipeline's contract is checked semantically: executing the raw
and the optimized stream on two fresh simulators must leave *observable*
cells (everything outside the declared dead-temporary set) bit-identical.
"""

import numpy as np
import pytest

from repro.arch.config import small_config
from repro.arch.masks import RangeMask
from repro.driver.driver import Driver
from repro.isa.dtypes import float32, int32
from repro.isa.instructions import MoveInstr, ReadInstr, RInstr, ROp, WriteInstr
from repro.pim.optimizer import (
    OPT_LEVELS,
    eliminate_dead_instructions,
    fold_and_cse,
    optimize_instructions,
    plan_reservation,
    resolve_opt_level,
    reuse_registers,
)
from repro.sim.simulator import Simulator

CFG = small_config(crossbars=4, rows=8)
FULL_W = RangeMask.all(CFG.crossbars)
FULL_R = RangeMask.all(CFG.rows)


def run_stream(instructions):
    """Execute a macro stream on a fresh simulator; returns its memory."""
    sim = Simulator(CFG)
    driver = Driver(sim)
    for instr in instructions:
        driver.execute(instr)
    return sim.memory.words.copy()


def assert_equivalent(raw, optimized, dead_cells=()):
    """Raw and optimized streams must agree on every observable cell.

    Observable means: every user-register cell outside the declared
    dead-temporary set. Driver scratch registers are never observable
    (the allocator cannot hand them out, and every lowering initializes
    its own scratch), and dead cells are by definition unread.
    """
    mem_raw = run_stream(raw)
    mem_opt = run_stream(optimized)
    mask = np.ones(mem_raw.shape, dtype=bool)  # (crossbars, registers, rows)
    mask[:, CFG.user_registers :, :] = False
    for reg, warp in dead_cells:
        mask[warp, reg, :] = False
    assert np.array_equal(mem_raw[mask], mem_opt[mask])


def write(reg, value, warps=FULL_W, rows=FULL_R):
    return WriteInstr(reg, value, warps, rows)


def rop(op, dest, a, b=None, c=None, dtype=int32, warps=FULL_W, rows=FULL_R):
    return RInstr(op, dtype, dest=dest, src_a=a, src_b=b, src_c=c,
                  warp_mask=warps, row_mask=rows)


class TestResolveOptLevel:
    def test_legacy_flag_mapping(self):
        assert resolve_opt_level(False, None) == 0
        assert resolve_opt_level(True, None) == 1

    def test_explicit_level_wins(self):
        assert resolve_opt_level(False, 3) == 3
        assert resolve_opt_level(True, 0) == 0

    def test_rejects_unknown_levels(self):
        with pytest.raises(ValueError, match="opt_level"):
            resolve_opt_level(False, 7)

    def test_levels_are_contiguous(self):
        assert OPT_LEVELS == (0, 1, 2, 3)


class TestConstantFolding:
    def test_int_expression_folds_to_write(self):
        raw = [write(0, 5), write(1, 7), rop(ROp.ADD, 2, 0, 1)]
        stats = {}
        out = fold_and_cse(raw, CFG, {}, stats)
        assert stats["folded"] == 1
        assert isinstance(out[2], WriteInstr) and out[2].value == 12
        assert_equivalent(raw, out)

    def test_folded_constant_feeds_further_folding(self):
        raw = [
            write(0, 6), write(1, 2),
            rop(ROp.MUL, 2, 0, 1),       # 12
            rop(ROp.MOD, 3, 2, 1),       # 0
        ]
        stats = {}
        out = fold_and_cse(raw, CFG, {}, stats)
        assert stats["folded"] == 2
        assert all(isinstance(i, WriteInstr) for i in out)
        assert_equivalent(raw, out)

    def test_float_fold_exact(self):
        half = int(np.float32(0.25).view(np.uint32))
        four = int(np.float32(4.0).view(np.uint32))
        raw = [write(0, half), write(1, four),
               rop(ROp.MUL, 2, 0, 1, dtype=float32)]
        out = fold_and_cse(raw, CFG, {}, {})
        assert isinstance(out[2], WriteInstr)
        assert out[2].value == int(np.float32(1.0).view(np.uint32))
        assert_equivalent(raw, out)

    def test_float_division_and_nonfinite_refused(self):
        inf = 0x7F800000
        one = int(np.float32(1.0).view(np.uint32))
        div = [write(0, one), write(1, one),
               rop(ROp.DIV, 2, 0, 1, dtype=float32)]
        assert isinstance(fold_and_cse(div, CFG, {}, {})[2], RInstr)
        nonfinite = [write(0, inf), write(1, one),
                     rop(ROp.ADD, 2, 0, 1, dtype=float32)]
        assert isinstance(fold_and_cse(nonfinite, CFG, {}, {})[2], RInstr)

    def test_partial_overwrite_blocks_fold(self):
        # Register 0 is constant 5 everywhere except one cell: consuming
        # the full region must not treat it as uniform.
        raw = [
            write(0, 5), write(1, 1),
            write(0, 9, RangeMask.single(1), RangeMask.single(3)),
            rop(ROp.ADD, 2, 0, 1),
        ]
        out = fold_and_cse(raw, CFG, {}, {})
        assert isinstance(out[3], RInstr)
        assert_equivalent(raw, out)


class TestCSE:
    def test_recomputation_into_same_register_dropped(self):
        # The eager allocator recycles a freed temporary's slot, so the
        # recomputation lands in the same register: dropped entirely.
        raw = [
            rop(ROp.MUL, 2, 0, 1),
            rop(ROp.ADD, 3, 2, 0),
            rop(ROp.MUL, 2, 0, 1),   # identical value already in r2
            rop(ROp.SUB, 4, 2, 0),
        ]
        stats = {}
        out = fold_and_cse(raw, CFG, {}, stats)
        assert stats["cse_dropped"] == 1
        assert len(out) == 3
        assert_equivalent(raw, out)

    def test_recomputation_into_other_register_becomes_copy(self):
        raw = [
            rop(ROp.MUL, 2, 0, 1),
            rop(ROp.MUL, 3, 0, 1),   # same value, different destination
        ]
        stats = {}
        out = fold_and_cse(raw, CFG, {}, stats)
        assert stats["cse_copies"] == 1
        assert out[1].op is ROp.COPY and out[1].src_a == 2 and out[1].dest == 3
        assert_equivalent(raw, out)

    def test_source_overwrite_invalidates_expression(self):
        raw = [
            rop(ROp.MUL, 2, 0, 1),
            write(0, 3),
            rop(ROp.MUL, 4, 0, 1),   # source changed: must recompute
        ]
        out = fold_and_cse(raw, CFG, {}, {})
        assert isinstance(out[2], RInstr) and out[2].op is ROp.MUL
        assert_equivalent(raw, out)

    def test_destination_overwrite_invalidates_expression(self):
        raw = [
            rop(ROp.MUL, 2, 0, 1),
            write(2, 3),
            rop(ROp.MUL, 2, 0, 1),   # r2 no longer holds the product
        ]
        out = fold_and_cse(raw, CFG, {}, {})
        assert len(out) == 3
        assert_equivalent(raw, out)

    def test_in_place_update_is_not_cse_candidate(self):
        # reduce()-style in-place accumulation: dest is also a source, so
        # the second ADD consumes a different value and must stay.
        raw = [
            rop(ROp.ADD, 2, 2, 1),
            rop(ROp.ADD, 2, 2, 1),
        ]
        out = fold_and_cse(raw, CFG, {}, {})
        assert len(out) == 2
        assert_equivalent(raw, out)

    def test_duplicate_constant_broadcasts_unify(self):
        # Two scalar broadcasts of the same constant into different
        # registers: the second consumer reuses the first result.
        raw = [
            write(4, 7),
            rop(ROp.MUL, 2, 0, 4),
            write(5, 7),             # same constant, other register
            rop(ROp.MUL, 3, 0, 5),
        ]
        stats = {}
        out = fold_and_cse(raw, CFG, {}, stats)
        assert stats["cse_copies"] == 1
        assert out[3].op is ROp.COPY
        assert_equivalent(raw, out)

    def test_mask_mismatch_blocks_cse(self):
        raw = [
            rop(ROp.MUL, 2, 0, 1, rows=RangeMask(0, 3, 1)),
            rop(ROp.MUL, 3, 0, 1, rows=RangeMask(0, 7, 1)),
        ]
        out = fold_and_cse(raw, CFG, {}, {})
        assert all(i.op is ROp.MUL for i in out)
        assert_equivalent(raw, out)


class TestDeadTemporaryElimination:
    def test_unread_dead_write_dropped(self):
        dead = {(3, w) for w in range(CFG.crossbars)}
        raw = [rop(ROp.MUL, 3, 0, 1), rop(ROp.ADD, 2, 0, 1)]
        stats = {}
        out = eliminate_dead_instructions(raw, CFG, {}, dead, stats)
        assert stats["dce_dropped"] == 1
        assert len(out) == 1 and out[0].dest == 2
        assert_equivalent(raw, out, dead)

    def test_dead_chain_unwinds(self):
        dead = {(r, w) for r in (3, 4) for w in range(CFG.crossbars)}
        raw = [
            rop(ROp.MUL, 3, 0, 1),   # feeds only the dead r4
            rop(ROp.ADD, 4, 3, 0),   # dead
            rop(ROp.SUB, 2, 0, 1),   # live
        ]
        stats = {}
        out = eliminate_dead_instructions(raw, CFG, {}, dead, stats)
        assert stats["dce_dropped"] == 2
        assert len(out) == 1
        assert_equivalent(raw, out, dead)

    def test_dead_cells_read_by_live_consumer_survive(self):
        dead = {(3, w) for w in range(CFG.crossbars)}
        raw = [
            rop(ROp.MUL, 3, 0, 1),
            rop(ROp.ADD, 2, 3, 0),   # live consumer of the dead temp
        ]
        out = eliminate_dead_instructions(raw, CFG, {}, dead, {})
        assert len(out) == 2
        assert_equivalent(raw, out, dead)

    def test_in_stream_read_keeps_producer(self):
        dead = {(3, w) for w in range(CFG.crossbars)}
        raw = [rop(ROp.MUL, 3, 0, 1), ReadInstr(0, 2, 3)]
        out = eliminate_dead_instructions(raw, CFG, {}, dead, {})
        assert len(out) == 2

    def test_move_into_dead_cell_dropped(self):
        dead = {(3, w) for w in range(CFG.crossbars)}
        raw = [
            MoveInstr(src_reg=0, dst_reg=3, src_thread=0, dst_thread=5,
                      warp_mask=RangeMask.single(1)),
            rop(ROp.ADD, 2, 0, 1),
        ]
        out = eliminate_dead_instructions(raw, CFG, {}, dead, {})
        assert len(out) == 1
        assert_equivalent(raw, out, dead)


class TestRegisterReuse:
    def test_disjoint_temporaries_share_a_register(self):
        dead = {(r, w) for r in (3, 4) for w in range(CFG.crossbars)}
        raw = [
            rop(ROp.MUL, 3, 0, 1),
            rop(ROp.ADD, 2, 3, 0),   # last use of r3
            rop(ROp.MUL, 4, 0, 2),
            rop(ROp.ADD, 2, 4, 2),
        ]
        stats = {}
        out = reuse_registers(raw, CFG, {}, dead, stats)
        assert stats["registers_reused"] == 1
        assert out[2].dest == 3 and out[3].src_a == 3
        assert_equivalent(raw, out, dead)

    def test_overlapping_lifetimes_not_merged(self):
        dead = {(r, w) for r in (3, 4) for w in range(CFG.crossbars)}
        raw = [
            rop(ROp.MUL, 3, 0, 1),
            rop(ROp.MUL, 4, 0, 1),
            rop(ROp.ADD, 2, 3, 4),   # both alive here
        ]
        out = reuse_registers(raw, CFG, {}, dead, {})
        assert out == raw

    def test_live_register_never_renamed(self):
        dead = {(4, w) for w in range(CFG.crossbars)}
        raw = [
            rop(ROp.MUL, 3, 0, 1),   # r3 is observable: not a candidate
            rop(ROp.ADD, 2, 3, 0),
            rop(ROp.MUL, 4, 0, 2),
            rop(ROp.ADD, 2, 4, 2),
        ]
        out = reuse_registers(raw, CFG, {}, dead, {})
        assert out[2].dest == 4  # nothing to merge onto
        assert_equivalent(raw, out, dead)

    def test_carry_in_register_never_renamed(self):
        # r3 is read before the stream ever writes it (capture-time
        # contents carry in): renaming would read another temp's cells.
        dead = {(r, w) for r in (3, 4) for w in range(CFG.crossbars)}
        raw = [
            rop(ROp.ADD, 2, 3, 0),   # reads r3 before any write
            rop(ROp.MUL, 4, 0, 2),
            rop(ROp.ADD, 2, 4, 2),
        ]
        out = reuse_registers(raw, CFG, {}, dead, {})
        assert out == raw


class TestPipeline:
    def stream(self):
        return [
            write(0, 17), write(1, 5),
            rop(ROp.MUL, 2, 0, 1),
            rop(ROp.ADD, 3, 2, 0),
            rop(ROp.MUL, 4, 0, 1),   # CSE: same value as r2
            rop(ROp.SUB, 5, 4, 0),
            rop(ROp.MUL, 6, 1, 1),   # dead
        ]

    def test_level_below_two_is_identity(self):
        raw = self.stream()
        out, stats = optimize_instructions(raw, CFG, 1, set())
        assert out == raw and stats == {}

    def test_pipeline_equivalence_and_shrink(self):
        raw = self.stream()
        dead = {(6, w) for w in range(CFG.crossbars)}
        out, stats = optimize_instructions(raw, CFG, 3, dead)
        assert len(out) < len(raw)
        assert stats.get("dce_dropped", 0) >= 1
        assert_equivalent(raw, out, dead)

    def test_optimized_stream_still_validates(self):
        raw = self.stream()
        dead = {(6, w) for w in range(CFG.crossbars)}
        out, _ = optimize_instructions(raw, CFG, 3, dead)
        driver = Driver(Simulator(CFG))
        program = driver.compile(out, optimize=True)  # validates every op
        assert len(program) > 0


class TestReservationPlanning:
    def test_eliminated_temporary_cells_released(self):
        cells = {(2, 0), (2, 1), (6, 0), (6, 1)}
        live = {(2, 0), (2, 1)}
        span = RangeMask(0, 1, 1)  # the two warps the slots occupy
        raw = [
            rop(ROp.MUL, 2, 0, 1, warps=span),
            rop(ROp.MUL, 6, 0, 1, warps=span),
        ]
        out, _ = optimize_instructions(raw, CFG, 2, cells - live)
        reserved = plan_reservation(out, CFG, cells, live, set())
        assert reserved == live  # the dead temp's cells went back

    def test_deferred_read_cells_stay_reserved(self):
        cells = {(6, 0)}
        raw = [rop(ROp.MUL, 6, 0, 1)]
        reserved = plan_reservation(raw, CFG, cells, set(), {(6, 0)})
        assert (6, 0) in reserved
