"""Coverage for ``pim.where`` and arithmetic on ``TensorView`` operands
with mixed scalar / int32 / float32 arguments, including views as the
condition (the Section V-A mixed-operand matrix)."""

import numpy as np
import pytest

import repro.pim as pim


@pytest.fixture(autouse=True)
def _device():
    pim.init(crossbars=4, rows=16)
    yield
    pim.reset()


def _pair(dtype):
    if dtype is pim.int32:
        a = np.arange(-16, 16, dtype=np.int32)
        b = np.arange(32, 0, -1, dtype=np.int32)
    else:
        a = (np.arange(-16, 16) * 0.5).astype(np.float32)
        b = (np.arange(32, 0, -1) * 0.25).astype(np.float32)
    return a, b


class TestWhereWithViews:
    @pytest.mark.parametrize("dtype", [pim.int32, pim.float32], ids=["i32", "f32"])
    def test_view_condition_selects_tensor_values(self, dtype):
        a_host, b_host = _pair(dtype)
        a = pim.from_numpy(a_host)
        b = pim.from_numpy(b_host)
        # The condition is itself computed on views (strided operands).
        cond = a[::2] < b[::2]
        out = pim.where(cond, a[::2], b[::2])
        expected = np.where(a_host[::2] < b_host[::2], a_host[::2], b_host[::2])
        np.testing.assert_array_equal(out.to_numpy(), expected)

    def test_view_condition_on_offset_slice(self):
        a_host, b_host = _pair(pim.float32)
        a = pim.from_numpy(a_host)
        b = pim.from_numpy(b_host)
        cond_full = a < b                       # full-length int32 tensor
        out = pim.where(cond_full[1::3], a[1::3], b[1::3])
        expected = np.where(
            (a_host < b_host)[1::3], a_host[1::3], b_host[1::3]
        )
        np.testing.assert_array_equal(out.to_numpy(), expected)

    @pytest.mark.parametrize("dtype", [pim.int32, pim.float32], ids=["i32", "f32"])
    def test_scalar_branches(self, dtype):
        a_host, b_host = _pair(dtype)
        a = pim.from_numpy(a_host)
        b = pim.from_numpy(b_host)
        one = 1 if dtype is pim.int32 else 1.0
        zero = 0 if dtype is pim.int32 else 0.0
        out = pim.where(a[::2] < b[::2], one, zero)
        expected = np.where(
            a_host[::2] < b_host[::2],
            np.asarray(one, dtype=dtype.np_dtype),
            np.asarray(zero, dtype=dtype.np_dtype),
        )
        np.testing.assert_array_equal(out.to_numpy(), expected)

    def test_mixed_scalar_and_view_branch(self):
        a_host, b_host = _pair(pim.float32)
        a = pim.from_numpy(a_host)
        b = pim.from_numpy(b_host)
        out = pim.where(a[::4] >= 0.0, b[::4], -1.5)
        expected = np.where(a_host[::4] >= 0.0, b_host[::4], np.float32(-1.5))
        np.testing.assert_array_equal(out.to_numpy(), expected)

    def test_mismatched_branch_dtypes_rejected(self):
        a = pim.from_numpy(np.arange(8, dtype=np.int32))
        f = pim.from_numpy(np.arange(8, dtype=np.float32))
        with pytest.raises(TypeError, match="dtype"):
            pim.where(a > 3, a, f)

    def test_scalar_condition_rejected(self):
        a = pim.from_numpy(np.arange(8, dtype=np.int32))
        with pytest.raises(TypeError, match="condition"):
            pim.where(1, a, a)


class TestViewArithmeticMixedOperands:
    @pytest.mark.parametrize("dtype", [pim.int32, pim.float32], ids=["i32", "f32"])
    def test_view_with_scalar_both_sides(self, dtype):
        a_host, _ = _pair(dtype)
        a = pim.from_numpy(a_host)
        three = 3 if dtype is pim.int32 else 3.0
        np.testing.assert_array_equal(
            (a[::2] + three).to_numpy(), a_host[::2] + three
        )
        np.testing.assert_array_equal(
            (three * a[1::2]).to_numpy(), three * a_host[1::2]
        )
        np.testing.assert_array_equal(
            (three - a[::4]).to_numpy(), three - a_host[::4]
        )

    @pytest.mark.parametrize("dtype", [pim.int32, pim.float32], ids=["i32", "f32"])
    def test_view_with_view_same_base(self, dtype):
        a_host, _ = _pair(dtype)
        a = pim.from_numpy(a_host)
        out = a[::2] + a[1::2]
        np.testing.assert_array_equal(
            out.to_numpy(), a_host[::2] + a_host[1::2]
        )

    @pytest.mark.parametrize("dtype", [pim.int32, pim.float32], ids=["i32", "f32"])
    def test_view_with_compact_tensor(self, dtype):
        a_host, b_host = _pair(dtype)
        a = pim.from_numpy(a_host)
        short = pim.from_numpy(b_host[:16])
        out = a[::2] * short
        np.testing.assert_array_equal(
            out.to_numpy(), a_host[::2] * b_host[:16]
        )

    def test_view_comparison_yields_int32(self):
        a_host, b_host = _pair(pim.float32)
        a = pim.from_numpy(a_host)
        b = pim.from_numpy(b_host)
        cond = a[::2] > b[::2]
        assert cond.dtype is pim.int32
        np.testing.assert_array_equal(
            cond.to_numpy(), (a_host[::2] > b_host[::2]).astype(np.int32)
        )

    def test_int_view_scalar_comparison(self):
        a_host, _ = _pair(pim.int32)
        a = pim.from_numpy(a_host)
        np.testing.assert_array_equal(
            (a[::3] <= 0).to_numpy(), (a_host[::3] <= 0).astype(np.int32)
        )

    def test_compound_view_expression(self):
        """The Figure-12 shape on strided views end-to-end."""
        a_host, b_host = _pair(pim.float32)
        a = pim.from_numpy(a_host)
        b = pim.from_numpy(b_host)
        out = a[::2] * b[::2] + a[::2]
        np.testing.assert_array_equal(
            out.to_numpy(), a_host[::2] * b_host[::2] + a_host[::2]
        )
