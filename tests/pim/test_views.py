"""Tests for TensorView: slicing semantics, view ops, inter-view moves."""

import numpy as np
import pytest

import repro.pim as pim

from tests.conftest import rand_float32, rand_int32


@pytest.fixture
def data():
    return np.arange(32, dtype=np.int32)


@pytest.fixture
def tensor(device, data):
    return pim.from_numpy(data)


class TestSlicing:
    def test_even_view(self, tensor, data):
        view = tensor[::2]
        assert isinstance(view, pim.TensorView)
        assert len(view) == 16
        assert (view.to_numpy() == data[::2]).all()

    def test_offset_strided_view(self, tensor, data):
        assert (tensor[3::4].to_numpy() == data[3::4]).all()

    def test_bounded_view(self, tensor, data):
        assert (tensor[4:20].to_numpy() == data[4:20]).all()

    def test_view_of_view(self, tensor, data):
        assert (tensor[::2][1::2].to_numpy() == data[::2][1::2]).all()

    def test_view_of_view_of_view(self, tensor, data):
        assert (
            tensor[1::2][::3][1:].to_numpy() == data[1::2][::3][1:]
        ).all()

    def test_view_scalar_access(self, tensor, data):
        view = tensor[::2]
        assert view[3] == data[::2][3]
        assert view[-1] == data[::2][-1]

    def test_view_scalar_write_hits_base(self, tensor):
        view = tensor[::2]
        view[2] = 99  # base element 4
        assert tensor[4] == 99

    def test_view_slice_fill(self, tensor, data):
        tensor[::2][1::2] = 0  # base elements 2, 6, 10, ...
        want = data.copy()
        want[2::4] = 0
        assert (tensor.to_numpy() == want).all()

    def test_view_out_of_range(self, tensor):
        view = tensor[::2]
        with pytest.raises(IndexError):
            view[16]

    def test_repr_shows_slicing(self, tensor):
        assert "TensorView" in repr(tensor[::2])
        assert "slice" in repr(tensor[::2])


class TestViewOps:
    def test_same_mask_ops_stay_masked(self, tensor, data):
        """x[::2] * x[::2] runs as one masked instruction, no moves."""
        stats_before = tensor.device.stats_snapshot()
        result = tensor[::2] * tensor[::2]
        delta = tensor.device.simulator.stats.diff(stats_before)
        assert delta.op_counts.get("move", 0) == 0
        assert delta.op_counts.get("logic_v_not", 0) == 0
        assert (result.to_numpy() == (data[::2] * data[::2])).all()

    def test_result_of_masked_op_is_view(self, tensor):
        result = tensor[::2] + tensor[::2]
        assert isinstance(result, pim.TensorView)

    def test_misaligned_views_move_then_compute(self, tensor, data):
        result = tensor[::2] + tensor[1::2]
        assert isinstance(result, pim.Tensor)
        assert (result.to_numpy() == data[::2] + data[1::2]).all()

    def test_view_plus_scalar(self, tensor, data):
        assert ((tensor[1::2] + 100).to_numpy() == data[1::2] + 100).all()

    def test_view_comparison(self, tensor, data):
        lt = tensor[::2] < tensor[::2]
        assert (lt.to_numpy() == 0).all()

    def test_view_unary(self, tensor, data):
        assert ((-tensor[::4]).to_numpy() == -data[::4]).all()

    def test_view_compact(self, tensor, data):
        compact = tensor[5::3].compact()
        assert isinstance(compact, pim.Tensor)
        assert (compact.to_numpy() == data[5::3]).all()

    def test_view_chain_expression(self, tensor, data):
        """The paper's reduction idiom: evens plus odds, half the size."""
        s = tensor[::2] + tensor[1::2]
        s2 = s[::2] + s[1::2]
        want = data[::2] + data[1::2]
        want = want[::2] + want[1::2]
        assert (s2.to_numpy() == want).all()

    def test_views_across_warps(self, big_device):
        rows = big_device.rows
        n = rows * 4
        data = np.arange(n, dtype=np.int32)
        x = pim.from_numpy(data)
        # Stride that does not divide the row count exercises per-warp
        # segment generation.
        assert (x[::3].to_numpy() == data[::3]).all()
        result = x[::2] + x[1::2]
        assert (result.to_numpy() == data[::2] + data[1::2]).all()

    def test_float_views(self, device, rng):
        data = rand_float32(rng, 24)
        x = pim.from_numpy(data)
        got = (x[::2] * x[1::2]).to_numpy()
        want = (data[::2] * data[1::2]).astype(np.float32)
        assert (got.view(np.uint32) == want.view(np.uint32)).all()


class TestViewReductions:
    def test_view_sum(self, tensor, data):
        assert tensor[::2].sum() == data[::2].sum()

    def test_view_sum_offset(self, tensor, data):
        assert tensor[3::4].sum() == data[3::4].sum()

    def test_view_sort(self, device):
        data = np.array([9, 1, 8, 2, 7, 3, 6, 4], dtype=np.int32)
        x = pim.from_numpy(data)
        assert (x[::2].sort().to_numpy() == np.sort(data[::2])).all()
