"""Tests for the MatPIM-style linear algebra layer."""

import numpy as np
import pytest

import repro.pim as pim
from repro.pim.linalg import Matrix, dot, matmul, matvec


class TestMatrix:
    def test_from_to_numpy_roundtrip(self, device):
        data = np.arange(12, dtype=np.float32).reshape(4, 3)
        matrix = Matrix.from_numpy(data)
        np.testing.assert_array_equal(matrix.to_numpy(), data)
        assert matrix.shape == (4, 3)

    def test_int_matrix(self, device):
        data = np.arange(6, dtype=np.int32).reshape(2, 3)
        np.testing.assert_array_equal(Matrix.from_numpy(data).to_numpy(), data)

    def test_rejects_1d(self, device):
        with pytest.raises(ValueError):
            Matrix.from_numpy(np.arange(4, dtype=np.float32))

    def test_rejects_float64(self, device):
        with pytest.raises(TypeError):
            Matrix.from_numpy(np.zeros((2, 2)))

    def test_column_view_shares_storage(self, device):
        data = np.arange(8, dtype=np.int32).reshape(4, 2)
        matrix = Matrix.from_numpy(data)
        col = matrix.column(1)
        np.testing.assert_array_equal(col.to_numpy(), data[:, 1])


class TestMatvec:
    def test_int_matvec_host_vector(self, device):
        a = np.array([[1, 2], [3, 4], [5, 6]], dtype=np.int32)
        x = np.array([10, 100], dtype=np.int32)
        got = Matrix.from_numpy(a).matvec(x).to_numpy()
        np.testing.assert_array_equal(got, a @ x)

    def test_float_matvec(self, device):
        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (8, 4)).astype(np.float32)
        x = rng.uniform(-1, 1, 4).astype(np.float32)
        got = Matrix.from_numpy(a).matvec(x).to_numpy()
        np.testing.assert_allclose(got, a @ x, rtol=1e-5, atol=1e-6)

    def test_matvec_with_pim_vector(self, device):
        a = np.array([[2, 0], [0, 3]], dtype=np.int32)
        x = pim.from_numpy(np.array([5, 7], dtype=np.int32))
        got = matvec(Matrix.from_numpy(a), x).to_numpy()
        np.testing.assert_array_equal(got, [10, 21])

    def test_matmul_operator(self, device):
        a = np.array([[1, 2], [3, 4]], dtype=np.int32)
        x = np.array([1, -1], dtype=np.int32)
        got = (Matrix.from_numpy(a) @ x).to_numpy()
        np.testing.assert_array_equal(got, a @ x)

    def test_length_mismatch(self, device):
        with pytest.raises(ValueError):
            Matrix.from_numpy(np.zeros((2, 2), dtype=np.int32)).matvec([1, 2, 3])


class TestMatmul:
    def test_int_matmul(self, device):
        a = np.array([[1, 2, 3], [4, 5, 6]], dtype=np.int32)
        b = np.array([[7, 8], [9, 10], [11, 12]], dtype=np.int32)
        got = matmul(Matrix.from_numpy(a), Matrix.from_numpy(b)).to_numpy()
        np.testing.assert_array_equal(got, a @ b)

    def test_float_matmul(self, device):
        rng = np.random.default_rng(1)
        a = rng.uniform(-1, 1, (4, 3)).astype(np.float32)
        b = rng.uniform(-1, 1, (3, 2)).astype(np.float32)
        got = (Matrix.from_numpy(a) @ Matrix.from_numpy(b)).to_numpy()
        np.testing.assert_allclose(got, a @ b, rtol=1e-5, atol=1e-6)

    def test_shape_mismatch(self, device):
        a = Matrix.from_numpy(np.zeros((2, 3), dtype=np.int32))
        b = Matrix.from_numpy(np.zeros((2, 3), dtype=np.int32))
        with pytest.raises(ValueError):
            a @ b

    def test_identity(self, device):
        eye = Matrix.from_numpy(np.eye(3, dtype=np.int32))
        a = np.array([[1, 2, 3], [4, 5, 6], [7, 8, 9]], dtype=np.int32)
        got = (Matrix.from_numpy(a) @ eye).to_numpy()
        np.testing.assert_array_equal(got, a)

    def test_transpose_numpy(self, device):
        a = np.arange(6, dtype=np.float32).reshape(2, 3)
        np.testing.assert_array_equal(
            Matrix.from_numpy(a).transpose_numpy().to_numpy(), a.T
        )


class TestDot:
    def test_int_dot(self, device):
        a = np.arange(8, dtype=np.int32)
        b = np.arange(8, dtype=np.int32)[::-1].copy()
        assert dot(pim.from_numpy(a), pim.from_numpy(b)) == int(a @ b)

    def test_view_dot(self, device):
        a = np.arange(16, dtype=np.int32)
        x = pim.from_numpy(a)
        assert dot(x[::2], x[1::2]) == int(a[::2] @ a[1::2])
