"""Tests for profiling counters and the Eq. (1) throughput derivation."""

import pytest

from repro.sim.stats import SimStats, throughput


class TestSimStats:
    def test_record_accumulates(self):
        stats = SimStats()
        stats.record("logic_h_nor", gates=32)
        stats.record("logic_h_nor")
        stats.record("write")
        assert stats.op_counts == {"logic_h_nor": 2, "write": 1}
        assert stats.cycles == 3
        assert stats.gates_executed == 32

    def test_diff(self):
        stats = SimStats()
        stats.record("write")
        snapshot = stats.copy()
        stats.record("write")
        stats.record("move", cycles=4)
        delta = stats.diff(snapshot)
        assert delta.op_counts == {"write": 1, "move": 1}
        assert delta.cycles == 5

    def test_diff_drops_zero_entries(self):
        stats = SimStats()
        stats.record("read")
        delta = stats.diff(stats.copy())
        assert delta.op_counts == {}

    def test_copy_is_independent(self):
        stats = SimStats()
        stats.record("read")
        clone = stats.copy()
        stats.record("read")
        assert clone.op_counts["read"] == 1

    def test_summary_mentions_cycles(self):
        stats = SimStats()
        stats.record("logic_v_not")
        assert "1" in stats.summary()
        assert "logic_v_not" in stats.summary()


class TestThroughput:
    def test_equation_one(self):
        """64M rows, 289-cycle addition, 300 MHz -> the paper's regime."""
        result = throughput(64 * 2**20, 289, 300e6)
        assert result == pytest.approx(64 * 2**20 / 289 * 300e6)

    def test_zero_latency_rejected(self):
        with pytest.raises(ValueError):
            throughput(1, 0, 1.0)

    def test_scales_linearly_with_parallelism(self):
        assert throughput(200, 10, 1e6) == 2 * throughput(100, 10, 1e6)
