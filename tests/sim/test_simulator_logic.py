"""Semantics tests for the simulator's logic execution.

These pin down the stateful-logic contract: outputs can only be pulled
from 1 to 0 (so an uninitialized output corrupts the gate), masks gate
execution, and partition patterns execute all their concurrent gates.
"""

import pytest

from repro.arch.config import small_config
from repro.arch.micro_ops import (
    CrossbarMaskOp,
    GateType,
    LogicHOp,
    LogicVOp,
    ReadOp,
    RowMaskOp,
    WriteOp,
)
from repro.sim.simulator import SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator(small_config(crossbars=2, rows=4))


def select(sim, warp, row):
    sim.execute(CrossbarMaskOp(warp, warp, 1))
    sim.execute(RowMaskOp(row, row, 1))


def init1(reg, p_out, p_end=None, p_step=1):
    return LogicHOp(
        GateType.INIT1, 0, 0, reg,
        p_a=0, p_b=0, p_out=p_out,
        p_end=p_end if p_end is not None else p_out, p_step=p_step,
    )


class TestStatefulSemantics:
    def test_nor_truth_table(self, sim):
        select(sim, 0, 0)
        for a, b, expected in [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 0)]:
            sim.execute(WriteOp(0, a))
            sim.execute(WriteOp(1, b))
            sim.execute(init1(2, 0))
            sim.execute(
                LogicHOp(GateType.NOR, 0, 1, 2, p_a=0, p_b=0, p_out=0, p_end=0)
            )
            assert sim.execute(ReadOp(2)) & 1 == expected

    def test_output_must_be_initialized(self, sim):
        """A NOR into a 0 output stays 0 even when the gate result is 1."""
        select(sim, 0, 0)
        sim.execute(WriteOp(0, 0))
        sim.execute(WriteOp(1, 0))
        sim.execute(WriteOp(2, 0))  # output cell is 0, not initialized
        sim.execute(LogicHOp(GateType.NOR, 0, 1, 2, p_a=0, p_b=0, p_out=0, p_end=0))
        assert sim.execute(ReadOp(2)) & 1 == 0  # would be 1 if initialized

    def test_not_gate(self, sim):
        select(sim, 0, 0)
        sim.execute(WriteOp(0, 1))
        sim.execute(init1(2, 0))
        sim.execute(LogicHOp(GateType.NOT, 0, 0, 2, p_a=0, p_b=0, p_out=0, p_end=0))
        assert sim.execute(ReadOp(2)) & 1 == 0

    def test_init0(self, sim):
        select(sim, 0, 0)
        sim.execute(WriteOp(2, 0xFFFFFFFF))
        sim.execute(
            LogicHOp(GateType.INIT0, 0, 0, 2, p_a=0, p_b=0, p_out=0, p_end=31)
        )
        assert sim.execute(ReadOp(2)) == 0

    def test_cross_partition_gate(self, sim):
        """NOR reading partition 3 and 5, writing partition 7."""
        select(sim, 0, 0)
        sim.execute(WriteOp(0, 0))  # all partitions 0
        sim.execute(init1(2, 7))
        sim.execute(LogicHOp(GateType.NOR, 0, 0, 2, p_a=3, p_b=5, p_out=7, p_end=7))
        assert sim.execute(ReadOp(2)) == 1 << 7

    def test_parallel_not_column(self, sim):
        select(sim, 0, 0)
        sim.execute(WriteOp(0, 0x0F0F0F0F))
        sim.execute(init1(1, 0, p_end=31))
        sim.execute(
            LogicHOp(GateType.NOT, 0, 0, 1, p_a=0, p_b=0, p_out=0, p_end=31)
        )
        assert sim.execute(ReadOp(1)) == 0xF0F0F0F0

    def test_strided_shift_pattern(self, sim):
        """NOT from partition k to k+1 at stride 2 (Figure 7(c) shape)."""
        select(sim, 0, 0)
        sim.execute(WriteOp(0, 0xFFFFFFFF))
        sim.execute(init1(1, 0, p_end=31))
        sim.execute(
            LogicHOp(GateType.NOT, 0, 0, 1, p_a=0, p_b=0, p_out=1, p_end=31, p_step=2)
        )
        # Odd partitions got NOT(1) = 0; even partitions keep their init 1.
        assert sim.execute(ReadOp(1)) == 0x55555555


class TestMasks:
    def test_row_mask_gates_execution(self, sim):
        sim.execute(CrossbarMaskOp(0, 0, 1))
        sim.execute(RowMaskOp(0, 3, 1))
        sim.execute(WriteOp(0, 7))
        sim.execute(RowMaskOp(1, 1, 1))
        sim.execute(WriteOp(0, 9))
        select(sim, 0, 0)
        assert sim.execute(ReadOp(0)) == 7
        select(sim, 0, 1)
        assert sim.execute(ReadOp(0)) == 9

    def test_crossbar_mask_gates_execution(self, sim):
        sim.execute(CrossbarMaskOp(1, 1, 1))
        sim.execute(RowMaskOp(0, 0, 1))
        sim.execute(WriteOp(0, 5))
        select(sim, 0, 0)
        assert sim.execute(ReadOp(0)) == 0
        select(sim, 1, 0)
        assert sim.execute(ReadOp(0)) == 5

    def test_strided_row_mask(self, sim):
        sim.execute(CrossbarMaskOp(0, 0, 1))
        sim.execute(RowMaskOp(0, 2, 2))
        sim.execute(WriteOp(0, 3))
        for row, expected in [(0, 3), (1, 0), (2, 3), (3, 0)]:
            select(sim, 0, row)
            assert sim.execute(ReadOp(0)) == expected

    def test_read_requires_single_selection(self, sim):
        sim.execute(CrossbarMaskOp(0, 1, 1))
        sim.execute(RowMaskOp(0, 0, 1))
        with pytest.raises(SimulationError):
            sim.execute(ReadOp(0))

    def test_mask_out_of_range(self, sim):
        with pytest.raises(SimulationError):
            sim.execute(RowMaskOp(0, 100, 1))


class TestVerticalOps:
    def test_vertical_not_transfers_complement(self, sim):
        select(sim, 0, 0)
        sim.execute(WriteOp(3, 0x0000FFFF))
        sim.execute(CrossbarMaskOp(0, 0, 1))
        sim.execute(LogicVOp(GateType.INIT1, 0, 2, 3))
        sim.execute(LogicVOp(GateType.NOT, 0, 2, 3))
        select(sim, 0, 2)
        assert sim.execute(ReadOp(3)) == 0xFFFF0000

    def test_vertical_init0(self, sim):
        select(sim, 0, 1)
        sim.execute(WriteOp(0, 123))
        sim.execute(CrossbarMaskOp(0, 0, 1))
        sim.execute(LogicVOp(GateType.INIT0, 0, 1, 0))
        select(sim, 0, 1)
        assert sim.execute(ReadOp(0)) == 0

    def test_vertical_respects_crossbar_mask(self, sim):
        select(sim, 1, 0)
        sim.execute(WriteOp(0, 0xFFFFFFFF))
        sim.execute(CrossbarMaskOp(0, 0, 1))  # only crossbar 0 active
        sim.execute(LogicVOp(GateType.INIT0, 0, 0, 0))
        select(sim, 1, 0)
        assert sim.execute(ReadOp(0)) == 0xFFFFFFFF  # untouched


class TestStats:
    def test_ops_are_counted_by_kind(self, sim):
        select(sim, 0, 0)
        sim.execute(WriteOp(0, 1))
        sim.execute(init1(1, 0))
        sim.execute(LogicHOp(GateType.NOT, 0, 0, 1, p_a=0, p_b=0, p_out=0, p_end=0))
        counts = sim.stats.op_counts
        assert counts["write"] == 1
        assert counts["logic_h_init1"] == 1
        assert counts["logic_h_not"] == 1
        assert counts["mask_crossbar"] == 1
        assert sim.stats.cycles == sim.stats.micro_ops
