"""Tests for distributed inter-crossbar move execution."""

import pytest

from repro.arch.config import small_config
from repro.arch.micro_ops import (
    CrossbarMaskOp,
    MoveOp,
    ReadOp,
    RowMaskOp,
    WriteOp,
)
from repro.sim.simulator import SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator(small_config(crossbars=16, rows=4))


def write_at(sim, warp, row, index, value):
    sim.execute(CrossbarMaskOp(warp, warp, 1))
    sim.execute(RowMaskOp(row, row, 1))
    sim.execute(WriteOp(index, value))


def read_at(sim, warp, row, index):
    sim.execute(CrossbarMaskOp(warp, warp, 1))
    sim.execute(RowMaskOp(row, row, 1))
    return sim.execute(ReadOp(index))


class TestMoves:
    def test_single_pair_move(self, sim):
        write_at(sim, 2, 1, 0, 0xABCD)
        sim.execute(CrossbarMaskOp(2, 2, 1))
        sim.execute(MoveOp(3, 1, 2, 0, 5))
        assert read_at(sim, 5, 2, 5) == 0xABCD

    def test_move_overwrites_destination(self, sim):
        write_at(sim, 0, 0, 0, 111)
        write_at(sim, 1, 0, 0, 222)
        sim.execute(CrossbarMaskOp(0, 0, 1))
        sim.execute(MoveOp(1, 0, 0, 0, 0))
        assert read_at(sim, 1, 0, 0) == 111

    def test_distributed_paper_pattern(self, sim):
        """Crossbars xx01 -> xx10 in parallel (Section III-F example)."""
        for group in range(4):
            write_at(sim, group * 4 + 1, 0, 2, 100 + group)
        sim.execute(CrossbarMaskOp(0b0001, 0b1101, 0b0100))
        sim.execute(MoveOp(1, 0, 0, 2, 2))
        for group in range(4):
            assert read_at(sim, group * 4 + 2, 0, 2) == 100 + group

    def test_negative_distance(self, sim):
        write_at(sim, 8, 3, 1, 77)
        sim.execute(CrossbarMaskOp(8, 8, 1))
        sim.execute(MoveOp(-8, 3, 0, 1, 1))
        assert read_at(sim, 0, 0, 1) == 77

    def test_contiguous_half_shift(self, sim):
        """Sources 8..15 all move to 0..7 in one operation (step 1 = 4^0)."""
        for warp in range(8, 16):
            write_at(sim, warp, 0, 0, warp)
        sim.execute(CrossbarMaskOp(8, 15, 1))
        sim.execute(MoveOp(-8, 0, 0, 0, 0))
        for warp in range(8):
            assert read_at(sim, warp, 0, 0) == warp + 8

    def test_overlapping_pattern_rejected(self, sim):
        sim.execute(CrossbarMaskOp(0, 12, 4))
        with pytest.raises(SimulationError):
            sim.execute(MoveOp(4, 0, 0, 0, 0))

    def test_bad_step_rejected(self, sim):
        sim.execute(CrossbarMaskOp(0, 4, 2))
        with pytest.raises(SimulationError):
            sim.execute(MoveOp(8, 0, 0, 0, 0))

    def test_htree_cost_mode(self):
        sim = Simulator(small_config(crossbars=16, rows=4), move_cost="htree")
        write_at(sim, 0, 0, 0, 5)
        sim.execute(CrossbarMaskOp(0, 0, 1))
        before = sim.stats.cycles
        sim.execute(MoveOp(15, 0, 0, 0, 0))  # crosses the root: 2 levels up+down
        assert sim.stats.cycles - before == 4
        assert sim.stats.htree_hop_cycles == 3

    def test_unit_cost_mode_counts_one_cycle(self, sim):
        write_at(sim, 0, 0, 0, 5)
        sim.execute(CrossbarMaskOp(0, 0, 1))
        before = sim.stats.cycles
        sim.execute(MoveOp(15, 0, 0, 0, 0))
        assert sim.stats.cycles - before == 1
