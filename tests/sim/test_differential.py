"""Differential testing: packed simulator vs. the naive reference.

Random micro-operation streams — and full driver-lowered macro-
instructions — are executed on both the word-packed production simulator
and the bit-at-a-time :class:`ReferenceSimulator`; the final memory images
must match exactly. This pins the packed executor's semantics to the
written-out operation definitions, independent of its implementation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import small_config
from repro.arch.micro_ops import (
    CrossbarMaskOp,
    GateType,
    LogicHOp,
    LogicVOp,
    MoveOp,
    RowMaskOp,
    WriteOp,
)
from repro.driver.driver import Driver
from repro.isa.dtypes import float32, int32
from repro.isa.instructions import RInstr, ROp
from repro.sim.reference import ReferenceSimulator
from repro.sim.simulator import Simulator

CFG = small_config(crossbars=4, rows=4)


def images_match(sim: Simulator, ref: ReferenceSimulator) -> bool:
    for xbar in range(CFG.crossbars):
        if not (sim.memory.unpack_bits(xbar) == ref.bits[xbar]).all():
            return False
    return True


def run_both(ops, seed_words=None):
    sim = Simulator(CFG)
    ref = ReferenceSimulator(CFG)
    if seed_words is not None:
        for (xbar, row, index), value in seed_words.items():
            sim.memory.set_word(xbar, row, index, value)
            ref.execute(CrossbarMaskOp(xbar, xbar, 1))
            ref.execute(RowMaskOp(row, row, 1))
            ref.execute(WriteOp(index, value))
            ref.execute(CrossbarMaskOp(0, CFG.crossbars - 1, 1))
            ref.execute(RowMaskOp(0, CFG.rows - 1, 1))
    sim.execute_all(ops)
    ref.execute_all(ops)
    assert images_match(sim, ref)


# ----------------------------------------------------------------------
# Random op-stream strategy
# ----------------------------------------------------------------------
def _mask_ops(draw):
    start = draw(st.integers(0, CFG.crossbars - 1))
    stop = draw(st.integers(start, CFG.crossbars - 1))
    step = draw(st.sampled_from([1, 2]))
    stop = start + ((stop - start) // step) * step
    rstart = draw(st.integers(0, CFG.rows - 1))
    rstop = draw(st.integers(rstart, CFG.rows - 1))
    rstep = draw(st.sampled_from([1, 2]))
    rstop = rstart + ((rstop - rstart) // rstep) * rstep
    return [CrossbarMaskOp(start, stop, step), RowMaskOp(rstart, rstop, rstep)]


@st.composite
def op_streams(draw):
    ops = [
        CrossbarMaskOp(0, CFG.crossbars - 1, 1),
        RowMaskOp(0, CFG.rows - 1, 1),
    ]
    for _ in range(draw(st.integers(3, 20))):
        kind = draw(st.integers(0, 4))
        if kind == 0:
            ops.extend(_mask_ops(draw))
        elif kind == 1:
            ops.append(
                WriteOp(draw(st.integers(0, CFG.registers - 1)),
                        draw(st.integers(0, 2**32 - 1)))
            )
        elif kind == 2:
            gate = draw(st.sampled_from(list(GateType)))
            p_a = draw(st.integers(0, CFG.partitions - 1))
            p_b = draw(st.integers(p_a, CFG.partitions - 1))
            p_out = draw(st.integers(0, CFG.partitions - 1))
            ops.append(
                LogicHOp(
                    gate,
                    draw(st.integers(0, CFG.registers - 1)),
                    draw(st.integers(0, CFG.registers - 1)),
                    draw(st.integers(0, CFG.registers - 1)),
                    p_a=p_a, p_b=p_b, p_out=p_out, p_end=p_out, p_step=1,
                )
            )
        elif kind == 3:
            gate = draw(st.sampled_from(
                [GateType.INIT0, GateType.INIT1, GateType.NOT]))
            in_row = draw(st.integers(0, CFG.rows - 1))
            out_row = draw(
                st.integers(0, CFG.rows - 1).filter(
                    lambda r: gate != GateType.NOT or r != in_row
                )
            )
            ops.append(
                LogicVOp(gate, in_row, out_row,
                         draw(st.integers(0, CFG.registers - 1)))
            )
        else:
            # Parallel column op (strided pattern).
            step = draw(st.sampled_from([1, 2, 4]))
            offset = draw(st.integers(0, step - 1)) if step > 1 else 0
            dist = draw(st.integers(0, step - 1))
            p_out = dist + offset
            if p_out >= CFG.partitions:
                continue
            last = p_out + ((CFG.partitions - 1 - p_out) // step) * step
            gate = draw(st.sampled_from([GateType.NOT, GateType.INIT1]))
            ops.append(
                LogicHOp(
                    gate,
                    draw(st.integers(0, CFG.registers - 1)),
                    draw(st.integers(0, CFG.registers - 1)),
                    draw(st.integers(0, CFG.registers - 1)),
                    p_a=offset, p_b=offset, p_out=p_out, p_end=last,
                    p_step=step,
                )
            )
    return ops


@settings(max_examples=60, deadline=None)
@given(ops=op_streams())
def test_random_streams_match(ops):
    run_both(ops)


class TestDriverLoweredPrograms:
    """Whole macro-instructions through both executors."""

    @pytest.mark.parametrize(
        "op,dtype",
        [
            (ROp.ADD, int32),
            (ROp.MUL, int32),
            (ROp.LT, int32),
            (ROp.ADD, float32),
            (ROp.MUL, float32),
            (ROp.BIT_XOR, int32),
            (ROp.ABS, int32),
        ],
        ids=lambda x: getattr(x, "value", None) or getattr(x, "name", str(x)),
    )
    def test_macro_instruction(self, op, dtype):
        rng = np.random.default_rng(hash((op.value, dtype.name)) % 2**32)
        sim = Simulator(CFG)
        ref = ReferenceSimulator(CFG)
        driver = Driver(sim, guard=True)

        seed = {}
        for reg in (0, 1):
            for xbar in range(CFG.crossbars):
                for row in range(CFG.rows):
                    value = int(rng.integers(0, 2**32))
                    sim.memory.set_word(xbar, row, reg, value)
                    seed[(xbar, row, reg)] = value
        for (xbar, row, reg), value in seed.items():
            for partition in range(CFG.partitions):
                ref.bits[xbar, row, partition * CFG.partition_width + reg] = bool(
                    (value >> partition) & 1
                )

        from repro.isa.instructions import ARITY

        instr = RInstr(
            op, dtype, dest=2, src_a=0,
            src_b=1 if ARITY[op] >= 2 else None,
        )
        ops = driver.lower(instr)
        sim.execute_all(ops)
        ref.execute_all(ops)
        assert images_match(sim, ref)
