"""Tests for the vectorized replay engine and its fallback ladder.

Covers the correctness obligations of ``repro.sim.replay``:

- super-step segmentation of the program IR (gate runs broken at every
  mask/read/write/vertical/move boundary, masks tracked statically);
- bit-identical memory and identical stats between op-by-op execution,
  thunk replay, and vectorized replay, on randomized op streams that
  exercise every op kind;
- the engine fallback ladder: non-self-masked programs, wide-word
  configs, and ``REPRO_SIM_REPLAY=thunk`` all take the thunk path;
- the region-cache entry-clear fix: self-masked programs keep cached
  views across replays, while body programs replayed under caller-set
  masks (the unsafe case) still see fresh views;
- lane packing round-trips on the bulk memory helpers.
"""

import numpy as np
import pytest

from repro.arch.config import PIMConfig, small_config
from repro.arch.masks import RangeMask
from repro.arch.micro_ops import (
    CrossbarMaskOp,
    GateType,
    LogicHOp,
    LogicVOp,
    MoveOp,
    ReadOp,
    RowMaskOp,
    WriteOp,
)
from repro.driver.compiler import compile_ops
from repro.driver.program import MicroProgram, segment_super_steps
from repro.sim import replay
from repro.sim.memory import CrossbarMemory
from repro.sim.simulator import Simulator

CFG = small_config(crossbars=4, rows=8)


def _gate(out, in_a, in_b, gate=GateType.NOR, p_out=2, p_a=0, p_b=1):
    return LogicHOp(gate, in_a, in_b, out, p_a=p_a, p_b=p_b, p_out=p_out,
                    p_end=p_out, p_step=1)


def _init1(out, p_end=None):
    p_end = CFG.partitions - 1 if p_end is None else p_end
    return LogicHOp(GateType.INIT1, 0, 0, out, p_a=0, p_b=0, p_out=0,
                    p_end=p_end, p_step=1)


def _masked(ops):
    return [CrossbarMaskOp(0, CFG.crossbars - 1, 1),
            RowMaskOp(0, CFG.rows - 1, 1)] + list(ops)


class TestSegmentation:
    def test_gates_fuse_between_boundaries(self):
        ops = tuple(_masked([
            _init1(3), _gate(3, 0, 1),
            RowMaskOp(0, 0, 1),
            _init1(4), _gate(4, 1, 2), _gate(5, 2, 3),
        ]))
        segments = segment_super_steps(ops)
        kinds = [(s.kind, len(s)) for s in segments]
        assert kinds == [
            ("op", 1), ("op", 1), ("gates", 2), ("op", 1), ("gates", 3),
        ]
        first, second = [s for s in segments if s.kind == "gates"]
        assert first.row == (0, CFG.rows - 1, 1)
        assert second.row == (0, 0, 1)
        assert first.xb == second.xb == (0, CFG.crossbars - 1, 1)

    def test_every_non_gate_op_is_a_boundary(self):
        ops = tuple(_masked([
            _init1(3),
            LogicVOp(GateType.INIT1, 0, 1, 3),
            _init1(4),
            WriteOp(2, 7),
            _gate(4, 0, 1),
            ReadOp(2),
            _gate(5, 0, 1),
            MoveOp(1, 0, 0, 3, 4),
            _gate(6, 0, 1),
        ]))
        segments = segment_super_steps(ops)
        gate_spans = [s for s in segments if s.kind == "gates"]
        # Every gate is isolated: boundaries on both sides.
        assert [len(s) for s in gate_spans] == [1, 1, 1, 1, 1]

    def test_gates_before_masks_stay_fallback_ops(self):
        ops = (_init1(3), _gate(3, 0, 1))
        segments = segment_super_steps(ops)
        assert all(s.kind == "op" for s in segments)

    def test_replay_summary_counts(self):
        program = MicroProgram.from_ops(
            _masked([_init1(3), _gate(3, 0, 1), ReadOp(3)]), "p", CFG
        )
        summary = program.replay_summary()
        assert summary == {
            "ops": 5, "super_steps": 4, "gate_runs": 1, "gate_ops": 2,
            "fallback_ops": 3,
        }
        # Runs below a caller's fusion threshold count as fallback ops.
        assert program.replay_summary(min_run_ops=3) == {
            "ops": 5, "super_steps": 4, "gate_runs": 0, "gate_ops": 0,
            "fallback_ops": 5,
        }
        assert program.super_steps is program.super_steps  # memoized


def _random_self_masked_ops(rng, config=CFG, length=120):
    """A self-masked stream exercising every op kind, valid by construction."""
    ops = [CrossbarMaskOp(0, config.crossbars - 1, 1),
           RowMaskOp(0, config.rows - 1, 1)]
    registers = config.registers
    partitions = config.partitions
    for _ in range(length):
        roll = rng.random()
        if roll < 0.55:
            gate = GateType(rng.integers(0, 4))
            if gate in (GateType.INIT0, GateType.INIT1):
                # INITs take arbitrary multi-gate patterns.
                p_step = int(rng.choice([1, 2]))
                span = int(rng.integers(0, 3))
                p_out = int(rng.integers(0, partitions - span * p_step))
                p_end = p_out + span * p_step
                p_a = p_b = p_out
            else:
                # Single-gate NOT/NOR with disjoint input sections.
                p_out = int(rng.integers(2, partitions))
                p_end = p_out
                p_step = 1
                p_a = p_out - 2 if gate == GateType.NOR else p_out - 1
                p_b = p_out - 1
            ops.append(LogicHOp(
                gate,
                int(rng.integers(0, registers)),
                int(rng.integers(0, registers)),
                int(rng.integers(0, registers)),
                p_a=p_a, p_b=p_b, p_out=p_out, p_end=p_end, p_step=p_step,
            ))
        elif roll < 0.70:
            ops.append(WriteOp(int(rng.integers(0, registers)),
                               int(rng.integers(0, 1 << 16))))
        elif roll < 0.80:
            gate = GateType(rng.integers(0, 3))  # INIT0/INIT1/NOT
            ops.append(LogicVOp(
                gate,
                int(rng.integers(0, config.rows)),
                int(rng.integers(0, config.rows)),
                int(rng.integers(0, registers)),
            ))
        elif roll < 0.90:
            # New masks (sub-ranges keep later gates/moves valid).
            ops.append(CrossbarMaskOp(0, int(rng.integers(0, config.crossbars)), 1))
            ops.append(RowMaskOp(0, int(rng.integers(0, config.rows)), 1))
        else:
            # A validated H-tree move: single-crossbar mask, distance 1.
            src = int(rng.integers(0, config.crossbars - 1))
            ops.append(CrossbarMaskOp(src, src, 1))
            ops.append(MoveOp(1, 0, 0,
                              int(rng.integers(0, registers)),
                              int(rng.integers(0, registers))))
            ops.append(CrossbarMaskOp(0, config.crossbars - 1, 1))
            ops.append(RowMaskOp(0, config.rows - 1, 1))
    # Single-cell masks, then a trailing read.
    ops.append(CrossbarMaskOp(0, 0, 1))
    ops.append(RowMaskOp(0, 0, 1))
    ops.append(ReadOp(int(rng.integers(0, registers))))
    return ops


def _seed_memory(sim, rng):
    shape = sim.memory.words.shape
    sim.memory.words[...] = rng.integers(
        0, 1 << 32, size=shape, dtype=np.uint64
    ).astype(sim.memory.dtype)


@pytest.mark.parametrize("seed", [3, 17, 2024])
def test_vectorized_replay_is_bit_identical(seed):
    rng = np.random.default_rng(seed)
    ops = _random_self_masked_ops(rng)
    program = compile_ops(ops, CFG, optimize=False)

    reference = Simulator(CFG)
    _seed_memory(reference, np.random.default_rng(seed + 1))
    for op in ops[:-1]:
        reference.execute(op)
    expected_read = reference.execute(ops[-1])

    for engine in ("vectorized", "thunk"):
        sim = Simulator(CFG, replay_engine=engine)
        _seed_memory(sim, np.random.default_rng(seed + 1))
        response = sim.execute_program(program)
        assert response == expected_read, engine
        assert np.array_equal(sim.memory.words, reference.memory.words), engine
        assert sim.stats == reference.stats, engine
        assert sim.replay_counters[engine] == 1


class TestEngineSelection:
    def _self_masked_program(self):
        return compile_ops(
            _masked([_init1(3), _gate(3, 0, 1)]), CFG, optimize=False
        )

    def test_self_masked_program_vectorizes(self):
        sim = Simulator(CFG, replay_engine="vectorized")
        sim.execute_program(self._self_masked_program())
        assert sim.replay_counters == {"vectorized": 1, "thunk": 0}

    def test_body_program_falls_back_to_thunks(self):
        """Gates under caller-set masks: no static accounting, no runs."""
        program = compile_ops([_init1(3), _gate(3, 0, 1)], CFG, optimize=False)
        sim = Simulator(CFG, replay_engine="vectorized")
        sim.execute_program(program)
        assert sim.replay_counters == {"vectorized": 0, "thunk": 1}

    def test_wide_words_fall_back_to_thunks(self):
        wide = PIMConfig(crossbars=4, rows=8, columns=2048,
                         partitions=64, word_size=64)
        program = compile_ops(
            [CrossbarMaskOp(0, 3, 1), RowMaskOp(0, 7, 1),
             LogicHOp(GateType.INIT1, 0, 0, 3, p_a=0, p_b=0, p_out=0,
                      p_end=63, p_step=1),
             LogicHOp(GateType.NOR, 0, 1, 2, p_a=0, p_b=1, p_out=2,
                      p_end=2, p_step=1)],
            wide, optimize=False,
        )
        sim = Simulator(wide, replay_engine="vectorized")
        assert not replay.lanes_supported(sim.memory)
        sim.execute_program(program)
        assert sim.replay_counters == {"vectorized": 0, "thunk": 1}

    def test_env_var_selects_engine(self, monkeypatch):
        monkeypatch.setenv(replay.ENGINE_ENV, "thunk")
        sim = Simulator(CFG)
        assert sim.replay_engine == "thunk"
        sim.execute_program(self._self_masked_program())
        assert sim.replay_counters["thunk"] == 1

    def test_invalid_engine_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="replay engine"):
            Simulator(CFG, replay_engine="gpu")
        monkeypatch.setenv(replay.ENGINE_ENV, "nonsense")
        with pytest.raises(ValueError, match="REPRO_SIM_REPLAY"):
            Simulator(CFG)

    def test_program_replay_info_matches_plan(self):
        """The derived eligibility predicate and the memoized plan agree."""
        from repro.backend.simulator import SimulatorBackend

        for engine, expected in (("vectorized", "vectorized"),
                                 ("thunk", "thunk")):
            backend = SimulatorBackend(CFG, replay_engine=engine)
            program = compile_ops(
                _masked([_init1(3), _gate(3, 0, 1)]), CFG, optimize=False
            )
            derived = backend.program_replay_info(program)  # no plan yet
            backend.simulator.execute_program(program)
            from_plan = backend.program_replay_info(program)  # memoized plan
            assert derived == from_plan
            assert from_plan["engine"] == expected
            assert from_plan["self_masked"] is True

    def test_engine_switch_rebuilds_plan(self):
        sim = Simulator(CFG, replay_engine="vectorized")
        program = self._self_masked_program()
        sim.execute_program(program)
        sim.replay_engine = "thunk"
        sim.execute_program(program)
        assert sim.replay_counters == {"vectorized": 1, "thunk": 1}


class TestRegionCachePersistence:
    def test_self_masked_plans_skip_entry_clear(self):
        sim = Simulator(CFG, replay_engine="thunk")
        program = compile_ops(
            _masked([_init1(3), _gate(3, 0, 1)]), CFG, optimize=False
        )
        before = sim.memory.words.copy()
        sim.execute_program(program)
        plan = sim._plans[program]
        assert plan.entry_clear is False
        # Cached views persist into the next replay (no entry clear) and
        # the replayed effect stays correct: INIT1 fills register 3
        # everywhere, the NOR of two all-zero registers pulls nothing.
        sim.execute_program(program)
        expected = before.copy()
        expected[:, 3, :] = sim.memory.word_mask
        assert np.array_equal(sim.memory.words, expected)
        assert sim.replay_counters["thunk"] == 2

    def test_body_program_under_changed_masks_stays_correct(self):
        """The unsafe case: gates before any mask op (driver R-type
        bodies) replayed under different caller-set masks must not reuse
        views cached by the previous replay."""
        program = compile_ops([_init1(3)], CFG, optimize=False)
        sim = Simulator(CFG, replay_engine="vectorized")
        plan_probe = Simulator(CFG, replay_engine="thunk")
        assert plan_probe._compile_plan(program).entry_clear is True

        sim.execute(CrossbarMaskOp(0, 0, 1))
        sim.execute(RowMaskOp(0, 0, 1))
        sim.execute_program(program)
        first = sim.memory.words.copy()
        assert first[0, 3, 0] == sim.memory.word_mask
        assert first[1, 3, 1] == 0

        sim.execute(CrossbarMaskOp(1, 1, 1))
        sim.execute(RowMaskOp(1, 1, 1))
        sim.execute_program(program)
        assert sim.memory.words[1, 3, 1] == sim.memory.word_mask
        assert sim.memory.words[2, 3, 2] == 0


class TestLaneHelpers:
    def test_pack_unpack_roundtrip(self):
        memory = CrossbarMemory(CFG)
        rng = np.random.default_rng(7)
        memory.words[...] = rng.integers(
            0, 1 << 32, size=memory.words.shape, dtype=np.uint64
        ).astype(memory.dtype)
        xb = RangeMask(0, 2, 2)
        row = RangeMask(1, 5, 2)
        before = memory.words.copy()
        packed = memory.pack_lanes(xb, 2, row)
        memory.unpack_lanes(xb, 2, row, packed)
        assert np.array_equal(memory.words, before)

    def test_unpack_writes_only_the_region(self):
        memory = CrossbarMemory(CFG)
        xb, row = RangeMask(1, 1, 1), RangeMask(2, 3, 1)
        value = memory.pack_lanes(xb, 0, row) | 0b101 | (0b11 << 64)
        memory.unpack_lanes(xb, 0, row, value)
        assert memory.words[1, 0, 2] == 0b101
        assert memory.words[1, 0, 3] == 0b11
        assert memory.words.sum() == 0b101 + 0b11  # nothing else touched
