"""Tests for the condensed strided memory image."""

import numpy as np
import pytest

from repro.arch.config import small_config
from repro.sim.memory import CrossbarMemory


@pytest.fixture
def memory():
    return CrossbarMemory(small_config(crossbars=2, rows=8))


class TestWords:
    def test_initially_zero(self, memory):
        assert memory.words.sum() == 0

    def test_word_roundtrip(self, memory):
        memory.set_word(1, 3, 5, 0xDEADBEEF)
        assert memory.get_word(1, 3, 5) == 0xDEADBEEF

    def test_word_out_of_range_value(self, memory):
        with pytest.raises(ValueError):
            memory.set_word(0, 0, 0, 1 << 33)

    def test_fill(self, memory):
        memory.fill(0x12345678)
        assert memory.get_word(0, 0, 0) == 0x12345678
        assert memory.get_word(1, 7, 31) == 0x12345678


class TestBits:
    def test_bit_addressing_matches_word_layout(self, memory):
        """Bit i of word [x,t,r] is partition i, intra-partition index r."""
        memory.set_word(0, 2, 3, 0b1010)
        assert memory.get_bit(0, 2, partition=1, index=3) == 1
        assert memory.get_bit(0, 2, partition=0, index=3) == 0
        assert memory.get_bit(0, 2, partition=3, index=3) == 1

    def test_set_bit(self, memory):
        memory.set_bit(1, 0, partition=31, index=0, value=1)
        assert memory.get_word(1, 0, 0) == 1 << 31
        memory.set_bit(1, 0, partition=31, index=0, value=0)
        assert memory.get_word(1, 0, 0) == 0


class TestUnpack:
    def test_unpack_strided_columns(self, memory):
        """Column c = partition * (w/N_p) + index (Figure 6 layout)."""
        cfg = memory.config
        memory.set_bit(0, 4, partition=2, index=7, value=1)
        bits = memory.unpack_bits(0)
        assert bits.shape == (cfg.rows, cfg.columns)
        column = 2 * cfg.partition_width + 7
        assert bits[4, column]
        assert bits.sum() == 1
