"""Tests for the golden (NumPy-reference) semantics themselves.

The golden functions are the oracle for every correctness test, so their
edge-case semantics (trunc division, C modulo, INT_MIN wrap, raw bitwise
on floats) deserve direct pinning.
"""

import numpy as np
import pytest

from repro.isa.dtypes import float32, int32
from repro.isa.instructions import ROp
from repro.theory.golden import golden_rtype


def arr(*values, dtype=np.int32):
    return np.array(values, dtype=dtype)


class TestIntegerDivision:
    def test_trunc_toward_zero(self):
        got = golden_rtype(ROp.DIV, int32, arr(7, -7, 7, -7), arr(2, 2, -2, -2))
        np.testing.assert_array_equal(got, [3, -3, -3, 3])

    def test_mod_sign_of_dividend(self):
        got = golden_rtype(ROp.MOD, int32, arr(7, -7, 7, -7), arr(2, 2, -2, -2))
        np.testing.assert_array_equal(got, [1, -1, 1, -1])

    def test_int_min_by_minus_one_wraps(self):
        got = golden_rtype(ROp.DIV, int32, arr(-(2**31)), arr(-1))
        assert got[0] == -(2**31)
        got_mod = golden_rtype(ROp.MOD, int32, arr(-(2**31)), arr(-1))
        assert got_mod[0] == 0

    def test_division_identity(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-(2**31), 2**31, 64, dtype=np.int64).astype(np.int32)
        b = rng.integers(-(2**31), 2**31, 64, dtype=np.int64).astype(np.int32)
        b[b == 0] = 1
        q = golden_rtype(ROp.DIV, int32, a, b).astype(np.int64)
        r = golden_rtype(ROp.MOD, int32, a, b).astype(np.int64)
        reconstructed = (q * b + r) & 0xFFFFFFFF
        np.testing.assert_array_equal(
            reconstructed.astype(np.uint32).view(np.int32), a
        )


class TestBitwiseOnFloats:
    def test_xor_of_floats_is_raw(self):
        a = arr(1.0, -1.0, dtype=np.float32)
        got = golden_rtype(ROp.BIT_XOR, float32, a, a)
        assert (got.view(np.uint32) == 0).all()

    def test_not_flips_all_bits(self):
        a = arr(0.0, dtype=np.float32)
        got = golden_rtype(ROp.BIT_NOT, float32, a)
        assert got.view(np.uint32)[0] == 0xFFFFFFFF


class TestMiscSemantics:
    def test_mux_uses_condition_truthiness(self):
        got = golden_rtype(
            ROp.MUX, int32, arr(1, 0, 2), arr(10, 20, 30), arr(-1, -2, -3)
        )
        np.testing.assert_array_equal(got, [10, -2, 30])

    def test_comparisons_are_int32_words(self):
        got = golden_rtype(ROp.LT, float32,
                           arr(1.0, 2.0, dtype=np.float32),
                           arr(2.0, 1.0, dtype=np.float32))
        assert got.dtype == np.int32
        np.testing.assert_array_equal(got, [1, 0])

    def test_unknown_op_rejected(self):
        class Fake:
            pass

        with pytest.raises((ValueError, KeyError)):
            golden_rtype(Fake(), int32, arr(1))  # type: ignore[arg-type]


class TestCounts:
    def test_serial_formulas(self):
        from repro.theory.counts import (
            parallel_add_cycles,
            serial_add_cycles,
            serial_mul_cycles,
        )

        assert serial_add_cycles(32) == 288
        assert serial_mul_cycles(32) > serial_add_cycles(32) * 10
        assert parallel_add_cycles(32) < serial_add_cycles(32)

    def test_gate_vs_overhead_partition(self):
        from repro.sim.stats import SimStats
        from repro.theory.counts import gate_cycles, overhead_cycles

        stats = SimStats()
        stats.record("logic_h_nor")
        stats.record("logic_h_init1")
        stats.record("mask_row")
        stats.record("move")
        assert gate_cycles(stats) == 2  # nor + move
        assert overhead_cycles(stats) == 2  # init + mask
        assert gate_cycles(stats) + overhead_cycles(stats) == stats.cycles
