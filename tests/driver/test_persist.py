"""Tests for the cross-session persistent program cache.

The durability contract of :mod:`repro.driver.persist` is "never crash,
never replay stale": a warm-started session must skip gate building when
the on-disk entry is valid, and must silently fall back to a cold
compile — with bit-identical results — for *any* damaged cache state:

- corrupt files (garbage bytes where JSON should be);
- truncated files (a writer killed mid-entry without the atomic rename);
- format-version skew (entries from an older repo revision);
- config-fingerprint mismatch (entries compiled for another geometry);
- key collisions (a file whose embedded key repr is not the probed key).

On assertion failure the offending cache directory is dumped to
``fuzz_artifacts/`` (override with ``REPRO_FUZZ_ARTIFACT_DIR``) so the
bad entry can be inspected offline.
"""

from __future__ import annotations

import json
import os
import shutil
from contextlib import contextmanager

import numpy as np
import pytest

import repro.pim as pim
from repro.arch.config import small_config
from repro.driver.driver import Driver
from repro.driver.persist import (
    FORMAT_VERSION,
    PersistentProgramCache,
    resolve_cache_dir,
)
from repro.isa.dtypes import int32
from repro.isa.instructions import RInstr, ROp
from repro.sim.simulator import Simulator


CFG = small_config(crossbars=4, rows=8)


def _artifact_dir() -> str:
    return os.environ.get(
        "REPRO_FUZZ_ARTIFACT_DIR",
        os.path.join(os.path.dirname(__file__), "..", "..", "fuzz_artifacts"),
    )


@contextmanager
def _artifacts_on_failure(cache_dir, label):
    """Copy the cache directory into ``fuzz_artifacts/`` on failure."""
    try:
        yield
    except BaseException:
        directory = os.path.join(_artifact_dir(), f"persist_{label}")
        shutil.rmtree(directory, ignore_errors=True)
        os.makedirs(os.path.dirname(directory), exist_ok=True)
        shutil.copytree(str(cache_dir), directory, dirs_exist_ok=True)
        raise


def fresh_cache(tmp_path, config=CFG):
    return PersistentProgramCache(str(tmp_path), config)


def compiled_program(config=CFG):
    driver = Driver(Simulator(config))
    return driver.compile(
        [RInstr(ROp.ADD, int32, dest=2, src_a=0, src_b=1),
         RInstr(ROp.MUL, int32, dest=3, src_a=2, src_b=1)],
        name="persist-test",
    )


KEY = ("body", "add-mul", 32)


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        cache = fresh_cache(tmp_path)
        program = compiled_program()
        cache.store(KEY, program)
        restored = cache.load(KEY)
        assert restored is not None
        assert restored.ops == program.ops
        assert restored.name == program.name
        assert restored.reads == program.reads
        assert restored.macros == program.macros
        assert restored.source_ops == program.source_ops
        assert restored.config_fingerprint == program.config_fingerprint
        assert cache.counters() == {
            "loads": 1, "misses": 0, "invalid": 0, "stores": 1,
        }

    def test_cold_probe_counts_miss(self, tmp_path):
        cache = fresh_cache(tmp_path)
        assert cache.load(KEY) is None
        assert cache.counters()["misses"] == 1

    def test_entries_survive_a_new_cache_instance(self, tmp_path):
        program = compiled_program()
        fresh_cache(tmp_path).store(KEY, program)
        # A second instance models a second process: same dir, no state.
        warm = fresh_cache(tmp_path)
        restored = warm.load(KEY)
        assert restored is not None and restored.ops == program.ops
        assert warm.counters()["loads"] == 1

    def test_wrong_fingerprint_never_stored(self, tmp_path):
        other = small_config(crossbars=8, rows=8)
        program = Driver(Simulator(other)).compile(
            [RInstr(ROp.ADD, int32, dest=2, src_a=0, src_b=1)], name="p"
        )
        cache = fresh_cache(tmp_path)  # CFG cache, foreign program
        cache.store(KEY, program)
        assert cache.counters()["stores"] == 0
        assert os.listdir(tmp_path) == []


class TestInvalidation:
    """Each damaged state must read as a cold miss and heal the cache."""

    def _stored(self, tmp_path):
        cache = fresh_cache(tmp_path)
        cache.store(KEY, compiled_program())
        [name] = os.listdir(tmp_path)
        return cache, os.path.join(str(tmp_path), name)

    def _assert_rejected(self, tmp_path, cache, path, label):
        with _artifacts_on_failure(tmp_path, label):
            assert cache.load(KEY) is None
            assert cache.counters()["invalid"] == 1
            assert not os.path.exists(path), "invalid entry must be deleted"
            # The cache heals: a fresh store round-trips again.
            cache.store(KEY, compiled_program())
            assert cache.load(KEY) is not None

    def test_corrupt_file(self, tmp_path):
        cache, path = self._stored(tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"\x00\xffnot json at all\x80")
        self._assert_rejected(tmp_path, cache, path, "corrupt")

    def test_truncated_file(self, tmp_path):
        cache, path = self._stored(tmp_path)
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])
        self._assert_rejected(tmp_path, cache, path, "truncated")

    def test_version_skew(self, tmp_path):
        cache, path = self._stored(tmp_path)
        entry = json.load(open(path))
        entry["version"] = FORMAT_VERSION + 1
        json.dump(entry, open(path, "w"))
        self._assert_rejected(tmp_path, cache, path, "version_skew")

    def test_fingerprint_mismatch(self, tmp_path):
        _, path = self._stored(tmp_path)
        # A cache for a different geometry probing the same directory.
        other = fresh_cache(tmp_path, small_config(crossbars=8, rows=8))
        # Same key -> same filename; the embedded fingerprint differs.
        assert other._path(KEY) == path
        with _artifacts_on_failure(tmp_path, "fingerprint"):
            assert other.load(KEY) is None
            assert other.counters()["invalid"] == 1

    def test_key_collision(self, tmp_path):
        cache, path = self._stored(tmp_path)
        other_key = ("body", "something-else", 32)
        os.replace(path, cache._path(other_key))
        with _artifacts_on_failure(tmp_path, "collision"):
            # The embedded key repr does not match the probed key.
            assert cache.load(other_key) is None
            assert cache.counters()["invalid"] == 1

    def test_missing_ops_field(self, tmp_path):
        cache, path = self._stored(tmp_path)
        entry = json.load(open(path))
        del entry["ops"]
        json.dump(entry, open(path, "w"))
        self._assert_rejected(tmp_path, cache, path, "missing_field")


class TestConcurrencyAndCrash:
    """Many writers and killed writers must never corrupt the cache.

    The atomic-rename protocol (temp file + ``os.replace``) is what the
    resilience layer leans on: concurrent sessions sharing one
    ``cache_dir`` may interleave stores, loads, and invalidation
    deletes in any order, and a writer killed mid-entry leaves only a
    ``.tmp-*`` partial, never a half-written entry under a real name.
    """

    def test_concurrent_writers_one_key(self, tmp_path):
        import threading

        program = compiled_program()
        errors = []

        def session(index):
            try:
                # Each thread is its own "process": fresh cache instance
                # over the shared directory.
                cache = fresh_cache(tmp_path)
                for _ in range(8):
                    cache.store(KEY, program)
                    restored = cache.load(KEY)
                    assert restored is not None
                    assert restored.ops == program.ops
            except BaseException as exc:  # surfaced after join
                errors.append((index, exc))

        threads = [
            threading.Thread(target=session, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with _artifacts_on_failure(tmp_path, "concurrent_one_key"):
            assert not errors
            leftovers = [
                name for name in os.listdir(tmp_path)
                if name.startswith(".tmp-")
            ]
            assert leftovers == [], "every temp file must be renamed away"
            assert fresh_cache(tmp_path).load(KEY).ops == program.ops

    def test_concurrent_writers_distinct_keys(self, tmp_path):
        import threading

        program = compiled_program()
        errors = []

        def session(index):
            try:
                cache = fresh_cache(tmp_path)
                key = ("body", f"stream-{index}", 32)
                cache.store(key, program)
                for other in range(8):
                    probe = cache.load(("body", f"stream-{other}", 32))
                    assert probe is None or probe.ops == program.ops
            except BaseException as exc:
                errors.append((index, exc))

        threads = [
            threading.Thread(target=session, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with _artifacts_on_failure(tmp_path, "concurrent_distinct"):
            assert not errors
            warm = fresh_cache(tmp_path)
            for index in range(8):
                assert warm.load(("body", f"stream-{index}", 32)) is not None

    def test_crash_mid_write_leaves_cache_usable(self, tmp_path):
        cache = fresh_cache(tmp_path)
        # A writer killed before the atomic rename leaves only a partial
        # temp file; the entry's real name never exists half-written.
        stray = os.path.join(str(tmp_path), ".tmp-dead123.json")
        with open(stray, "w") as handle:
            handle.write('{"version": %d, "name": "par' % FORMAT_VERSION)
        with _artifacts_on_failure(tmp_path, "crash_mid_write"):
            assert cache.load(KEY) is None  # a miss, not an error
            assert cache.counters()["invalid"] == 0
            cache.store(KEY, compiled_program())
            assert cache.load(KEY) is not None
            assert os.path.exists(stray), (
                "an unrelated temp file is inert, not collateral damage"
            )

    def test_concurrent_invalidation_of_one_corrupt_entry(self, tmp_path):
        cache = fresh_cache(tmp_path)
        cache.store(KEY, compiled_program())
        [name] = os.listdir(tmp_path)
        path = os.path.join(str(tmp_path), name)
        with open(path, "wb") as handle:
            handle.write(b"\xff not json")
        first, second = fresh_cache(tmp_path), fresh_cache(tmp_path)
        with _artifacts_on_failure(tmp_path, "concurrent_invalidation"):
            # Both sessions observe the damage; whichever deletes second
            # must tolerate the file already being gone.
            assert first.load(KEY) is None
            assert second.load(KEY) is None
            assert not os.path.exists(path)
            second.store(KEY, compiled_program())
            assert second.load(KEY) is not None


def _run_workload(device):
    a = np.arange(-16, 16, dtype=np.int32)
    b = np.arange(1, 33, dtype=np.int32)
    x = pim.from_numpy(a, device=device)
    y = pim.from_numpy(b, device=device)
    return pim.to_numpy(x * y + x)


class TestSessionWarmStart:
    """End-to-end: ``pim.init(cache_dir=...)`` across sessions."""

    GOLDEN = (np.arange(-16, 16, dtype=np.int64)
              * np.arange(1, 33, dtype=np.int64)
              + np.arange(-16, 16, dtype=np.int64)).astype(np.int32)

    def _session(self, cache_dir):
        device = pim.init(crossbars=4, rows=8, backend="simulator",
                          cache_dir=str(cache_dir))
        try:
            result = _run_workload(device)
            return result, device.backend.persist_counters()
        finally:
            pim.reset()

    def test_cold_then_warm(self, tmp_path):
        cold_result, cold = self._session(tmp_path)
        np.testing.assert_array_equal(cold_result, self.GOLDEN)
        assert cold["stores"] > 0 and cold["loads"] == 0
        warm_result, warm = self._session(tmp_path)
        np.testing.assert_array_equal(warm_result, cold_result)
        assert warm["loads"] > 0, "warm session must restore from disk"
        assert warm["stores"] == 0, "warm session has nothing new to store"

    def test_damaged_cache_falls_back_cold(self, tmp_path):
        _, cold = self._session(tmp_path)
        assert cold["stores"] > 0
        for name in os.listdir(tmp_path):
            with open(os.path.join(str(tmp_path), name), "wb") as handle:
                handle.write(b"\x00garbage\xff")
        with _artifacts_on_failure(tmp_path, "session_damaged"):
            result, counters = self._session(tmp_path)
            np.testing.assert_array_equal(result, self.GOLDEN)
            assert counters["invalid"] > 0
            assert counters["loads"] == 0

    def test_version_skew_falls_back_cold(self, tmp_path):
        _, cold = self._session(tmp_path)
        assert cold["stores"] > 0
        for name in os.listdir(tmp_path):
            path = os.path.join(str(tmp_path), name)
            entry = json.load(open(path))
            entry["version"] = FORMAT_VERSION + 1
            json.dump(entry, open(path, "w"))
        with _artifacts_on_failure(tmp_path, "session_skew"):
            result, counters = self._session(tmp_path)
            np.testing.assert_array_equal(result, self.GOLDEN)
            assert counters["invalid"] > 0

    def test_env_var_resolution(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert resolve_cache_dir() == str(tmp_path)
        assert resolve_cache_dir("/explicit/wins") == "/explicit/wins"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert resolve_cache_dir() is None
