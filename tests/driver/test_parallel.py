"""Tests for the bit-parallel (partition) fast paths.

Two claims: (1) parallel and serial lowering are result-equivalent, and
(2) the parallel paths really are cheaper in micro-operations — the
partition-parallelism benefit of Figure 4(b) / the paper's ablation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import small_config
from repro.isa.dtypes import int32
from repro.isa.instructions import RInstr, ROp

from tests.conftest import int32s, rand_int32
from tests.driver.harness import Chip, assert_same_bits

COMMON = settings(max_examples=20, deadline=None)


def run_both(op: ROp, a: int, b: int):
    results = []
    for mode in ("serial", "parallel"):
        chip = Chip(small_config(crossbars=1, rows=1), parallelism=mode)
        chip.put(0, np.array([a], np.int32), int32)
        chip.put(1, np.array([b], np.int32), int32)
        chip.run(op, int32, 2, 0, 1)
        results.append(int(chip.get(2, 1, int32)[0]))
    return results


class TestEquivalence:
    @COMMON
    @given(a=int32s(), b=int32s())
    def test_add_equivalent(self, a, b):
        serial, parallel = run_both(ROp.ADD, a, b)
        assert serial == parallel

    @COMMON
    @given(a=int32s(), b=int32s())
    def test_sub_equivalent(self, a, b):
        serial, parallel = run_both(ROp.SUB, a, b)
        assert serial == parallel

    @COMMON
    @given(a=int32s(), b=int32s())
    def test_bitwise_equivalent(self, a, b):
        for op in (ROp.BIT_AND, ROp.BIT_OR, ROp.BIT_XOR):
            serial, parallel = run_both(op, a, b)
            assert serial == parallel, op

    def test_not_equivalent(self):
        for value in (0, -1, 0x12345678):
            chip_s = Chip(small_config(crossbars=1, rows=1), parallelism="serial")
            chip_p = Chip(small_config(crossbars=1, rows=1), parallelism="parallel")
            for chip in (chip_s, chip_p):
                chip.put(0, np.array([value], np.int32), int32)
                chip.run(ROp.BIT_NOT, int32, 2, 0)
            assert chip_s.get(2, 1, int32)[0] == chip_p.get(2, 1, int32)[0]

    def test_not_aliased_dest(self):
        chip = Chip(small_config(crossbars=1, rows=1), parallelism="parallel")
        chip.put(0, np.array([0x0F0F0F0F], np.int32), int32)
        chip.run(ROp.BIT_NOT, int32, 0, 0)
        assert np.uint32(chip.get(0, 1, int32)[0]) == np.uint32(0xF0F0F0F0)


def cycles_for(op: ROp, mode: str, sources: int = 2) -> int:
    chip = Chip(small_config(crossbars=1, rows=1), parallelism=mode)
    before = chip.simulator.stats.cycles
    if sources == 2:
        chip.run(op, int32, 2, 0, 1)
    else:
        chip.run(op, int32, 2, 0)
    return chip.simulator.stats.cycles - before


class TestSpeedups:
    def test_parallel_add_is_cheaper(self):
        serial = cycles_for(ROp.ADD, "serial")
        parallel = cycles_for(ROp.ADD, "parallel")
        assert parallel < serial * 0.75, (serial, parallel)

    def test_parallel_bitwise_is_constant_cycles(self):
        for op in (ROp.BIT_AND, ROp.BIT_OR, ROp.BIT_XOR):
            assert cycles_for(op, "parallel") <= 16
            assert cycles_for(op, "serial") > 64

    def test_parallel_not_two_ops(self):
        assert cycles_for(ROp.BIT_NOT, "parallel", sources=1) <= 4

    def test_parallel_add_matches_formula(self):
        from repro.theory.counts import parallel_add_cycles

        measured = cycles_for(ROp.ADD, "parallel")
        theory = parallel_add_cycles(32)
        # Within a modest factor of the analytic count (inits included).
        assert measured <= theory * 2.0
        assert measured >= theory * 0.5


class TestVectorParallel:
    def test_whole_memory_parallel_add(self):
        rng = np.random.default_rng(11)
        chip = Chip(parallelism="parallel")
        n = chip.capacity
        a, b = rand_int32(rng, n), rand_int32(rng, n)
        chip.put(0, a, int32)
        chip.put(1, b, int32)
        chip.run(ROp.ADD, int32, 2, 0, 1)
        assert_same_bits(
            chip.get(2, n, int32),
            (a.astype(np.int64) + b).astype(np.uint32).view(np.int32),
        )
