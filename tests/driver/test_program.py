"""Tests for the compiled-program subsystem (program IR, compiler, replay).

Covers the correctness obligations of the compile/replay pipeline:

- the LRU :class:`ProgramCache` and its hit/miss accounting;
- cache invalidation across configuration changes (fingerprint keys and
  the simulator's replay-time fingerprint check);
- compiled-vs-uncompiled result equivalence across all dtypes, bit for
  bit, including identical cycle accounting on the implicit cache path;
- the peephole passes (mask coalescing, redundant-INIT1 elimination)
  preserving simulator state bit-for-bit while shrinking the stream.
"""

import numpy as np
import pytest

from repro.arch.config import small_config
from repro.arch.masks import RangeMask
from repro.arch.micro_ops import (
    CrossbarMaskOp,
    GateType,
    LogicHOp,
    ReadOp,
    RowMaskOp,
    WriteOp,
    decode,
)
from repro.driver.compiler import (
    CompileError,
    coalesce_masks,
    compile_ops,
    eliminate_redundant_init1,
)
from repro.driver.driver import Driver
from repro.driver.program import MicroProgram, ProgramCache, config_fingerprint
from repro.isa.dtypes import float32, int32
from repro.isa.instructions import MoveInstr, ReadInstr, RInstr, ROp, WriteInstr
from repro.sim.simulator import SimulationError, Simulator

from tests.conftest import rand_float32, rand_int32


CFG = small_config(crossbars=4, rows=8)


def fresh_pair(config=CFG, **kwargs):
    sim = Simulator(config)
    return sim, Driver(sim, **kwargs)


def load(driver, reg, raw_words):
    for index, word in enumerate(raw_words):
        warp, thread = divmod(index, driver.config.rows)
        driver.execute(
            WriteInstr(reg, int(word), RangeMask.single(warp),
                       RangeMask.single(thread))
        )


class TestProgramCache:
    def test_hit_miss_counters(self):
        cache = ProgramCache(maxsize=4)
        program = MicroProgram.from_ops([ReadOp(0)], "p", CFG)
        assert cache.get("k") is None
        cache.put("k", program)
        assert cache.get("k") is program
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction(self):
        cache = ProgramCache(maxsize=2)
        programs = {
            name: MicroProgram.from_ops([ReadOp(0)], name, CFG)
            for name in "abc"
        }
        cache.put("a", programs["a"])
        cache.put("b", programs["b"])
        assert cache.get("a") is programs["a"]  # refreshes "a"
        cache.put("c", programs["c"])  # evicts "b" (least recent)
        assert "b" not in cache
        assert cache.get("a") is programs["a"]
        assert cache.get("c") is programs["c"]

    def test_disabled_cache_stores_nothing(self):
        cache = ProgramCache(maxsize=0)
        cache.put("k", MicroProgram.from_ops([], "p", CFG))
        assert len(cache) == 0 and not cache.enabled

    def test_fingerprints_distinguish_configs(self):
        small = small_config(crossbars=4, rows=8)
        large = small_config(crossbars=4, rows=16)
        assert config_fingerprint(small) != config_fingerprint(large)
        cache = ProgramCache()
        cache.put(("add", config_fingerprint(small)),
                  MicroProgram.from_ops([], "p", small))
        assert cache.get(("add", config_fingerprint(large))) is None


class TestCompileValidation:
    def test_rejects_out_of_range_register(self):
        with pytest.raises(CompileError, match="out of range"):
            compile_ops([ReadOp(CFG.registers)], CFG)

    def test_rejects_out_of_range_mask(self):
        with pytest.raises(CompileError, match="crossbar mask"):
            compile_ops([CrossbarMaskOp(0, CFG.crossbars, 1)], CFG)

    def test_rejects_oversized_write(self):
        with pytest.raises(CompileError, match="word size"):
            compile_ops([WriteOp(0, 1 << CFG.word_size)], CFG)

    def test_counts_reads(self):
        program = compile_ops(
            [CrossbarMaskOp(0, 0, 1), RowMaskOp(0, 0, 1), ReadOp(1), ReadOp(2)],
            CFG,
        )
        assert program.reads == 2

    def test_encoded_words_roundtrip(self):
        ops = [CrossbarMaskOp(1, 3, 2), RowMaskOp(0, 7, 1), WriteOp(2, 0xABCD)]
        program = compile_ops(ops, CFG, optimize=False)
        decoded = [decode(int(w), CFG.word_size) for w in
                   program.encoded(CFG.word_size)]
        assert decoded == ops


class TestPeepholeMasks:
    def test_identical_masks_coalesced(self):
        ops = [
            CrossbarMaskOp(0, 3, 1), RowMaskOp(0, 7, 1), WriteOp(0, 1),
            CrossbarMaskOp(0, 3, 1), RowMaskOp(0, 7, 1), WriteOp(1, 2),
        ]
        out = coalesce_masks(ops)
        assert out == [
            CrossbarMaskOp(0, 3, 1), RowMaskOp(0, 7, 1),
            WriteOp(0, 1), WriteOp(1, 2),
        ]

    def test_superseded_mask_dropped(self):
        ops = [RowMaskOp(0, 0, 1), RowMaskOp(1, 1, 1), WriteOp(0, 1)]
        assert coalesce_masks(ops) == [RowMaskOp(1, 1, 1), WriteOp(0, 1)]

    def test_first_mask_always_kept(self):
        # The mask state at replay time is unknown, so the leading mask of
        # each kind must survive even if it looks "redundant" in isolation.
        ops = [CrossbarMaskOp(0, 3, 1), WriteOp(0, 1)]
        assert coalesce_masks(ops) == ops

    def test_trailing_masks_kept(self):
        # Mask state persists beyond the program; trailing sets are visible.
        ops = [WriteOp(0, 1), RowMaskOp(2, 2, 1)]
        assert coalesce_masks(ops) == ops


class TestPeepholeInit1:
    def init1(self, reg, lo, hi):
        return LogicHOp(GateType.INIT1, in_a=0, in_b=0, out=reg,
                        p_a=0, p_b=0, p_out=lo, p_end=hi, p_step=1)

    def test_repeated_init1_eliminated(self):
        ops = [self.init1(6, 0, 31), self.init1(6, 0, 31)]
        assert eliminate_redundant_init1(ops) == [self.init1(6, 0, 31)]

    def test_subset_init1_eliminated(self):
        ops = [self.init1(6, 0, 31), self.init1(6, 3, 5)]
        assert eliminate_redundant_init1(ops) == [self.init1(6, 0, 31)]

    def test_pulldown_blocks_elimination(self):
        pull = LogicHOp(GateType.NOT, in_a=0, in_b=0, out=6,
                        p_a=0, p_b=0, p_out=4, p_end=4, p_step=1)
        ops = [self.init1(6, 0, 31), pull, self.init1(6, 4, 4)]
        assert eliminate_redundant_init1(ops) == ops

    def test_mask_change_resets_tracking(self):
        ops = [self.init1(6, 0, 31), RowMaskOp(0, 3, 1), self.init1(6, 0, 31)]
        assert eliminate_redundant_init1(ops) == ops

    def test_write_resets_tracking(self):
        ops = [self.init1(6, 0, 31), WriteOp(6, 0), self.init1(6, 0, 31)]
        assert eliminate_redundant_init1(ops) == ops


class TestReplayEquivalence:
    """Compiled replay must be bit-identical to op-by-op execution."""

    CASES = [
        (ROp.ADD, int32), (ROp.MUL, int32), (ROp.DIV, int32),
        (ROp.LT, int32), (ROp.BIT_XOR, int32), (ROp.ABS, int32),
        (ROp.ADD, float32), (ROp.MUL, float32), (ROp.DIV, float32),
        (ROp.LE, float32), (ROp.NEG, float32),
    ]

    @pytest.mark.parametrize(
        "op,dtype", CASES, ids=[f"{o.value}.{d.name}" for o, d in CASES]
    )
    def test_cached_replay_matches_uncached(self, op, dtype, rng):
        size = CFG.crossbars * CFG.rows
        if dtype is int32:
            a = rand_int32(rng, size)
            b = rand_int32(rng, size)
            b[b == 0] = 1  # keep division defined
        else:
            a, b = rand_float32(rng, size), rand_float32(rng, size)
        sim_plain, drv_plain = fresh_pair(cache_size=0)
        sim_cached, drv_cached = fresh_pair()
        assert hasattr(sim_cached, "execute_program")
        for driver in (drv_plain, drv_cached):
            load(driver, 0, a.view(np.uint32))
            load(driver, 1, b.view(np.uint32))
            instr = RInstr(op, dtype, dest=2, src_a=0,
                           src_b=1 if instr_arity(op) >= 2 else None)
            driver.execute(instr)
            driver.execute(instr)  # second run exercises cache replay
        assert drv_cached.cache_hits >= 1 and drv_plain.cache_hits == 0
        assert np.array_equal(sim_plain.memory.words, sim_cached.memory.words)
        assert sim_plain.stats.cycles == sim_cached.stats.cycles
        assert sim_plain.stats.op_counts == sim_cached.stats.op_counts

    def test_replay_counts_into_reassigned_stats(self):
        # Plans must resolve sim.stats at call time: resetting the public
        # attribute between replays must not orphan the counters.
        from repro.sim.stats import SimStats

        sim, driver = fresh_pair()
        program = driver.compile(
            [RInstr(ROp.ADD, int32, dest=2, src_a=0, src_b=1)],
            optimize=False,
        )
        driver.run_program(program)  # builds and memoizes the plan
        first_cycles = sim.stats.cycles
        sim.stats = SimStats()
        driver.run_program(program)
        assert sim.stats.cycles == first_cycles

    def test_read_through_replay_path(self):
        sim, driver = fresh_pair()
        program = driver.compile(
            [
                WriteInstr(0, 41, RangeMask.all(4), RangeMask.all(8)),
                WriteInstr(1, 1, RangeMask.all(4), RangeMask.all(8)),
                RInstr(ROp.ADD, int32, dest=2, src_a=0, src_b=1),
                ReadInstr(2, 5, 2),
            ],
            optimize=True,
        )
        assert driver.run_program(program) == 42
        assert driver.run_program(program) == 42  # plan is memoized


def instr_arity(op):
    from repro.isa.instructions import ARITY

    return ARITY[op]


class TestOptimizerConfigInCacheKey:
    """Fused-stream cache keys must include the optimizer configuration.

    Regression: ``Driver.compile`` caches compiled streams in the
    ``ProgramCache``; without the ``optimize`` flag in the key, switching
    the optimization level mid-session would replay a stale program
    compiled under different flags.
    """

    def stream(self):
        full_w, full_r = RangeMask.all(4), RangeMask.all(8)
        return [
            WriteInstr(0, 17, full_w, full_r),
            WriteInstr(1, 5, full_w, full_r),
            RInstr(ROp.ADD, int32, dest=2, src_a=0, src_b=1),
            RInstr(ROp.MUL, int32, dest=3, src_a=2, src_b=1),
        ]

    def test_optimize_flag_distinguishes_cache_entries(self):
        _, driver = fresh_pair()
        optimized = driver.compile(self.stream(), optimize=True)
        verbatim = driver.compile(self.stream(), optimize=False)
        assert optimized is not verbatim
        assert len(verbatim) > len(optimized)  # peephole really ran
        # Recompiling under each flag hits the matching cached program.
        assert driver.compile(self.stream(), optimize=True) is optimized
        assert driver.compile(self.stream(), optimize=False) is verbatim

    def test_replay_after_switch_is_not_stale(self):
        sim_opt, drv_opt = fresh_pair()
        drv_opt.run_program(drv_opt.compile(self.stream(), optimize=True))
        opt_cycles = sim_opt.stats.cycles

        sim_raw, drv_raw = fresh_pair()
        drv_raw.compile(self.stream(), optimize=True)  # warm the cache...
        program = drv_raw.compile(self.stream(), optimize=False)
        drv_raw.run_program(program)  # ...then replay the verbatim stream
        assert sim_raw.stats.cycles > opt_cycles
        assert np.array_equal(sim_raw.memory.words, sim_opt.memory.words)

    def test_different_instruction_streams_never_collide(self):
        _, driver = fresh_pair()
        a = driver.compile(self.stream(), optimize=True)
        b = driver.compile(self.stream()[:-1], optimize=True)
        assert a is not b and len(a) != len(b)

    def test_disabled_cache_still_compiles(self):
        _, driver = fresh_pair(cache_size=0)
        first = driver.compile(self.stream(), optimize=True)
        second = driver.compile(self.stream(), optimize=True)
        assert first is not second
        assert list(first.ops) == list(second.ops)

    def test_source_ops_record_pre_peephole_count(self):
        _, driver = fresh_pair()
        optimized = driver.compile(self.stream(), optimize=True)
        verbatim = driver.compile(self.stream(), optimize=False)
        assert optimized.source_ops == len(verbatim)
        assert verbatim.source_ops == len(verbatim)
        assert len(optimized) < optimized.source_ops


class TestConfigInvalidation:
    def test_driver_keys_include_fingerprint(self):
        _, drv_a = fresh_pair(small_config(crossbars=4, rows=8))
        _, drv_b = fresh_pair(small_config(crossbars=4, rows=16))
        instr = RInstr(ROp.ADD, int32, dest=0, src_a=1, src_b=2)
        assert drv_a._rtype_key(instr) != drv_b._rtype_key(instr)

    def test_simulator_rejects_foreign_program(self):
        cfg_a = small_config(crossbars=4, rows=8)
        cfg_b = small_config(crossbars=4, rows=16)
        _, drv_a = fresh_pair(cfg_a)
        program = drv_a.compile(
            [RInstr(ROp.ADD, int32, dest=0, src_a=1, src_b=2)]
        )
        with pytest.raises(SimulationError, match="fingerprint"):
            Simulator(cfg_b).execute_program(program)


class TestStreamTierCache:
    """The stream tier (fused programs + plans) keys on everything
    lowering depends on: emission mode, optimize flag, parallelism, and
    the config fingerprint — switching any of them mid-session must
    never replay a stale entry; recompiling under the same flags must.
    """

    def stream(self):
        full_w, full_r = RangeMask.all(4), RangeMask.all(8)
        return [
            WriteInstr(0, 9, full_w, full_r),
            WriteInstr(1, 4, full_w, full_r),
            RInstr(ROp.ADD, int32, dest=2, src_a=0, src_b=1),
            RInstr(ROp.LT, int32, dest=3, src_a=1, src_b=2),
        ]

    def test_emit_mode_distinguishes_cache_entries(self):
        _, driver = fresh_pair()
        spliced = driver.compile(self.stream(), emit="stream")
        legacy = driver.compile(self.stream(), emit="macro")
        assert spliced is not legacy  # separate entries per emission mode
        assert list(spliced.ops) == list(legacy.ops)  # but identical output
        assert driver.compile(self.stream(), emit="stream") is spliced
        assert driver.compile(self.stream(), emit="macro") is legacy

    def test_stream_tier_separate_from_body_tier(self):
        _, driver = fresh_pair()
        body_hits = driver.programs.hits
        driver.compile(self.stream())
        driver.compile(self.stream())
        assert driver.streams.hits == 1
        # Driver.cache_hits stays the body-tier view (plan traffic must
        # not inflate the R-type body hit rate it reports).
        assert driver.cache_hits == driver.programs.hits
        assert driver.programs.hits >= body_hits

    def test_plan_cached_across_emissions(self):
        _, driver = fresh_pair(emit_mode="stream")
        stream = self.stream()
        driver.execute_stream(stream)
        misses = driver.streams.misses
        hits = driver.streams.hits
        driver.execute_stream(stream)
        driver.execute_stream(stream)
        assert driver.streams.misses == misses
        assert driver.streams.hits == hits + 2

    def test_fingerprint_invalidates_plans(self):
        cfg_b = small_config(crossbars=4, rows=16)
        _, drv_a = fresh_pair()
        _, drv_b = fresh_pair(cfg_b)
        a = drv_a.compile(self.stream())
        b = drv_b.compile(self.stream())
        assert a.config_fingerprint != b.config_fingerprint
        with pytest.raises(SimulationError, match="fingerprint"):
            Simulator(cfg_b).execute_program(a)

    def test_parallelism_distinguishes_cache_entries(self):
        _, par = fresh_pair(parallelism="parallel")
        _, ser = fresh_pair(parallelism="serial")
        a = par.compile(self.stream(), optimize=False)
        b = ser.compile(self.stream(), optimize=False)
        # Bit-parallel vs bit-serial lowering of ADD really differs, so a
        # shared key would replay the wrong body.
        assert len(a) != len(b)

    def test_backend_cache_counters_sum_both_tiers(self):
        from repro.backend.simulator import SimulatorBackend

        backend = SimulatorBackend(CFG)
        stream = self.stream()
        backend.compile(stream)
        backend.compile(stream)  # stream-tier hit
        for instr in stream:
            backend.execute(instr)  # body-tier traffic (R-type hits)
        driver = backend.driver
        assert backend.cache_hits == driver.programs.hits + driver.streams.hits
        assert backend.cache_misses == (
            driver.programs.misses + driver.streams.misses
        )
        assert driver.streams.hits == 1


class TestOptimizedStreams:
    """Peephole-optimized programs: same final state, fewer cycles."""

    def stream(self):
        full_w, full_r = RangeMask.all(4), RangeMask.all(8)
        return [
            WriteInstr(0, 17, full_w, full_r),
            WriteInstr(1, 5, full_w, full_r),
            RInstr(ROp.ADD, int32, dest=2, src_a=0, src_b=1),
            RInstr(ROp.MUL, int32, dest=3, src_a=2, src_b=1),
            MoveInstr(src_reg=3, dst_reg=4, src_thread=0, dst_thread=7,
                      warp_mask=RangeMask.single(1)),
            RInstr(ROp.SUB, int32, dest=5, src_a=3, src_b=0),
        ]

    def test_state_bit_identical_and_cycles_saved(self):
        sim_ref, drv_ref = fresh_pair(cache_size=0)
        for instr in self.stream():
            drv_ref.execute(instr)

        sim_opt, drv_opt = fresh_pair()
        program = drv_opt.compile(self.stream(), optimize=True)
        raw_len = sum(len(drv_ref.lower(i)) for i in self.stream())
        drv_opt.run_program(program)

        assert np.array_equal(sim_ref.memory.words, sim_opt.memory.words)
        assert len(program) < raw_len  # masks coalesced across instructions
        assert sim_opt.stats.cycles < sim_ref.stats.cycles

    def test_unoptimized_compile_preserves_stream(self):
        _, driver = fresh_pair(cache_size=0)
        stream = self.stream()
        program = driver.compile(stream, optimize=False)
        flat = [op for instr in stream for op in driver._lower_ops(instr)]
        assert list(program.ops) == flat

    def test_float_stream_optimized_replay(self, rng):
        size = CFG.crossbars * CFG.rows
        a = rand_float32(rng, size)
        b = rand_float32(rng, size)
        instrs = [
            RInstr(ROp.MUL, float32, dest=2, src_a=0, src_b=1),
            RInstr(ROp.ADD, float32, dest=3, src_a=2, src_b=0),
            RInstr(ROp.DIV, float32, dest=4, src_a=3, src_b=1),
        ]
        sim_ref, drv_ref = fresh_pair(cache_size=0)
        load(drv_ref, 0, a.view(np.uint32))
        load(drv_ref, 1, b.view(np.uint32))
        for instr in instrs:
            drv_ref.execute(instr)

        sim_opt, drv_opt = fresh_pair()
        load(drv_opt, 0, a.view(np.uint32))
        load(drv_opt, 1, b.view(np.uint32))
        drv_opt.run_program(drv_opt.compile(instrs, optimize=True))
        assert np.array_equal(sim_ref.memory.words, sim_opt.memory.words)
