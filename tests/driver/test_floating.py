"""Tests for the IEEE binary32 gate-level suite.

Every arithmetic result must be bit-identical to NumPy float32 (RNE),
within the documented FTZ envelope. Corner cases cover massive
cancellation, carry-out rounding, ties-to-even, signed zeros, alignment
sticky behaviour and exponent-boundary rounding.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import small_config
from repro.isa.dtypes import float32, int32
from repro.isa.instructions import ROp

from tests.conftest import rand_float32, safe_floats
from tests.driver.harness import Chip, assert_same_bits

COMMON = settings(max_examples=20, deadline=None)

_CHIP_CACHE = {}


def run_many(op: ROp, a: np.ndarray, b: np.ndarray = None) -> np.ndarray:
    chip = Chip(small_config(crossbars=1, rows=8))
    a = np.asarray(a, dtype=np.float32)
    chip.put(0, a, float32)
    if b is not None:
        chip.put(1, np.asarray(b, dtype=np.float32), float32)
        chip.run(op, float32, 2, 0, 1)
    else:
        chip.run(op, float32, 2, 0)
    return chip.get(2, a.size, float32)


def run_pair(op: ROp, a: float, b: float = None) -> float:
    return float(run_many(op, np.array([a]), None if b is None else np.array([b]))[0])


def f32(x) -> float:
    return float(np.float32(x))


class TestAddCornerCases:
    CASES = [
        (1.0, 1.0),
        (1.0, -1.0),  # exact cancellation -> +0
        (1.5, 2**-20),  # long alignment shift, sticky rounding
        (1.0, 2**-24),  # exactly half an ulp: ties-to-even keeps 1.0
        (1.0 + 2**-23, 2**-24),  # tie rounds to even (up this time)
        (2**20, -1.0),  # effective subtraction with shift
        (1.0000001, -1.0),  # massive cancellation
        (3.5, 4.25),
        (-7.375, 7.375),
        (0.1, 0.2),  # classic inexact operands
        (2**100, 2**-100),  # alignment beyond mantissa: sticky only
        (1e30, -9.99999e29),
        (float(np.float32(3.4e38)), float(np.float32(3.4e38))),  # overflow -> inf
    ]

    @pytest.mark.parametrize("a,b", CASES)
    def test_add_matches_numpy(self, a, b):
        got = run_pair(ROp.ADD, f32(a), f32(b))
        with np.errstate(over="ignore"):
            want = float(np.float32(a) + np.float32(b))
        assert np.float32(got).view(np.uint32) == np.float32(want).view(np.uint32)

    @pytest.mark.parametrize("a,b", CASES)
    def test_sub_matches_numpy(self, a, b):
        got = run_pair(ROp.SUB, f32(a), f32(b))
        want = float(np.float32(a) - np.float32(b))
        assert np.float32(got).view(np.uint32) == np.float32(want).view(np.uint32)


class TestSignedZeros:
    @pytest.mark.parametrize(
        "a,b,want",
        [
            (0.0, 0.0, 0.0),
            (-0.0, -0.0, -0.0),
            (0.0, -0.0, 0.0),
            (-0.0, 0.0, 0.0),
            (-0.0, 5.0, 5.0),
            (5.0, -0.0, 5.0),
            (0.0, -5.0, -5.0),
        ],
    )
    def test_add_zero_signs(self, a, b, want):
        got = np.float32(run_pair(ROp.ADD, a, b))
        assert got.view(np.uint32) == np.float32(want).view(np.uint32)

    def test_sub_equal_values_gives_positive_zero(self):
        got = np.float32(run_pair(ROp.SUB, 3.25, 3.25))
        assert got.view(np.uint32) == np.float32(0.0).view(np.uint32)

    def test_mul_zero_sign_is_xor(self):
        assert np.float32(run_pair(ROp.MUL, -0.0, 5.0)).view(np.uint32) == (
            np.float32(-0.0).view(np.uint32)
        )
        assert np.float32(run_pair(ROp.MUL, -0.0, -5.0)).view(np.uint32) == 0


class TestMulDivCornerCases:
    MUL_CASES = [
        (1.5, 1.5),
        (1.0 + 2**-23, 1.0 + 2**-23),  # rounding at the last bit
        (2.0, 0.75),
        (1.9999999, 1.9999999),  # product needs the normalize shift
        (3.0, 1.0 / 3.0),
        (1e20, 1e20),  # overflow -> inf
        (0.0, 123.0),
    ]

    @pytest.mark.parametrize("a,b", MUL_CASES)
    def test_mul_matches_numpy(self, a, b):
        got = run_pair(ROp.MUL, f32(a), f32(b))
        with np.errstate(over="ignore"):
            want = float(np.float32(a) * np.float32(b))
        assert np.float32(got).view(np.uint32) == np.float32(want).view(np.uint32)

    DIV_CASES = [
        (1.0, 3.0),
        (2.0, 1.0),
        (1.0, 2.0),  # exact power of two
        (355.0, 113.0),
        (1.0, 1.9999999),
        (-7.5, 2.5),
        (0.0, 3.0),
    ]

    @pytest.mark.parametrize("a,b", DIV_CASES)
    def test_div_matches_numpy(self, a, b):
        got = run_pair(ROp.DIV, f32(a), f32(b))
        want = float(np.float32(a) / np.float32(b))
        assert np.float32(got).view(np.uint32) == np.float32(want).view(np.uint32)

    def test_div_by_zero_gives_signed_inf(self):
        assert run_pair(ROp.DIV, 1.0, 0.0) == float("inf")
        assert run_pair(ROp.DIV, -1.0, 0.0) == float("-inf")


class TestProperties:
    @COMMON
    @given(a=safe_floats(), b=safe_floats())
    def test_add_property(self, a, b):
        got = run_pair(ROp.ADD, a, b)
        want = float(np.float32(a) + np.float32(b))
        assert np.float32(got).view(np.uint32) == np.float32(want).view(np.uint32)

    @COMMON
    @given(a=safe_floats(), b=safe_floats())
    def test_mul_property(self, a, b):
        got = run_pair(ROp.MUL, a, b)
        want = float(np.float32(a) * np.float32(b))
        assert np.float32(got).view(np.uint32) == np.float32(want).view(np.uint32)

    @COMMON
    @given(a=safe_floats(), b=safe_floats())
    def test_div_property(self, a, b):
        got = run_pair(ROp.DIV, a, b)
        want = float(np.float32(a) / np.float32(b))
        assert np.float32(got).view(np.uint32) == np.float32(want).view(np.uint32)

    @COMMON
    @given(a=safe_floats(), b=safe_floats())
    def test_compare_property(self, a, b):
        na, nb = np.float32(a), np.float32(b)
        chip = Chip(small_config(crossbars=1, rows=1))
        chip.put(0, np.array([na]), float32)
        chip.put(1, np.array([nb]), float32)
        for op, want in [
            (ROp.LT, na < nb), (ROp.LE, na <= nb), (ROp.GT, na > nb),
            (ROp.GE, na >= nb), (ROp.EQ, na == nb), (ROp.NE, na != nb),
        ]:
            chip.run(op, float32, 2, 0, 1)
            assert int(chip.get(2, 1, int32)[0]) == int(want), op


class TestUnary:
    @pytest.mark.parametrize("value", [0.0, -0.0, 1.5, -2.25, 1e30, -1e-30])
    def test_neg_abs(self, value):
        value = f32(value)
        assert np.float32(run_pair(ROp.NEG, value)).view(np.uint32) == np.float32(
            -np.float32(value)
        ).view(np.uint32)
        assert np.float32(run_pair(ROp.ABS, value)).view(np.uint32) == np.float32(
            abs(np.float32(value))
        ).view(np.uint32)

    @pytest.mark.parametrize(
        "value,want", [(2.5, 1.0), (-0.25, -1.0), (0.0, 0.0), (-0.0, 0.0)]
    )
    def test_sign(self, value, want):
        assert run_pair(ROp.SIGN, value) == want

    def test_zero_flag(self):
        chip = Chip(small_config(crossbars=1, rows=4))
        chip.put(0, np.array([0.0, -0.0, 1.0, -5.0], np.float32), float32)
        chip.run(ROp.ZERO, float32, 1, 0)
        assert list(chip.get(1, 4, int32)) == [1, 1, 0, 0]


class TestVectorized:
    def test_wide_exponent_mix(self):
        rng = np.random.default_rng(7)
        a = rand_float32(rng, 8, exp_band=30)
        b = rand_float32(rng, 8, exp_band=30)
        for op, want in [
            (ROp.ADD, a + b), (ROp.SUB, a - b), (ROp.MUL, a * b), (ROp.DIV, a / b),
        ]:
            assert_same_bits(run_many(op, a, b), want.astype(np.float32))
