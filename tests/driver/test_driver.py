"""Tests for the Driver: lowering, masks, moves, and the sequence cache."""

import numpy as np
import pytest

from repro.arch.config import small_config
from repro.arch.masks import RangeMask
from repro.arch.micro_ops import CrossbarMaskOp, MoveOp, ReadOp, RowMaskOp
from repro.driver.driver import BufferSink, Driver
from repro.isa.dtypes import float32, int32, value_to_raw
from repro.isa.instructions import MoveInstr, ReadInstr, RInstr, ROp, WriteInstr
from repro.sim.simulator import Simulator

from tests.driver.harness import Chip


@pytest.fixture
def chip():
    return Chip(small_config(crossbars=16, rows=8))


class TestLowering:
    def test_rtype_prepends_masks(self, chip):
        ops = chip.driver.lower(RInstr(ROp.ADD, int32, dest=0, src_a=1, src_b=2))
        assert isinstance(ops[0], CrossbarMaskOp)
        assert isinstance(ops[1], RowMaskOp)

    def test_rtype_respects_masks(self, chip):
        instr = RInstr(
            ROp.ADD, int32, dest=0, src_a=1, src_b=2,
            warp_mask=RangeMask(2, 6, 4), row_mask=RangeMask(1, 7, 2),
        )
        ops = chip.driver.lower(instr)
        assert ops[0] == CrossbarMaskOp(2, 6, 4)
        assert ops[1] == RowMaskOp(1, 7, 2)

    def test_read_lowering(self, chip):
        ops = chip.driver.lower(ReadInstr(3, 5, 7))
        assert ops == [CrossbarMaskOp(3, 3, 1), RowMaskOp(5, 5, 1), ReadOp(7)]

    def test_macro_and_micro_counters(self, chip):
        before_macro = chip.driver.macro_count
        before_micro = chip.driver.micro_count
        chip.driver.execute(RInstr(ROp.ADD, int32, dest=0, src_a=1, src_b=2))
        assert chip.driver.macro_count == before_macro + 1
        assert chip.driver.micro_count > before_micro + 100


class TestSequenceCache:
    def test_cache_hit_on_repeat(self, chip):
        instr = RInstr(ROp.MUL, int32, dest=0, src_a=1, src_b=2)
        chip.driver.execute(instr)
        hits = chip.driver.cache_hits
        chip.driver.execute(instr)
        assert chip.driver.cache_hits == hits + 1

    def test_cache_keyed_on_registers(self, chip):
        chip.driver.execute(RInstr(ROp.MUL, int32, dest=0, src_a=1, src_b=2))
        hits = chip.driver.cache_hits
        chip.driver.execute(RInstr(ROp.MUL, int32, dest=0, src_a=1, src_b=3))
        assert chip.driver.cache_hits == hits  # different key: no hit

    def test_cached_replay_is_identical(self, chip):
        instr = RInstr(ROp.ADD, float32, dest=2, src_a=0, src_b=1)
        first = chip.driver.lower(instr)
        second = chip.driver.lower(instr)
        assert first == second

    def test_cache_disabled(self):
        chip = Chip(small_config(crossbars=4, rows=8), cache_size=0)
        instr = RInstr(ROp.ADD, int32, dest=0, src_a=1, src_b=2)
        chip.driver.execute(instr)
        chip.driver.execute(instr)
        assert chip.driver.cache_hits == 0

    def test_cached_results_still_correct(self, chip):
        chip.put(0, np.arange(8, dtype=np.int32), int32)
        chip.put(1, np.full(8, 3, dtype=np.int32), int32)
        instr = RInstr(ROp.ADD, int32, dest=2, src_a=0, src_b=1)
        chip.driver.execute(instr)
        chip.driver.execute(instr)  # cache replay
        assert list(chip.get(2, 8, int32)) == [3, 4, 5, 6, 7, 8, 9, 10]


class TestMoves:
    def put_at(self, chip, reg, warp, thread, value):
        chip.driver.execute(
            WriteInstr(reg, value_to_raw(value, int32),
                       RangeMask.single(warp), RangeMask.single(thread))
        )

    def get_at(self, chip, reg, warp, thread):
        return chip.driver.execute(ReadInstr(warp, thread, reg))

    def test_intra_warp_move(self, chip):
        self.put_at(chip, 0, 1, 2, 99)
        chip.driver.execute(
            MoveInstr(src_reg=0, dst_reg=3, src_thread=2, dst_thread=5,
                      warp_mask=RangeMask.single(1))
        )
        assert self.get_at(chip, 3, 1, 5) == 99

    def test_intra_warp_move_parallel_across_warps(self, chip):
        for warp in range(4):
            self.put_at(chip, 0, warp, 0, warp + 10)
        chip.driver.execute(
            MoveInstr(src_reg=0, dst_reg=1, src_thread=0, dst_thread=7,
                      warp_mask=RangeMask(0, 3, 1))
        )
        for warp in range(4):
            assert self.get_at(chip, 1, warp, 7) == warp + 10

    def test_same_thread_register_copy(self, chip):
        self.put_at(chip, 0, 2, 3, 7)
        chip.driver.execute(
            MoveInstr(src_reg=0, dst_reg=5, src_thread=3, dst_thread=3,
                      warp_mask=RangeMask.single(2))
        )
        assert self.get_at(chip, 5, 2, 3) == 7

    def test_same_everything_is_noop(self, chip):
        ops = chip.driver.lower(
            MoveInstr(src_reg=0, dst_reg=0, src_thread=3, dst_thread=3)
        )
        assert ops == []

    def test_inter_warp_move(self, chip):
        self.put_at(chip, 0, 1, 4, 1234)
        chip.driver.execute(
            MoveInstr(src_reg=0, dst_reg=2, src_thread=4, dst_thread=6,
                      warp_mask=RangeMask.single(1), warp_dist=2)
        )
        assert self.get_at(chip, 2, 3, 6) == 1234

    def test_distributed_inter_warp_move(self, chip):
        """Crossbars xx01 -> xx10 (the Section III-F pattern)."""
        for group in range(4):
            self.put_at(chip, 0, group * 4 + 1, 0, group)
        chip.driver.execute(
            MoveInstr(src_reg=0, dst_reg=0, src_thread=0, dst_thread=0,
                      warp_mask=RangeMask(1, 13, 4), warp_dist=1)
        )
        for group in range(4):
            assert self.get_at(chip, 0, group * 4 + 2, 0) == group

    def test_move_preserves_value_parity(self, chip):
        """The NOT chains must compose to an even number of inversions."""
        for value in (0, 0xFFFFFFFF, 0xA5A5A5A5):
            chip.driver.execute(
                WriteInstr(0, value, RangeMask.single(0), RangeMask.single(0))
            )
            chip.driver.execute(
                MoveInstr(src_reg=0, dst_reg=1, src_thread=0, dst_thread=1,
                          warp_mask=RangeMask.single(0))
            )
            assert self.get_at(chip, 1, 0, 1) == value


class TestBufferSink:
    def test_sink_counts_and_encodes(self):
        cfg = small_config(crossbars=4, rows=8)
        sink = BufferSink(cfg, capacity=64)
        driver = Driver(sink, config=cfg)
        driver.execute(RInstr(ROp.ADD, int32, dest=0, src_a=1, src_b=2))
        assert sink.count > 100
        assert sink.buffer.dtype == np.uint64
        assert sink.buffer[:10].any()

    def test_sink_wraps_ring(self):
        cfg = small_config(crossbars=4, rows=8)
        sink = BufferSink(cfg, capacity=8)
        driver = Driver(sink, config=cfg)
        driver.execute(RInstr(ROp.MUL, int32, dest=0, src_a=1, src_b=2))
        assert sink.count > 8  # wrapped without error

    def test_invalid_parallelism(self):
        cfg = small_config(crossbars=4, rows=8)
        with pytest.raises(ValueError):
            Driver(BufferSink(cfg), config=cfg, parallelism="quantum")
