"""Tests for the gate-level builder: primitives, scratch pool, init rules."""

import pytest

from repro.driver.gates import GateError, ScratchOverflow

from tests.driver.harness import GateHarness


@pytest.fixture
def h():
    return GateHarness()


class TestPrimitives:
    @pytest.mark.parametrize("a,b,want", [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 0)])
    def test_nor(self, h, a, b, want):
        ca, cb = h.input_bits(a, 1)[0], h.input_bits(b, 1)[0]
        assert h.get_cell(h.gb.nor(ca, cb)) == want

    @pytest.mark.parametrize("a,want", [(0, 1), (1, 0)])
    def test_not(self, h, a, want):
        assert h.get_cell(h.gb.not_(h.input_bits(a, 1)[0])) == want

    def test_nor_same_cell_is_not(self, h):
        cell = h.input_bits(1, 1)[0]
        assert h.get_cell(h.gb.nor(cell, cell)) == 0

    def test_output_aliasing_rejected(self, h):
        a = h.input_bits(1, 1)[0]
        b = h.input_bits(0, 1)[0]
        with pytest.raises(GateError):
            h.gb.nor_into(a, b, a)

    def test_copy(self, h):
        for value in (0, 1):
            cell = h.input_bits(value, 1)[0]
            assert h.get_cell(h.gb.copy(cell)) == value


class TestDerivedGates:
    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_two_input_gates(self, h, a, b):
        ca, cb = h.input_bits(a, 1)[0], h.input_bits(b, 1)[0]
        assert h.get_cell(h.gb.or_(ca, cb)) == (a | b)
        assert h.get_cell(h.gb.and_(ca, cb)) == (a & b)
        assert h.get_cell(h.gb.xor(ca, cb)) == (a ^ b)
        assert h.get_cell(h.gb.xnor(ca, cb)) == 1 - (a ^ b)

    @pytest.mark.parametrize("c", [0, 1])
    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_mux(self, h, c, a, b):
        cc = h.input_bits(c, 1)[0]
        ca = h.input_bits(a, 1)[0]
        cb = h.input_bits(b, 1)[0]
        assert h.get_cell(h.gb.mux(cc, ca, cb)) == (a if c else b)

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    @pytest.mark.parametrize("cin", [0, 1])
    def test_full_adder(self, h, a, b, cin):
        ca, cb = h.input_bits(a, 1)[0], h.input_bits(b, 1)[0]
        cc = h.input_bits(cin, 1)[0]
        s, cout = h.gb.full_adder(ca, cb, cc)
        total = a + b + cin
        assert h.get_cell(s) == total & 1
        assert h.get_cell(cout) == total >> 1


class TestScratchPool:
    def test_alloc_initializes_to_one(self, h):
        cell = h.gb.alloc()
        assert h.get_cell(cell) == 1

    def test_free_and_realloc_reinitializes(self, h):
        cell = h.gb.alloc()
        h.set_cell(cell, 0)
        h.gb.free(cell)
        again = h.gb.alloc()
        assert h.get_cell(again) == 1

    def test_double_free_guarded(self, h):
        cell = h.gb.alloc()
        h.gb.free(cell)
        with pytest.raises(GateError):
            h.gb.free(cell)

    def test_read_after_free_guarded(self, h):
        cell = h.gb.alloc()
        other = h.gb.alloc()
        h.gb.free(cell)
        with pytest.raises(GateError):
            h.gb.nor(cell, other)

    def test_register_cells_never_pooled(self, h):
        cells = h.gb.register_cells(0)
        h.gb.free_bits(cells)  # no-op, no error
        assert len(cells) == 32

    def test_const_cells_protected(self, h):
        zero = h.gb.const(0)
        one = h.gb.const(1)
        h.gb.free(zero)
        h.gb.free(one)
        assert h.get_cell(zero) == 0
        assert h.get_cell(one) == 1

    def test_scratch_overflow(self, h):
        capacity = h.gb.free_cell_count
        for _ in range(capacity):
            h.gb.alloc()
        with pytest.raises(ScratchOverflow):
            h.gb.alloc()

    def test_bulk_init_amortization(self, h):
        """Allocating a fresh column costs one micro-op, not 32."""
        before = h.cycles
        h.gb.alloc_bits(32)
        # one column INIT1 (or few) rather than 32 single-cell inits
        assert h.cycles - before <= 2

    def test_reserve_column_takes_whole_register(self, h):
        reg = h.gb.reserve_column()
        free_before = h.gb.free_cell_count
        h.gb.release_column(reg)
        assert h.gb.free_cell_count == free_before + 32

    def test_release_unreserved_rejected(self, h):
        with pytest.raises(GateError):
            h.gb.release_column(5)


class TestRegisterHelpers:
    def test_write_register(self, h):
        bits = h.input_bits(0xCAFEBABE, 32)
        h.gb.write_register(bits, 3)
        assert h.get_register(3) == 0xCAFEBABE

    def test_write_register_alias_staging(self, h):
        """Sources living in the destination register are staged safely."""
        h.set_register(2, 0x0000FFFF)
        cells = h.gb.register_cells(2)
        rotated = cells[16:] + cells[:16]
        h.gb.write_register(rotated, 2)
        assert h.get_register(2) == 0xFFFF0000

    def test_not_column(self, h):
        h.set_register(0, 0x12345678)
        h.gb.init_column(1, 1)
        h.gb.not_column(0, 1)
        assert h.get_register(1) == (~0x12345678) & 0xFFFFFFFF

    def test_not_column_alias_rejected(self, h):
        with pytest.raises(GateError):
            h.gb.not_column(0, 0)

    def test_wrong_width_rejected(self, h):
        with pytest.raises(GateError):
            h.gb.write_register(h.gb.alloc_bits(8), 0)
