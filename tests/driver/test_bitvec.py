"""Property-based tests for the bit-vector combinators.

Each combinator is checked against plain Python integer arithmetic on
randomly drawn words, executed gate-by-gate on the simulated crossbar.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.driver import bitvec as bv

from tests.driver.harness import GateHarness

WORD = st.integers(0, 0xFFFF)  # 16-bit words keep gate-level tests fast
W = 16
MASK = (1 << W) - 1

COMMON = settings(max_examples=25, deadline=None)


def make(h, value):
    return h.input_bits(value, W)


class TestBitwise:
    @COMMON
    @given(a=WORD, b=WORD)
    def test_and_or_xor_not(self, a, b):
        h = GateHarness()
        ca, cb = make(h, a), make(h, b)
        assert h.get_bits(bv.and_bits(h.gb, ca, cb)) == a & b
        assert h.get_bits(bv.or_bits(h.gb, ca, cb)) == a | b
        assert h.get_bits(bv.xor_bits(h.gb, ca, cb)) == a ^ b
        assert h.get_bits(bv.not_bits(h.gb, ca)) == (~a) & MASK

    @COMMON
    @given(a=WORD, b=WORD, c=st.integers(0, 1))
    def test_mux_bits(self, a, b, c):
        h = GateHarness()
        cond = h.input_bits(c, 1)[0]
        out = bv.mux_bits(h.gb, cond, make(h, a), make(h, b))
        assert h.get_bits(out) == (a if c else b)

    def test_broadcast(self):
        h = GateHarness()
        cell = h.input_bits(1, 1)[0]
        assert h.get_bits(bv.broadcast(h.gb, cell, 8)) == 0xFF

    def test_width_mismatch(self):
        h = GateHarness()
        with pytest.raises(ValueError):
            bv.and_bits(h.gb, h.gb.alloc_bits(4), h.gb.alloc_bits(5))


class TestTrees:
    @COMMON
    @given(a=WORD)
    def test_or_and_zero_trees(self, a):
        h = GateHarness()
        ca = make(h, a)
        assert h.get_cell(bv.or_tree(h.gb, ca)) == (1 if a else 0)
        assert h.get_cell(bv.and_tree(h.gb, ca)) == (1 if a == MASK else 0)
        assert h.get_cell(bv.is_zero(h.gb, ca)) == (1 if a == 0 else 0)

    @COMMON
    @given(a=WORD, b=WORD)
    def test_equals(self, a, b):
        h = GateHarness()
        assert h.get_cell(bv.equals(h.gb, make(h, a), make(h, b))) == int(a == b)

    def test_or_tree_single_cell(self):
        h = GateHarness()
        cell = h.input_bits(1, 1)
        assert h.get_cell(bv.or_tree(h.gb, cell)) == 1

    def test_or_tree_with_repeated_constant(self):
        h = GateHarness()
        zero = h.gb.const(0)
        cells = [zero, zero, zero, h.input_bits(1, 1)[0]]
        assert h.get_cell(bv.or_tree(h.gb, cells)) == 1


class TestArithmetic:
    @COMMON
    @given(a=WORD, b=WORD, cin=st.integers(0, 1))
    def test_ripple_add(self, a, b, cin):
        h = GateHarness()
        cin_cell = h.input_bits(cin, 1)[0]
        total, cout = bv.ripple_add(h.gb, make(h, a), make(h, b), cin=cin_cell)
        value = a + b + cin
        assert h.get_bits(total) == value & MASK
        assert h.get_cell(cout) == value >> W

    @COMMON
    @given(a=WORD, b=WORD)
    def test_ripple_sub(self, a, b):
        h = GateHarness()
        diff, borrow = bv.ripple_sub(h.gb, make(h, a), make(h, b))
        assert h.get_bits(diff) == (a - b) & MASK
        assert h.get_cell(borrow) == int(a < b)

    @COMMON
    @given(a=WORD, cond=st.integers(0, 1))
    def test_increment(self, a, cond):
        h = GateHarness()
        cell = h.input_bits(cond, 1)[0]
        out, carry = bv.increment(h.gb, make(h, a), cell)
        value = a + cond
        assert h.get_bits(out) == value & MASK
        assert h.get_cell(carry) == value >> W

    @COMMON
    @given(a=WORD, b=WORD)
    def test_carry_chain_matches_add(self, a, b):
        h = GateHarness()
        carry = bv.carry_chain(h.gb, make(h, a), make(h, b), h.gb.const(0))
        assert h.get_cell(carry) == (a + b) >> W

    @COMMON
    @given(a=WORD, b=WORD)
    def test_ult(self, a, b):
        h = GateHarness()
        assert h.get_cell(bv.ult(h.gb, make(h, a), make(h, b))) == int(a < b)

    @COMMON
    @given(a=WORD, b=WORD)
    def test_slt(self, a, b):
        h = GateHarness()
        signed = lambda x: x - (1 << W) if x & (1 << (W - 1)) else x
        assert h.get_cell(bv.slt(h.gb, make(h, a), make(h, b))) == int(
            signed(a) < signed(b)
        )


class TestShifters:
    @COMMON
    @given(a=WORD, amount=st.integers(0, 31))
    def test_shift_right_var(self, a, amount):
        h = GateHarness()
        amt = h.input_bits(amount, 5)
        out, sticky = bv.shift_right_var(h.gb, make(h, a), amt, collect_sticky=True)
        assert h.get_bits(out) == a >> amount
        dropped = a & ((1 << min(amount, W)) - 1)
        assert h.get_cell(sticky) == int(dropped != 0)

    @COMMON
    @given(a=WORD, amount=st.integers(0, 31))
    def test_shift_left_var(self, a, amount):
        h = GateHarness()
        amt = h.input_bits(amount, 5)
        out = bv.shift_left_var(h.gb, make(h, a), amt)
        assert h.get_bits(out) == (a << amount) & MASK

    @COMMON
    @given(a=st.integers(1, MASK))
    def test_normalize_left(self, a):
        h = GateHarness()
        norm, amount = bv.normalize_left(h.gb, make(h, a))
        shift = W - a.bit_length()
        assert h.get_bits(norm) == (a << shift) & MASK
        assert h.get_bits(amount) == shift

    def test_normalize_zero_stays_zero(self):
        h = GateHarness()
        norm, _ = bv.normalize_left(h.gb, make(h, 0))
        assert h.get_bits(norm) == 0


class TestRounding:
    @COMMON
    @given(
        mantissa=st.integers(0, 0xFF),
        g=st.integers(0, 1),
        r=st.integers(0, 1),
        s=st.integers(0, 1),
    )
    def test_round_nearest_even(self, mantissa, g, r, s):
        h = GateHarness()
        cells = h.input_bits(mantissa, 8)
        rounded, carry = bv.round_nearest_even(
            h.gb,
            cells,
            h.input_bits(g, 1)[0],
            h.input_bits(r, 1)[0],
            h.input_bits(s, 1)[0],
        )
        round_up = g and (r or s or (mantissa & 1))
        expected = mantissa + int(round_up)
        assert h.get_bits(rounded) == expected & 0xFF
        assert h.get_cell(carry) == expected >> 8

    def test_const_bits(self):
        h = GateHarness()
        assert h.get_bits(bv.const_bits(h.gb, 0b1011, 4)) == 0b1011
        assert h.get_bits(bv.const_bits(h.gb, -1, 4)) == 0b1111
