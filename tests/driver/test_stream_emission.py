"""Stream-conformance differential suite for whole-stream emission.

The stream emission compiler (:mod:`repro.driver.stream`) promises that
fusing a macro-instruction stream into one cached plan changes *nothing*
observable except host dispatch cost: memory state, ``SimStats``, read
responses, and the driver's macro/micro counters must be bit-identical
to the per-macro ladder, on every backend, at every level of the
fallback ladder.  This suite checks that promise differentially:

- seeded random macro streams (R-type across dtypes, masked writes,
  moves of every shape, in-stream reads) are emitted stream-lowered and
  per-macro on fresh simulators — and through both replay engines — and
  compared bit for bit;
- the spliced stream compiler (``Driver.compile`` under ``"stream"``
  emission) is checked op-for-op against the legacy per-macro lowering
  at both ``optimize`` flags;
- the numpy backend's fused ``run_stream`` is compared against its own
  per-instruction loop (memory image and cycle bill);
- every rung of the fallback ladder (``REPRO_DRIVER_EMIT=macro``,
  batch-only sinks with in-stream reads, execute-only chips, a disabled
  cache) is exercised and shown to produce identical results while the
  ``emit_counters`` attribute attributes the emission level.

On failure the offending stream is dumped to ``fuzz_artifacts/``
(override with ``REPRO_FUZZ_ARTIFACT_DIR``), like the integration fuzz
suite does.
"""

import json
import os
import random

import numpy as np
import pytest

import repro.pim as pim
from repro.arch.config import small_config
from repro.arch.masks import RangeMask
from repro.driver.compiler import CompileError
from repro.driver.driver import BufferSink, Driver
from repro.driver.stream import (
    EMIT_ENV,
    EMIT_MODES,
    UNSUPPORTED,
    MacroStream,
    StreamPlan,
    build_plan,
    plan_route,
    resolve_emit_mode,
)
from repro.isa.dtypes import float32, int32
from repro.isa.instructions import (
    ARITY,
    MoveInstr,
    ReadInstr,
    RInstr,
    ROp,
    WriteInstr,
)
from repro.sim.simulator import Simulator

CFG = small_config(crossbars=4, rows=8)

SEEDS = [11, 1729, 40961, 65537, 99991]

INT_OPS = [
    ROp.ADD, ROp.SUB, ROp.MUL, ROp.LT, ROp.EQ,
    ROp.BIT_AND, ROp.BIT_XOR, ROp.NEG, ROp.ABS,
]
FLOAT_OPS = [ROp.ADD, ROp.MUL, ROp.LT]


def _artifact_dir() -> str:
    return os.environ.get(
        "REPRO_FUZZ_ARTIFACT_DIR",
        os.path.join(os.path.dirname(__file__), "..", "..", "fuzz_artifacts"),
    )


def _dump_stream(seed: int, context: str, stream, error: BaseException) -> None:
    os.makedirs(_artifact_dir(), exist_ok=True)
    path = os.path.join(_artifact_dir(), f"stream_seed_{seed}.json")
    with open(path, "w") as handle:
        json.dump(
            {
                "seed": seed,
                "context": context,
                "error": repr(error),
                "stream": [repr(instr) for instr in stream],
            },
            handle,
            indent=2,
        )


def _random_mask(rng: random.Random, length: int) -> RangeMask:
    start = rng.randrange(length)
    return RangeMask(start, rng.randrange(start, length), 1)


def random_stream(seed: int, length: int = 14) -> MacroStream:
    """A seeded random macro stream touching every instruction family.

    Starts with masked writes (so later arithmetic chews on non-zero
    data) and sprinkles in-stream reads, moves of all three shapes, and
    R-type macros over both dtypes with random mask patterns.
    """
    rng = random.Random(seed)
    user = CFG.user_registers
    instrs = [
        WriteInstr(
            rng.randrange(user), rng.getrandbits(32),
            _random_mask(rng, CFG.crossbars), _random_mask(rng, CFG.rows),
        )
        for _ in range(3)
    ]
    for _ in range(length):
        roll = rng.random()
        if roll < 0.55:
            dtype = int32 if rng.random() < 0.7 else float32
            op = rng.choice(INT_OPS if dtype is int32 else FLOAT_OPS)
            arity = ARITY[op]
            regs = [rng.randrange(user) for _ in range(1 + arity)]
            instrs.append(
                RInstr(
                    op, dtype, dest=regs[0], src_a=regs[1],
                    src_b=regs[2] if arity >= 2 else None,
                    src_c=regs[3] if arity >= 3 else None,
                    warp_mask=(
                        _random_mask(rng, CFG.crossbars)
                        if rng.random() < 0.4 else None
                    ),
                    row_mask=(
                        _random_mask(rng, CFG.rows)
                        if rng.random() < 0.4 else None
                    ),
                )
            )
        elif roll < 0.7:
            instrs.append(
                WriteInstr(rng.randrange(user), rng.getrandbits(32))
            )
        elif roll < 0.85:
            shape = rng.randrange(3)
            src, dst = rng.randrange(user), rng.randrange(user)
            if shape == 0:  # same-thread register copy
                thread = rng.randrange(CFG.rows)
                instrs.append(MoveInstr(src, dst, thread, thread))
            elif shape == 1:  # intra-warp thread move
                instrs.append(
                    MoveInstr(
                        src, dst,
                        rng.randrange(CFG.rows), rng.randrange(CFG.rows),
                        warp_mask=_random_mask(rng, CFG.crossbars),
                    )
                )
            else:  # inter-warp H-tree move
                warp = rng.randrange(CFG.crossbars - 1)
                instrs.append(
                    MoveInstr(
                        src, dst,
                        rng.randrange(CFG.rows), rng.randrange(CFG.rows),
                        warp_mask=RangeMask.single(warp),
                        warp_dist=rng.randrange(1, CFG.crossbars - warp),
                    )
                )
        else:
            instrs.append(
                ReadInstr(
                    rng.randrange(CFG.crossbars),
                    rng.randrange(CFG.rows),
                    rng.randrange(user),
                )
            )
    return MacroStream(instrs)


def per_macro_reference(stream, loops: int = 1):
    """The ground truth: a fresh simulator fed macro by macro."""
    sim = Simulator(CFG)
    driver = Driver(sim, emit_mode="macro")
    response = None
    for _ in range(loops):
        for instr in stream:
            result = driver.execute(instr)
            if result is not None:
                response = result
    return sim, driver, response


def stream_emission(stream, loops: int = 1, **kwargs):
    """The path under test: ``execute_stream`` on a fresh simulator."""
    replay_engine = kwargs.pop("replay_engine", None)
    sim = Simulator(CFG, replay_engine=replay_engine)
    driver = Driver(sim, **kwargs)
    response = None
    for _ in range(loops):
        response = driver.execute_stream(stream)
    return sim, driver, response


def assert_conformant(seed, stream, context, reference, candidate):
    """Bit-identical memory, identical SimStats, counters, and response."""
    sim_ref, driver_ref, response_ref = reference
    sim_new, driver_new, response_new = candidate
    try:
        assert response_new == response_ref
        assert np.array_equal(sim_new.memory.words, sim_ref.memory.words)
        assert sim_new.stats == sim_ref.stats
        assert driver_new.macro_count == driver_ref.macro_count
        assert driver_new.micro_count == driver_ref.micro_count
    except AssertionError as exc:
        _dump_stream(seed, context, stream, exc)
        raise


class TestEmitModeResolution:
    def test_default_is_stream(self, monkeypatch):
        monkeypatch.delenv(EMIT_ENV, raising=False)
        assert resolve_emit_mode() == "stream"
        assert Driver(Simulator(CFG)).emit_mode == "stream"

    def test_env_selects_fallback(self, monkeypatch):
        monkeypatch.setenv(EMIT_ENV, "macro")
        assert resolve_emit_mode() == "macro"
        assert Driver(Simulator(CFG)).emit_mode == "macro"

    def test_explicit_mode_beats_env(self, monkeypatch):
        monkeypatch.setenv(EMIT_ENV, "macro")
        assert resolve_emit_mode("stream") == "stream"
        assert Driver(Simulator(CFG), emit_mode="stream").emit_mode == "stream"

    def test_unknown_mode_names_source(self, monkeypatch):
        with pytest.raises(ValueError, match="requested"):
            resolve_emit_mode("eager")
        monkeypatch.setenv(EMIT_ENV, "bogus")
        with pytest.raises(ValueError, match=EMIT_ENV):
            resolve_emit_mode()

    def test_modes_tuple_is_the_contract(self):
        assert EMIT_MODES == ("stream", "macro")


class TestSplicedCompileParity:
    """The spliced stream compiler must reproduce legacy lowering exactly."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("optimize", [False, True])
    def test_spliced_matches_legacy(self, seed, optimize):
        stream = random_stream(seed)
        driver = Driver(Simulator(CFG))
        spliced = driver.compile(stream, optimize=optimize, emit="stream")
        legacy = driver.compile(stream, optimize=optimize, emit="macro")
        try:
            assert list(spliced.ops) == list(legacy.ops)
            assert spliced.reads == legacy.reads
            assert spliced.macros == legacy.macros == len(stream)
            assert spliced.source_ops == legacy.source_ops
        except AssertionError as exc:
            _dump_stream(seed, f"compile optimize={optimize}", stream, exc)
            raise

    def test_spliced_checks_mask_ranges(self):
        # The spliced path skips full stream validation (bodies are valid
        # by construction) but must still reject the out-of-range masks
        # the legacy validation pass would have caught.
        bad_warp = RInstr(
            ROp.ADD, int32, dest=0, src_a=1, src_b=2,
            warp_mask=RangeMask(0, CFG.crossbars, 1),
        )
        bad_row = RInstr(
            ROp.ADD, int32, dest=0, src_a=1, src_b=2,
            row_mask=RangeMask(0, CFG.rows, 1),
        )
        for instr in (bad_warp, bad_row):
            for emit in EMIT_MODES:
                driver = Driver(Simulator(CFG))
                with pytest.raises(CompileError):
                    driver.compile([instr], emit=emit)

    def test_compile_populates_stream_tier(self):
        driver = Driver(Simulator(CFG))
        stream = random_stream(SEEDS[0])
        first = driver.compile(stream)
        again = driver.compile(stream)
        assert again is first  # stream-tier cache hit, not a recompile
        assert driver.streams.hits == 1


class TestStreamExecutionConformance:
    """execute_stream versus the per-macro ladder, bit for bit."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_stream_mode_matches_per_macro(self, seed):
        stream = random_stream(seed)
        assert_conformant(
            seed, stream, "stream emission",
            per_macro_reference(stream, loops=3),
            stream_emission(stream, loops=3, emit_mode="stream"),
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_macro_mode_matches_per_macro(self, seed):
        stream = random_stream(seed)
        assert_conformant(
            seed, stream, "macro fallback",
            per_macro_reference(stream, loops=2),
            stream_emission(stream, loops=2, emit_mode="macro"),
        )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("engine", ["vectorized", "thunk"])
    def test_both_replay_engines(self, seed, engine):
        stream = random_stream(seed)
        assert_conformant(
            seed, stream, f"replay engine {engine}",
            per_macro_reference(stream),
            stream_emission(stream, replay_engine=engine,
                            emit_mode="stream"),
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_uncached_driver_matches(self, seed):
        # cache_size=0 cannot build plans; the fallback must still be
        # bit-identical (and attributed to the macro level).
        stream = random_stream(seed)
        candidate = stream_emission(stream, cache_size=0,
                                    emit_mode="stream")
        assert_conformant(
            seed, stream, "cache disabled",
            per_macro_reference(stream), candidate,
        )
        assert candidate[1].emit_counters["stream"] == 0
        assert candidate[1].emit_counters["macro"] == 1

    def test_plain_tuple_and_list_share_the_plan(self):
        # MacroStream equality is tuple equality: re-emitting the same
        # instructions from a plain list must hit the cached plan.
        stream = random_stream(SEEDS[0])
        sim = Simulator(CFG)
        driver = Driver(sim, emit_mode="stream")
        driver.execute_stream(stream)
        misses = driver.streams.misses
        driver.execute_stream(list(stream))
        driver.execute_stream(tuple(stream))
        assert driver.streams.misses == misses
        assert driver.emit_counters["stream"] == 3

    def test_read_response_is_last_read(self):
        write = WriteInstr(0, 0xDEAD_BEEF, RangeMask.single(1),
                           RangeMask.single(2))
        stream = [
            write,
            ReadInstr(0, 0, 0),           # reads a zeroed cell
            ReadInstr(1, 2, 0),           # the written word: must win
        ]
        for mode in EMIT_MODES:
            _, _, response = stream_emission(stream, emit_mode=mode)
            assert response == 0xDEAD_BEEF


class TestNumpyBackendConformance:
    """The numpy backend's fused run_stream versus its per-macro loop."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_run_stream_matches_execute_loop(self, seed):
        stream = random_stream(seed)
        images, stats, responses, counters = [], [], [], []
        for mode in EMIT_MODES:
            device = pim.init(
                crossbars=CFG.crossbars, rows=CFG.rows,
                backend="numpy", emit_mode=mode,
            )
            response = None
            for _ in range(2):
                response = device.execute_stream(list(stream))
            images.append(device.backend.words.copy())
            stats.append(device.backend.stats.copy())
            responses.append(response)
            counters.append(device.backend.emit_counters())
            pim.reset()
        try:
            assert responses[0] == responses[1]
            assert np.array_equal(images[0], images[1])
            assert stats[0] == stats[1]
        except AssertionError as exc:
            _dump_stream(seed, "numpy backend", stream, exc)
            raise
        assert counters[0]["stream"] == 2 and counters[0]["macro"] == 0
        assert counters[1]["macro"] == 2 and counters[1]["stream"] == 0


class _ExecuteOnlyChip:
    """A chip exposing only op-by-op execute (no program/batch transport)."""

    def __init__(self, config):
        self.config = config
        self.sim = Simulator(config)

    def execute(self, op):
        return self.sim.execute(op)


class TestFallbackLadder:
    def test_env_forces_macro_everywhere(self, monkeypatch):
        monkeypatch.setenv(EMIT_ENV, "macro")
        stream = random_stream(SEEDS[1])
        candidate = stream_emission(stream)
        assert_conformant(
            SEEDS[1], stream, "env fallback",
            per_macro_reference(stream), candidate,
        )
        assert candidate[1].emit_counters == {"stream": 0, "macro": 1}

    def test_batch_sink_with_reads_is_unsupported(self):
        # BufferSink.execute_batch has no read-response channel: a stream
        # containing reads must take the per-macro ladder — and the
        # unsupported verdict must be cached, not re-derived.
        sink = BufferSink(CFG)
        driver = Driver(sink, config=CFG, emit_mode="stream")
        stream = MacroStream([
            WriteInstr(0, 7),
            ReadInstr(0, 0, 0),
        ])
        assert driver.execute_stream(stream) == 0  # BufferSink reads as 0
        assert driver.emit_counters["macro"] == 1
        misses = driver.streams.misses
        driver.execute_stream(stream)
        assert driver.emit_counters["macro"] == 2
        assert driver.streams.misses == misses  # cached UNSUPPORTED verdict
        assert driver.streams.hits >= 1

    def test_batch_sink_without_reads_takes_batch_route(self):
        # Same word-for-word buffer contents as per-macro emission, but
        # through one fused pre-encoded block.
        stream = MacroStream([
            WriteInstr(0, 3),
            RInstr(ROp.ADD, int32, dest=1, src_a=0, src_b=0),
            RInstr(ROp.LT, int32, dest=2, src_a=1, src_b=0),
        ])
        sink_stream = BufferSink(CFG)
        fused = Driver(sink_stream, config=CFG, emit_mode="stream")
        fused.execute_stream(stream)
        assert fused.emit_counters["stream"] == 1

        sink_macro = BufferSink(CFG)
        ladder = Driver(sink_macro, config=CFG, emit_mode="macro")
        ladder.execute_stream(stream)
        assert ladder.emit_counters["macro"] == 1

        assert sink_stream.count == sink_macro.count
        assert np.array_equal(
            sink_stream.buffer[: sink_stream.count],
            sink_macro.buffer[: sink_macro.count],
        )
        assert (fused.macro_count, fused.micro_count) == (
            ladder.macro_count, ladder.micro_count
        )

    def test_execute_only_chip_falls_back(self):
        stream = random_stream(SEEDS[2])
        chip = _ExecuteOnlyChip(CFG)
        driver = Driver(chip, config=CFG, emit_mode="stream")
        driver.execute_stream(stream)
        assert driver.emit_counters == {"stream": 0, "macro": 1}
        sim_ref, _, _ = per_macro_reference(stream)
        assert np.array_equal(chip.sim.memory.words, sim_ref.memory.words)
        assert chip.sim.stats == sim_ref.stats

    def test_empty_stream_is_a_no_op(self):
        driver = Driver(Simulator(CFG), emit_mode="stream")
        assert driver.execute_stream([]) is None
        assert driver.emit_counters == {"stream": 0, "macro": 0}
        assert driver.macro_count == 0

    def test_plan_route_ladder(self):
        sim = Simulator(CFG)
        sink = BufferSink(CFG)
        assert plan_route(sim, reads=2) == "program"
        assert plan_route(sink, reads=0) == "batch"
        assert plan_route(sink, reads=1) is None
        assert plan_route(_ExecuteOnlyChip(CFG), reads=0) is None
        assert plan_route(None, reads=0) is None

    def test_build_plan_shapes(self):
        driver = Driver(Simulator(CFG))
        stream = random_stream(SEEDS[3])
        plan = build_plan(driver, stream)
        assert isinstance(plan, StreamPlan)
        assert plan.route == "program"
        assert plan.macros == len(stream)
        assert plan.reads == sum(
            1 for instr in stream if isinstance(instr, ReadInstr)
        )
        assert len(plan) == len(plan.program)
        assert build_plan(Driver(None, config=CFG), stream) is None


class TestCountersAndProfiler:
    def test_simulator_backend_emit_counters(self):
        stream = random_stream(SEEDS[4], length=6)
        device = pim.init(crossbars=CFG.crossbars, rows=CFG.rows,
                          emit_mode="stream")
        try:
            with pim.Profiler(device) as prof:
                device.execute_stream(list(stream))
                device.execute_stream(list(stream))
            assert prof.emit_counts == {"stream": 2}
            assert device.backend.emit_counters()["stream"] == 2
        finally:
            pim.reset()

    def test_profiler_reports_macro_fallback(self, monkeypatch):
        monkeypatch.setenv(EMIT_ENV, "macro")
        stream = random_stream(SEEDS[4], length=6)
        device = pim.init(crossbars=CFG.crossbars, rows=CFG.rows)
        try:
            with pim.Profiler(device) as prof:
                device.execute_stream(list(stream))
            assert prof.emit_counts == {"macro": 1}
        finally:
            pim.reset()

    def test_unsupported_sentinel_is_shared(self):
        assert UNSUPPORTED is not None
        # The sentinel is module-level state: two drivers caching the
        # same verdict compare by identity, never by (absent) equality.
        sink = BufferSink(CFG)
        stream = MacroStream([ReadInstr(0, 0, 0)])
        for _ in range(2):
            driver = Driver(sink, config=CFG, emit_mode="stream")
            driver.execute_stream(stream)
            key = ("plan", stream, "stream", driver.parallelism,
                   driver._fingerprint)
            assert driver.streams.get(key) is UNSUPPORTED
