"""Tests for the fixed-point (int32) arithmetic suite, incl. properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.dtypes import int32
from repro.isa.instructions import ROp
from repro.theory.golden import golden_rtype

from tests.conftest import int32s, rand_int32
from tests.driver.harness import Chip, GateHarness, assert_same_bits

COMMON = settings(max_examples=20, deadline=None)


def run_pair(op: ROp, a: int, b: int = None, parallelism: str = "serial"):
    """Execute one int32 op on a 1-element chip, returning the result."""
    from repro.arch.config import small_config

    chip = Chip(small_config(crossbars=1, rows=1), parallelism=parallelism)
    chip.put(0, np.array([a], dtype=np.int32), int32)
    if b is not None:
        chip.put(1, np.array([b], dtype=np.int32), int32)
        chip.run(op, int32, 2, 0, 1)
    else:
        chip.run(op, int32, 2, 0)
    return int(chip.get(2, 1, int32)[0])


class TestAddSub:
    @COMMON
    @given(a=int32s(), b=int32s())
    def test_add_wraps(self, a, b):
        expected = int(np.int32(np.int64(a) + np.int64(b)))
        assert run_pair(ROp.ADD, a, b) == expected

    @COMMON
    @given(a=int32s(), b=int32s())
    def test_sub_wraps(self, a, b):
        expected = int(np.int32(np.int64(a) - np.int64(b)))
        assert run_pair(ROp.SUB, a, b) == expected

    def test_add_aliased_dest(self):
        """dest == src falls back to the scratch-then-copy path."""
        chip = Chip()
        chip.put(0, np.array([3, -7], dtype=np.int32), int32)
        chip.run(ROp.ADD, int32, 0, 0, 0)  # x = x + x
        assert list(chip.get(0, 2, int32)) == [6, -14]

    def test_carry_chain_across_whole_word(self):
        assert run_pair(ROp.ADD, 0x7FFFFFFF, 1) == -(2**31)
        assert run_pair(ROp.ADD, -1, 1) == 0


class TestMul:
    @COMMON
    @given(a=int32s(), b=int32s())
    def test_mul_truncates_like_numpy(self, a, b):
        expected = int(np.int32((np.int64(a) * np.int64(b)) & 0xFFFFFFFF))
        assert run_pair(ROp.MUL, a, b) == expected

    def test_mul_identities(self):
        assert run_pair(ROp.MUL, 123456, 0) == 0
        assert run_pair(ROp.MUL, 123456, 1) == 123456
        assert run_pair(ROp.MUL, -5, 7) == -35


class TestDivMod:
    @COMMON
    @given(a=int32s(), b=int32s().filter(lambda x: x != 0))
    def test_div_truncates_toward_zero(self, a, b):
        if a == -(2**31) and b == -1:
            expected = -(2**31)  # wraps, consistent with the golden rule
        else:
            q = abs(a) // abs(b)
            expected = q if (a >= 0) == (b >= 0) else -q
        assert run_pair(ROp.DIV, a, b) == expected

    @COMMON
    @given(a=int32s(), b=int32s().filter(lambda x: x != 0))
    def test_mod_has_dividend_sign(self, a, b):
        if a == -(2**31) and b == -1:
            expected = 0
        else:
            r = abs(a) % abs(b)
            expected = r if a >= 0 else -r
        assert run_pair(ROp.MOD, a, b) == expected

    @pytest.mark.parametrize(
        "a,b,q,r",
        [(7, 2, 3, 1), (-7, 2, -3, -1), (7, -2, -3, 1), (-7, -2, 3, -1)],
    )
    def test_c_semantics_table(self, a, b, q, r):
        assert run_pair(ROp.DIV, a, b) == q
        assert run_pair(ROp.MOD, a, b) == r

    def test_int_min_magnitude(self):
        assert run_pair(ROp.DIV, -(2**31), 1) == -(2**31)
        assert run_pair(ROp.DIV, -(2**31), 2) == -(2**30)


class TestUnary:
    @COMMON
    @given(a=int32s())
    def test_neg_abs_sign_zero(self, a):
        assert run_pair(ROp.NEG, a) == int(np.int32(-np.int64(a) & 0xFFFFFFFF))
        expected_abs = a if a >= 0 else -a
        if a == -(2**31):
            expected_abs = -(2**31)
        assert run_pair(ROp.ABS, a) == expected_abs
        assert run_pair(ROp.SIGN, a) == (0 if a == 0 else (1 if a > 0 else -1))
        assert run_pair(ROp.ZERO, a) == int(a == 0)


class TestCompare:
    @COMMON
    @given(a=int32s(), b=int32s())
    def test_all_comparisons(self, a, b):
        assert run_pair(ROp.LT, a, b) == int(a < b)
        assert run_pair(ROp.LE, a, b) == int(a <= b)
        assert run_pair(ROp.GT, a, b) == int(a > b)
        assert run_pair(ROp.GE, a, b) == int(a >= b)
        assert run_pair(ROp.EQ, a, b) == int(a == b)
        assert run_pair(ROp.NE, a, b) == int(a != b)


class TestVectorized:
    """Whole-memory runs against the golden reference (multiple warps)."""

    @pytest.mark.parametrize(
        "op", [ROp.ADD, ROp.SUB, ROp.MUL, ROp.DIV, ROp.MOD, ROp.LT, ROp.EQ]
    )
    def test_random_vectors(self, op):
        rng = np.random.default_rng(42)
        chip = Chip()
        n = chip.capacity
        a = rand_int32(rng, n)
        b = rand_int32(rng, n)
        if op in (ROp.DIV, ROp.MOD):
            b[b == 0] = 5
        chip.put(0, a, int32)
        chip.put(1, b, int32)
        chip.run(op, int32, 2, 0, 1)
        assert_same_bits(chip.get(2, n, int32), golden_rtype(op, int32, a, b))


class TestCycleCounts:
    def test_serial_add_near_theory(self):
        """Measured micro-ops within ~10% of the 9N-gate bound (paper: 5%)."""
        from repro.arch.config import small_config
        from repro.theory.counts import serial_add_cycles

        chip = Chip(small_config(crossbars=1, rows=1), parallelism="serial")
        chip.put(0, np.array([1], np.int32), int32)
        chip.put(1, np.array([2], np.int32), int32)
        before = chip.simulator.stats.cycles
        chip.run(ROp.ADD, int32, 2, 0, 1)
        measured = chip.simulator.stats.cycles - before
        theory = serial_add_cycles(32)
        assert theory <= measured <= theory * 1.12
