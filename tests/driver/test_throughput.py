"""Tests for the driver-throughput harness (Section VI-B methodology)."""

import pytest

from repro.arch.config import small_config
from repro.driver.throughput import ThroughputResult, measure_driver_throughput
from repro.isa.dtypes import float32, int32
from repro.isa.instructions import ROp


@pytest.fixture(scope="module")
def cfg():
    return small_config(crossbars=4, rows=8)


class TestMeasurement:
    def test_counts_and_rates(self, cfg):
        result = measure_driver_throughput(cfg, ROp.ADD, int32, iterations=200)
        assert result.macro_instructions == 200
        assert result.micro_ops > 200 * 50
        assert result.micro_per_second > 0
        assert result.macro_per_second > 0

    def test_headroom_definition(self):
        result = ThroughputResult(
            macro_instructions=10, micro_ops=3_000_000, seconds=0.01,
            frequency_hz=300e6,
        )
        assert result.headroom == pytest.approx(1.0)

    def test_cache_speeds_up_generation(self, cfg):
        cached = measure_driver_throughput(
            cfg, ROp.MUL, int32, iterations=300, use_cache=True,
            unique_sequences=8,
        )
        uncached = measure_driver_throughput(
            cfg, ROp.MUL, int32, iterations=60, use_cache=False,
            unique_sequences=8,
        )
        assert cached.micro_per_second > uncached.micro_per_second * 2

    def test_float_ops_supported(self, cfg):
        result = measure_driver_throughput(cfg, ROp.ADD, float32, iterations=50)
        assert result.micro_ops > 50 * 1000

    def test_deterministic_with_seed(self, cfg):
        a = measure_driver_throughput(cfg, ROp.ADD, int32, iterations=50, seed=9)
        b = measure_driver_throughput(cfg, ROp.ADD, int32, iterations=50, seed=9)
        assert a.micro_ops == b.micro_ops

    def test_cached_driver_outpaces_chip_on_heavy_ops(self, cfg):
        """The paper's claim: the host driver is not the bottleneck.

        With the compiled/encoded sequence cache the Python driver sustains
        more micro-ops per second than the chip consumes (300M/s) for the
        multi-thousand-cycle instructions (mul, div, float ops). For the
        very short sequences (int add) the per-call Python overhead
        dominates — a documented gap vs. the paper's C++ driver, see
        EXPERIMENTS.md.
        """
        best = max(
            (
                measure_driver_throughput(
                    cfg, ROp.MUL, float32, iterations=5000, use_cache=True
                )
                for _ in range(3)
            ),
            key=lambda result: result.micro_per_second,
        )
        # The quantitative claim (headroom > 1x) is measured by
        # benchmarks/test_driver_throughput.py in isolation; this unit
        # test uses a loose bound so it stays robust when the suite runs
        # under heavy machine load.
        assert best.headroom > 0.3, (
            f"driver sustains only {best.micro_per_second:.3g} uops/s "
            f"vs chip consumption {best.frequency_hz:.3g}/s"
        )
