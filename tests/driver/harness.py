"""Shared harness: run macro-instructions on a small simulated chip."""

from __future__ import annotations

import numpy as np

from repro.arch.config import PIMConfig, small_config
from repro.arch.masks import RangeMask
from repro.driver.driver import Driver
from repro.isa.dtypes import DType, raw_to_value, value_to_raw
from repro.isa.instructions import ReadInstr, RInstr, ROp, WriteInstr
from repro.sim.simulator import Simulator


class Chip:
    """A tiny chip + driver with array-level put/get helpers."""

    def __init__(self, config: PIMConfig = None, **driver_kwargs):
        self.config = config or small_config(crossbars=4, rows=8)
        self.simulator = Simulator(self.config)
        driver_kwargs.setdefault("guard", True)
        self.driver = Driver(self.simulator, **driver_kwargs)

    @property
    def capacity(self) -> int:
        return self.config.crossbars * self.config.rows

    def put(self, reg: int, values, dtype: DType) -> None:
        values = np.asarray(values).reshape(-1)
        assert values.size <= self.capacity
        for index, value in enumerate(values):
            warp, thread = divmod(index, self.config.rows)
            self.driver.execute(
                WriteInstr(
                    reg,
                    value_to_raw(value, dtype),
                    RangeMask.single(warp),
                    RangeMask.single(thread),
                )
            )

    def get(self, reg: int, count: int, dtype: DType) -> np.ndarray:
        out = []
        for index in range(count):
            warp, thread = divmod(index, self.config.rows)
            raw = self.driver.execute(ReadInstr(warp, thread, reg))
            out.append(raw_to_value(raw, dtype))
        return np.array(out, dtype=dtype.np_dtype)

    def run(self, op: ROp, dtype: DType, dest: int, *sources: int) -> None:
        srcs = list(sources) + [None, None, None]
        self.driver.execute(
            RInstr(
                op, dtype, dest=dest,
                src_a=srcs[0], src_b=srcs[1], src_c=srcs[2],
            )
        )


class GateHarness:
    """Run GateBuilder gate sequences on a single-row simulated crossbar.

    Cells are set/read through the packed memory image directly (the
    builder's micro-ops still execute through the simulator proper).
    """

    def __init__(self, guard: bool = True):
        from repro.driver.gates import GateBuilder

        self.config = small_config(crossbars=1, rows=1)
        self.simulator = Simulator(self.config)
        self.gb = GateBuilder(self.config, self._emit, guard=guard)

    def _emit(self, op) -> None:
        self.simulator.execute(op)

    def set_cell(self, cell, value: int) -> None:
        reg, part = cell
        self.simulator.memory.set_bit(0, 0, part, reg, value)

    def get_cell(self, cell) -> int:
        reg, part = cell
        return self.simulator.memory.get_bit(0, 0, part, reg)

    def set_register(self, reg: int, word: int) -> None:
        self.simulator.memory.set_word(0, 0, reg, word & 0xFFFFFFFF)

    def get_register(self, reg: int) -> int:
        return self.simulator.memory.get_word(0, 0, reg)

    def set_bits(self, cells, value: int) -> None:
        for index, cell in enumerate(cells):
            self.set_cell(cell, (value >> index) & 1)

    def get_bits(self, cells) -> int:
        return sum(self.get_cell(cell) << i for i, cell in enumerate(cells))

    def input_bits(self, value: int, width: int):
        """Allocate a scratch bit vector holding ``value``."""
        cells = self.gb.alloc_bits(width)
        self.set_bits(cells, value)
        return cells

    @property
    def cycles(self) -> int:
        return self.simulator.stats.cycles


def assert_same_bits(got: np.ndarray, want: np.ndarray) -> None:
    """Bit-exact comparison (distinguishes ±0, unlike ==)."""
    got32 = np.asarray(got).view(np.uint32)
    want32 = np.asarray(want).view(np.uint32)
    mismatch = got32 != want32
    assert not mismatch.any(), (
        f"bit mismatch at {np.where(mismatch)[0][:10]}: "
        f"got {np.asarray(got)[mismatch][:10]} want {np.asarray(want)[mismatch][:10]}"
    )
