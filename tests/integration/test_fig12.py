"""The paper's end-to-end example program (Figure 12) and the interactive
session from the artifact appendix (Section G)."""

import numpy as np
import pytest

import repro.pim as pim


def my_func(a: pim.Tensor, b: pim.Tensor):
    """Parallel multiplication and addition (Figure 12's myFunc)."""
    return a * b + a


class TestFigure12:
    def test_program(self, device):
        x = pim.zeros(64, dtype=pim.float32)
        y = pim.zeros(64, dtype=pim.float32)
        x[4], y[4] = 8.0, 0.5
        x[5], y[5] = 20.0, 1.0
        x[8], y[8] = 10.0, 1.0
        z = my_func(x, y)
        # 32.0 = 8 * 1.5 + 10 * 2  (even indices only)
        assert z[::2].sum() == 32.0

    def test_function_receives_references(self, device):
        """Tensors pass by reference like numpy.array."""
        x = pim.zeros(8, dtype=pim.float32)
        y = pim.ones(8, dtype=pim.float32)
        z = my_func(x, y)
        assert z is not x
        assert (z.to_numpy() == 0).all()


class TestInteractiveSession:
    """The artifact appendix's interactive walkthrough (Section G)."""

    def test_session(self, device):
        x = pim.zeros(8, dtype=pim.float32)
        assert repr(x).startswith("Tensor(shape=(8,), dtype=float32)")
        x[2] = 2.5
        x[3] = 1.25
        x[4] = 2.25
        assert x.to_numpy().tolist() == [0.0, 0.0, 2.5, 1.25, 2.25, 0.0, 0.0, 0.0]
        view = x[::2]
        assert "TensorView" in repr(view)
        assert view.to_numpy().tolist() == [0.0, 2.5, 2.25, 0.0]
        assert view.sum() == 4.75
        assert view.sort().to_numpy().tolist() == [0.0, 0.0, 2.25, 2.5]
