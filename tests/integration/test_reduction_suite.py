"""The paper's tests/reduction.py equivalent: summation and product
reduction over random int/float tensors, intra- and inter-crossbar."""

import numpy as np
import pytest

import repro.pim as pim

from tests.conftest import rand_int32


class TestReductionSuite:
    @pytest.mark.parametrize("n", [8, 15, 31, 64])
    def test_int_sum(self, device, n):
        rng = np.random.default_rng(n)
        data = rng.integers(-(2**20), 2**20, n).astype(np.int32)
        tensor = pim.from_numpy(data)
        with pim.Profiler() as prof:
            result = tensor.sum()
        assert result == data.sum()
        assert prof.cycles > 0

    def test_int_sum_wraps_like_int32(self, device):
        data = np.full(16, 2**28, dtype=np.int32)
        assert pim.from_numpy(data).sum() == int(
            np.int32(np.int64(16) * 2**28 & 0xFFFFFFFF)
        )

    def test_float_sum_close_to_numpy(self, device):
        rng = np.random.default_rng(3)
        data = rng.normal(size=48).astype(np.float32)
        got = pim.from_numpy(data).sum()
        assert abs(got - data.sum(dtype=np.float64)) < 1e-4

    def test_int_prod(self, device):
        data = np.array([2, 3, 5, 7, 1, 1, 1, 1], dtype=np.int32)
        assert pim.from_numpy(data).prod() == 210

    def test_float_mult_reduce(self, device):
        rng = np.random.default_rng(4)
        data = rng.uniform(0.9, 1.1, 32).astype(np.float32)
        got = pim.from_numpy(data).prod()
        assert abs(got - np.prod(data, dtype=np.float64)) < 1e-4

    def test_inter_crossbar_reduction_uses_moves(self, big_device):
        """Reducing across warps must issue inter-warp move operations."""
        n = big_device.rows * 8
        data = np.arange(n, dtype=np.int32)
        tensor = pim.from_numpy(data)
        before = big_device.stats_snapshot()
        result = tensor.sum()
        delta = big_device.simulator.stats.diff(before)
        assert result == data.sum()
        assert delta.op_counts.get("move", 0) > 0

    def test_view_reduction_even_odd(self, device):
        """The paper's tensor-view reduction: z[::2].sum()."""
        data = np.arange(48, dtype=np.int32)
        z = pim.from_numpy(data)
        assert z[::2].sum() == data[::2].sum()
        assert z[1::2].sum() == data[1::2].sum()

    def test_logarithmic_round_count(self, device):
        """The number of vector-add rounds is ceil(log2 n)."""
        from repro.isa.instructions import ROp

        n = 64
        data = np.ones(n, dtype=np.int32)
        tensor = pim.from_numpy(data)
        before = device.driver.macro_count
        tensor.sum()
        # Rounds: each issues >=1 R-instr; reads/moves add more macros,
        # but the add instructions specifically number ceil(log2(n)).
        # Count adds by lowering stats: each round adds one RInstr per
        # segment and the working tensor spans 4 warps -> <= 2 segments.
        macros = device.driver.macro_count - before
        assert macros >= int(np.ceil(np.log2(n)))
