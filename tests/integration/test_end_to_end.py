"""Cross-layer integration: ISA-path loading, hybrid workloads, profiling
consistency between the library and the simulator."""

import numpy as np
import pytest

import repro.pim as pim
from repro.theory.counts import gate_cycles, overhead_cycles


class TestInstructionPathOnly:
    def test_full_isa_roundtrip(self, device):
        """Load via genuine write instructions, compute, read back via
        genuine read instructions — no DMA anywhere."""
        data = np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=np.int32)
        x = pim.from_numpy(data, via="isa")
        y = pim.from_numpy(data[::-1].copy(), via="isa")
        z = x + y
        got = np.array([z[i] for i in range(8)], dtype=np.int32)
        np.testing.assert_array_equal(got, data + data[::-1])


class TestHybridWorkloads:
    def test_saxpy(self, device):
        rng = np.random.default_rng(0)
        x = rng.normal(size=32).astype(np.float32)
        y = rng.normal(size=32).astype(np.float32)
        alpha = np.float32(2.5)
        got = (pim.from_numpy(x) * float(alpha) + pim.from_numpy(y)).to_numpy()
        want = (x * alpha + y).astype(np.float32)
        np.testing.assert_array_equal(got.view(np.uint32), want.view(np.uint32))

    def test_dot_product(self, device):
        a = np.arange(16, dtype=np.int32)
        b = np.arange(16, dtype=np.int32)[::-1].copy()
        got = (pim.from_numpy(a) * pim.from_numpy(b)).sum()
        assert got == int(np.dot(a.astype(np.int64), b) & 0xFFFFFFFF)

    def test_clamp_with_where(self, device):
        data = np.array([-5, 3, 12, -1, 8, 0], dtype=np.int32)
        x = pim.from_numpy(data)
        clamped = pim.where(x < 0, 0, pim.where(x > 10, 10, x))
        np.testing.assert_array_equal(clamped.to_numpy(), np.clip(data, 0, 10))

    def test_conditional_accumulate(self, device):
        data = np.arange(-8, 8, dtype=np.int32)
        x = pim.from_numpy(data)
        positives = pim.where(x > 0, x, pim.zeros(16, dtype=pim.int32))
        assert positives.sum() == data[data > 0].sum()

    def test_polynomial_evaluation(self, device):
        coeffs = [1.0, -2.0, 0.5]  # 0.5 x^2 - 2 x + 1 via Horner
        data = np.linspace(-1, 1, 16).astype(np.float32)
        x = pim.from_numpy(data)
        acc = pim.full(16, coeffs[2], dtype=pim.float32)
        for c in reversed(coeffs[:2]):
            acc = acc * x + c
        want = data.copy()
        want = (0.5 * data * data).astype(np.float32)
        want = np.float32(0.5) * data
        # Recompute in the same association order as Horner on float32:
        acc_np = np.full(16, np.float32(coeffs[2]), dtype=np.float32)
        for c in reversed(coeffs[:2]):
            acc_np = (acc_np * data + np.float32(c)).astype(np.float32)
        np.testing.assert_array_equal(
            acc.to_numpy().view(np.uint32), acc_np.view(np.uint32)
        )


class TestProfilingConsistency:
    def test_driver_and_simulator_agree(self, device):
        x = pim.from_numpy(np.arange(8, dtype=np.int32))
        before_driver = device.driver.micro_count
        before_sim = device.simulator.stats.micro_ops
        _ = x * x
        driver_delta = device.driver.micro_count - before_driver
        sim_delta = device.simulator.stats.micro_ops - before_sim
        assert driver_delta == sim_delta

    def test_cycle_breakdown_sums_to_total(self, device):
        x = pim.from_numpy(np.arange(8, dtype=np.float32).astype(np.float32))
        with pim.Profiler() as prof:
            _ = x + x
        assert gate_cycles(prof.stats) + overhead_cycles(prof.stats) == prof.cycles

    def test_framework_overhead_is_small(self, device):
        """The measured-vs-theoretical gap stays within a modest factor
        (the paper reports 5% average / 16% worst case for its suite)."""
        x = pim.from_numpy(np.arange(8, dtype=np.int32))
        with pim.Profiler() as prof:
            _ = x * x
        overhead = overhead_cycles(prof.stats) / prof.cycles
        assert overhead < 0.25
