"""Failure injection: the stack must *detect or exhibit* the right failure
when its invariants are violated.

These tests prove the model is load-bearing: skipping an INIT1 really
corrupts stateful logic, masks really isolate rows, scratch exhaustion and
memory exhaustion raise instead of corrupting, and invalid micro-op
streams are rejected at the right layer.
"""

import numpy as np
import pytest

import repro.pim as pim
from repro.arch.config import PIMConfig, small_config
from repro.arch.masks import RangeMask
from repro.arch.micro_ops import (
    CrossbarMaskOp,
    GateType,
    LogicHOp,
    MoveOp,
    ReadOp,
    RowMaskOp,
    WriteOp,
)
from repro.driver.driver import Driver
from repro.driver.gates import GateBuilder, ScratchOverflow
from repro.isa.dtypes import int32
from repro.isa.instructions import RInstr, ROp
from repro.pim.malloc import PIMMemoryError
from repro.sim.simulator import SimulationError, Simulator


class TestStatefulLogicInjection:
    def test_dropped_init_corrupts_addition(self):
        """Filtering out one INIT1 from a lowered add flips the result —
        evidence that the simulator enforces stateful-logic semantics
        rather than computing gates functionally."""
        cfg = small_config(crossbars=1, rows=1)
        driver_sim = Simulator(cfg)
        driver = Driver(driver_sim, parallelism="serial", cache_size=0)
        ops = driver.lower(RInstr(ROp.ADD, int32, dest=2, src_a=0, src_b=1))

        def run(op_stream):
            sim = Simulator(cfg)
            sim.execute(CrossbarMaskOp(0, 0, 1))
            sim.execute(RowMaskOp(0, 0, 1))
            sim.execute(WriteOp(0, 21))
            sim.execute(WriteOp(1, 21))
            sim.execute_all(op_stream)
            sim.execute(CrossbarMaskOp(0, 0, 1))
            sim.execute(RowMaskOp(0, 0, 1))
            return sim.execute(ReadOp(2))

        assert run(ops) == 42
        dest_init = next(
            i for i, op in enumerate(ops)
            if isinstance(op, LogicHOp)
            and op.gate == GateType.INIT1
            and op.out == 2
            and op.p_end - op.p_out == 31
        )
        # Drop the destination-column initialization: sum bits can then
        # never be pulled to 1 and the result collapses.
        corrupted = list(ops)
        del corrupted[dest_init]
        assert run(corrupted) != 42

    def test_reordered_gates_corrupt(self):
        cfg = small_config(crossbars=1, rows=1)
        sim = Simulator(cfg)
        driver = Driver(sim, parallelism="serial", cache_size=0)
        ops = driver.lower(RInstr(ROp.ADD, int32, dest=2, src_a=0, src_b=1))
        gate_positions = [
            i for i, op in enumerate(ops)
            if isinstance(op, LogicHOp) and op.gate == GateType.NOR
        ]
        swapped = list(ops)
        a, b = gate_positions[2], gate_positions[10]
        swapped[a], swapped[b] = swapped[b], swapped[a]

        sim.execute(CrossbarMaskOp(0, 0, 1))
        sim.execute(RowMaskOp(0, 0, 1))
        sim.execute(WriteOp(0, 12345))
        sim.execute(WriteOp(1, 54321))
        sim.execute_all(swapped)
        sim.execute(CrossbarMaskOp(0, 0, 1))
        sim.execute(RowMaskOp(0, 0, 1))
        assert sim.execute(ReadOp(2)) != 66666


class TestResourceExhaustion:
    def test_scratch_overflow_raises_not_corrupts(self):
        cfg = small_config(crossbars=1, rows=1)
        sim = Simulator(cfg)
        gb = GateBuilder(cfg, sim.execute)
        with pytest.raises(ScratchOverflow):
            for _ in range(10_000):
                gb.alloc()

    def test_memory_exhaustion_raises(self):
        device = pim.init(crossbars=4, rows=16)
        tensors = []
        with pytest.raises(PIMMemoryError):
            for _ in range(10_000):
                tensors.append(pim.zeros(16, dtype=pim.int32))
        pim.reset()

    def test_group_allocation_failure_message(self):
        device = pim.init(crossbars=4, rows=16)
        try:
            with pytest.raises(PIMMemoryError):
                device.allocator.allocate_group(16, 100)
        finally:
            pim.reset()


class TestInvalidStreams:
    @pytest.fixture
    def sim(self):
        return Simulator(small_config(crossbars=4, rows=4))

    def test_out_of_range_register(self, sim):
        sim.execute(CrossbarMaskOp(0, 0, 1))
        with pytest.raises(SimulationError):
            sim.execute(WriteOp(99, 0))

    def test_intersecting_partition_sections(self, sim):
        with pytest.raises(Exception):
            sim.execute(
                LogicHOp(GateType.NOR, 0, 1, 2, p_a=0, p_b=1, p_out=2,
                         p_end=30, p_step=2)
            )

    def test_move_collision_rejected_before_mutation(self, sim):
        sim.execute(CrossbarMaskOp(0, 0, 1))
        sim.execute(RowMaskOp(0, 0, 1))
        sim.execute(WriteOp(0, 7))
        snapshot = sim.memory.words.copy()
        sim.execute(CrossbarMaskOp(0, 2, 2))
        with pytest.raises(SimulationError):
            sim.execute(MoveOp(1, 0, 0, 0, 0))  # bad step (2 not power of 4)
        assert (sim.memory.words == snapshot).all()

    def test_read_with_wide_mask_rejected(self, sim):
        sim.execute(CrossbarMaskOp(0, 3, 1))
        sim.execute(RowMaskOp(0, 0, 1))
        with pytest.raises(SimulationError):
            sim.execute(ReadOp(0))


class TestMaskIsolation:
    def test_unmasked_rows_survive_whole_program(self):
        """Run a full float multiply on odd rows only; even rows keep
        their bit patterns through thousands of micro-ops."""
        cfg = small_config(crossbars=1, rows=8)
        sim = Simulator(cfg)
        driver = Driver(sim)
        sentinel = 0xA5A5A5A5
        for row in range(0, 8, 2):
            sim.memory.set_word(0, row, 2, sentinel)
        driver.execute(
            RInstr(
                ROp.MUL, int32, dest=2, src_a=0, src_b=1,
                row_mask=RangeMask(1, 7, 2),
            )
        )
        for row in range(0, 8, 2):
            assert sim.memory.get_word(0, row, 2) == sentinel

    def test_unmasked_crossbars_survive(self):
        cfg = small_config(crossbars=4, rows=4)
        sim = Simulator(cfg)
        driver = Driver(sim)
        sim.memory.set_word(3, 0, 2, 0xDEADBEEF)
        driver.execute(
            RInstr(
                ROp.ADD, int32, dest=2, src_a=0, src_b=1,
                warp_mask=RangeMask(0, 2, 1),
            )
        )
        assert sim.memory.get_word(3, 0, 2) == 0xDEADBEEF
