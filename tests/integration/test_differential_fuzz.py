"""Differential fuzzing of the graph optimizer and execution backends.

A seeded generator builds random tensor programs (elementwise int/float
arithmetic, comparisons, ``where`` with tensor and scalar branches,
strided views, scalar writes, mid-trace frees, and a trailing
reduction), then every program is executed:

- eagerly on the bit-accurate simulator backend,
- eagerly on the NumPy functional backend,
- under ``pim.compile`` at every ``opt_level`` (0..3) on both backends,
  capture and replay — on the simulator backend with *both* replay
  engines (the vectorized super-step engine and the per-op thunk
  engine, see :mod:`repro.sim.replay`);

and cross-checked against a NumPy *mirror* built from
``repro.theory.golden`` (the paper's trusted-CPU reference semantics).
Assertions: every execution's outputs — tensors (raw bits), the reduced
scalar, and the final contents of (possibly mutated) argument tensors —
are bit-identical to the mirror, profiled cycle totals match between the
two backends at every level, level-0 replay is cycle-exact with eager
execution, and the two simulator replay engines leave bit-identical
memory images with identical ``SimStats`` at every level.

Each case's captured macro-instruction stream additionally runs through
the whole-stream emission compiler (:mod:`repro.driver.stream`): the
spliced ``Driver.compile`` lowering must match the legacy per-macro
lowering op for op (at both ``optimize`` flags), and whole-stream
emission (``execute_stream``) must leave the same memory image, the same
``SimStats``, and the same read response as the per-macro fallback on
both backends.

Seeds are pinned so failures reproduce; CI's fuzz job rotates them via
``REPRO_FUZZ_SEEDS`` (space/comma-separated ints). On failure the
offending program descriptor is dumped to ``fuzz_artifacts/`` (override
with ``REPRO_FUZZ_ARTIFACT_DIR``) so the trace can be uploaded and
replayed offline.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np
import pytest

import repro.pim as pim
from repro.isa.dtypes import DType, float32, int32
from repro.isa.instructions import ROp
from repro.theory.golden import golden_rtype

CROSSBARS, ROWS = 4, 8
N = 16  # base vector length (spans two warps at 8 rows)

#: Deterministic default seeds — the tier-1 smoke set.
PINNED_SEEDS = [11, 1729, 40961, 65537, 99991]

_BIN_INT = ["add", "sub", "mul", "div", "mod", "and", "or", "xor"]
_BIN_FLOAT = ["add", "sub", "mul"]
_CMP = ["lt", "le", "gt", "ge", "eq", "ne"]
_ROPS = {
    "add": ROp.ADD, "sub": ROp.SUB, "mul": ROp.MUL, "div": ROp.DIV,
    "mod": ROp.MOD, "and": ROp.BIT_AND, "or": ROp.BIT_OR, "xor": ROp.BIT_XOR,
    "neg": ROp.NEG, "abs": ROp.ABS,
    "lt": ROp.LT, "le": ROp.LE, "gt": ROp.GT, "ge": ROp.GE,
    "eq": ROp.EQ, "ne": ROp.NE,
}
_SLICES = [slice(0, None, 2), slice(1, None, 2)]


def _seeds() -> List[int]:
    env = os.environ.get("REPRO_FUZZ_SEEDS", "").replace(",", " ").split()
    return [int(token) for token in env] if env else list(PINNED_SEEDS)


def _artifact_dir() -> str:
    return os.environ.get(
        "REPRO_FUZZ_ARTIFACT_DIR",
        os.path.join(os.path.dirname(__file__), "..", "..", "fuzz_artifacts"),
    )


def _safe_float(values: np.ndarray) -> bool:
    """True when every word is a normal float32 or a signed zero."""
    bits = np.ascontiguousarray(values).view(np.uint32)
    exponent = bits & np.uint32(0x7F800000)
    if (exponent == 0x7F800000).any():
        return False  # Inf/NaN
    return bool(((exponent != 0) | ((bits & np.uint32(0x7FFFFFFF)) == 0)).all())


# ----------------------------------------------------------------------
# The mirror: golden-semantics NumPy evaluation of a program descriptor
# ----------------------------------------------------------------------
def _mirror_bin(op: str, dtype: DType, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return golden_rtype(_ROPS[op], dtype, a, b)


def _mirror_sum(values: np.ndarray, dtype: DType) -> float:
    """Replicate the library's halving reduction order exactly."""
    work = values.copy()
    n = len(work)
    while n > 1:
        half = n // 2
        keep = n - half
        work[:half] = golden_rtype(ROp.ADD, dtype, work[:half], work[keep:n])
        n = keep
    return work[0].item()


class Mirror:
    """Golden-reference pools; also the generator's validity oracle."""

    def __init__(self, int_inputs, float_inputs):
        self.pools: Dict[str, List[np.ndarray]] = {
            "int": [arr.copy() for arr in int_inputs],
            "float": [arr.copy() for arr in float_inputs],
            "cond": [],
        }
        self.scalar: Optional[float] = None

    def dtype(self, pool: str) -> DType:
        return float32 if pool == "float" else int32

    def apply(self, step: Tuple) -> None:
        kind = step[0]
        pools = self.pools
        if kind == "bin":
            _, pool, op, i, j = step
            pools[pool].append(
                _mirror_bin(op, self.dtype(pool), pools[pool][i], pools[pool][j])
            )
        elif kind == "scalar_bin":
            _, pool, op, i, value = step
            a = pools[pool][i]
            b = np.full(len(a), value, dtype=a.dtype)
            pools[pool].append(_mirror_bin(op, self.dtype(pool), a, b))
        elif kind == "unary":
            _, pool, op, i = step
            a = pools[pool][i]
            pools[pool].append(golden_rtype(_ROPS[op], self.dtype(pool), a))
        elif kind == "cmp":
            _, pool, op, i, j = step
            result = _mirror_bin(op, self.dtype(pool), pools[pool][i], pools[pool][j])
            pools["cond"].append(result.view(np.int32).copy())
        elif kind == "where":
            _, pool, c, i, j = step
            cond = pools["cond"][c]
            pools[pool].append(
                np.where(cond != 0, pools[pool][i], pools[pool][j])
            )
        elif kind == "where_scalar":
            _, pool, c, low, high = step
            cond = pools["cond"][c]
            np_dtype = self.dtype(pool).np_dtype
            pools[pool].append(
                np.where(cond != 0, np_dtype(low), np_dtype(high)).astype(np_dtype)
            )
        elif kind == "view_bin":
            _, pool, op, i, si, j, sj = step
            a = pools[pool][i][_SLICES[si]]
            b = pools[pool][j][_SLICES[sj]]
            pools[pool].append(_mirror_bin(op, self.dtype(pool), a, b))
        elif kind == "setitem":
            _, pool, i, index, value = step
            pools[pool][i] = pools[pool][i].copy()
            pools[pool][i][index] = value
        elif kind == "drop":
            _, pool, i = step
            del pools[pool][i]
        elif kind == "sum":
            _, pool, i = step
            self.scalar = _mirror_sum(pools[pool][i], self.dtype(pool))
        else:  # pragma: no cover - generator bug
            raise AssertionError(f"unknown step {step!r}")


# ----------------------------------------------------------------------
# The PIM executor of the same descriptor
# ----------------------------------------------------------------------
def make_program(desc: List[Tuple]):
    """A traced function executing ``desc`` on its argument tensors."""

    def program(ia, ib, fa, fb):
        pools = {"int": [ia, ib], "float": [fa, fb], "cond": []}
        scalar = None
        for step in desc:
            kind = step[0]
            if kind == "bin":
                _, pool, op, i, j = step
                pools[pool].append(_pim_bin(op, pools[pool][i], pools[pool][j]))
            elif kind == "scalar_bin":
                _, pool, op, i, value = step
                pools[pool].append(_pim_bin(op, pools[pool][i], value))
            elif kind == "unary":
                _, pool, op, i = step
                a = pools[pool][i]
                pools[pool].append(-a if op == "neg" else abs(a))
            elif kind == "cmp":
                _, pool, op, i, j = step
                pools["cond"].append(
                    _pim_bin(op, pools[pool][i], pools[pool][j])
                )
            elif kind == "where":
                _, pool, c, i, j = step
                pools[pool].append(
                    pim.where(pools["cond"][c], pools[pool][i], pools[pool][j])
                )
            elif kind == "where_scalar":
                _, pool, c, low, high = step
                pools[pool].append(pim.where(pools["cond"][c], low, high))
            elif kind == "view_bin":
                _, pool, op, i, si, j, sj = step
                a = pools[pool][i][_SLICES[si]]
                b = pools[pool][j][_SLICES[sj]]
                pools[pool].append(_pim_bin(op, a, b))
            elif kind == "setitem":
                _, pool, i, index, value = step
                pools[pool][i][index] = value
            elif kind == "drop":
                _, pool, i = step
                del pools[pool][i]
            elif kind == "sum":
                _, pool, i = step
                scalar = pools[pool][i].sum()
        # Everything still alive is an output (dropped tensors are the
        # dead temporaries the optimizer may eliminate). Inputs are
        # excluded: their final contents are checked via the arguments.
        outputs = tuple(pools["int"][2:]) + tuple(pools["float"][2:]) + tuple(
            pools["cond"]
        )
        return outputs, scalar

    return program


def _pim_bin(op: str, a, b):
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        return a / b
    if op == "mod":
        return a % b
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "lt":
        return a < b
    if op == "le":
        return a <= b
    if op == "gt":
        return a > b
    if op == "ge":
        return a >= b
    if op == "eq":
        return a == b
    if op == "ne":
        return a != b
    raise AssertionError(f"unknown op {op!r}")


# ----------------------------------------------------------------------
# Program generation (mirror-validated, deterministic per seed)
# ----------------------------------------------------------------------
def build_case(seed: int, steps: int = 9):
    rng = np.random.default_rng(seed)
    int_inputs = [
        rng.integers(-50, 50, N).astype(np.int32) for _ in range(2)
    ]
    float_inputs = []
    for _ in range(2):
        sign = rng.integers(0, 2, N).astype(np.uint32) << 31
        exponent = rng.integers(121, 134, N).astype(np.uint32) << 23
        mantissa = rng.integers(0, 1 << 23, N).astype(np.uint32)
        float_inputs.append((sign | exponent | mantissa).view(np.float32))

    mirror = Mirror(int_inputs, float_inputs)
    desc: List[Tuple] = []
    attempts = 0
    while len(desc) < steps and attempts < steps * 20:
        attempts += 1
        step = _propose(rng, mirror)
        if step is None:
            continue
        probe = Mirror([], [])
        probe.pools = {k: list(v) for k, v in mirror.pools.items()}
        try:
            probe.apply(step)
        except Exception:
            continue
        new = _new_values(mirror, probe, step)
        if any(
            arr.dtype == np.float32 and not _safe_float(arr) for arr in new
        ):
            continue
        mirror.pools = probe.pools
        desc.append(step)
    if rng.random() < 0.8:
        pool = "float" if rng.random() < 0.5 else "int"
        candidates = [
            i for i, arr in enumerate(mirror.pools[pool]) if len(arr) == N
        ]
        if candidates:
            i = int(rng.choice(candidates))
            if pool == "int" or _sum_is_safe(mirror.pools[pool][i]):
                step = ("sum", pool, i)
                mirror.apply(step)
                desc.append(step)
    return desc, int_inputs, float_inputs, mirror


def _sum_is_safe(values: np.ndarray) -> bool:
    work = values.copy()
    n = len(work)
    while n > 1:
        half = n // 2
        keep = n - half
        with np.errstate(all="ignore"):
            work[:half] = (work[:half] + work[keep:n]).astype(np.float32)
        if not _safe_float(work[:half]):
            return False
        n = keep
    return True


def _new_values(old: Mirror, new: Mirror, step) -> List[np.ndarray]:
    grown = []
    for pool in ("int", "float", "cond"):
        grown.extend(new.pools[pool][len(old.pools[pool]):])
    if step[0] == "setitem":
        grown.append(new.pools[step[1]][step[2]])
    return grown


def _pick(rng, mirror: Mirror, pool: str, length: int = N) -> Optional[int]:
    candidates = [
        i for i, arr in enumerate(mirror.pools[pool]) if len(arr) == length
    ]
    if not candidates:
        return None
    return int(rng.choice(candidates))


def _propose(rng, mirror: Mirror) -> Optional[Tuple]:
    pool = "float" if rng.random() < 0.5 else "int"
    roll = rng.random()
    if roll < 0.25:
        ops = _BIN_FLOAT if pool == "float" else _BIN_INT
        op = str(rng.choice(ops))
        i, j = _pick(rng, mirror, pool), _pick(rng, mirror, pool)
        if i is None or j is None:
            return None
        if op in ("div", "mod") and (mirror.pools[pool][j] == 0).any():
            return None
        return ("bin", pool, op, i, j)
    if roll < 0.33:
        op = str(rng.choice(_BIN_FLOAT if pool == "float" else _BIN_INT[:3]))
        i = _pick(rng, mirror, pool)
        if i is None:
            return None
        value = float(rng.integers(1, 5)) if pool == "float" else int(
            rng.integers(1, 9)
        )
        return ("scalar_bin", pool, op, i, value)
    if roll < 0.40:
        i = _pick(rng, mirror, pool)
        if i is None:
            return None
        return ("unary", pool, str(rng.choice(["neg", "abs"])), i)
    if roll < 0.54:
        i, j = _pick(rng, mirror, pool), _pick(rng, mirror, pool)
        if i is None or j is None:
            return None
        return ("cmp", pool, str(rng.choice(_CMP)), i, j)
    if roll < 0.72:
        conds = [i for i, c in enumerate(mirror.pools["cond"]) if len(c) == N]
        if not conds:
            return None
        c = int(rng.choice(conds))
        if rng.random() < 0.5:
            i, j = _pick(rng, mirror, pool), _pick(rng, mirror, pool)
            if i is None or j is None:
                return None
            return ("where", pool, c, i, j)
        low, high = (
            (float(rng.integers(-3, 4)), float(rng.integers(-3, 4)))
            if pool == "float"
            else (int(rng.integers(-3, 4)), int(rng.integers(-3, 4)))
        )
        return ("where_scalar", pool, c, low, high)
    if roll < 0.82:
        op = str(rng.choice(_BIN_FLOAT if pool == "float" else _BIN_INT[:3]))
        i, j = _pick(rng, mirror, pool), _pick(rng, mirror, pool)
        if i is None or j is None:
            return None
        si, sj = int(rng.integers(0, 2)), int(rng.integers(0, 2))
        return ("view_bin", pool, op, i, si, j, sj)
    if roll < 0.90:
        i = _pick(rng, mirror, pool)
        if i is None:
            return None
        index = int(rng.integers(0, N))
        value = float(rng.integers(-4, 5)) if pool == "float" else int(
            rng.integers(-20, 21)
        )
        return ("setitem", pool, i, index, value)
    if len(mirror.pools[pool]) > 2:
        # Never drop an input (indices 0/1): they are checked as
        # arguments; later pool indices are fair game (dead temporaries).
        i = int(rng.integers(2, len(mirror.pools[pool])))
        return ("drop", pool, i)
    return None


# ----------------------------------------------------------------------
# Execution / checking
# ----------------------------------------------------------------------
def _fresh_inputs(int_inputs, float_inputs):
    tensors = [pim.from_numpy(arr) for arr in int_inputs]
    tensors += [pim.from_numpy(arr) for arr in float_inputs]
    return tensors


def _reload(tensors, int_inputs, float_inputs):
    device = pim.default_device()
    for tensor, host in zip(tensors, int_inputs + float_inputs):
        device.load_array(tensor.slot, host, tensor.dtype)


def _bits(array: np.ndarray) -> List[int]:
    return np.ascontiguousarray(array).view(np.uint32).tolist()


def _check_outputs(outputs, scalar, tensors, mirror: Mirror, context: str):
    expected = (
        mirror.pools["int"][2:] + mirror.pools["float"][2:] + mirror.pools["cond"]
    )
    assert len(outputs) == len(expected), context
    for got, want in zip(outputs, expected):
        assert _bits(got.to_numpy()) == _bits(want), context
    if mirror.scalar is None:
        assert scalar is None, context
    else:
        got = float(scalar)
        want = float(mirror.scalar)
        assert np.float32(got).view(np.uint32) == np.float32(want).view(
            np.uint32
        ), context
    finals = mirror.pools["int"][:2] + mirror.pools["float"][:2]
    for tensor, want in zip(tensors, finals):
        assert _bits(tensor.to_numpy()) == _bits(want), f"{context} (argument)"


def _run_case(seed: int):
    desc, int_inputs, float_inputs, mirror = build_case(seed)
    program = make_program(desc)

    # Eager references on both backends ---------------------------------
    eager_cycles = {}
    for backend in ("simulator", "numpy"):
        device = pim.init(crossbars=CROSSBARS, rows=ROWS, backend=backend)
        tensors = _fresh_inputs(int_inputs, float_inputs)
        before = device.stats_snapshot()
        outputs, scalar = program(*tensors)
        eager_cycles[backend] = device.backend.stats.diff(before).cycles
        _check_outputs(outputs, scalar, tensors, mirror,
                       f"seed={seed} eager {backend}")
        pim.reset()
    assert eager_cycles["simulator"] == eager_cycles["numpy"], f"seed={seed}"

    _check_stream_lowering(seed, program, int_inputs, float_inputs)
    _check_pooled(seed, program, int_inputs, float_inputs, mirror)

    # Compiled at every opt_level on both backends — the simulator
    # backend additionally under both replay engines ---------------------
    replay_cycles = {}
    engine_state = {}
    for backend in ("simulator", "numpy"):
        engines = ("vectorized", "thunk") if backend == "simulator" else (None,)
        for level in pim.OPT_LEVELS:
            for engine in engines:
                backend_kwargs = {"replay_engine": engine} if engine else {}
                device = pim.init(
                    crossbars=CROSSBARS, rows=ROWS, backend=backend,
                    **backend_kwargs,
                )
                tensors = _fresh_inputs(int_inputs, float_inputs)
                func = pim.compile(
                    lambda *args: program(*args), opt_level=level, cache_size=2
                )
                context = f"seed={seed} {backend} O{level}" + (
                    f" {engine}" if engine else ""
                )
                outputs, scalar = func(*tensors)  # capture
                _check_outputs(
                    outputs, scalar, tensors, mirror, context + " capture"
                )
                for round_ in range(2):  # cached replays
                    _reload(tensors, int_inputs, float_inputs)
                    before = device.stats_snapshot()
                    outputs, scalar = func(*tensors)
                    delta = device.backend.stats.diff(before)
                    _check_outputs(
                        outputs, scalar, tensors, mirror,
                        f"{context} replay {round_}",
                    )
                assert func.captures == 1, context
                if engine is not None:
                    engine_state[(level, engine)] = (
                        device.backend.words.copy(), delta
                    )
                if engine != "thunk":
                    replay_cycles[(backend, level)] = delta.cycles
                pim.reset()

    # The two simulator replay engines must be indistinguishable: same
    # final memory image, same per-replay SimStats, at every level.
    for level in pim.OPT_LEVELS:
        words_v, stats_v = engine_state[(level, "vectorized")]
        words_t, stats_t = engine_state[(level, "thunk")]
        assert np.array_equal(words_v, words_t), (
            f"seed={seed} O{level}: replay-engine memory images diverge"
        )
        assert stats_v == stats_t, (
            f"seed={seed} O{level}: replay-engine stats diverge"
        )

    for level in pim.OPT_LEVELS:
        assert (
            replay_cycles[("simulator", level)] == replay_cycles[("numpy", level)]
        ), f"seed={seed} O{level}: backend cycle totals diverge"
    assert replay_cycles[("simulator", 0)] == eager_cycles["simulator"], (
        f"seed={seed}: level-0 replay is not cycle-exact with eager mode"
    )
    for level in (2, 3):
        assert (
            replay_cycles[("simulator", level)]
            <= replay_cycles[("simulator", 0)]
        ), f"seed={seed} O{level}: optimizer made the program slower"


def _check_stream_lowering(seed, program, int_inputs, float_inputs):
    """Differential check of the whole-stream emission compiler.

    Uses the case's captured macro-instruction stream (the O0 graph) as
    fuzz input for :mod:`repro.driver.stream`: spliced compilation must
    match legacy lowering op for op, and ``execute_stream`` must be
    bit-identical (memory, ``SimStats``, read response) to the per-macro
    fallback on both backends.
    """
    device = pim.init(crossbars=CROSSBARS, rows=ROWS)
    tensors = _fresh_inputs(int_inputs, float_inputs)
    func = pim.compile(lambda *args: program(*args), opt_level=0, cache_size=2)
    func(*tensors)
    instrs = tuple(func.graph_for(*tensors).instructions)
    driver = device.backend.driver
    for optimize in (False, True):
        spliced = driver.compile(instrs, optimize=optimize, emit="stream")
        legacy = driver.compile(instrs, optimize=optimize, emit="macro")
        assert list(spliced.ops) == list(legacy.ops), (
            f"seed={seed} optimize={optimize}: spliced stream lowering "
            "diverges from per-macro lowering"
        )
        assert spliced.reads == legacy.reads, f"seed={seed} {optimize}"
        assert spliced.source_ops == legacy.source_ops, f"seed={seed}"
    pim.reset()

    for backend in ("simulator", "numpy"):
        state = {}
        for mode in ("stream", "macro"):
            device = pim.init(
                crossbars=CROSSBARS, rows=ROWS, backend=backend,
                emit_mode=mode,
            )
            response = device.execute_stream(list(instrs))
            state[mode] = (
                device.backend.words.copy(),
                device.backend.stats.copy(),
                response,
            )
            counters = device.backend.emit_counters()
            assert counters[mode] == 1, f"seed={seed} {backend} {mode}"
            pim.reset()
        context = f"seed={seed} {backend} stream-vs-macro emission"
        assert state["stream"][2] == state["macro"][2], context
        assert np.array_equal(state["stream"][0], state["macro"][0]), context
        assert state["stream"][1] == state["macro"][1], context


def _check_pooled(seed, program, int_inputs, float_inputs, mirror):
    """Pooled-backend leg: inter-crossbar sharding must be invisible.

    The same case runs on ``backend="pooled"`` (two simulator workers,
    two crossbars each) and on the single simulator device, eagerly and
    under ``pim.compile`` at O0 — final memory images, ``SimStats``, and
    every checked output must be bit-identical. The pool's canonical
    accounting makes the stats comparison exact, not approximate.
    """
    pooled_kwargs = {"workers": 2, "worker_backend": "simulator"}
    eager_state = {}
    for backend, kwargs in (("simulator", {}), ("pooled", pooled_kwargs)):
        device = pim.init(
            crossbars=CROSSBARS, rows=ROWS, backend=backend, **kwargs
        )
        tensors = _fresh_inputs(int_inputs, float_inputs)
        outputs, scalar = program(*tensors)
        _check_outputs(outputs, scalar, tensors, mirror,
                       f"seed={seed} pooled-leg eager {backend}")
        eager_state[backend] = (
            device.backend.words.copy(), device.backend.stats.copy()
        )
        pim.reset()
    context = f"seed={seed} pooled-vs-single eager"
    assert np.array_equal(eager_state["pooled"][0],
                          eager_state["simulator"][0]), context
    assert eager_state["pooled"][1] == eager_state["simulator"][1], context

    replay_state = {}
    for backend, kwargs in (("simulator", {}), ("pooled", pooled_kwargs)):
        device = pim.init(
            crossbars=CROSSBARS, rows=ROWS, backend=backend, **kwargs
        )
        tensors = _fresh_inputs(int_inputs, float_inputs)
        func = pim.compile(
            lambda *args: program(*args), opt_level=0, cache_size=2
        )
        context = f"seed={seed} pooled-leg {backend} O0"
        outputs, scalar = func(*tensors)
        _check_outputs(outputs, scalar, tensors, mirror, context + " capture")
        _reload(tensors, int_inputs, float_inputs)
        before = device.stats_snapshot()
        outputs, scalar = func(*tensors)
        delta = device.backend.stats.diff(before)
        _check_outputs(outputs, scalar, tensors, mirror, context + " replay")
        assert func.captures == 1, context
        replay_state[backend] = (device.backend.words.copy(), delta)
        pim.reset()
    context = f"seed={seed} pooled-vs-single O0 replay"
    assert np.array_equal(replay_state["pooled"][0],
                          replay_state["simulator"][0]), context
    assert replay_state["pooled"][1] == replay_state["simulator"][1], context


def _dump_artifact(seed: int, error: BaseException) -> None:
    desc, int_inputs, float_inputs, _ = build_case(seed)
    directory = _artifact_dir()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"failure_seed_{seed}.txt")
    with open(path, "w") as handle:
        handle.write(
            "Differential fuzz failure\n"
            f"seed: {seed}\n"
            f"geometry: crossbars={CROSSBARS} rows={ROWS} n={N}\n"
            f"error: {error!r}\n\nprogram steps:\n"
        )
        for step in desc:
            handle.write(f"  {step!r}\n")
        handle.write("\nint inputs (raw bits):\n")
        for arr in int_inputs:
            handle.write(f"  {_bits(arr)!r}\n")
        handle.write("float inputs (raw bits):\n")
        for arr in float_inputs:
            handle.write(f"  {_bits(arr)!r}\n")


@pytest.fixture(autouse=True)
def _cleanup():
    yield
    pim.reset()


@pytest.mark.parametrize("seed", _seeds())
def test_differential_fuzz(seed):
    try:
        _run_case(seed)
    except BaseException as error:  # noqa: BLE001 - re-raised below
        _dump_artifact(seed, error)
        raise


def test_generator_is_deterministic():
    """Failures must reproduce: same seed, same program, same data."""
    first = build_case(PINNED_SEEDS[0])
    second = build_case(PINNED_SEEDS[0])
    assert first[0] == second[0]
    for a, b in zip(first[1] + first[2], second[1] + second[2]):
        assert _bits(a) == _bits(b)


def test_generator_exercises_the_interesting_shapes():
    """Across the pinned seeds the generator must produce the operation
    mix the optimizer needs hardened against (not a vacuous suite)."""
    kinds = set()
    for seed in PINNED_SEEDS:
        desc, _, _, _ = build_case(seed)
        kinds.update(step[0] for step in desc)
    assert {"bin", "cmp"} <= kinds
    assert kinds & {"where", "where_scalar"}
    assert kinds & {"view_bin", "setitem", "drop", "sum"}
