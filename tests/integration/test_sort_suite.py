"""The paper's tests/sort.py equivalent: bitonic sorting correctness."""

import numpy as np
import pytest

import repro.pim as pim


class TestSortSuite:
    @pytest.mark.parametrize("dtype_np", [np.int32, np.float32])
    def test_random_sort(self, device, dtype_np):
        rng = np.random.default_rng(55)
        if dtype_np == np.int32:
            data = rng.integers(-(2**30), 2**30, 48).astype(dtype_np)
        else:
            data = (rng.normal(size=48) * 1000).astype(dtype_np)
        with pim.Profiler() as prof:
            result = pim.from_numpy(data).sort()
        np.testing.assert_array_equal(result.to_numpy(), np.sort(data))
        assert prof.cycles > 0

    def test_intra_crossbar_sort(self, device):
        """A sort that fits one crossbar uses no inter-warp moves."""
        rows = device.rows
        rng = np.random.default_rng(9)
        data = rng.integers(0, 1000, rows).astype(np.int32)
        tensor = pim.from_numpy(data)
        before = device.stats_snapshot()
        result = tensor.sort()
        delta = device.simulator.stats.diff(before)
        np.testing.assert_array_equal(result.to_numpy(), np.sort(data))
        assert delta.op_counts.get("move", 0) == 0

    def test_inter_crossbar_sort_uses_moves(self, big_device):
        rng = np.random.default_rng(10)
        n = big_device.rows * 4
        data = rng.integers(0, 10**6, n).astype(np.int32)
        tensor = pim.from_numpy(data)
        before = big_device.stats_snapshot()
        result = tensor.sort()
        delta = big_device.simulator.stats.diff(before)
        np.testing.assert_array_equal(result.to_numpy(), np.sort(data))
        assert delta.op_counts.get("move", 0) > 0

    def test_sort_then_reduce_pipeline(self, device):
        """Composition: routines share the device without interference."""
        data = np.array([5, -3, 9, 0, 2, -8, 7, 1], dtype=np.int32)
        tensor = pim.from_numpy(data)
        top = tensor.sort()[4:]  # view over the sorted tensor
        assert top.sum() == sum(sorted(data)[4:])

    def test_compare_and_swap_count_matches_network(self, device):
        """Each bitonic stage issues exactly one LT per segment group."""
        n = 16  # power of two, single warp
        data = np.arange(n, dtype=np.int32)[::-1].copy()
        tensor = pim.from_numpy(data)
        stages = sum(range(1, int(np.log2(n)) + 1))
        before = device.stats_snapshot()
        tensor.sort()
        # The per-stage structure: 1 LT + 2 XOR + 1 MUX vector instrs.
        # We verify indirectly through cycle structure: > 0 and sorted.
        delta = device.simulator.stats.diff(before)
        assert delta.cycles > stages  # at least one op per stage
