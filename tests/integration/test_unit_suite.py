"""The paper's tests/unit.py equivalent (artifact appendix Section F).

Parameterized arithmetic and comparison correctness over random tensors,
verified against NumPy — the exact structure of the paper's `test_arit`,
including the int32 ``__truediv__`` semantics (true divide then cast).
"""

import numpy as np
import pytest

import repro.pim as pim

from tests.conftest import rand_float32, rand_int32

NELEM = 64  # fills the test device's memory; the paper uses 2**16


def _random_inputs(dtype_np, rng, avoid_zero=False):
    if dtype_np == np.int32:
        data = rand_int32(rng, NELEM)
        if avoid_zero:
            data[data == 0] = 7
        return data
    data = rand_float32(rng, NELEM)
    if avoid_zero:
        data[data == 0] = np.float32(1.0)
    return data


@pytest.mark.parametrize(
    "function,gt_func,dtype_np",
    [
        ("__add__", np.add, np.int32),
        ("__sub__", np.subtract, np.int32),
        ("__mul__", np.multiply, np.int32),
        ("__truediv__", np.true_divide, np.int32),
        ("__add__", np.add, np.float32),
        ("__sub__", np.subtract, np.float32),
        ("__mul__", np.multiply, np.float32),
        ("__truediv__", np.true_divide, np.float32),
    ],
)
def test_arit(device, function, gt_func, dtype_np):
    rng = np.random.default_rng(hash((function, dtype_np.__name__)) % 2**32)
    refs = [
        _random_inputs(dtype_np, rng, avoid_zero=(function == "__truediv__"))
        for _ in range(2)
    ]
    tensors = [pim.from_numpy(ref) for ref in refs]

    with pim.Profiler():
        result = getattr(tensors[0], function)(tensors[1])
    result = pim.to_numpy(result)

    with np.errstate(all="ignore"):
        ground_truth = gt_func(refs[0], refs[1]).astype(dtype_np)
    if dtype_np == np.float32:
        np.testing.assert_array_equal(ground_truth, result)
    else:
        # int32 true-divide: the paper casts the float64 quotient back.
        np.testing.assert_array_equal(ground_truth, result)


@pytest.mark.parametrize(
    "function,gt_func,dtype_np",
    [
        ("__lt__", np.less, np.int32),
        ("__le__", np.less_equal, np.int32),
        ("__gt__", np.greater, np.int32),
        ("__ge__", np.greater_equal, np.int32),
        ("__eq__", np.equal, np.int32),
        ("__ne__", np.not_equal, np.int32),
        ("__lt__", np.less, np.float32),
        ("__le__", np.less_equal, np.float32),
        ("__gt__", np.greater, np.float32),
        ("__ge__", np.greater_equal, np.float32),
        ("__eq__", np.equal, np.float32),
        ("__ne__", np.not_equal, np.float32),
    ],
)
def test_comparison(device, function, gt_func, dtype_np):
    rng = np.random.default_rng(hash((function, dtype_np.__name__)) % 2**32)
    refs = [_random_inputs(dtype_np, rng) for _ in range(2)]
    # Inject equal elements so EQ/NE/LE/GE see both outcomes.
    refs[1][::5] = refs[0][::5]
    tensors = [pim.from_numpy(ref) for ref in refs]

    result = pim.to_numpy(getattr(tensors[0], function)(tensors[1]))
    ground_truth = gt_func(refs[0], refs[1]).astype(np.int32)
    np.testing.assert_array_equal(ground_truth, result)


def test_cordic_sine_suite(device):
    """CORDIC sine on random angles in [-pi/2, pi/2] (Section VI-A)."""
    rng = np.random.default_rng(2024)
    angles = rng.uniform(-np.pi / 2, np.pi / 2, 32).astype(np.float32)
    result = pim.cordic_sin(pim.from_numpy(angles)).to_numpy()
    np.testing.assert_allclose(result, np.sin(angles), atol=2e-6)
