"""Fault injection & resilience (:mod:`repro.faults`) end to end.

The three acceptance claims of the resilience layer, each enforced here:

1. **Detection**: ``verify="checksum"`` catches >= 99% of injected
   flips that corrupt a compiled program's written cells, on both
   backends and both simulator replay engines (in practice the CRC
   bracket catches every one — the floor is the contract).
2. **Recovery**: a transient flip is healed by one retry; a persistent
   stuck-at cell is quarantined in the allocator and the function
   recompiles around it — outputs stay bit-identical to golden either
   way. A pooled worker crash fails over to a fresh worker and the run
   stays bit-identical to a single device.
3. **Identity**: with no faults installed — or an *empty* plan
   installed — every output, memory image, and cycle count is exactly
   what it is today. Fault hooks must be invisible when disabled.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.pim as pim
from repro.arch.config import PIMConfig
from repro.faults import (
    ChecksumError,
    FaultPlan,
    ShardError,
    WorkerFault,
    program_regions,
    resolve_fault_seed,
)

CFG = PIMConfig(crossbars=4, rows=8)
N = CFG.total_rows  # one register's worth of elements

BACKENDS = ["simulator", "numpy"]

#: The detection corpus: distinct compiled shapes (different op mixes,
#: different written-region footprints). Every (program, cell) pair
#: below contributes one injected flip to the >= 99% detection floor.
CORPUS = [
    ("mul-add", lambda a, b: a * b + a),
    ("add", lambda a, b: a + b),
    ("sub-mul", lambda a, b: (a - b) * b),
    ("chain", lambda a, b: (a + b) * (a - b) + b),
]


def _arrays(seed=7):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(-1000, 1000, N).astype(np.int32),
        rng.integers(-1000, 1000, N).astype(np.int32),
    )


def _target_cells(fn_handle, limit=5, device=None):
    """Pick up to ``limit`` distinct written cells of a captured program."""
    entry = next(iter(fn_handle._cache.values()))
    if hasattr(entry.program, "ops"):
        regions = program_regions(entry.program, CFG)
    else:
        # Functional programs carry macro instructions, not micro-ops;
        # the numpy backend derives its own (architectural) regions.
        regions = device.backend._program_regions(entry.program)
    cells = []
    for reg, (xs, xe, xstep), (rs, re_, rstep) in regions:
        for xb in range(xs, xe + 1, xstep):
            for row in range(rs, re_ + 1, rstep):
                cells.append((xb, reg, row))
    # Spread across the footprint instead of clustering at the front.
    step = max(len(cells) // limit, 1)
    return cells[::step][:limit]


class TestChecksumDetection:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_detects_injected_output_flips(self, backend):
        """>= 99% of flips into written cells are caught and healed."""
        total = detected = 0
        for name, fn in CORPUS:
            device = pim.init(config=CFG, backend=backend)
            handle = pim.compile(fn, verify="checksum")
            a, b = _arrays()
            golden = pim.to_numpy(
                handle(pim.from_numpy(a), pim.from_numpy(b))
            )
            before = handle.fault_retries
            for index, (xb, reg, row) in enumerate(
                _target_cells(handle, device=device)
            ):
                # Fresh plan per injection: the overlay restarts at tick
                # 0, so the flip lands inside the next verify window.
                plan = FaultPlan(
                    CFG, seed=index, flips=[(1, xb, reg, row, index % CFG.word_size)]
                )
                device.install_faults(plan)
                out = pim.to_numpy(
                    handle(pim.from_numpy(a), pim.from_numpy(b))
                )
                np.testing.assert_array_equal(out, golden)
                total += 1
            detected = detected + handle.fault_retries - before
        assert total >= 20
        assert detected / total >= 0.99, (
            f"checksum verify caught {detected}/{total} injected flips"
        )

    def test_rotating_seed_targets_detected(self):
        """CI rotates ``REPRO_FAULT_SEED``; any seed's choice of written
        cell, bit, and payload must still be detected and healed."""
        seed = resolve_fault_seed(23)
        rng = np.random.default_rng(seed)
        device = pim.init(config=CFG, backend="simulator")
        handle = pim.compile(lambda a, b: (a + b) * b, verify="checksum")
        a, b = _arrays(int(rng.integers(1, 2**20)))
        golden = pim.to_numpy(handle(pim.from_numpy(a), pim.from_numpy(b)))
        cells = _target_cells(handle, limit=64, device=device)
        before = handle.fault_retries
        for _ in range(8):
            xb, reg, row = cells[int(rng.integers(0, len(cells)))]
            bit = int(rng.integers(0, CFG.word_size))
            device.install_faults(
                FaultPlan(CFG, seed=int(seed), flips=[(1, xb, reg, row, bit)])
            )
            out = pim.to_numpy(
                handle(pim.from_numpy(a), pim.from_numpy(b))
            )
            np.testing.assert_array_equal(out, golden)
        assert handle.fault_retries - before == 8, (
            f"seed {seed}: every targeted flip must be caught"
        )

    def test_flip_outside_written_regions_is_silent(self):
        """A flip that cannot corrupt the output raises nothing."""
        device = pim.init(config=CFG, backend="simulator")
        handle = pim.compile(lambda a, b: a + b, verify="checksum")
        a, b = _arrays()
        golden = pim.to_numpy(handle(pim.from_numpy(a), pim.from_numpy(b)))
        # Inputs are read, never written: region checksums skip them.
        plan = FaultPlan(CFG, seed=0, flips=[(1, 0, 0, 0, 0)])
        device.install_faults(plan)
        out = pim.to_numpy(handle(pim.from_numpy(a), pim.from_numpy(b)))
        np.testing.assert_array_equal(out, golden)
        assert handle.fault_retries == 0

    def test_checksum_counters_surface(self):
        device = pim.init(config=CFG, backend="simulator")
        handle = pim.compile(lambda a, b: a * b, verify="checksum")
        a, b = _arrays()
        handle(pim.from_numpy(a), pim.from_numpy(b))  # capture
        handle(pim.from_numpy(a), pim.from_numpy(b))  # verified replay
        counters = device.backend.fault_counters()
        assert counters["verify_checks"] >= 1
        assert counters.get("verify_detected", 0) == 0

    def test_profiler_reports_fault_counts(self):
        device = pim.init(config=CFG, backend="simulator")
        device.install_faults(FaultPlan(CFG, seed=0, flips=[(1, 0, 0, 0, 0)]))
        a, b = _arrays()
        with pim.Profiler() as prof:
            pim.to_numpy(pim.from_numpy(a) + pim.from_numpy(b))
        assert prof.fault_counts.get("ticks", 0) >= 1


class TestReplayEngineIdentity:
    """Both simulator replay engines must see one fault timeline."""

    def _run(self, replay_engine):
        device = pim.init(
            config=CFG, backend="simulator", replay_engine=replay_engine
        )
        handle = pim.compile(lambda a, b: a * b + a)
        a, b = _arrays()
        handle(pim.from_numpy(a), pim.from_numpy(b))  # capture
        plan = FaultPlan(CFG, seed=5, random_flips=6, flip_window=(1, 4))
        device.install_faults(plan)
        outs = [
            pim.to_numpy(handle(pim.from_numpy(a), pim.from_numpy(b)))
            for _ in range(4)
        ]
        return outs, device.backend.words.copy(), device.backend.fault_counters()

    def test_thunk_and_vectorized_agree_under_faults(self):
        thunk_outs, thunk_words, thunk_counts = self._run("thunk")
        vec_outs, vec_words, vec_counts = self._run("vectorized")
        for t_out, v_out in zip(thunk_outs, vec_outs):
            np.testing.assert_array_equal(t_out, v_out)
        np.testing.assert_array_equal(thunk_words, vec_words)
        assert thunk_counts["ticks"] == vec_counts["ticks"]
        assert thunk_counts["flips"] == vec_counts["flips"]


class TestStuckCellQuarantine:
    def test_persistent_fault_quarantines_and_recompiles(self):
        """Capture clean -> detect -> retry fails -> quarantine -> golden."""
        device = pim.init(config=CFG, backend="simulator")
        handle = pim.compile(lambda a, b: a * b + a, verify="checksum")
        rng = np.random.default_rng(3)
        a = (2 * rng.integers(-500, 500, N)).astype(np.int32)
        b = (2 * rng.integers(-500, 500, N)).astype(np.int32)
        golden = pim.to_numpy(handle(pim.from_numpy(a), pim.from_numpy(b)))
        # Wedge a user-register output cell: a*b+a is even for even
        # inputs, so stuck-at-1 on bit 0 always corrupts the value.
        user_cell = next(
            (xb, reg, row)
            for (xb, reg, row) in _target_cells(handle, limit=64)
            if reg < CFG.user_registers
        )
        xb, reg, row = user_cell
        plan = FaultPlan(
            CFG, seed=0, stuck=[(xb, reg, row, 0, "stuck1")], stuck_from_tick=1
        )
        device.install_faults(plan)
        out = pim.to_numpy(handle(pim.from_numpy(a), pim.from_numpy(b)))
        np.testing.assert_array_equal(out, golden)
        assert handle.fault_retries >= 1
        assert handle.fault_recompiles >= 1
        assert (reg, xb) in device.allocator.bad_cells

    def test_allocator_plans_around_bad_cells(self):
        device = pim.init(config=CFG, backend="simulator")
        bad = device.allocator.quarantine([(0, 0)])
        assert bad == [(0, 0)]
        tensor = pim.zeros(N, dtype=pim.int32)
        slot = tensor.slot
        assert not (slot.reg == 0 and slot.warp_start <= 0 < slot.warp_stop)
        del tensor
        assert device.allocator.bad_cells == {(0, 0)}


class TestPoolResilience:
    def _work(self):
        rng = np.random.default_rng(11)
        a = rng.integers(-1000, 1000, 64).astype(np.int32)
        b = rng.integers(-1000, 1000, 64).astype(np.int32)
        x = pim.from_numpy(a)
        y = pim.from_numpy(b)
        return pim.to_numpy(x * y + x)

    def test_shard_failover_bit_identical(self):
        big = PIMConfig(crossbars=8, rows=8)
        pim.init(config=big, backend="simulator")
        golden = self._work()
        device = pim.init(config=big, backend="pooled", workers=4)
        plan = FaultPlan(big, seed=1, worker_failures=[(1, 0), (0, 1)])
        device.install_faults(plan)
        out = self._work()
        np.testing.assert_array_equal(out, golden)
        counters = device.backend.fault_counters()
        assert counters["failovers"] == counters["worker_faults"] >= 1
        assert counters["quarantined_shards"] >= 1
        assert [k for k, _ in device.backend.quarantined_workers]

    def test_unplanned_crash_surfaces_shard_context(self):
        big = PIMConfig(crossbars=8, rows=8)
        device = pim.init(config=big, backend="pooled", workers=4)

        def boom(arg):
            raise RuntimeError("kaput")

        device.backend.workers[1].execute = boom
        device.backend.workers[1].run_program = boom
        with pytest.raises(ShardError, match=r"pool shard 1 \(warps 2\.\.3\)"):
            self._work()


class TestDisabledIdentity:
    """Fault hooks must be invisible when no faults are armed."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_plan_is_bit_and_cycle_identical(self, backend):
        outputs, images, cycles = [], [], []
        for plan in (None, FaultPlan(CFG, seed=9)):
            device = pim.init(config=CFG, backend=backend)
            if plan is not None:
                device.install_faults(plan)
            handle = pim.compile(lambda a, b: a * b + a)
            a, b = _arrays()
            out = pim.to_numpy(
                handle(pim.from_numpy(a), pim.from_numpy(b))
            )
            out2 = pim.to_numpy(
                handle(pim.from_numpy(a), pim.from_numpy(b))
            )
            np.testing.assert_array_equal(out, out2)
            outputs.append(out)
            images.append(device.backend.words.copy())
            cycles.append(device.backend.stats.cycles)
        np.testing.assert_array_equal(outputs[0], outputs[1])
        np.testing.assert_array_equal(images[0], images[1])
        assert cycles[0] == cycles[1]

    def test_verify_costs_no_cycles(self):
        a, b = _arrays()
        cycles = []
        for verify in (None, "checksum"):
            device = pim.init(config=CFG, backend="simulator")
            handle = pim.compile(lambda a, b: a * b + a, verify=verify)
            handle(pim.from_numpy(a), pim.from_numpy(b))
            handle(pim.from_numpy(a), pim.from_numpy(b))
            cycles.append(device.backend.stats.cycles)
        assert cycles[0] == cycles[1]


class TestSeedPlumbing:
    def test_resolve_fault_seed_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)
        assert resolve_fault_seed(42) == 42
        monkeypatch.setenv("REPRO_FAULT_SEED", "12345")
        assert resolve_fault_seed() == 12345

    def test_same_seed_same_plan(self):
        one = FaultPlan(CFG, seed=77, random_flips=8, random_stuck1=3)
        two = FaultPlan(CFG, seed=77, random_flips=8, random_stuck1=3)
        assert one.flips == two.flips
        assert one.stuck == two.stuck

    def test_fingerprint_rejects_other_geometry(self):
        plan = FaultPlan(CFG, seed=0)
        other = PIMConfig(crossbars=8, rows=8)
        device = pim.init(config=other, backend="simulator")
        with pytest.raises(ValueError, match="different geometry"):
            device.install_faults(plan)


@pytest.fixture(autouse=True)
def _fresh_device():
    yield
    pim.reset()
