"""Program-level fuzzing: random tensor expressions mirrored on NumPy.

Each hypothesis example builds a random sequence of tensor operations
(binary ops, scalar broadcasts, slicing, where) and executes it both on
the PIM stack and on a NumPy mirror; the final values must be
bit-identical. This exercises the allocator, alignment fallbacks, view
machinery and the whole arithmetic suite in arbitrary interleavings.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.pim as pim
from repro.arch.config import PIMConfig
from repro.pim.device import PIMDevice

N = 16  # program vector length


def _safe_float(rng):
    sign = rng.integers(0, 2) << 31
    exp = rng.integers(118, 137) << 23
    frac = rng.integers(0, 1 << 23)
    return np.uint32(sign | exp | frac).view(np.float32)


class Mirror:
    """A paired (PIM tensor, NumPy array) environment."""

    def __init__(self, dtype_np, seed):
        self.device = PIMDevice(PIMConfig(crossbars=4, rows=8))
        self.dtype_np = dtype_np
        self.rng = np.random.default_rng(seed)
        self.pairs = []
        for _ in range(2):
            self.new_leaf()

    def new_leaf(self):
        if self.dtype_np == np.int32:
            host = self.rng.integers(-100, 100, N).astype(np.int32)
        else:
            host = np.array([_safe_float(self.rng) for _ in range(N)],
                            dtype=np.float32)
        tensor = pim.Tensor(self.device, N, pim.int32 if
                            self.dtype_np == np.int32 else pim.float32)
        self.device.load_array(tensor.slot, host, tensor.dtype)
        self.pairs.append((tensor, host))

    def pick(self):
        return self.pairs[self.rng.integers(0, len(self.pairs))]

    def check_all(self):
        for tensor, host in self.pairs:
            if hasattr(tensor, "to_numpy"):
                got = tensor.to_numpy()
                assert got.view(np.uint32).tolist() == host.view(np.uint32).tolist()


def _apply_step(mirror: Mirror, choice: int) -> None:
    tensor_a, host_a = mirror.pick()
    tensor_b, host_b = mirror.pick()
    dtype_np = mirror.dtype_np
    with np.errstate(all="ignore"):
        if choice == 0:  # add
            mirror.pairs.append((tensor_a + tensor_b, (host_a + host_b).astype(dtype_np)))
        elif choice == 1:  # sub
            mirror.pairs.append((tensor_a - tensor_b, (host_a - host_b).astype(dtype_np)))
        elif choice == 2:  # mul (ints kept small enough not to wrap oddly;
            # wrapping is fine anyway since both sides wrap identically)
            if dtype_np == np.int32:
                want = (host_a.astype(np.int64) * host_b.astype(np.int64)
                        & 0xFFFFFFFF).astype(np.uint32).view(np.int32)
            else:
                want = (host_a * host_b).astype(np.float32)
            mirror.pairs.append((tensor_a * tensor_b, want))
        elif choice == 3:  # scalar add
            scalar = 3 if dtype_np == np.int32 else np.float32(0.5)
            mirror.pairs.append(
                (tensor_a + scalar, (host_a + scalar).astype(dtype_np))
            )
        elif choice == 4:  # negate
            mirror.pairs.append((-tensor_a, (-host_a).astype(dtype_np)))
        elif choice == 5:  # where on comparison
            cond_t = tensor_a < tensor_b
            cond_h = host_a < host_b
            mirror.pairs.append(
                (
                    pim.where(cond_t, tensor_a, tensor_b),
                    np.where(cond_h, host_a, host_b).astype(dtype_np),
                )
            )
        elif choice == 6:  # slice then add back (views both sides)
            view = tensor_a[::2] + tensor_a[1::2]
            want = (host_a[::2] + host_a[1::2]).astype(dtype_np)
            got = view.to_numpy()
            assert got.view(np.uint32).tolist() == want.view(np.uint32).tolist()
        else:  # fresh leaf to diversify alignment pressure
            mirror.new_leaf()


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    steps=st.lists(st.integers(0, 7), min_size=3, max_size=10),
)
def test_fuzz_int_programs(seed, steps):
    mirror = Mirror(np.int32, seed)
    for choice in steps:
        _apply_step(mirror, choice)
    mirror.check_all()


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    steps=st.lists(st.integers(0, 7), min_size=3, max_size=6),
)
def test_fuzz_float_programs(seed, steps):
    mirror = Mirror(np.float32, seed)
    for choice in steps:
        _apply_step(mirror, choice)
    mirror.check_all()
