"""Tests for the multi-crossbar device pool (:mod:`repro.pool`).

The pool's contract: executing through ``PooledBackend`` is
*indistinguishable* from a single device over the full geometry —
bit-identical memory images (including the scratch residue of move
lowering), identical cycle accounting, identical read results — while
the work is physically sharded across N worker backends that each own a
contiguous crossbar range of one shared word image.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import small_config
from repro.arch.masks import RangeMask
from repro.backend import make_backend
from repro.backend.simulator import SimulatorBackend
from repro.isa.dtypes import int32
from repro.isa.instructions import (
    MoveInstr,
    ReadInstr,
    RInstr,
    ROp,
    WriteInstr,
)
from repro.faults import ShardError
from repro.pool import PooledBackend
from repro.pool.backend import shard_mask


CFG = small_config(crossbars=8, rows=8)


class TestShardMask:
    def test_window_inside(self):
        mask = RangeMask(2, 5, 1)
        assert shard_mask(mask, 0, 7) == RangeMask(2, 5, 1)

    def test_rebase_to_local(self):
        mask = RangeMask(4, 7, 1)
        assert shard_mask(mask, 4, 7) == RangeMask(0, 3, 1)

    def test_split_across_shards(self):
        mask = RangeMask(2, 6, 1)
        assert shard_mask(mask, 0, 3) == RangeMask(2, 3, 1)
        assert shard_mask(mask, 4, 7) == RangeMask(0, 2, 1)

    def test_empty_window(self):
        assert shard_mask(RangeMask(0, 2, 1), 4, 7) is None
        assert shard_mask(RangeMask(5, 7, 1), 0, 3) is None

    def test_strided_alignment(self):
        # Stride 4 from 1: hits 1 and 5 -> one element per 4-wide shard.
        mask = RangeMask(1, 5, 4)
        assert shard_mask(mask, 0, 3) == RangeMask(1, 1, 4)
        assert shard_mask(mask, 4, 7) == RangeMask(1, 1, 4)

    def test_strided_missing_a_shard(self):
        # Stride 4 from 2: hits 2 and 6; window [3..5] catches neither...
        assert shard_mask(RangeMask(2, 2, 4), 4, 7) is None
        # ...but the owning windows rebase correctly.
        assert shard_mask(RangeMask(2, 6, 4), 4, 7) == RangeMask(2, 2, 4)


class TestConstruction:
    def test_worker_count_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            PooledBackend(CFG, workers=3)

    def test_worker_count_bounded_by_crossbars(self):
        with pytest.raises(ValueError, match="cannot shard"):
            PooledBackend(CFG, workers=16)

    def test_unknown_worker_backend(self):
        with pytest.raises(ValueError, match="unknown worker backend"):
            PooledBackend(CFG, workers=2, worker_backend="quantum")

    def test_make_backend_resolves_pooled(self):
        backend = make_backend("pooled", CFG, workers=2)
        assert isinstance(backend, PooledBackend)
        assert len(backend.workers) == 2
        assert backend.shard == 4

    def test_shared_word_image_views(self):
        pool = PooledBackend(CFG, workers=4)
        assert pool.words.shape == (8, CFG.registers, CFG.rows)
        for k in range(4):
            view = pool._worker_words(k)
            assert view.base is pool.words or view.base is pool.words.base
            assert view.shape[0] == 2


def _program():
    """A stream exercising every routing class the pool distinguishes."""
    instrs = []
    for index in range(8 * 8):
        warp, thread = divmod(index, 8)
        instrs.append(WriteInstr(0, (index * 2654435761) & 0xFFFFFFFF,
                                 RangeMask.single(warp),
                                 RangeMask.single(thread)))
        instrs.append(WriteInstr(1, (index * 40503) & 0xFFFF,
                                 RangeMask.single(warp),
                                 RangeMask.single(thread)))
    # Shard-local compute on every warp, then a masked subset.
    instrs.append(RInstr(ROp.ADD, int32, dest=2, src_a=0, src_b=1))
    instrs.append(RInstr(ROp.MUL, int32, dest=3, src_a=2, src_b=1,
                         warp_mask=RangeMask(1, 7, 2)))
    # Intra-warp move (stays inside one shard).
    instrs.append(MoveInstr(src_reg=2, dst_reg=4, src_thread=1, dst_thread=6,
                            warp_mask=RangeMask(0, 3, 1)))
    # Inter-warp move crossing the 2-worker shard boundary (a bridge).
    instrs.append(MoveInstr(src_reg=2, dst_reg=5, src_thread=2, dst_thread=2,
                            warp_mask=RangeMask(0, 3, 1), warp_dist=4))
    instrs.append(RInstr(ROp.SUB, int32, dest=6, src_a=5, src_b=1,
                         warp_mask=RangeMask(4, 7, 1)))
    return instrs


def _run(backend, instrs):
    reads = []
    for instr in instrs:
        backend.execute(instr)
    for warp in (0, 3, 4, 7):
        for reg in (2, 3, 4, 5, 6):
            reads.append(backend.execute(ReadInstr(warp, 5, reg)))
    return reads


@pytest.mark.parametrize("workers", [1, 2, 4, 8])
def test_eager_parity_with_single_device(workers):
    single = SimulatorBackend(CFG)
    pool = PooledBackend(CFG, workers=workers)
    instrs = _program()
    assert _run(single, instrs) == _run(pool, instrs)
    assert np.array_equal(pool.words, single.words)
    assert pool.stats.cycles == single.stats.cycles
    assert pool.stats.op_counts == single.stats.op_counts


def test_bridge_reproduces_move_staging_residue():
    """Regression: the bridge must leave the *exact* memory image of the
    single device's inter-warp move lowering, including the staging
    registers on the destination warps (caught by fuzz seed 65537)."""
    single = SimulatorBackend(CFG)
    pool = PooledBackend(CFG, workers=2)
    instrs = [
        WriteInstr(0, 0xDEADBEEF, RangeMask.single(1), RangeMask.single(3)),
        MoveInstr(src_reg=0, dst_reg=2, src_thread=3, dst_thread=5,
                  warp_mask=RangeMask.single(1), warp_dist=4),
    ]
    for instr in instrs:
        single.execute(instr)
        pool.execute(instr)
    assert np.array_equal(pool.words, single.words)


def test_numpy_workers_match_simulator_results():
    """Functional workers: same reads and same accounting (the memory
    image legitimately differs — the numpy model skips scratch)."""
    single = SimulatorBackend(CFG)
    pool = PooledBackend(CFG, workers=4, worker_backend="numpy")
    instrs = _program()
    assert _run(single, instrs) == _run(pool, instrs)
    assert pool.stats.cycles == single.stats.cycles
    assert pool.stats.op_counts == single.stats.op_counts


class TestCompiledPath:
    def test_compile_replay_parity(self):
        single = SimulatorBackend(CFG)
        pool = PooledBackend(CFG, workers=2)
        instrs = _program() + [ReadInstr(5, 2, 5)]

        reference = single.compile(instrs, name="parity")
        pooled = pool.compile(instrs, name="parity")
        single_reads = [single.run_program(reference) for _ in range(3)]
        pooled_reads = [pool.run_program(pooled) for _ in range(3)]
        assert pooled_reads == single_reads
        assert np.array_equal(pool.words, single.words)
        assert pool.stats.cycles == single.stats.cycles

    def test_replay_counts_hits(self):
        pool = PooledBackend(CFG, workers=2)
        program = pool.compile(_program(), name="hits")
        before = pool.cache_hits
        pool.run_program(program)
        pool.run_program(program)
        assert pool.cache_hits == before + 2

    def test_response_site_returns_last_read(self):
        pool = PooledBackend(CFG, workers=4)
        instrs = [
            WriteInstr(0, 1234, RangeMask.single(6), RangeMask.single(1)),
            ReadInstr(0, 0, 0),   # an earlier read, different worker
            ReadInstr(6, 1, 0),   # the response: globally last read
        ]
        program = pool.compile(instrs, name="resp")
        assert pool.run_program(program) == 1234

    def test_stream_parity_and_caching(self):
        single = SimulatorBackend(CFG)
        pool = PooledBackend(CFG, workers=2)
        instrs = _program() + [ReadInstr(5, 2, 5)]
        assert pool.run_stream(instrs, name="s") == \
            single.run_stream(instrs, name="s")
        assert np.array_equal(pool.words, single.words)
        assert pool.stats.cycles == single.stats.cycles
        first = dict(pool.emit_counters())
        pool.run_stream(instrs, name="s")
        assert pool.emit_counters()["stream"] == first["stream"] + 1


class TestCounters:
    def test_worker_stats_partition_the_work(self):
        pool = PooledBackend(CFG, workers=2)
        for instr in _program():
            pool.execute(instr)
        per_worker = pool.worker_stats()
        assert len(per_worker) == 2
        # Both shards did real work (the program touches every warp).
        assert all(stats.cycles > 0 for stats in per_worker)

    def test_persist_counters_empty_without_cache_dir(self):
        pool = PooledBackend(CFG, workers=2)
        assert pool.persist_counters() == {}

    def test_persist_counters_merge_across_workers(self, tmp_path):
        pool = PooledBackend(CFG, workers=2, cache_dir=str(tmp_path))
        pool.compile(_program(), name="persisted")
        counters = pool.persist_counters()
        assert counters.get("stores", 0) > 0

    def test_cache_evictions_surface(self):
        pool = PooledBackend(CFG, workers=2, cache_size=1)
        pool.execute(RInstr(ROp.ADD, int32, dest=2, src_a=0, src_b=1))
        pool.execute(RInstr(ROp.MUL, int32, dest=3, src_a=0, src_b=1))
        pool.execute(RInstr(ROp.SUB, int32, dest=4, src_a=0, src_b=1))
        assert pool.cache_evictions > 0


class TestShardFaults:
    """Crash containment: ShardError context, quarantine, failover."""

    def _golden(self):
        single = SimulatorBackend(CFG)
        reads = _run(single, _program())
        return reads, single.words.copy()

    def test_worker_exception_wrapped_with_shard_context(self):
        pool = PooledBackend(CFG, workers=4)

        def boom(arg):
            raise RuntimeError("kaput")

        pool.workers[2].execute = boom
        pool.workers[2].run_program = boom
        with pytest.raises(ShardError) as excinfo:
            _run(pool, _program())
        message = str(excinfo.value)
        assert "pool shard 2" in message
        assert "warps 4..5" in message
        assert "kaput" in message
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_simulation_errors_are_not_wrapped(self):
        pool = PooledBackend(CFG, workers=2)
        from repro.sim.simulator import SimulationError

        with pytest.raises(SimulationError):
            # An illegal inter-warp H-tree pattern must surface as the
            # architectural rejection, not a shard crash.
            pool.execute(MoveInstr(src_reg=0, dst_reg=1, src_thread=0,
                                   dst_thread=0,
                                   warp_mask=RangeMask(0, 4, 1),
                                   warp_dist=3))

    def test_injected_failure_fails_over_bit_identically(self):
        from repro.faults import FaultPlan

        golden_reads, golden_words = self._golden()
        pool = PooledBackend(CFG, workers=4)
        plan = FaultPlan(CFG, seed=2,
                         worker_failures=[(0, 3), (3, 10), (1, 0)])
        pool.install_faults(plan)
        reads = _run(pool, _program())
        assert reads == golden_reads
        np.testing.assert_array_equal(pool.words, golden_words)
        counters = pool.fault_counters()
        assert counters["worker_faults"] >= 1
        assert counters["failovers"] == counters["worker_faults"]
        assert counters["quarantined_shards"] == len(pool.quarantined_workers)

    def test_failover_on_compiled_replay(self):
        from repro.faults import FaultPlan

        golden_reads, golden_words = self._golden()
        pool = PooledBackend(CFG, workers=4)
        program = pool.compile(_program(), name="failover")
        plan = FaultPlan(CFG, seed=5, worker_failures=[(1, 0), (2, 1)])
        pool.install_faults(plan)
        # The replacement worker replays sub-programs compiled by the
        # worker it replaced — compiled programs are shard-portable.
        pool.run_program(program)
        np.testing.assert_array_equal(pool.words, golden_words)
        assert pool.fault_counters()["failovers"] >= 1

    def test_pool_checksum_verify_detects_corruption(self):
        from repro.faults import ChecksumError, FaultPlan

        pool = PooledBackend(CFG, workers=2)
        program = pool.compile(_program(), name="verified")
        pool.run_program(program, verify="checksum")  # clean
        plan = FaultPlan(CFG, seed=0, flips=[(1, 0, 0, 0, 0)])
        pool.install_faults(plan)
        with pytest.raises(ChecksumError):
            pool.run_program(program, verify="checksum")
        counters = pool.fault_counters()
        assert counters["verify_detected"] == 1
