"""Tests for the async batch serving layer (:mod:`repro.serve`).

What must hold: every submitted request gets the bit-exact result its
inputs demand (no cross-request contamination inside a batch), the
scheduler actually spreads work across the worker pool, and the
simulated-clock metrics are internally consistent (p50 <= p99, makespan
covers every request, throughput derives from makespan).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import PIMConfig
from repro.serve import CompiledWorkload, ServerMetrics, serve_workload


CONFIG = PIMConfig(crossbars=4, rows=16)
LENGTH = CONFIG.total_rows  # one full register per tensor


def model(a, b):
    return a * b + a


def golden(a, b):
    return np.int32(a.astype(np.int64) * b + a)


def _payloads(count, length=LENGTH, seed=3):
    rng = np.random.default_rng(seed)
    return [
        (rng.integers(-1000, 1000, length).astype(np.int32),
         rng.integers(-1000, 1000, length).astype(np.int32))
        for _ in range(count)
    ]


def _serve(payloads, **kwargs):
    kwargs.setdefault("config", CONFIG)
    kwargs.setdefault("backend", "numpy")
    return serve_workload(CompiledWorkload(model), payloads, **kwargs)


class TestCorrectness:
    def test_every_request_bit_exact(self):
        payloads = _payloads(12)
        results, metrics = _serve(payloads, workers=4)
        assert metrics.requests == 12
        for (a, b), result in zip(payloads, results):
            np.testing.assert_array_equal(result, golden(a, b))

    def test_single_worker(self):
        payloads = _payloads(6)
        results, metrics = _serve(payloads, workers=1)
        assert metrics.workers == 1
        for (a, b), result in zip(payloads, results):
            np.testing.assert_array_equal(result, golden(a, b))

    def test_mixed_signatures(self):
        short = _payloads(4, length=LENGTH // 2, seed=5)
        full = _payloads(4, seed=6)
        payloads = [p for pair in zip(short, full) for p in pair]
        results, metrics = _serve(payloads, workers=2)
        assert metrics.requests == 8
        for (a, b), result in zip(payloads, results):
            np.testing.assert_array_equal(result, golden(a, b))

    def test_simulator_backend_serves(self):
        payloads = _payloads(4)
        results, _ = _serve(payloads, workers=2, backend="simulator")
        for (a, b), result in zip(payloads, results):
            np.testing.assert_array_equal(result, golden(a, b))


class TestScheduling:
    def test_batches_spread_across_workers(self):
        _, metrics = _serve(_payloads(16), workers=4)
        assert metrics.batches >= 4, "scheduler must not pin one worker"
        busy = [seconds for seconds in metrics.worker_busy_s if seconds > 0]
        assert len(busy) >= 2, "at least two workers must do real work"

    def test_pool_beats_single_worker(self):
        payloads = _payloads(24)
        _, one = _serve(payloads, workers=1)
        _, four = _serve(payloads, workers=4)
        # The benchmark enforces >= 2x; here just require a real speedup
        # so the test stays robust on tiny request counts.
        assert four.sim_makespan_s < one.sim_makespan_s
        assert four.requests_per_sec > one.requests_per_sec

    def test_staggered_arrivals(self):
        payloads = _payloads(8)
        arrivals = [index * 1e-6 for index in range(8)]
        results, metrics = _serve(payloads, workers=2, arrivals=arrivals)
        for (a, b), result in zip(payloads, results):
            np.testing.assert_array_equal(result, golden(a, b))
        # Makespan spans from the first arrival to the last completion,
        # so it must cover the arrival spread.
        assert metrics.sim_makespan_s >= arrivals[-1] - arrivals[0]


class TestMetrics:
    def test_internal_consistency(self):
        _, metrics = _serve(_payloads(10), workers=2)
        assert isinstance(metrics, ServerMetrics)
        assert metrics.p50_latency_s <= metrics.p99_latency_s
        assert metrics.sim_makespan_s > 0
        expected_rate = metrics.requests / metrics.sim_makespan_s
        assert metrics.requests_per_sec == pytest.approx(expected_rate)
        assert len(metrics.worker_busy_s) == metrics.workers == 2

    def test_as_dict_is_json_shaped(self):
        import json

        _, metrics = _serve(_payloads(4), workers=2)
        payload = metrics.as_dict()
        for key in ("requests", "batches", "workers", "requests_per_sec",
                    "p50_latency_s", "p99_latency_s", "sim_makespan_s"):
            assert key in payload
        json.dumps(payload)  # must be serializable as-is


def test_cli_demo_runs():
    """The README quickstart (``python -m repro.serve``) must keep working."""
    from repro.serve.__main__ import main

    assert main(["--workers", "2", "--clients", "2", "--requests", "2",
                 "--crossbars", "4", "--rows", "16", "--json"]) == 0


class TestResilience:
    """Deadlines, retries with backoff, injected faults, close semantics."""

    def test_deadline_exceeded_fails_fast(self):
        import asyncio

        from repro.serve import DeadlineExceeded, Server

        async def main():
            server = Server(workers=1, config=CONFIG)
            await server.start()
            try:
                with pytest.raises(DeadlineExceeded):
                    await server.submit(
                        CompiledWorkload(model), _payloads(1)[0],
                        deadline=1e-12,
                    )
                return server.metrics()
            finally:
                await server.close()

        metrics = asyncio.run(main())
        assert metrics.timeouts == 1
        # The missed request is accounted at exactly its budget.
        assert metrics.p99_latency_s == pytest.approx(1e-12)

    def test_generous_deadline_is_met(self):
        results, metrics = _serve(
            _payloads(6), workers=2, deadline=10.0, retries=1
        )
        assert metrics.timeouts == 0 and metrics.retries == 0
        for (a, b), result in zip(_payloads(6), results):
            np.testing.assert_array_equal(result, golden(a, b))

    def test_injected_faults_retried_to_success(self):
        from repro.faults import FaultPlan

        payloads = _payloads(8)
        plan = FaultPlan(
            CONFIG, seed=1, serve_failures=[2, 5], serve_fail_attempts=1,
        )
        results, metrics = _serve(
            payloads, workers=2, retries=2, fault_plan=plan,
        )
        for (a, b), result in zip(payloads, results):
            np.testing.assert_array_equal(result, golden(a, b))
        assert metrics.retries == 2
        assert metrics.failovers == 2
        assert metrics.requests == 8

    def test_fault_without_retries_surfaces(self):
        from repro.faults import FaultPlan, WorkerFault

        plan = FaultPlan(CONFIG, seed=1, serve_failures=[1])
        with pytest.raises(WorkerFault):
            _serve(_payloads(2), workers=1, fault_plan=plan)

    def test_injected_stall_inflates_latency(self):
        from repro.faults import FaultPlan

        base = _serve(_payloads(4), workers=1)[1]
        plan = FaultPlan(CONFIG, seed=0, serve_stalls={2: 0.25})
        stalled = _serve(_payloads(4), workers=1, fault_plan=plan)[1]
        # The stalled request carries the whole 0.25 s on the simulated
        # clock (p99 interpolates, so compare against the raw stall).
        assert stalled.p99_latency_s >= 0.25
        assert stalled.sim_makespan_s > base.sim_makespan_s

    def test_close_fails_outstanding_futures(self):
        import asyncio
        import threading

        from repro.serve import Server, ServerClosed

        async def main():
            # batch_limit=1: the scheduler dispatches one request at a
            # time, so everything behind the slow head stays queued.
            server = Server(workers=1, config=CONFIG, batch_limit=1)
            await server.start()
            release = threading.Event()

            def slow(device, payload):
                release.wait(timeout=5.0)
                return payload

            first = asyncio.ensure_future(server.submit(slow, 1))
            await asyncio.sleep(0.05)
            rest = [
                asyncio.ensure_future(server.submit(slow, n))
                for n in range(2, 8)
            ]
            await asyncio.sleep(0.05)
            # Unblock the in-flight head only after close() has begun.
            asyncio.get_running_loop().call_later(0.2, release.set)
            await server.close()
            outcomes = await asyncio.gather(
                first, *rest, return_exceptions=True
            )
            assert all(
                outcome in (1, 2, 3, 4, 5, 6, 7)
                or isinstance(outcome, ServerClosed)
                for outcome in outcomes
            )
            assert any(
                isinstance(outcome, ServerClosed) for outcome in outcomes
            ), "close() must fail whatever it could not drain"
            with pytest.raises(ServerClosed):
                await server.submit(slow, 99)

        asyncio.run(main())

    def test_reset_with_active_server_errors(self):
        import asyncio

        import repro.pim as pim

        from repro.serve import Server

        async def main():
            server = Server(workers=1, config=CONFIG)
            await server.start()
            try:
                with pytest.raises(RuntimeError, match="active services"):
                    pim.reset()
            finally:
                await server.close()
            pim.reset()  # clean after close

        asyncio.run(main())

    def test_metrics_dict_carries_resilience_counters(self):
        _, metrics = _serve(_payloads(2), workers=1)
        payload = metrics.as_dict()
        for key in ("timeouts", "retries", "failovers"):
            assert payload[key] == 0
