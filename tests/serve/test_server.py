"""Tests for the async batch serving layer (:mod:`repro.serve`).

What must hold: every submitted request gets the bit-exact result its
inputs demand (no cross-request contamination inside a batch), the
scheduler actually spreads work across the worker pool, and the
simulated-clock metrics are internally consistent (p50 <= p99, makespan
covers every request, throughput derives from makespan).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import PIMConfig
from repro.serve import CompiledWorkload, ServerMetrics, serve_workload


CONFIG = PIMConfig(crossbars=4, rows=16)
LENGTH = CONFIG.total_rows  # one full register per tensor


def model(a, b):
    return a * b + a


def golden(a, b):
    return np.int32(a.astype(np.int64) * b + a)


def _payloads(count, length=LENGTH, seed=3):
    rng = np.random.default_rng(seed)
    return [
        (rng.integers(-1000, 1000, length).astype(np.int32),
         rng.integers(-1000, 1000, length).astype(np.int32))
        for _ in range(count)
    ]


def _serve(payloads, **kwargs):
    kwargs.setdefault("config", CONFIG)
    kwargs.setdefault("backend", "numpy")
    return serve_workload(CompiledWorkload(model), payloads, **kwargs)


class TestCorrectness:
    def test_every_request_bit_exact(self):
        payloads = _payloads(12)
        results, metrics = _serve(payloads, workers=4)
        assert metrics.requests == 12
        for (a, b), result in zip(payloads, results):
            np.testing.assert_array_equal(result, golden(a, b))

    def test_single_worker(self):
        payloads = _payloads(6)
        results, metrics = _serve(payloads, workers=1)
        assert metrics.workers == 1
        for (a, b), result in zip(payloads, results):
            np.testing.assert_array_equal(result, golden(a, b))

    def test_mixed_signatures(self):
        short = _payloads(4, length=LENGTH // 2, seed=5)
        full = _payloads(4, seed=6)
        payloads = [p for pair in zip(short, full) for p in pair]
        results, metrics = _serve(payloads, workers=2)
        assert metrics.requests == 8
        for (a, b), result in zip(payloads, results):
            np.testing.assert_array_equal(result, golden(a, b))

    def test_simulator_backend_serves(self):
        payloads = _payloads(4)
        results, _ = _serve(payloads, workers=2, backend="simulator")
        for (a, b), result in zip(payloads, results):
            np.testing.assert_array_equal(result, golden(a, b))


class TestScheduling:
    def test_batches_spread_across_workers(self):
        _, metrics = _serve(_payloads(16), workers=4)
        assert metrics.batches >= 4, "scheduler must not pin one worker"
        busy = [seconds for seconds in metrics.worker_busy_s if seconds > 0]
        assert len(busy) >= 2, "at least two workers must do real work"

    def test_pool_beats_single_worker(self):
        payloads = _payloads(24)
        _, one = _serve(payloads, workers=1)
        _, four = _serve(payloads, workers=4)
        # The benchmark enforces >= 2x; here just require a real speedup
        # so the test stays robust on tiny request counts.
        assert four.sim_makespan_s < one.sim_makespan_s
        assert four.requests_per_sec > one.requests_per_sec

    def test_staggered_arrivals(self):
        payloads = _payloads(8)
        arrivals = [index * 1e-6 for index in range(8)]
        results, metrics = _serve(payloads, workers=2, arrivals=arrivals)
        for (a, b), result in zip(payloads, results):
            np.testing.assert_array_equal(result, golden(a, b))
        # Makespan spans from the first arrival to the last completion,
        # so it must cover the arrival spread.
        assert metrics.sim_makespan_s >= arrivals[-1] - arrivals[0]


class TestMetrics:
    def test_internal_consistency(self):
        _, metrics = _serve(_payloads(10), workers=2)
        assert isinstance(metrics, ServerMetrics)
        assert metrics.p50_latency_s <= metrics.p99_latency_s
        assert metrics.sim_makespan_s > 0
        expected_rate = metrics.requests / metrics.sim_makespan_s
        assert metrics.requests_per_sec == pytest.approx(expected_rate)
        assert len(metrics.worker_busy_s) == metrics.workers == 2

    def test_as_dict_is_json_shaped(self):
        import json

        _, metrics = _serve(_payloads(4), workers=2)
        payload = metrics.as_dict()
        for key in ("requests", "batches", "workers", "requests_per_sec",
                    "p50_latency_s", "p99_latency_s", "sim_makespan_s"):
            assert key in payload
        json.dumps(payload)  # must be serializable as-is


def test_cli_demo_runs():
    """The README quickstart (``python -m repro.serve``) must keep working."""
    from repro.serve.__main__ import main

    assert main(["--workers", "2", "--clients", "2", "--requests", "2",
                 "--crossbars", "4", "--rows", "16", "--json"]) == 0
