"""Documentation checks: README/docs code snippets must stay healthy.

Every fenced ``python`` block in the top-level README and in
``docs/architecture.md`` must at least compile; blocks whose first line
is ``# runnable`` are executed end-to-end (the README quickstart runs a
real tensor program on the simulator). This is the CI "docs check":
documentation drift breaks the build, not the reader.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = [REPO_ROOT / "README.md", REPO_ROOT / "docs" / "architecture.md"]

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path):
    return _FENCE.findall(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("doc", DOCS, ids=[d.name for d in DOCS])
def test_docs_exist_and_have_snippets(doc):
    assert doc.exists(), f"{doc} is missing"
    assert python_blocks(doc), f"{doc} has no python snippets"


@pytest.mark.parametrize("doc", DOCS, ids=[d.name for d in DOCS])
def test_snippets_compile(doc):
    for index, block in enumerate(python_blocks(doc)):
        compile(block, f"{doc.name}[block {index}]", "exec")


def test_readme_imports_cleanly():
    """Every import statement shown in README snippets must resolve."""
    readme = DOCS[0]
    imports = [
        line.strip()
        for block in python_blocks(readme)
        for line in block.splitlines()
        if re.match(r"\s*(import|from)\s+\w", line)
    ]
    assert imports, "README shows no imports"
    namespace: dict = {}
    exec("\n".join(imports), namespace)


def test_runnable_snippets_execute():
    """Blocks tagged '# runnable' run end-to-end on the simulator."""
    ran = 0
    for doc in DOCS:
        for block in python_blocks(doc):
            if block.lstrip().startswith("# runnable"):
                exec(compile(block, f"{doc.name} runnable", "exec"), {})
                ran += 1
    assert ran >= 1, "expected at least one runnable snippet (README quickstart)"


def test_readme_referenced_paths_exist():
    """Relative paths the README links to must exist in the repo."""
    text = DOCS[0].read_text(encoding="utf-8")
    for target in re.findall(r"\]\(([\w./-]+)\)", text):
        if target.startswith(("http:", "https:")):
            continue
        assert (REPO_ROOT / target).exists(), f"README links to missing {target}"
