"""Tests for the 64-bit micro-operation encoding (Figure 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.micro_ops import (
    CrossbarMaskOp,
    GateType,
    LogicHOp,
    LogicVOp,
    MoveOp,
    ReadOp,
    RowMaskOp,
    WriteOp,
    decode,
    encode,
)


def roundtrip(op):
    word = encode(op)
    assert 0 <= word < (1 << 64)
    return decode(word)


class TestEncodingRoundtrip:
    def test_crossbar_mask(self):
        op = CrossbarMaskOp(3, 63, 4)
        assert roundtrip(op) == op

    def test_row_mask(self):
        op = RowMaskOp(1, 1021, 4)
        assert roundtrip(op) == op

    def test_read(self):
        assert roundtrip(ReadOp(17)) == ReadOp(17)

    def test_write(self):
        op = WriteOp(5, 0xDEADBEEF)
        assert roundtrip(op) == op

    def test_logic_h_single_gate(self):
        op = LogicHOp(GateType.NOR, 1, 2, 3, p_a=4, p_b=9, p_out=6, p_end=6)
        assert roundtrip(op) == op

    def test_logic_h_parallel(self):
        op = LogicHOp(GateType.NOT, 0, 0, 7, p_a=0, p_b=0, p_out=0, p_end=31, p_step=1)
        assert roundtrip(op) == op

    def test_logic_v(self):
        op = LogicVOp(GateType.NOT, 12, 900, 3)
        assert roundtrip(op) == op

    def test_move_positive(self):
        op = MoveOp(16, 5, 9, 2, 3)
        assert roundtrip(op) == op

    def test_move_negative_distance(self):
        op = MoveOp(-4, 0, 0, 1, 1)
        assert roundtrip(op) == op

    def test_write_value_exceeding_word_size(self):
        with pytest.raises(ValueError):
            encode(WriteOp(0, 1 << 33), word_size=32)

    def test_kind_tags_are_distinct(self):
        ops = [
            CrossbarMaskOp(0, 0, 1),
            RowMaskOp(0, 0, 1),
            ReadOp(0),
            WriteOp(0, 0),
            LogicHOp(GateType.NOR, 0, 1, 2, p_a=0, p_b=1, p_out=2, p_end=2),
            LogicVOp(GateType.NOT, 0, 1, 0),
            MoveOp(1, 0, 0, 0, 0),
        ]
        tags = {encode(op) >> 61 for op in ops}
        assert len(tags) == len(ops)


class TestValidation:
    def test_logic_h_requires_ordered_inputs(self):
        with pytest.raises(ValueError):
            LogicHOp(GateType.NOR, 0, 1, 2, p_a=5, p_b=2, p_out=3, p_end=3)

    def test_logic_h_step_divides(self):
        with pytest.raises(ValueError):
            LogicHOp(GateType.NOR, 0, 1, 2, p_a=0, p_b=1, p_out=2, p_end=7, p_step=3)

    def test_logic_h_gate_count(self):
        op = LogicHOp(GateType.NOT, 0, 0, 1, p_a=0, p_b=0, p_out=1, p_end=31, p_step=2)
        assert op.gate_count == 16

    def test_vertical_nor_rejected(self):
        with pytest.raises(ValueError):
            LogicVOp(GateType.NOR, 0, 1, 0)


@given(
    start=st.integers(0, 1000),
    stop_extra=st.integers(0, 1000),
    step=st.integers(1, 100),
)
def test_mask_roundtrip_property(start, stop_extra, step):
    op = CrossbarMaskOp(start, start + step * (stop_extra % 7), step)
    assert roundtrip(op) == op


@given(
    gate=st.sampled_from([GateType.NOR, GateType.NOT, GateType.INIT0, GateType.INIT1]),
    in_a=st.integers(0, 31),
    in_b=st.integers(0, 31),
    out=st.integers(0, 31),
    p_a=st.integers(0, 15),
    p_b_extra=st.integers(0, 15),
    p_out=st.integers(0, 31),
    gates=st.integers(1, 4),
    p_step=st.integers(1, 8),
)
def test_logic_h_roundtrip_property(
    gate, in_a, in_b, out, p_a, p_b_extra, p_out, gates, p_step
):
    op = LogicHOp(
        gate, in_a, in_b, out,
        p_a=p_a,
        p_b=p_a + p_b_extra,
        p_out=p_out,
        p_end=p_out + (gates - 1) * p_step,
        p_step=p_step,
    )
    assert roundtrip(op) == op
