"""Unit and property tests for the range-based masks of Section III-B."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.arch.masks import RangeMask


class TestRangeMaskBasics:
    def test_all(self):
        mask = RangeMask.all(10)
        assert len(mask) == 10
        assert list(mask.indices()) == list(range(10))

    def test_single(self):
        mask = RangeMask.single(7)
        assert len(mask) == 1
        assert 7 in mask
        assert 6 not in mask

    def test_strided(self):
        mask = RangeMask(2, 10, 4)
        assert list(mask.indices()) == [2, 6, 10]

    def test_step_must_divide(self):
        with pytest.raises(ValueError):
            RangeMask(0, 10, 3)

    def test_stop_before_start(self):
        with pytest.raises(ValueError):
            RangeMask(5, 4, 1)

    def test_negative_start(self):
        with pytest.raises(ValueError):
            RangeMask(-1, 4, 1)

    def test_boolean_expansion(self):
        mask = RangeMask(1, 5, 2)
        expected = np.array([False, True, False, True, False, True, False])
        assert (mask.boolean(7) == expected).all()

    def test_boolean_out_of_bounds(self):
        with pytest.raises(ValueError):
            RangeMask(0, 10, 1).boolean(5)

    def test_contains_respects_phase(self):
        mask = RangeMask(1, 9, 2)
        assert 3 in mask
        assert 4 not in mask
        assert 11 not in mask


class TestFromSlice:
    def test_full_slice(self):
        assert RangeMask.from_slice(slice(None), 8) == RangeMask(0, 7, 1)

    def test_even_slice(self):
        assert RangeMask.from_slice(slice(None, None, 2), 8) == RangeMask(0, 6, 2)

    def test_offset_slice(self):
        assert RangeMask.from_slice(slice(1, None, 2), 8) == RangeMask(1, 7, 2)

    def test_bounded_slice(self):
        assert RangeMask.from_slice(slice(2, 6), 8) == RangeMask(2, 5, 1)

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            RangeMask.from_slice(slice(None, None, -1), 8)

    def test_empty_slice_rejected(self):
        with pytest.raises(ValueError):
            RangeMask.from_slice(slice(5, 5), 8)

    @given(
        start=st.integers(0, 20),
        stop=st.integers(1, 40),
        step=st.integers(1, 5),
        length=st.integers(1, 40),
    )
    def test_matches_python_slice_semantics(self, start, stop, step, length):
        sl = slice(start, stop, step)
        expected = list(range(length))[sl]
        if not expected:
            with pytest.raises(ValueError):
                RangeMask.from_slice(sl, length)
            return
        mask = RangeMask.from_slice(sl, length)
        assert list(mask.indices()) == expected


class TestCompose:
    def test_compose_even_of_even(self):
        outer = RangeMask.from_slice(slice(None, None, 2), 16)
        inner = RangeMask.from_slice(slice(None, None, 2), len(outer))
        composed = outer.compose(inner)
        assert list(composed.indices()) == [0, 4, 8, 12]

    def test_compose_offset(self):
        outer = RangeMask.from_slice(slice(1, None, 2), 16)  # 1,3,..,15
        inner = RangeMask.from_slice(slice(2, 6), len(outer))  # picks 2..5
        composed = outer.compose(inner)
        assert list(composed.indices()) == [5, 7, 9, 11]

    @given(
        data=st.data(),
        length=st.integers(4, 60),
    )
    def test_compose_equals_nested_slicing(self, data, length):
        outer_step = data.draw(st.integers(1, 4))
        outer_start = data.draw(st.integers(0, 3))
        base = list(range(length))
        outer_sel = base[outer_start::outer_step]
        if not outer_sel:
            return
        outer = RangeMask.from_slice(slice(outer_start, None, outer_step), length)
        inner_step = data.draw(st.integers(1, 3))
        inner_start = data.draw(st.integers(0, max(0, len(outer_sel) - 1)))
        inner_sel = outer_sel[inner_start::inner_step]
        if not inner_sel:
            return
        inner = RangeMask.from_slice(
            slice(inner_start, None, inner_step), len(outer)
        )
        assert list(outer.compose(inner).indices()) == inner_sel

    def test_compose_bounds_check(self):
        outer = RangeMask(0, 6, 2)
        with pytest.raises(ValueError):
            outer.compose(RangeMask(0, 4, 1))  # inner longer than outer
