"""Unit tests for the architecture configuration (Table III parameters)."""

import pytest

from repro.arch.config import PIMConfig, paper_config, small_config


class TestPIMConfig:
    def test_defaults_match_paper_geometry(self):
        cfg = PIMConfig()
        assert cfg.columns == 1024
        assert cfg.partitions == 32
        assert cfg.word_size == 32
        assert cfg.frequency_hz == 300e6

    def test_registers_derived_from_columns(self):
        cfg = PIMConfig()
        assert cfg.registers == 32
        assert cfg.user_registers == 32 - cfg.scratch_registers

    def test_partition_width(self):
        assert PIMConfig().partition_width == 32

    def test_total_rows_is_parallelism(self):
        cfg = small_config(crossbars=4, rows=16)
        assert cfg.total_rows == 64

    def test_paper_config_is_8gb(self):
        cfg = paper_config()
        assert cfg.capacity_bits == 8 * (1 << 30) * 8
        assert cfg.crossbars == 65536

    def test_scratch_indices_are_top_registers(self):
        cfg = PIMConfig()
        indices = list(cfg.scratch_register_indices())
        assert indices == list(range(cfg.user_registers, cfg.registers))

    def test_columns_must_divide_by_partitions(self):
        with pytest.raises(ValueError):
            PIMConfig(columns=1000, partitions=32, word_size=32)

    def test_partitions_must_equal_word_size(self):
        with pytest.raises(ValueError):
            PIMConfig(partitions=16, word_size=32)

    def test_crossbars_power_of_two(self):
        with pytest.raises(ValueError):
            PIMConfig(crossbars=3)

    def test_needs_user_registers(self):
        with pytest.raises(ValueError):
            PIMConfig(columns=256, partitions=32, word_size=32, scratch_registers=8)

    def test_frozen(self):
        cfg = PIMConfig()
        with pytest.raises(Exception):
            cfg.rows = 1  # type: ignore[misc]
