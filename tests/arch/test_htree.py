"""Tests for the H-tree communication framework (Section III-F)."""

import pytest

from repro.arch.htree import (
    HTree,
    move_cycles,
    move_pairs,
    validate_move_pattern,
)
from repro.arch.masks import RangeMask


class TestHTree:
    def test_sixteen_crossbars_has_two_levels(self):
        assert HTree(16).levels == 2

    def test_group_prefixes(self):
        """Figure 9: group 10xx contains crossbars 8..11."""
        tree = HTree(16)
        assert tree.group(0b1000, 1) == range(8, 12)
        assert tree.group(0b1011, 1) == range(8, 12)
        assert tree.group(0b0101, 1) == range(4, 8)
        assert tree.group(3, 2) == range(0, 16)

    def test_level_for_distance(self):
        tree = HTree(16)
        assert tree.level_for_distance(1, 2) == 1  # same group of 4
        assert tree.level_for_distance(1, 5) == 2  # crosses group boundary

    def test_hop_count_symmetry(self):
        tree = HTree(64)
        for src, dst in [(0, 1), (0, 5), (3, 60)]:
            assert tree.hop_count(src, dst) == tree.hop_count(dst, src)

    def test_hop_count_zero_for_self(self):
        assert HTree(16).hop_count(5, 5) == 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            HTree(12)


class TestMovePatterns:
    def test_paper_example(self):
        """Crossbars xx01 -> xx10: start=0001, step=0100, end=1101, dist=1."""
        mask = RangeMask(0b0001, 0b1101, 0b0100)
        validate_move_pattern(mask, 1, 16)
        pairs = move_pairs(mask, 1, 16)
        assert pairs == [(1, 2), (5, 6), (9, 10), (13, 14)]

    def test_step_must_be_power_of_four(self):
        with pytest.raises(ValueError):
            validate_move_pattern(RangeMask(0, 14, 2), 1, 16)

    def test_step_one_is_power_of_four(self):
        # Contiguous halves: sources 8..15 -> destinations 0..7.
        validate_move_pattern(RangeMask(8, 15, 1), -8, 16)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            validate_move_pattern(RangeMask(0, 12, 4), 4, 16)

    def test_out_of_range_destination(self):
        with pytest.raises(ValueError):
            validate_move_pattern(RangeMask(12, 12, 1), 8, 16)

    def test_zero_distance_rejected(self):
        with pytest.raises(ValueError):
            validate_move_pattern(RangeMask(0, 0, 1), 0, 16)

    def test_single_crossbar_any_step(self):
        validate_move_pattern(RangeMask.single(3), 2, 16)

    def test_move_cycles_scale_with_level(self):
        near = move_cycles(RangeMask.single(0), 1, 16)  # within group of 4
        far = move_cycles(RangeMask.single(0), 15, 16)  # across the root
        assert far > near
