"""Tests for the half-gates technique (Section III-D2, Table I)."""

import pytest

from repro.arch.halfgates import (
    Opcode,
    expand_pattern,
    opcode_table,
    opcodes_for_pattern,
    sections_from_selects,
    transistor_selects,
)
from repro.arch.micro_ops import GateType, LogicHOp

N = 32


class TestTableI:
    """The per-partition opcode table must match Table I exactly."""

    def test_eight_opcodes(self):
        assert len(list(Opcode)) == 8

    def test_table_contents(self):
        table = opcode_table()
        assert table[0b000] == "-"
        assert table[0b001] == "? -> Out"
        assert table[0b010] == "(?, InB) -> ?"
        assert table[0b011] == "(?, InB) -> Out"
        assert table[0b100] == "(InA, ?) -> ?"
        assert table[0b101] == "(InA, ?) -> Out"
        assert table[0b110] == "(InA, InB) -> ?"
        assert table[0b111] == "(InA, InB) -> Out"

    def test_bit_semantics(self):
        assert Opcode.INA.applies_in_a and not Opcode.INA.applies_out
        assert Opcode.OUT.applies_out and not Opcode.OUT.applies_in_a
        assert Opcode.INA_INB_OUT.applies_in_a
        assert Opcode.INA_INB_OUT.applies_in_b
        assert Opcode.INA_INB_OUT.applies_out


class TestExpandPattern:
    def test_single_gate(self):
        op = LogicHOp(GateType.NOR, 0, 1, 2, p_a=1, p_b=3, p_out=2, p_end=2)
        assert expand_pattern(op, N) == [((1, 3), 2)]

    def test_periodic_gates(self):
        # Figure 7(c)-style: input partition k, output partition k+1, period 2.
        op = LogicHOp(
            GateType.NOT, 0, 0, 1, p_a=0, p_b=0, p_out=1, p_end=31, p_step=2
        )
        gates = expand_pattern(op, N)
        assert len(gates) == 16
        assert gates[0] == ((0,), 1)
        assert gates[-1] == ((30,), 31)

    def test_parallel_init(self):
        op = LogicHOp(GateType.INIT1, 0, 0, 5, p_a=0, p_b=0, p_out=0, p_end=31)
        gates = expand_pattern(op, N)
        assert len(gates) == 32
        assert all(inputs == () for inputs, _ in gates)

    def test_out_of_range_partition(self):
        op = LogicHOp(GateType.NOT, 0, 0, 1, p_a=30, p_b=30, p_out=33, p_end=33)
        with pytest.raises(ValueError):
            expand_pattern(op, N)

    def test_intersecting_sections_rejected(self):
        # Gates spanning 3 partitions at step 2 intersect.
        op = LogicHOp(
            GateType.NOR, 0, 1, 2, p_a=0, p_b=1, p_out=2, p_end=30, p_step=2
        )
        with pytest.raises(ValueError):
            expand_pattern(op, N)


class TestOpcodesForPattern:
    def test_figure_8c_example(self):
        """Inputs in partition k, output in partition k+1, repeating."""
        op = LogicHOp(
            GateType.NOR, 0, 1, 3, p_a=0, p_b=0, p_out=1, p_end=3, p_step=2
        )
        codes = opcodes_for_pattern(op, 4)
        assert codes[0] == Opcode.INA_INB
        assert codes[1] == Opcode.OUT
        assert codes[2] == Opcode.INA_INB
        assert codes[3] == Opcode.OUT

    def test_same_partition_gate(self):
        op = LogicHOp(GateType.NOR, 0, 1, 2, p_a=5, p_b=5, p_out=5, p_end=5)
        codes = opcodes_for_pattern(op, N)
        assert codes[5] == Opcode.INA_INB_OUT
        assert all(code == Opcode.NONE for i, code in enumerate(codes) if i != 5)

    def test_uninvolved_partitions_are_none(self):
        op = LogicHOp(GateType.NOR, 0, 1, 2, p_a=1, p_b=2, p_out=4, p_end=4)
        codes = opcodes_for_pattern(op, 8)
        assert codes[0] == Opcode.NONE
        assert codes[3] == Opcode.NONE  # between InB and Out: no voltages
        assert codes[5] == Opcode.NONE


class TestTransistorSelects:
    def test_selects_isolate_each_gate(self):
        op = LogicHOp(
            GateType.NOR, 0, 1, 3, p_a=0, p_b=0, p_out=1, p_end=31, p_step=2
        )
        selects = transistor_selects(op, N)
        sections = sections_from_selects(selects)
        gates = expand_pattern(op, N)
        for inputs, out in gates:
            cells = set(inputs) | {out}
            containing = [s for s in sections if cells <= set(s)]
            assert containing, f"gate {cells} not contained in one section"

    def test_gates_in_distinct_sections(self):
        op = LogicHOp(
            GateType.NOT, 0, 0, 1, p_a=0, p_b=0, p_out=1, p_end=29, p_step=4
        )
        selects = transistor_selects(op, N)
        sections = sections_from_selects(selects)
        gates = expand_pattern(op, N)

        def section_of(partition):
            for idx, sec in enumerate(sections):
                if partition in sec:
                    return idx
            raise AssertionError

        seen = set()
        for inputs, out in gates:
            sec = section_of(out)
            assert all(section_of(p) == sec for p in inputs)
            assert sec not in seen
            seen.add(sec)

    def test_serial_gate_keeps_row_connected(self):
        op = LogicHOp(GateType.NOR, 0, 1, 2, p_a=0, p_b=15, p_out=31, p_end=31)
        selects = transistor_selects(op, N)
        sections = sections_from_selects(selects)
        cells = {0, 15, 31}
        assert any(cells <= set(s) for s in sections)
