"""Tests for macro-instruction definitions and validation."""

import pytest

from repro.arch.masks import RangeMask
from repro.isa.dtypes import float32, int32
from repro.isa.instructions import (
    ARITY,
    SUPPORT_MATRIX,
    MoveInstr,
    ReadInstr,
    RInstr,
    ROp,
    WriteInstr,
    validate,
)

REGS = 32


class TestSupportMatrix:
    def test_table_ii_coverage(self):
        """Every Table II row exists with the right dtype support."""
        both = {
            ROp.ADD, ROp.SUB, ROp.MUL, ROp.DIV, ROp.NEG,
            ROp.LT, ROp.LE, ROp.GT, ROp.GE, ROp.EQ, ROp.NE,
            ROp.BIT_NOT, ROp.BIT_AND, ROp.BIT_OR, ROp.BIT_XOR,
            ROp.SIGN, ROp.ZERO, ROp.ABS, ROp.MUX,
        }
        for op in both:
            names = {d.name for d in SUPPORT_MATRIX[op]}
            assert names == {"int32", "float32"}, op
        assert {d.name for d in SUPPORT_MATRIX[ROp.MOD]} == {"int32"}

    def test_arity_defined_for_all_ops(self):
        assert set(ARITY) == set(SUPPORT_MATRIX)


class TestValidation:
    def test_valid_add(self):
        validate(RInstr(ROp.ADD, int32, dest=0, src_a=1, src_b=2), REGS)

    def test_float_mod_rejected(self):
        with pytest.raises(ValueError):
            validate(RInstr(ROp.MOD, float32, dest=0, src_a=1, src_b=2), REGS)

    def test_missing_operand(self):
        with pytest.raises(ValueError):
            validate(RInstr(ROp.ADD, int32, dest=0, src_a=1), REGS)

    def test_extra_operand(self):
        with pytest.raises(ValueError):
            validate(
                RInstr(ROp.NEG, int32, dest=0, src_a=1, src_b=2), REGS
            )

    def test_mux_needs_three_sources(self):
        validate(RInstr(ROp.MUX, int32, dest=0, src_a=1, src_b=2, src_c=3), REGS)
        with pytest.raises(ValueError):
            validate(RInstr(ROp.MUX, int32, dest=0, src_a=1, src_b=2), REGS)

    def test_register_out_of_range(self):
        with pytest.raises(ValueError):
            validate(RInstr(ROp.ADD, int32, dest=40, src_a=1, src_b=2), REGS)

    def test_sources_helper(self):
        instr = RInstr(ROp.MUX, int32, dest=0, src_a=1, src_b=2, src_c=3)
        assert instr.sources() == (1, 2, 3)
        assert RInstr(ROp.NEG, int32, dest=0, src_a=7).sources() == (7,)

    def test_move_validation(self):
        validate(MoveInstr(0, 1, src_thread=0, dst_thread=1), REGS)
        with pytest.raises(ValueError):
            validate(MoveInstr(0, 99, src_thread=0, dst_thread=1), REGS)

    def test_read_write_validation(self):
        validate(ReadInstr(0, 0, 5), REGS)
        validate(WriteInstr(5, 0xFFFFFFFF), REGS)
        with pytest.raises(ValueError):
            validate(WriteInstr(5, 1 << 32), REGS)
        with pytest.raises(ValueError):
            validate(ReadInstr(0, 0, 99), REGS)

    def test_non_instruction_rejected(self):
        with pytest.raises(TypeError):
            validate(object(), REGS)  # type: ignore[arg-type]

    def test_write_with_masks(self):
        validate(
            WriteInstr(3, 7, warp_mask=RangeMask(0, 2, 1), row_mask=RangeMask.single(4)),
            REGS,
        )
