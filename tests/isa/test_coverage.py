"""End-to-end Table II coverage: every (operation, dtype) cell executes
correctly through driver + simulator against the golden semantics."""

import numpy as np
import pytest

from repro.isa.dtypes import float32, int32
from repro.isa.instructions import ARITY, SUPPORT_MATRIX, ROp
from repro.theory.golden import golden_rtype

from tests.conftest import rand_float32, rand_int32
from tests.driver.harness import Chip, assert_same_bits

N = 24


def _operands(rng, dtype, op):
    if dtype is int32:
        a = rand_int32(rng, N)
        b = rand_int32(rng, N)
        if op in (ROp.DIV, ROp.MOD):
            b[b == 0] = 3
    else:
        a = rand_float32(rng, N)
        b = rand_float32(rng, N)
    cond = rng.integers(0, 2, N).astype(np.int32)
    return a, b, cond


@pytest.mark.parametrize(
    "op,dtype",
    [
        (op, dtype)
        for op, dtypes in sorted(SUPPORT_MATRIX.items(), key=lambda kv: kv[0].value)
        for dtype in dtypes
    ],
    ids=lambda x: getattr(x, "value", None) or getattr(x, "name", str(x)),
)
def test_table_ii_cell(op, dtype):
    rng = np.random.default_rng(hash((op.value, dtype.name)) % 2**32)
    chip = Chip()
    a, b, cond = _operands(rng, dtype, op)
    np_a = a.view(dtype.np_dtype)
    np_b = b.view(dtype.np_dtype)

    chip.put(0, np_a, dtype)
    arity = ARITY[op]
    if op is ROp.MUX:
        chip.put(2, cond, int32)
        chip.put(1, np_b, dtype)
        chip.run(op, dtype, 3, 2, 0, 1)
        expected = golden_rtype(op, dtype, cond, np_a, np_b)
    elif arity == 2:
        chip.put(1, np_b, dtype)
        chip.run(op, dtype, 3, 0, 1)
        expected = golden_rtype(op, dtype, np_a, np_b)
    else:
        chip.run(op, dtype, 3, 0)
        expected = golden_rtype(op, dtype, np_a)

    if op in (ROp.BIT_NOT, ROp.BIT_AND, ROp.BIT_OR, ROp.BIT_XOR):
        # Bitwise ops act on raw words; read back as int32 so NaN bit
        # patterns survive the scalar round trip.
        got = chip.get(3, N, int32)
        assert_same_bits(got, expected.view(np.int32))
        return
    result_dtype = int32 if expected.dtype == np.int32 and dtype is float32 else dtype
    got = chip.get(3, N, result_dtype)
    assert_same_bits(got, expected.astype(result_dtype.np_dtype))
