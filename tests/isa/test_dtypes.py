"""Tests for ISA data types and raw-word conversion."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.isa.dtypes import (
    array_to_raw,
    float32,
    int32,
    raw_to_array,
    raw_to_value,
    value_to_raw,
)

from tests.conftest import int32s, safe_floats


class TestScalars:
    def test_int_roundtrip(self):
        for value in (0, 1, -1, 2**31 - 1, -(2**31)):
            assert raw_to_value(value_to_raw(value, int32), int32) == value

    def test_int_wraps(self):
        assert value_to_raw(-1, int32) == 0xFFFFFFFF

    def test_float_roundtrip(self):
        for value in (0.0, 1.5, -2.25, 1e20, -1e-20):
            expected = float(np.float32(value))
            assert raw_to_value(value_to_raw(value, float32), float32) == expected

    def test_float_bit_pattern(self):
        assert value_to_raw(1.0, float32) == 0x3F800000
        assert value_to_raw(-0.0, float32) == 0x80000000

    def test_raw_out_of_range(self):
        with pytest.raises(ValueError):
            raw_to_value(1 << 32, int32)

    @given(int32s())
    def test_int_roundtrip_property(self, value):
        assert raw_to_value(value_to_raw(value, int32), int32) == value

    @given(safe_floats())
    def test_float_roundtrip_property(self, value):
        assert raw_to_value(value_to_raw(value, float32), float32) == np.float32(value)


class TestArrays:
    def test_int_array_roundtrip(self):
        data = np.array([-5, 0, 7, 2**31 - 1], dtype=np.int32)
        assert (raw_to_array(array_to_raw(data, int32), int32) == data).all()

    def test_float_array_roundtrip(self):
        data = np.array([0.5, -3.25, 1e10], dtype=np.float32)
        raw = array_to_raw(data, float32)
        assert raw.dtype == np.uint32
        assert (raw_to_array(raw, float32) == data).all()

    def test_dtype_properties(self):
        assert int32.bits == 32 and not int32.is_float
        assert float32.bits == 32 and float32.is_float
        assert repr(float32) == "float32"
