"""In-memory database analytics on PIM (the paper's intro motivation).

Bulk-bitwise PIM architectures target database scan/aggregate queries
(Perach et al., cited as [39]): the table's columns live in PIM registers
and predicates/aggregations run as element-parallel instructions without
moving rows to the CPU.

See the README quickstart (``README.md``) for the tensor-API basics
this example builds on, and ``docs/architecture.md`` for the underlying
compile/replay pipeline.

This example builds an orders table and answers::

    SELECT SUM(quantity * price)
    FROM orders
    WHERE region == EU AND quantity < 40        -- revenue query

    SELECT COUNT(*) FROM orders WHERE price > 90

Run with::

    python examples/database_analytics.py
"""

import os

import numpy as np

import repro.pim as pim

EU, US, APAC = 0, 1, 2

#: CI knob: shrink the simulated memory so every example finishes fast.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")


def main() -> None:
    pim.init(crossbars=4 if FAST else 16, rows=64 if FAST else 256)
    rng = np.random.default_rng(7)
    n = 256 if FAST else 2048

    # The columnar table, loaded into three PIM registers.
    quantity_h = rng.integers(1, 100, n).astype(np.int32)
    price_h = rng.integers(5, 120, n).astype(np.int32)
    region_h = rng.integers(0, 3, n).astype(np.int32)

    quantity = pim.from_numpy(quantity_h)
    price = pim.from_numpy(price_h)
    region = pim.from_numpy(region_h)

    with pim.Profiler() as prof:
        # Predicate: region == EU AND quantity < 40 (bitwise AND of the
        # 0/1 comparison words is the conjunction).
        predicate = (region == EU) & (quantity < 40)
        # Masked aggregation: revenue where the predicate holds.
        revenue = pim.where(predicate, quantity * price,
                            pim.zeros(n, dtype=pim.int32)).sum()
        # Second query: a filtered count is just a sum of the 0/1 words.
        expensive = (price > 90).sum()

    mask_h = (region_h == EU) & (quantity_h < 40)
    expected_revenue = int((quantity_h * price_h)[mask_h].sum())
    expected_count = int((price_h > 90).sum())

    print(f"rows scanned:              {n}")
    print(f"EU small-order revenue:    {revenue}   (numpy: {expected_revenue})")
    print(f"orders with price > 90:    {expensive}   (numpy: {expected_count})")
    print(f"PIM cycles for both queries: {prof.cycles}")
    assert revenue == expected_revenue
    assert expensive == expected_count
    print("OK — PIM results match the CPU reference.")


if __name__ == "__main__":
    main()
