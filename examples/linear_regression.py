"""Linear regression by gradient descent on PIM matrices.

Uses the MatPIM-style :class:`repro.pim.linalg.Matrix` layer: the design
matrix lives column-major in the memory, and every gradient step is
matrix-vector products plus vectored float arithmetic executed in-memory.
The two model weights are host scalars — the hybrid CPU-PIM split of
Section V-A.

Run with::

    python examples/linear_regression.py

See the README quickstart (``README.md``) for the tensor-API basics;
every gradient step re-issues the same macro-instructions, so all but
the first iteration replay compiled programs (``docs/architecture.md``).
The naive form of this math (recomputing the residual expression per
gradient term) is the workload ``benchmarks/test_graph_opt.py`` uses to
demonstrate the graph optimizer: ``pim.compile(opt_level=2)`` removes
the recomputation while staying bit-identical to eager execution.
"""

import os

import numpy as np

import repro.pim as pim
from repro.pim.linalg import Matrix, dot

#: CI knob: shrink the workload so every example finishes fast.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")

STEPS = 40 if FAST else 60
LEARNING_RATE = 0.3 if FAST else 0.15


def main() -> None:
    pim.init(crossbars=4 if FAST else 16, rows=64 if FAST else 256)
    rng = np.random.default_rng(3)
    n = 128 if FAST else 512

    # y = 1.7 x + 0.6 + noise; design matrix columns [x, 1].
    x_h = rng.uniform(-1, 1, n).astype(np.float32)
    y_h = (1.7 * x_h + 0.6 + rng.normal(scale=0.05, size=n)).astype(np.float32)

    design = Matrix.from_numpy(np.stack([x_h, np.ones(n, np.float32)], axis=1))
    x_col = design.column(0)
    y = pim.from_numpy(y_h)

    slope, intercept = 0.0, 0.0
    with pim.Profiler() as prof:
        for _ in range(STEPS):
            predictions = design.matvec([slope, intercept])
            residual = predictions - y
            grad_slope = 2.0 * dot(residual, x_col) / n
            grad_intercept = 2.0 * residual.sum() / n
            slope -= LEARNING_RATE * grad_slope
            intercept -= LEARNING_RATE * grad_intercept

    # Reference: closed-form least squares on the host.
    a = np.stack([x_h, np.ones(n, np.float32)], axis=1).astype(np.float64)
    ref_slope, ref_intercept = np.linalg.lstsq(a, y_h.astype(np.float64),
                                               rcond=None)[0]

    print(f"samples: {n}, gradient steps: {STEPS}")
    print(f"PIM fit:        slope={slope:+.4f}  intercept={intercept:+.4f}")
    print(f"least squares:  slope={ref_slope:+.4f}  intercept={ref_intercept:+.4f}")
    print(f"PIM cycles: {prof.cycles}")
    assert abs(slope - ref_slope) < 0.02
    assert abs(intercept - ref_intercept) < 0.02
    print("OK — gradient descent on PIM converged to the least-squares fit.")


if __name__ == "__main__":
    main()
