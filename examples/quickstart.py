"""Quickstart: the paper's end-to-end example program (Figure 12).

Run with::

    python examples/quickstart.py

Demonstrates tensor allocation, scalar read/write, a user-defined PIM
routine, tensor views, and logarithmic-time reduction — all executed as
stateful-logic micro-operations on the bit-accurate simulator.

New here? Start with the README quickstart (``README.md``) for setup
and the layer-stack overview, and ``docs/architecture.md`` for how each
tensor operation becomes a compiled micro-op program.
"""

import repro.pim as pim


def my_func(a: pim.Tensor, b: pim.Tensor):
    """Parallel multiplication and addition (a * b + a), entirely in PIM."""
    return a * b + a


def main() -> None:
    # A small simulated memory: 16 crossbars x 256 rows (the paper uses
    # 2**20-element tensors on an 8 GB memory; semantics are identical).
    pim.init(crossbars=16, rows=256)

    # Tensor initialization -------------------------------------------------
    x = pim.zeros(4096, dtype=pim.float32)
    y = pim.zeros(4096, dtype=pim.float32)
    x[4], y[4] = 8.0, 0.5
    x[5], y[5] = 20.0, 1.0
    x[8], y[8] = 10.0, 1.0

    # Custom function call --------------------------------------------------
    with pim.Profiler() as prof:
        z = my_func(x, y)
        # Logarithmic-time reduction of the even indices.
        total = z[::2].sum()

    print(f"z[::2].sum() = {total}  (expected 32.0 = 8*1.5 + 10*2)")
    print(f"\nPIM cycles spent: {prof.cycles}")
    print("Micro-operation breakdown:")
    for kind, count in sorted(prof.stats.op_counts.items()):
        print(f"  {kind:<16} {count}")

    # Interactive-style inspection (artifact appendix, Section G) -----------
    w = pim.zeros(8, dtype=pim.float32)
    w[2], w[3], w[4] = 2.5, 1.25, 2.25
    print("\nInteractive session:")
    print(w)
    print(w[::2])
    print(f"w[::2].sum()  -> {w[::2].sum()}")
    print(w[::2].sort())


if __name__ == "__main__":
    main()
