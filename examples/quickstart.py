"""Quickstart: the paper's end-to-end example program (Figure 12).

Run with::

    python examples/quickstart.py

Demonstrates tensor allocation, scalar read/write, a user-defined PIM
routine, tensor views, logarithmic-time reduction — and the one-liner
that turns the routine into a captured, replayable graph
(``@pim.compile``): the first call records every macro-instruction the
function issues and fuses them into one compiled program; later calls
skip the tensor layer entirely and replay it with fresh input data,
bit-identical to eager execution.

New here? Start with the README quickstart (``README.md``) for setup
and the layer-stack overview, and ``docs/architecture.md`` for how each
tensor operation becomes a compiled micro-op program.

Set ``REPRO_EXAMPLES_FAST=1`` (CI does) to run on a smaller simulated
memory; the program and its output semantics are identical.
"""

import os
import time

import repro.pim as pim

#: CI knob: shrink the simulated memory so every example finishes fast.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")


@pim.compile
def my_func(a: pim.Tensor, b: pim.Tensor):
    """Parallel multiplication and addition (a * b + a), entirely in PIM."""
    return a * b + a


def main() -> None:
    # A small simulated memory (the paper uses 2**20-element tensors on
    # an 8 GB memory; semantics are identical at any size).
    n = 1024 if FAST else 4096
    pim.init(crossbars=4 if FAST else 16, rows=256)

    # Tensor initialization -------------------------------------------------
    x = pim.zeros(n, dtype=pim.float32)
    y = pim.zeros(n, dtype=pim.float32)
    x[4], y[4] = 8.0, 0.5
    x[5], y[5] = 20.0, 1.0
    x[8], y[8] = 10.0, 1.0

    # Custom function call --------------------------------------------------
    # First call: the decorated function is traced and compiled.
    with pim.Profiler() as prof:
        z = my_func(x, y)
        # Logarithmic-time reduction of the even indices.
        total = z[::2].sum()

    print(f"z[::2].sum() = {total}  (expected 32.0 = 8*1.5 + 10*2)")
    print(f"\nPIM cycles spent: {prof.cycles}")
    print("Micro-operation breakdown:")
    for kind, count in sorted(prof.stats.op_counts.items()):
        print(f"  {kind:<16} {count}")

    # Compiled replay -------------------------------------------------------
    # Later calls replay the fused program: same cycles, same results,
    # a fraction of the host dispatch time.
    x[4] = 16.0
    start = time.perf_counter()
    z = my_func(x, y)
    replay_ms = (time.perf_counter() - start) * 1e3
    print(f"\ncompiled replay with x[4]=16: z[::2].sum() = {z[::2].sum()} "
          f"(expected 44.0, {replay_ms:.1f} ms host time)")

    # Graph optimizer ------------------------------------------------------
    # opt_level >= 2 removes recomputed subexpressions, dead temporaries
    # and constant subgraphs from the captured stream before lowering;
    # outputs stay bit-identical to eager mode, replays spend fewer
    # PIM cycles, and opt_report() shows the pre/post accounting.
    @pim.compile(opt_level=2)
    def gradient_terms(a, b):
        pred = a * b + a
        resid = a * b - a      # recomputed product: eliminated at O2
        return pred, resid.sum()

    gradient_terms(x, y)
    report = gradient_terms.opt_report(x, y)
    print(f"\nOptimized capture (opt_level=2): {report.summary()}")
    assert report.cycles_after < report.cycles_before

    # Interactive-style inspection (artifact appendix, Section G) -----------
    w = pim.zeros(8, dtype=pim.float32)
    w[2], w[3], w[4] = 2.5, 1.25, 2.25
    print("\nInteractive session:")
    print(w)
    print(w[::2])
    print(f"w[::2].sum()  -> {w[::2].sum()}")
    print(w[::2].sort())


if __name__ == "__main__":
    main()
