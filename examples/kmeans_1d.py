"""1-D k-means clustering on PIM (iterative hybrid CPU-PIM workload).

Each iteration runs entirely vectored on the PIM: distances to both
centroids (float subtract/abs), the assignment predicate (compare), and
the per-cluster sums and counts (where + reduction). Only the two scalar
centroid updates touch the host — the hybrid CPU-PIM development style
Section V-A advertises.

Run with::

    python examples/kmeans_1d.py

See the README quickstart (``README.md``) for the tensor-API basics;
the repeated per-iteration macro-instructions here replay from the
driver's program cache (``docs/architecture.md``).
"""

import os

import numpy as np

import repro.pim as pim

ITERATIONS = 8

#: CI knob: shrink the simulated memory so every example finishes fast.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")


def main() -> None:
    pim.init(crossbars=4 if FAST else 16, rows=64 if FAST else 256)
    rng = np.random.default_rng(11)
    n = 256 if FAST else 1024

    # Two well-separated clusters.
    data_h = np.concatenate(
        [rng.normal(-2.0, 0.4, n // 2), rng.normal(3.0, 0.6, n // 2)]
    ).astype(np.float32)
    rng.shuffle(data_h)
    data = pim.from_numpy(data_h)

    c0, c1 = -5.0, 5.0  # deliberately poor initial centroids
    ones = pim.ones(n, dtype=pim.float32)
    zeros = pim.zeros(n, dtype=pim.float32)

    with pim.Profiler() as prof:
        for _ in range(ITERATIONS):
            dist0 = abs(data - c0)
            dist1 = abs(data - c1)
            in_zero = dist0 < dist1  # 0/1 assignment per element

            members0 = pim.where(in_zero, ones, zeros)
            sum0 = pim.where(in_zero, data, zeros).sum()
            count0 = members0.sum()
            count1 = n - count0
            sum1 = data.sum() - sum0

            if count0:
                c0 = sum0 / count0
            if count1:
                c1 = sum1 / count1

    print(f"points:   {n}")
    print(f"centroids after {ITERATIONS} PIM iterations: "
          f"{min(c0, c1):+.4f}, {max(c0, c1):+.4f}")
    print("expected (generating means):              -2.0000, +3.0000")
    print(f"PIM cycles: {prof.cycles}")
    assert abs(min(c0, c1) - (-2.0)) < 0.15
    assert abs(max(c0, c1) - 3.0) < 0.15
    print("OK — converged to the generating cluster means.")


if __name__ == "__main__":
    main()
