"""Signal processing on PIM: CORDIC synthesis + vectored float math.

Builds a noisy tone directly in PIM using the library's CORDIC sine, then
estimates its power and peak amplitude with float arithmetic, reductions
and sorting — the bit-serial element-parallel float pipeline of AritPIM
driving a realistic DSP-style workload.

Run with::

    python examples/signal_processing.py

See the README quickstart (``README.md``) for the tensor-API basics and
``docs/architecture.md`` for the compile/replay pipeline behind the
repeated CORDIC iterations.
"""

import os

import numpy as np

import repro.pim as pim

#: CI knob: shrink the simulated memory so every example finishes fast.
FAST = os.environ.get("REPRO_EXAMPLES_FAST", "") not in ("", "0")


def main() -> None:
    pim.init(crossbars=4 if FAST else 16, rows=64 if FAST else 256)
    rng = np.random.default_rng(42)
    n = 256 if FAST else 1024

    # Phase ramp for a tone, restricted to CORDIC's [-pi/2, pi/2] domain.
    phase_h = np.linspace(-np.pi / 2, np.pi / 2, n).astype(np.float32)
    noise_h = (rng.normal(scale=0.05, size=n)).astype(np.float32)

    phase = pim.from_numpy(phase_h)
    noise = pim.from_numpy(noise_h)

    with pim.Profiler() as prof:
        tone = pim.cordic_sin(phase)  # synthesized on the PIM
        signal = tone + noise

        # Mean power: sum(x^2) / n, computed with PIM mul + reduction.
        power = (signal * signal).sum() / n

        # Peak magnitude via sort (largest element of |signal|).
        peak = abs(signal).sort()[-1]

    reference = np.sin(phase_h) + noise_h
    ref_power = float((reference.astype(np.float64) ** 2).mean())
    ref_peak = float(np.abs(reference).max())

    print(f"samples:        {n}")
    print(f"mean power:     {power:.6f}   (numpy: {ref_power:.6f})")
    print(f"peak amplitude: {peak:.6f}   (numpy: {ref_peak:.6f})")
    print(f"PIM cycles:     {prof.cycles}")
    assert abs(power - ref_power) < 1e-3
    assert abs(peak - ref_peak) < 1e-5
    print("OK — PIM pipeline matches the CPU reference.")


if __name__ == "__main__":
    main()
