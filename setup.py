"""Packaging for the PyPIM reproduction.

``pip install -e .`` makes the ``repro`` package importable without the
``PYTHONPATH=src`` workflow (both are documented in the README).
"""

from pathlib import Path

from setuptools import find_packages, setup

setup(
    name="pypim-repro",
    version="1.0.0",
    description=(
        "Reproduction of PyPIM (MICRO 2024): digital processing-in-memory "
        "from microarchitecture to Python tensors"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text(
        encoding="utf-8"
    ),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
)
